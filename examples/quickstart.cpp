/**
 * @file
 * Quickstart: build a loop DDG, compile it for a clustered VLIW
 * with the GP scheme, and read the results.
 *
 * Run: ./build/examples/quickstart
 */

#include <cstdio>

#include "core/gp_scheduler.hh"
#include "graph/ddg_builder.hh"
#include "machine/configs.hh"

using namespace gpsched;

int
main()
{
    // 1. A machine: the paper's 2-cluster, 32-register configuration
    //    with one 1-cycle inter-cluster bus (Table 1).
    MachineConfig machine = twoClusterConfig(/*total_regs=*/32,
                                             /*bus_latency=*/1);
    std::printf("machine: %s\n", machine.summary().c_str());

    // 2. A loop: y[i] = a*x[i] + y[i] with a profiled trip count.
    //    Flow edges pick up the producer's latency automatically.
    LatencyTable lat;
    DdgBuilder b("daxpy", lat);
    NodeId iv = b.op(Opcode::IAlu, "i++");
    b.carried(iv, iv, 1); // induction recurrence
    NodeId x = b.op(Opcode::Load, "x[i]");
    NodeId y = b.op(Opcode::Load, "y[i]");
    b.flow(iv, x);
    b.flow(iv, y);
    NodeId ax = b.op(Opcode::FMul, "a*x");
    b.flow(x, ax);
    NodeId sum = b.op(Opcode::FAdd, "a*x+y");
    b.flow(ax, sum);
    b.flow(y, sum);
    NodeId st = b.op(Opcode::Store, "y[i]=");
    b.flow(sum, st);
    b.flow(iv, st);
    Ddg loop = b.tripCount(1000).build();
    std::printf("loop: %d ops, %d deps, %lld iterations\n",
                loop.numNodes(), loop.numEdges(),
                static_cast<long long>(loop.tripCount()));

    // 3. Compile with the paper's GP scheme: graph-partitioning
    //    cluster assignment, then integrated scheduling + register
    //    allocation + spill/communication management.
    LoopCompiler compiler(machine, SchedulerKind::Gp);
    CompiledLoop result = compiler.compile(loop);

    std::printf("modulo scheduled: %s\n",
                result.moduloScheduled ? "yes" : "no (list fallback)");
    std::printf("II = %d (MII %d), schedule length %d\n", result.ii,
                result.mii, result.scheduleLength);
    std::printf("cycles = %lld, IPC = %.2f\n",
                static_cast<long long>(result.cycles), result.ipc);
    std::printf("overhead: %d bus transfers, %d memory "
                "communications, %d spills\n",
                result.stats.busTransfers, result.stats.memTransfers,
                result.stats.spills);

    // 4. Compare against the single-phase URACAM baseline.
    CompiledLoop baseline =
        LoopCompiler(machine, SchedulerKind::Uracam).compile(loop);
    std::printf("URACAM baseline IPC = %.2f -> GP gain %+.1f%%\n",
                baseline.ipc,
                100.0 * (result.ipc / baseline.ipc - 1.0));
    return 0;
}
