/**
 * @file
 * Design-space exploration with a custom machine: how does the GP
 * scheme behave as the cluster count, bus latency, bus count and
 * register budget vary beyond the paper's Table 1? Sweeps a small
 * grid and prints mean suite IPC per point — the kind of study a
 * DSP architect would run with this library.
 *
 * Run: ./build/examples/custom_machine
 */

#include <iostream>

#include "core/pipeline.hh"
#include "machine/machine.hh"
#include "support/table.hh"
#include "workload/specfp.hh"

using namespace gpsched;

int
main()
{
    LatencyTable lat;
    auto suite = specFp95Suite(lat);

    // Custom latencies are just a table away: model a target whose
    // FP multiplier is slower than the default.
    LatencyTable slow_fmul = lat;
    slow_fmul.setTiming(Opcode::FMul, OpTiming{6, 1});

    TextTable table({"clusters", "regs", "buses", "bus lat",
                     "GP IPC", "GP IPC (slow fmul)"});
    for (int clusters : {2, 4}) {
        for (int regs : {32, 64}) {
            for (int buses : {1, 2}) {
                for (int bus_lat : {1, 2}) {
                    int per = 12 / clusters / 3;
                    MachineConfig m("custom", clusters, per, per, per,
                                    regs, buses, bus_lat);
                    double ipc =
                        compileSuite(suite, m, SchedulerKind::Gp)
                            .meanIpc;
                    MachineConfig slow = m;
                    slow.latencies() = slow_fmul;
                    double ipc_slow =
                        compileSuite(suite, slow, SchedulerKind::Gp)
                            .meanIpc;
                    table.addRow({std::to_string(clusters),
                                  std::to_string(regs),
                                  std::to_string(buses),
                                  std::to_string(bus_lat),
                                  TextTable::num(ipc),
                                  TextTable::num(ipc_slow)});
                }
            }
        }
    }
    table.print(std::cout,
                "GP mean IPC across a custom design space "
                "(12-issue total)");
    std::cout << "\nTakeaways to look for: a second bus recovers "
                 "most of the latency-2 loss;\nregister-starved "
                 "4-cluster machines leave IPC on the table.\n";
    return 0;
}
