/**
 * @file
 * Tour of the synthetic SPECfp95 workload: compile one benchmark
 * (default hydro2d, the paper's recurrence-heavy troublemaker) with
 * all three schemes on a chosen machine and print the per-loop
 * breakdown — which loops are recurrence-limited, which fall back to
 * list scheduling, where the spills go.
 *
 * Run: ./build/examples/spec_tour [benchmark] [clusters] [regs]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/pipeline.hh"
#include "machine/configs.hh"
#include "support/table.hh"
#include "workload/specfp.hh"

using namespace gpsched;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "hydro2d";
    int clusters = argc > 2 ? std::atoi(argv[2]) : 4;
    int regs = argc > 3 ? std::atoi(argv[3]) : 32;

    LatencyTable lat;
    Program prog = specFp95Program(name, lat);
    MachineConfig machine = clusters == 1 ? unifiedConfig(regs)
                            : clusters == 2
                                ? twoClusterConfig(regs, 1)
                                : fourClusterConfig(regs, 1);
    std::printf("benchmark %s on %s\n\n", prog.name.c_str(),
                machine.summary().c_str());

    for (SchedulerKind kind :
         {SchedulerKind::Uracam, SchedulerKind::FixedPartition,
          SchedulerKind::Gp}) {
        ProgramResult r = compileProgram(prog, machine, kind);
        TextTable table({"loop", "ops", "trip", "MII", "II", "SL",
                         "bus", "mem", "spill", "IPC"});
        for (std::size_t i = 0; i < r.loops.size(); ++i) {
            const CompiledLoop &l = r.loops[i];
            table.addRow(
                {l.loopName,
                 std::to_string(prog.loops[i].numNodes()),
                 std::to_string(prog.loops[i].tripCount()),
                 std::to_string(l.mii),
                 l.moduloScheduled ? std::to_string(l.ii) : "LS",
                 std::to_string(l.scheduleLength),
                 std::to_string(l.stats.busTransfers),
                 std::to_string(l.stats.memTransfers),
                 std::to_string(l.stats.spills),
                 TextTable::num(l.ipc)});
        }
        table.print(std::cout,
                    toString(kind) + "  (program IPC " +
                        TextTable::num(r.ipc) + ", sched " +
                        TextTable::num(r.schedSeconds * 1e3, 1) +
                        " ms)");
        std::cout << "\n";
    }
    return 0;
}
