/**
 * @file
 * Visualize a graph partition: writes Graphviz dot files of a loop
 * DDG before and after the multilevel cluster assignment (clusters
 * colored, cut edges dashed), together with the partition metrics
 * the GP scheme steers by.
 *
 * Run: ./build/examples/partition_viz [out_prefix]
 * Then: dot -Tpng <prefix>_partitioned.dot -o partition.png
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "graph/dot.hh"
#include "machine/configs.hh"
#include "partition/multilevel.hh"
#include "sched/mii.hh"
#include "workload/loop_shapes.hh"

using namespace gpsched;

int
main(int argc, char **argv)
{
    std::string prefix = argc > 1 ? argv[1] : "stencil";

    LatencyTable lat;
    Ddg loop = stencilKernel("stencil9", lat, 9, 400);
    MachineConfig machine = fourClusterConfig(32, 1);
    int mii = computeMii(loop, machine);

    GpPartitioner partitioner(machine);
    GpPartitionResult result = partitioner.run(loop, mii);

    std::string plain_path = prefix + "_plain.dot";
    std::string part_path = prefix + "_partitioned.dot";
    {
        std::ofstream os(plain_path);
        writeDot(os, loop);
    }
    {
        std::ofstream os(part_path);
        writeDot(os, loop, &result.partition.raw());
    }

    std::printf("loop %s: %d ops, %d deps, MII %d\n",
                loop.name().c_str(), loop.numNodes(), loop.numEdges(),
                mii);
    std::printf("partition: %d cut edges, %d communications, "
                "IIbus %d\n",
                numCutEdges(loop, result.partition),
                numCommunications(loop, result.partition),
                result.iiBus);
    std::printf("estimate: iiEff %d, path %d, execTime %lld "
                "(resources %s)\n",
                result.estimate.iiEff, result.estimate.pathLength,
                static_cast<long long>(result.estimate.execTime),
                result.estimate.resourcesOk ? "ok" : "OVERLOADED");
    for (int c = 0; c < machine.numClusters(); ++c) {
        std::printf("  cluster %d: %zu ops\n", c,
                    result.partition.nodesIn(c).size());
    }
    std::printf("wrote %s and %s\n", plain_path.c_str(),
                part_path.c_str());
    return 0;
}
