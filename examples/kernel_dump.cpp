/**
 * @file
 * Dump a modulo-scheduled kernel the way a code generator would see
 * it: per-cluster issue slots for every kernel cycle, with the
 * inter-cluster transfers and spill code the scheduler inserted.
 *
 * Run: ./build/examples/kernel_dump
 */

#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "graph/ddg_analysis.hh"
#include "machine/configs.hh"
#include "partition/multilevel.hh"
#include "sched/mii.hh"
#include "sched/mrt.hh"
#include "sched/uracam.hh"
#include "workload/loop_shapes.hh"

using namespace gpsched;

int
main()
{
    LatencyTable lat;
    Ddg loop = dotProductKernel("dot2", lat, 2, 1000);
    MachineConfig machine = twoClusterConfig(32, 1);
    int mii = computeMii(loop, machine);

    // Partition + schedule, raising the II until an attempt lands.
    GpPartitioner partitioner(machine);
    ModuloScheduler scheduler(loop, machine);
    GpPartitionResult part = partitioner.run(loop, mii);
    int ii = mii;
    std::optional<PartialSchedule> scheduled;
    while (!scheduled) {
        PartialSchedule attempt(loop, machine, ii);
        if (scheduler.schedule(attempt, ClusterPolicy::PreferAssigned,
                               &part.partition)) {
            scheduled.emplace(std::move(attempt));
        } else {
            ++ii;
        }
    }
    PartialSchedule &ps = *scheduled;

    std::printf("kernel of %s at II=%d (MII %d), SL=%d, "
                "MaxLive/cluster:",
                loop.name().c_str(), ii, mii, ps.scheduleLength());
    for (int c = 0; c < machine.numClusters(); ++c)
        std::printf(" %d", ps.maxLive(c));
    std::printf("\n\n");

    // Gather everything issued per (kernel slot, cluster).
    std::map<std::pair<int, int>, std::vector<std::string>> slots;
    for (NodeId v = 0; v < loop.numNodes(); ++v) {
        const DdgNode &node = loop.node(v);
        std::string text = toString(node.opcode) + " " + node.label +
                           " @" + std::to_string(ps.cycleOf(v));
        slots[{wrapSlot(ps.cycleOf(v), ii), ps.clusterOf(v)}]
            .push_back(text);
        for (const auto &[dest, t] : ps.transfersOf(v)) {
            if (t.viaBus) {
                slots[{wrapSlot(t.busCycle, ii), ps.clusterOf(v)}]
                    .push_back("buscopy " + node.label + " ->c" +
                               std::to_string(dest));
            } else {
                slots[{wrapSlot(t.stCycle, ii), ps.clusterOf(v)}]
                    .push_back("commst " + node.label);
                slots[{wrapSlot(t.ldCycle, ii), dest}].push_back(
                    "commld " + node.label);
            }
        }
        SpillInfo spill = ps.spillOf(v);
        if (spill.spilled) {
            slots[{wrapSlot(spill.storeCycle, ii), ps.clusterOf(v)}]
                .push_back("spillst " + node.label);
            slots[{wrapSlot(spill.loadCycle, ii), ps.clusterOf(v)}]
                .push_back("spillld " + node.label);
        }
    }

    for (int slot = 0; slot < ii; ++slot) {
        std::printf("cycle %%II == %d:\n", slot);
        for (int c = 0; c < machine.numClusters(); ++c) {
            auto it = slots.find({slot, c});
            if (it == slots.end())
                continue;
            std::printf("  cluster %d: ", c);
            for (std::size_t i = 0; i < it->second.size(); ++i) {
                std::printf("%s%s", i ? " | " : "",
                            it->second[i].c_str());
            }
            std::printf("\n");
        }
    }
    ScheduleStats stats = ps.stats();
    std::printf("\noverhead: %d bus, %d mem comms, %d spills\n",
                stats.busTransfers, stats.memTransfers, stats.spills);
    return 0;
}
