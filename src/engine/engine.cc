#include "engine/engine.hh"

#include "support/logging.hh"
#include "support/timer.hh"

namespace gpsched
{

const char *
compileSourceName(CompileSource source)
{
    switch (source) {
      case CompileSource::Compiled:
        return "compiled";
      case CompileSource::Memory:
        return "memory";
      case CompileSource::Disk:
        return "disk";
      case CompileSource::Coalesced:
        return "coalesced";
    }
    GPSCHED_PANIC("invalid CompileSource ", static_cast<int>(source));
}

EngineOptions
serialEngineOptions()
{
    EngineOptions options;
    options.jobs = 1;
    options.cacheEnabled = false;
    return options;
}

double
EngineStats::hitRate() const
{
    return jobsSubmitted == 0
               ? 0.0
               : static_cast<double>(cacheHits) /
                     static_cast<double>(jobsSubmitted);
}

double
EngineStats::diskHitRate() const
{
    const std::uint64_t probes = diskHits + diskMisses;
    return probes == 0 ? 0.0
                       : static_cast<double>(diskHits) /
                             static_cast<double>(probes);
}

namespace
{

int
effectiveJobs(int requested)
{
    GPSCHED_ASSERT(requested >= 0, "negative job count ", requested);
    return requested == 0 ? ThreadPool::hardwareConcurrency()
                          : requested;
}

std::uint32_t
nextEnginePid()
{
    // One trace pid per engine instance, process-wide.
    static std::atomic<std::uint32_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

Engine::Engine(EngineOptions options)
    : options_(options), jobs_(effectiveJobs(options.jobs)),
      pid_(nextEnginePid()),
      // A 1-job engine runs inline on the submitting thread.
      pool_(jobs_ <= 1 ? 0 : jobs_,
            PoolTelemetry{options.metrics, options.trace, pid_}),
      cache_(options.cacheCapacity, options.cacheShards)
{
    if (options_.cacheEnabled && !options_.cacheDir.empty()) {
        disk_ = std::make_unique<DiskCache>(options_.cacheDir,
                                            options_.cacheMaxBytes);
    }
    if (options_.trace != nullptr)
        options_.trace->metadata(
            "process_name", pid_, 0,
            "gpsched engine " + std::to_string(pid_));
}

CompileResult
Engine::runJob(const EngineJob &job)
{
    // compileMs and source are always recorded: two monotonic clock
    // reads per job, independent of the telemetry options.
    std::uint64_t startNanos = monotonicNanos();
    CompileSource source = CompileSource::Compiled;
    CompileTrace trace;
    CompileResult result = runJobImpl(job, source, trace);
    result.source = source;
    result.compileMs =
        static_cast<double>(monotonicNanos() - startNanos) * 1e-6;
    result.trace = trace;
    if (!trace.empty()) {
        std::lock_guard<std::mutex> lock(totalsMutex_);
        totals_.merge(trace);
    }
    return result;
}

CompileResult
Engine::runJobImpl(const EngineJob &job, CompileSource &source,
                   CompileTrace &trace)
{
    GPSCHED_ASSERT(job.loop != nullptr && job.machine != nullptr,
                   "engine job without loop or machine");
    jobsSubmitted_.fetch_add(1, std::memory_order_relaxed);

    // Runs compiler.compile under the ambient telemetry context so
    // GPSCHED_PHASE_SPAN sites attribute into this job's trace, and
    // brackets the whole compile for the "compile" Chrome span and
    // the trace's whole-compile totals. With telemetry off this
    // reduces to the plain compile call.
    auto tracedCompile = [&](LoopCompiler &compiler) {
        TraceSink *sink = options_.trace;
        const bool collect = options_.collectPhases || sink != nullptr;
        if (!collect)
            return compiler.compile(*job.loop);
        TelemetryContext ctx;
        ctx.trace = &trace;
        ctx.sink = sink;
        ctx.pid = pid_;
        ScopedTelemetryContext scoped(ctx);
        std::uint64_t wall0 = traceNowNanos();
        std::uint64_t cpu0 = threadCpuNanos();
        auto finish = [&](bool ok) {
            std::uint64_t wall1 = traceNowNanos();
            trace.wallNanos = wall1 - wall0;
            trace.cpuNanos = threadCpuNanos() - cpu0;
            trace.compiles = 1;
            if (sink != nullptr) {
                TraceEvent event;
                event.name = "compile";
                event.cat = "compile";
                event.pid = pid_;
                event.tid = traceThreadId();
                event.tsNanos = wall0;
                event.durNanos = trace.wallNanos;
                event.args.emplace_back("loop", job.loop->name());
                event.args.emplace_back("scheme",
                                        toString(job.kind));
                if (!ok)
                    event.args.emplace_back("error", "CompileError");
                sink->complete(std::move(event));
            }
        };
        try {
            CompiledLoop compiled = compiler.compile(*job.loop);
            finish(true);
            return compiled;
        } catch (...) {
            finish(false);
            throw;
        }
    };

    // Brackets a cache/disk probe in a Chrome span; near-zero when
    // no sink is configured.
    auto probeSpan = [&](const char *name, const char *cat,
                         auto &&probe) {
        TraceSink *sink = options_.trace;
        if (sink == nullptr)
            return probe();
        std::uint64_t wall0 = traceNowNanos();
        bool hit = probe();
        TraceEvent event;
        event.name = name;
        event.cat = cat;
        event.pid = pid_;
        event.tid = traceThreadId();
        event.tsNanos = wall0;
        event.durNanos = traceNowNanos() - wall0;
        event.args.emplace_back("hit", hit ? "true" : "false");
        sink->complete(std::move(event));
        return hit;
    };

    // Turns a caught CompileError into this job's diagnostic result,
    // re-labelled with the requesting loop's name (the error may
    // come from a structurally identical owner with another name).
    auto failWith = [&](CompileError error) {
        failed_.fetch_add(1, std::memory_order_relaxed);
        error.setLoopName(job.loop->name());
        return CompileResult::failure(std::move(error));
    };

    if (!options_.cacheEnabled) {
        try {
            LoopCompiler compiler(*job.machine, job.kind,
                                  job.options);
            return CompileResult::success(tracedCompile(compiler));
        } catch (const CompileError &error) {
            return failWith(error);
        }
    }

    LoopKey key =
        makeLoopKey(*job.loop, *job.machine, job.kind, job.options);
    CompiledLoop result;
    if (probeSpan("cache-probe", "cache",
                  [&] { return cache_.lookup(key, result); })) {
        cacheHits_.fetch_add(1, std::memory_order_relaxed);
        source = CompileSource::Memory;
        // Names are excluded from the fingerprint; report the
        // requesting loop's name, not the first-seen shape's.
        result.loopName = job.loop->name();
        return CompileResult::success(std::move(result));
    }

    // Coalesce duplicates submitted concurrently: the first job for
    // a key becomes the owner and compiles; later ones await its
    // shared future. The owner publishes to the cache before
    // retiring the in-flight entry, and the re-check below runs
    // under the in-flight lock, so a key is compiled exactly once no
    // matter how submissions interleave.
    std::shared_future<CompiledLoop> pending;
    std::promise<CompiledLoop> promise;
    {
        std::lock_guard<std::mutex> lock(inflightMutex_);
        if (cache_.lookup(key, result)) {
            cacheHits_.fetch_add(1, std::memory_order_relaxed);
            source = CompileSource::Memory;
            result.loopName = job.loop->name();
            return CompileResult::success(std::move(result));
        }
        auto it = inflight_.find(key.canonical);
        if (it != inflight_.end()) {
            pending = it->second;
        } else {
            inflight_.emplace(key.canonical,
                              promise.get_future().share());
        }
    }
    if (pending.valid()) {
        coalesced_.fetch_add(1, std::memory_order_relaxed);
        source = CompileSource::Coalesced;
        // The shared future carries the owner's exception; a
        // duplicate awaiting a failed owner observes the same
        // CompileError instead of hanging or crashing.
        try {
            result = pending.get();
        } catch (const CompileError &error) {
            return failWith(error);
        }
        result.loopName = job.loop->name();
        return CompileResult::success(std::move(result));
    }

    // Publishes an owned result: into the in-memory cache first (so
    // waiters released by the future, and late lookups, always see
    // it), then to coalesced waiters, then retires the in-flight
    // entry. Shared by the disk-hit and compile paths below so the
    // ordering-sensitive sequence exists once.
    auto publishAndRetire = [&] {
        cache_.insert(key, result);
        promise.set_value(result);
        std::lock_guard<std::mutex> lock(inflightMutex_);
        inflight_.erase(key.canonical);
    };

    // This thread owns the key. Probe the persistent layer before
    // compiling; coalesced duplicates wait on the future either way,
    // so each key touches the disk at most once per process run.
    if (disk_ &&
        probeSpan("disk-lookup", "disk",
                  [&] { return disk_->lookup(key, result); })) {
        publishAndRetire();
        source = CompileSource::Disk;
        result.loopName = job.loop->name();
        return CompileResult::success(std::move(result));
    }
    cacheMisses_.fetch_add(1, std::memory_order_relaxed);

    try {
        LoopCompiler compiler(*job.machine, job.kind, job.options);
        result = tracedCompile(compiler);
    } catch (...) {
        // Propagate the failure to coalesced waiters and retire the
        // in-flight entry, or this key would stay wedged forever.
        // Nothing is published to either cache layer: errors are
        // not negatively cached, so a retry of this key recompiles.
        promise.set_exception(std::current_exception());
        {
            std::lock_guard<std::mutex> lock(inflightMutex_);
            inflight_.erase(key.canonical);
        }
        try {
            throw;
        } catch (const CompileError &error) {
            return failWith(error);
        }
        // Non-CompileError exceptions (gpsched bugs) keep
        // propagating; the thread pool contains and rethrows them
        // from wait().
    }
    if (disk_) {
        probeSpan("disk-store", "disk", [&] {
            disk_->store(key, result);
            return true;
        });
    }
    publishAndRetire();
    return CompileResult::success(std::move(result));
}

CompileResult
Engine::compileOne(const EngineJob &job)
{
    return runJob(job);
}

std::vector<CompileResult>
Engine::compileBatch(const std::vector<EngineJob> &batch)
{
    std::vector<CompileResult> results(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        pool_.submit([this, &batch, &results, i] {
            results[i] = runJob(batch[i]);
        });
    }
    pool_.wait();
    return results;
}

EngineStats
Engine::stats() const
{
    EngineStats stats;
    stats.jobsSubmitted =
        jobsSubmitted_.load(std::memory_order_relaxed);
    stats.cacheHits = cacheHits_.load(std::memory_order_relaxed);
    stats.cacheMisses = cacheMisses_.load(std::memory_order_relaxed);
    stats.coalesced = coalesced_.load(std::memory_order_relaxed);
    stats.failed = failed_.load(std::memory_order_relaxed);
    if (disk_) {
        DiskCacheStats disk = disk_->stats();
        stats.diskHits = disk.hits;
        stats.diskMisses = disk.misses;
        stats.diskStores = disk.stores;
        stats.corruptEvicted = disk.corruptEvicted;
    }
    return stats;
}

CompileTrace
Engine::phaseTotals() const
{
    std::lock_guard<std::mutex> lock(totalsMutex_);
    return totals_;
}

void
Engine::exportStats(MetricRegistry &registry) const
{
    EngineStats s = stats();
    registry.counter("engine.jobsSubmitted").set(s.jobsSubmitted);
    registry.counter("engine.cacheHits").set(s.cacheHits);
    registry.counter("engine.cacheMisses").set(s.cacheMisses);
    registry.counter("engine.coalesced").set(s.coalesced);
    registry.counter("engine.failed").set(s.failed);
    registry.gauge("engine.cacheSize")
        .set(static_cast<std::int64_t>(cache_.size()));
    if (disk_) {
        registry.counter("disk.hits").set(s.diskHits);
        registry.counter("disk.misses").set(s.diskMisses);
        registry.counter("disk.stores").set(s.diskStores);
        registry.counter("disk.corruptEvicted").set(s.corruptEvicted);
    }
    CompileTrace totals = phaseTotals();
    if (totals.empty())
        return;
    registry.counter("phase.compile.count").set(totals.compiles);
    registry.counter("phase.compile.wallMicros")
        .set(totals.wallNanos / 1000);
    registry.counter("phase.compile.cpuMicros")
        .set(totals.cpuNanos / 1000);
    for (std::size_t i = 0; i < kNumCompilePhases; ++i) {
        const PhaseTotals &phase = totals.phases[i];
        if (phase.count == 0)
            continue;
        std::string prefix =
            std::string("phase.") +
            compilePhaseName(static_cast<CompilePhase>(i));
        registry.counter(prefix + ".count").set(phase.count);
        registry.counter(prefix + ".wallMicros")
            .set(phase.wallNanos / 1000);
        registry.counter(prefix + ".cpuMicros")
            .set(phase.cpuNanos / 1000);
    }
}

} // namespace gpsched
