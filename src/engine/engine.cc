#include "engine/engine.hh"

#include "support/logging.hh"

namespace gpsched
{

EngineOptions
serialEngineOptions()
{
    EngineOptions options;
    options.jobs = 1;
    options.cacheEnabled = false;
    return options;
}

double
EngineStats::hitRate() const
{
    return jobsSubmitted == 0
               ? 0.0
               : static_cast<double>(cacheHits) /
                     static_cast<double>(jobsSubmitted);
}

double
EngineStats::diskHitRate() const
{
    const std::uint64_t probes = diskHits + diskMisses;
    return probes == 0 ? 0.0
                       : static_cast<double>(diskHits) /
                             static_cast<double>(probes);
}

namespace
{

int
effectiveJobs(int requested)
{
    GPSCHED_ASSERT(requested >= 0, "negative job count ", requested);
    return requested == 0 ? ThreadPool::hardwareConcurrency()
                          : requested;
}

} // namespace

Engine::Engine(EngineOptions options)
    : options_(options), jobs_(effectiveJobs(options.jobs)),
      // A 1-job engine runs inline on the submitting thread.
      pool_(jobs_ <= 1 ? 0 : jobs_),
      cache_(options.cacheCapacity, options.cacheShards)
{
    if (options_.cacheEnabled && !options_.cacheDir.empty()) {
        disk_ = std::make_unique<DiskCache>(options_.cacheDir,
                                            options_.cacheMaxBytes);
    }
}

CompileResult
Engine::runJob(const EngineJob &job)
{
    GPSCHED_ASSERT(job.loop != nullptr && job.machine != nullptr,
                   "engine job without loop or machine");
    jobsSubmitted_.fetch_add(1, std::memory_order_relaxed);

    // Turns a caught CompileError into this job's diagnostic result,
    // re-labelled with the requesting loop's name (the error may
    // come from a structurally identical owner with another name).
    auto failWith = [&](CompileError error) {
        failed_.fetch_add(1, std::memory_order_relaxed);
        error.setLoopName(job.loop->name());
        return CompileResult::failure(std::move(error));
    };

    if (!options_.cacheEnabled) {
        try {
            LoopCompiler compiler(*job.machine, job.kind,
                                  job.options);
            return CompileResult::success(compiler.compile(*job.loop));
        } catch (const CompileError &error) {
            return failWith(error);
        }
    }

    LoopKey key =
        makeLoopKey(*job.loop, *job.machine, job.kind, job.options);
    CompiledLoop result;
    if (cache_.lookup(key, result)) {
        cacheHits_.fetch_add(1, std::memory_order_relaxed);
        // Names are excluded from the fingerprint; report the
        // requesting loop's name, not the first-seen shape's.
        result.loopName = job.loop->name();
        return CompileResult::success(std::move(result));
    }

    // Coalesce duplicates submitted concurrently: the first job for
    // a key becomes the owner and compiles; later ones await its
    // shared future. The owner publishes to the cache before
    // retiring the in-flight entry, and the re-check below runs
    // under the in-flight lock, so a key is compiled exactly once no
    // matter how submissions interleave.
    std::shared_future<CompiledLoop> pending;
    std::promise<CompiledLoop> promise;
    {
        std::lock_guard<std::mutex> lock(inflightMutex_);
        if (cache_.lookup(key, result)) {
            cacheHits_.fetch_add(1, std::memory_order_relaxed);
            result.loopName = job.loop->name();
            return CompileResult::success(std::move(result));
        }
        auto it = inflight_.find(key.canonical);
        if (it != inflight_.end()) {
            pending = it->second;
        } else {
            inflight_.emplace(key.canonical,
                              promise.get_future().share());
        }
    }
    if (pending.valid()) {
        coalesced_.fetch_add(1, std::memory_order_relaxed);
        // The shared future carries the owner's exception; a
        // duplicate awaiting a failed owner observes the same
        // CompileError instead of hanging or crashing.
        try {
            result = pending.get();
        } catch (const CompileError &error) {
            return failWith(error);
        }
        result.loopName = job.loop->name();
        return CompileResult::success(std::move(result));
    }

    // Publishes an owned result: into the in-memory cache first (so
    // waiters released by the future, and late lookups, always see
    // it), then to coalesced waiters, then retires the in-flight
    // entry. Shared by the disk-hit and compile paths below so the
    // ordering-sensitive sequence exists once.
    auto publishAndRetire = [&] {
        cache_.insert(key, result);
        promise.set_value(result);
        std::lock_guard<std::mutex> lock(inflightMutex_);
        inflight_.erase(key.canonical);
    };

    // This thread owns the key. Probe the persistent layer before
    // compiling; coalesced duplicates wait on the future either way,
    // so each key touches the disk at most once per process run.
    if (disk_ && disk_->lookup(key, result)) {
        publishAndRetire();
        result.loopName = job.loop->name();
        return CompileResult::success(std::move(result));
    }
    cacheMisses_.fetch_add(1, std::memory_order_relaxed);

    try {
        LoopCompiler compiler(*job.machine, job.kind, job.options);
        result = compiler.compile(*job.loop);
    } catch (...) {
        // Propagate the failure to coalesced waiters and retire the
        // in-flight entry, or this key would stay wedged forever.
        // Nothing is published to either cache layer: errors are
        // not negatively cached, so a retry of this key recompiles.
        promise.set_exception(std::current_exception());
        {
            std::lock_guard<std::mutex> lock(inflightMutex_);
            inflight_.erase(key.canonical);
        }
        try {
            throw;
        } catch (const CompileError &error) {
            return failWith(error);
        }
        // Non-CompileError exceptions (gpsched bugs) keep
        // propagating; the thread pool contains and rethrows them
        // from wait().
    }
    if (disk_)
        disk_->store(key, result);
    publishAndRetire();
    return CompileResult::success(std::move(result));
}

CompileResult
Engine::compileOne(const EngineJob &job)
{
    return runJob(job);
}

std::vector<CompileResult>
Engine::compileBatch(const std::vector<EngineJob> &batch)
{
    std::vector<CompileResult> results(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        pool_.submit([this, &batch, &results, i] {
            results[i] = runJob(batch[i]);
        });
    }
    pool_.wait();
    return results;
}

EngineStats
Engine::stats() const
{
    EngineStats stats;
    stats.jobsSubmitted =
        jobsSubmitted_.load(std::memory_order_relaxed);
    stats.cacheHits = cacheHits_.load(std::memory_order_relaxed);
    stats.cacheMisses = cacheMisses_.load(std::memory_order_relaxed);
    stats.coalesced = coalesced_.load(std::memory_order_relaxed);
    stats.failed = failed_.load(std::memory_order_relaxed);
    if (disk_) {
        DiskCacheStats disk = disk_->stats();
        stats.diskHits = disk.hits;
        stats.diskMisses = disk.misses;
        stats.diskStores = disk.stores;
        stats.corruptEvicted = disk.corruptEvicted;
    }
    return stats;
}

} // namespace gpsched
