/**
 * @file
 * Sharded, mutex-striped LRU cache of compiled-loop results keyed by
 * LoopKey fingerprints. A lookup or insertion locks only the shard
 * the key's digest maps to, so concurrent workers compiling
 * different loops rarely contend. Keys compare by their full
 * canonical encoding, never by digest alone, so a hit is always an
 * exact job match.
 *
 * The cached CompiledLoop carries the loop *shape*'s result; the
 * engine patches the requesting loop's name onto a hit because names
 * are excluded from the fingerprint (see loop_key.hh).
 */

#ifndef GPSCHED_ENGINE_RESULT_CACHE_HH
#define GPSCHED_ENGINE_RESULT_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/gp_scheduler.hh"
#include "engine/loop_key.hh"

namespace gpsched
{

/** Aggregate cache counters (summed over shards). */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;

    /** hits / (hits + misses); 0 when no lookups happened. */
    double hitRate() const;
};

/** N-way sharded LRU map from LoopKey to CompiledLoop. */
class ResultCache
{
  public:
    /**
     * @param capacity total cached entries over all shards (>= 1)
     * @param num_shards lock stripes (>= 1); capacity is split evenly
     *        with each shard holding at least one entry
     */
    explicit ResultCache(std::size_t capacity,
                         std::size_t num_shards = 16);

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /**
     * Looks @p key up; on a hit copies the value into @p out,
     * refreshes recency and returns true.
     */
    bool lookup(const LoopKey &key, CompiledLoop &out);

    /**
     * Inserts (or refreshes) @p key -> @p value, evicting the shard's
     * least-recently-used entry when at capacity.
     */
    void insert(const LoopKey &key, const CompiledLoop &value);

    /** Drops every entry (stats are kept). */
    void clear();

    /** Entries currently cached over all shards. */
    std::size_t size() const;

    /** Total capacity over all shards. */
    std::size_t capacity() const { return capacityPerShard_ * shards_.size(); }

    /** Shard count. */
    std::size_t numShards() const { return shards_.size(); }

    /** Aggregated counters. */
    CacheStats stats() const;

  private:
    struct Entry
    {
        LoopKey key;
        CompiledLoop value;
    };

    /** One lock stripe: an LRU list plus an index into it. */
    struct Shard
    {
        mutable std::mutex mutex;
        std::list<Entry> lru; ///< front = most recently used
        std::unordered_map<LoopKey, std::list<Entry>::iterator> index;
        CacheStats stats;
    };

    Shard &shardFor(const LoopKey &key);

    std::size_t capacityPerShard_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace gpsched

#endif // GPSCHED_ENGINE_RESULT_CACHE_HH
