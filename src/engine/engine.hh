/**
 * @file
 * Batch compilation engine: the parallel execution front of gpsched.
 *
 * The paper's evaluation compiles every profiled innermost loop of
 * ten SPECfp95 programs under multiple schemes and machines — an
 * embarrassingly parallel batch of independent (loop, machine,
 * scheme, options) jobs. The engine runs such batches on a fixed
 * thread pool and memoizes results in a fingerprint-keyed LRU cache
 * (see loop_key.hh / result_cache.hh), so repeated loop shapes across
 * programs, schemes and parameter sweeps are compiled once.
 *
 * Results are returned in submission order, and every per-loop
 * compilation is a pure function of its job description, so a batch
 * compiled with 1 job and with N jobs produces bit-identical
 * schedules (the scheduling fields; schedSeconds is wall-clock
 * bookkeeping and naturally varies).
 *
 * Failures are per-loop, never per-batch: a job whose input is
 * rejected (CompileError, support/compile_error.hh) yields a
 * CompileResult carrying the diagnostic in its submission slot while
 * every other job completes normally. Failed compiles are never
 * published to the in-memory or persistent cache (errors are not
 * negatively cached — a retry of the same key recompiles), and
 * duplicates coalesced onto a failing owner observe the owner's
 * error re-labelled with their own loop name.
 */

#ifndef GPSCHED_ENGINE_ENGINE_HH
#define GPSCHED_ENGINE_ENGINE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/gp_scheduler.hh"
#include "engine/disk_cache.hh"
#include "engine/result_cache.hh"
#include "engine/thread_pool.hh"
#include "graph/ddg.hh"
#include "machine/machine.hh"
#include "support/compile_error.hh"
#include "support/telemetry.hh"

namespace gpsched
{

/** Engine configuration. */
struct EngineOptions
{
    /** Worker threads; 0 selects hardware_concurrency, 1 is serial
     *  inline execution (no threads spawned). */
    int jobs = 0;

    /** Memoize results keyed by loop fingerprint. */
    bool cacheEnabled = true;

    /** Total result-cache entries. */
    std::size_t cacheCapacity = 1 << 16;

    /** Result-cache lock stripes. */
    std::size_t cacheShards = 16;

    /**
     * Persistent cache directory (engine/disk_cache.hh), layered
     * under the in-memory cache so results survive across runs and
     * processes. Empty disables the disk layer. Requires
     * cacheEnabled.
     */
    std::string cacheDir;

    /** Disk-cache resident-size budget in bytes; 0 = unlimited. */
    std::uint64_t cacheMaxBytes = 256ull << 20;

    /**
     * Metric destination shared with the thread pool (queue depth,
     * task wait/run, per-worker utilization) and exportStats().
     * Null disables; must outlive the engine.
     */
    MetricRegistry *metrics = nullptr;

    /**
     * Chrome trace destination: compile/cache-probe/disk spans on
     * worker tids plus queue-wait async spans, all under this
     * engine's pid. Null disables; must outlive the engine.
     */
    TraceSink *trace = nullptr;

    /**
     * Record a per-compile phase breakdown (CompileResult::trace)
     * and aggregate it into phaseTotals(). Implied by a non-null
     * trace sink. Observation-only: schedules are bit-identical
     * either way.
     */
    bool collectPhases = false;
};

/** Serial, cache-less configuration (the legacy pipeline path). */
EngineOptions serialEngineOptions();

/** One unit of work: compile @p loop for @p machine with one scheme. */
struct EngineJob
{
    /** Loop to compile; must outlive the batch call. */
    const Ddg *loop = nullptr;

    /** Target machine; must outlive the batch call. */
    const MachineConfig *machine = nullptr;

    SchedulerKind kind = SchedulerKind::Gp;
    LoopCompilerOptions options;
};

/** How a job's result was obtained. */
enum class CompileSource : std::uint8_t
{
    Compiled, ///< compiled fresh on this engine
    Memory,   ///< in-memory ResultCache hit
    Disk,     ///< persistent DiskCache hit
    Coalesced ///< awaited an identical in-flight compilation
};

/** Stable JSON name: "compiled" | "memory" | "disk" | "coalesced". */
const char *compileSourceName(CompileSource source);

/**
 * Per-job outcome: either a schedule or a diagnostic, never both.
 * The batch analogue of "a result row": failures occupy their
 * submission slot so downstream consumers can match results to jobs
 * positionally.
 */
struct CompileResult
{
    /** The compiled schedule; meaningful iff ok(). */
    CompiledLoop loop;

    /** The per-loop diagnostic; set iff the compile failed. */
    std::optional<CompileError> error;

    /** How this result was obtained (failures: path that failed). */
    CompileSource source = CompileSource::Compiled;

    /**
     * Wall time this job spent in the engine, milliseconds: compile
     * time for fresh compiles, probe/wait time for cache hits and
     * coalesced duplicates. Always measured (two monotonic clock
     * reads), independent of telemetry options.
     */
    double compileMs = 0.0;

    /**
     * Phase breakdown of this job's own compilation; empty() unless
     * the engine ran with collectPhases/trace AND this job actually
     * compiled (cache hits describe no new work).
     */
    CompileTrace trace;

    bool ok() const { return !error.has_value(); }

    static CompileResult success(CompiledLoop compiled)
    {
        CompileResult result;
        result.loop = std::move(compiled);
        return result;
    }

    static CompileResult failure(CompileError diagnostic)
    {
        CompileResult result;
        result.error = std::move(diagnostic);
        return result;
    }
};

/** Aggregate engine counters. */
struct EngineStats
{
    std::uint64_t jobsSubmitted = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;

    /** Jobs that awaited an identical in-flight compilation instead
     *  of compiling (duplicates submitted concurrently). Every
     *  unique key is compiled exactly once: cacheMisses counts the
     *  actual compilations. */
    std::uint64_t coalesced = 0;

    /** In-memory misses served by the persistent cache. */
    std::uint64_t diskHits = 0;

    /** Disk probes that found no (valid) record. */
    std::uint64_t diskMisses = 0;

    /** Records published to the persistent cache. */
    std::uint64_t diskStores = 0;

    /** Malformed/stale on-disk records evicted during lookups. */
    std::uint64_t corruptEvicted = 0;

    /** Jobs that returned a diagnostic instead of a schedule
     *  (counted per job: a coalesced duplicate observing its
     *  owner's failure counts too). Failed compiles are never
     *  cached, in memory or on disk. */
    std::uint64_t failed = 0;

    /** cacheHits / jobsSubmitted; 0 before any job ran. */
    double hitRate() const;

    /** diskHits / (diskHits + diskMisses); 0 before any probe. */
    double diskHitRate() const;
};

/** Thread-pool batch scheduler with a fingerprint result cache. */
class Engine
{
  public:
    explicit Engine(EngineOptions options = {});

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * Compiles every job of @p batch concurrently and returns the
     * per-job results in submission order. A failed job yields a
     * diagnostic CompileResult in its slot; the batch always runs
     * to completion.
     */
    std::vector<CompileResult> compileBatch(
        const std::vector<EngineJob> &batch);

    /** Compiles one job on the calling thread (cache still used). */
    CompileResult compileOne(const EngineJob &job);

    /** Effective worker count (>= 1). */
    int jobs() const { return jobs_; }

    /** Lifetime counters. */
    EngineStats stats() const;

    /**
     * Batch-aggregated phase breakdown (every compile this engine
     * ran with collectPhases/trace on). Empty when phase collection
     * was off.
     */
    CompileTrace phaseTotals() const;

    /**
     * Snapshots the lifetime counters (and phase totals, when
     * collected) into @p registry under engine.* / disk.* / phase.*
     * — the MetricRegistry view of stats(). Counters are set, not
     * added, so repeated exports stay idempotent.
     */
    void exportStats(MetricRegistry &registry) const;

    /** This engine's pid in emitted Chrome trace events. */
    std::uint32_t tracePid() const { return pid_; }

    /** The result cache (for capacity/size introspection). */
    const ResultCache &cache() const { return cache_; }

    /** The persistent cache; nullptr when no cacheDir was given. */
    const DiskCache *diskCache() const { return disk_.get(); }

    /** Drops all in-memory cached results (counters and the
     *  persistent store are kept). */
    void clearCache() { cache_.clear(); }

  private:
    CompileResult runJob(const EngineJob &job);
    CompileResult runJobImpl(const EngineJob &job,
                             CompileSource &source,
                             CompileTrace &trace);

    EngineOptions options_;
    int jobs_;
    std::uint32_t pid_; ///< trace pid; must init before pool_
    ThreadPool pool_;
    ResultCache cache_;

    /** Persistent layer under the in-memory cache; may be null. */
    std::unique_ptr<DiskCache> disk_;

    /** Compilations currently running, keyed by canonical LoopKey.
     *  A duplicate submission awaits the owner's shared future
     *  instead of compiling; the owner publishes to the cache before
     *  retiring its entry, so every unique key compiles once. */
    std::mutex inflightMutex_;
    std::unordered_map<std::string, std::shared_future<CompiledLoop>>
        inflight_;

    /** Batch-aggregated phase totals (collectPhases/trace only). */
    mutable std::mutex totalsMutex_;
    CompileTrace totals_;

    std::atomic<std::uint64_t> jobsSubmitted_{0};
    std::atomic<std::uint64_t> cacheHits_{0};
    std::atomic<std::uint64_t> cacheMisses_{0};
    std::atomic<std::uint64_t> coalesced_{0};
    std::atomic<std::uint64_t> failed_{0};
};

} // namespace gpsched

#endif // GPSCHED_ENGINE_ENGINE_HH
