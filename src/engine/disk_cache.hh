/**
 * @file
 * Persistent LoopKey -> CompiledLoop store, layered under the
 * in-memory ResultCache by the engine so structural dedupe survives
 * across processes and runs.
 *
 * Layout on disk: a two-level sharded directory —
 *
 *   <dir>/<hh>/<16-hex-digest>.gpc
 *
 * where <hh> is the first byte of the key's FNV-1a digest in hex and
 * the file holds one self-verifying binary record
 * (serialize/record.hh: magic, format + key-schema versions, size,
 * checksum, full key, full value). Reads re-verify everything and
 * compare the decoded key's canonical bytes against the requested
 * key, so neither a digest collision nor any form of corruption can
 * ever surface a wrong schedule: malformed records count as misses
 * and are evicted (unlinked) on sight.
 *
 * Writes serialize into a hidden temp file in the destination shard
 * directory and publish with an atomic rename, so concurrent
 * engines — including separate processes — sharing one directory
 * never observe partial records.
 *
 * Capacity is a byte budget: each store tracks the approximate
 * resident size, and crossing the budget triggers a compaction that
 * walks the store and unlinks records oldest-mtime-first until the
 * budget holds again. Hits touch their record's mtime, making the
 * policy LRU-by-mtime.
 */

#ifndef GPSCHED_ENGINE_DISK_CACHE_HH
#define GPSCHED_ENGINE_DISK_CACHE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "core/gp_scheduler.hh"
#include "engine/loop_key.hh"

namespace gpsched
{

/** Aggregate disk-cache counters. */
struct DiskCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;

    /** Records unlinked because they failed verification. */
    std::uint64_t corruptEvicted = 0;

    /** Records unlinked by budget compaction. */
    std::uint64_t compacted = 0;

    /** hits / (hits + misses); 0 when no lookups happened. */
    double hitRate() const;
};

/** Sharded on-disk record store keyed by LoopKey. */
class DiskCache
{
  public:
    /**
     * Opens (creating if needed) the store rooted at @p dir.
     * Fatal — a user error, not a crash — when the directory cannot
     * be created or written.
     *
     * @param max_bytes resident-size budget; 0 = unlimited
     */
    DiskCache(std::string dir, std::uint64_t max_bytes);

    DiskCache(const DiskCache &) = delete;
    DiskCache &operator=(const DiskCache &) = delete;

    /**
     * Loads @p key's record if present and valid. Any malformed or
     * mismatched-version record is evicted and reported as a miss.
     */
    bool lookup(const LoopKey &key, CompiledLoop &out);

    /**
     * Publishes @p key -> @p value atomically (write-then-rename).
     * I/O failures are counted, never fatal: a cache store is always
     * allowed to fail.
     */
    void store(const LoopKey &key, const CompiledLoop &value);

    /**
     * Unlinks records oldest-mtime-first until the resident size is
     * within budget. Runs automatically when stores cross the
     * budget; exposed for tests and tools.
     */
    void compact();

    /** Bytes currently resident (walks the store). */
    std::uint64_t residentBytes() const;

    /** Root directory. */
    const std::string &dir() const { return dir_; }

    /** Byte budget (0 = unlimited). */
    std::uint64_t maxBytes() const { return maxBytes_; }

    /** Lifetime counters. */
    DiskCacheStats stats() const;

  private:
    std::string shardDir(const LoopKey &key) const;
    std::string recordPath(const LoopKey &key) const;

    std::string dir_;
    std::uint64_t maxBytes_;

    /** Approximate resident bytes; re-synced by each compaction.
     *  Signed so concurrent add/subtract races can transiently dip
     *  below zero instead of wrapping. */
    std::atomic<std::int64_t> approxBytes_{0};

    /** Serializes compactions within this process. */
    std::mutex compactMutex_;

    /** Distinguishes concurrent stores' temp files (with the pid
     *  and this-pointer; see store()). */
    std::atomic<std::uint64_t> tempSeq_{0};

    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> stores_{0};
    std::atomic<std::uint64_t> corruptEvicted_{0};
    std::atomic<std::uint64_t> compacted_{0};
};

} // namespace gpsched

#endif // GPSCHED_ENGINE_DISK_CACHE_HH
