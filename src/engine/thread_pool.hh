/**
 * @file
 * Fixed-size worker pool with a FIFO task queue, the execution
 * substrate of the batch compilation engine. Tasks are plain
 * callables; completion is observed with wait(), which blocks until
 * every submitted task has finished. A pool constructed with zero
 * threads runs tasks inline on the submitting thread, so serial
 * paths (jobs=1) pay no thread or queue overhead and stay trivially
 * deterministic.
 *
 * Exception safety: a throwing task never terminates the process
 * and never wedges the pool. In both threaded and inline modes the
 * task runs under a catch-all, the task is always accounted finished
 * (unfinished_ cannot leak, so a later wait() cannot deadlock), and
 * the *first* captured exception is rethrown from the next wait();
 * later ones are dropped. The destructor discards any captured
 * exception (it cannot throw). The engine keeps per-loop failures
 * out of this channel entirely (engine/engine.hh converts them to
 * CompileResult diagnostics); only unexpected escapes reach it.
 *
 * Telemetry: an optional PoolTelemetry (constructor-injected, so
 * there is no attach-after-start race) gives the pool queue-depth /
 * task-wait / task-run metrics and per-worker utilization counters,
 * plus Chrome async "queue-wait" spans. With the default empty
 * telemetry the pool behaves exactly as before — no timestamps are
 * taken.
 */

#ifndef GPSCHED_ENGINE_THREAD_POOL_HH
#define GPSCHED_ENGINE_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gpsched
{

class MetricRegistry;
class TraceSink;

/** Optional observation hooks for a ThreadPool (both may be null). */
struct PoolTelemetry
{
    MetricRegistry *metrics = nullptr;
    TraceSink *trace = nullptr;
    std::uint32_t pid = 0; ///< trace pid of the owning engine

    bool enabled() const
    {
        return metrics != nullptr || trace != nullptr;
    }
};

/** FIFO thread pool; destruction drains the queue and joins. */
class ThreadPool
{
  public:
    /**
     * Spawns @p num_threads workers. 0 selects inline execution:
     * submit() runs the task on the calling thread before returning.
     */
    explicit ThreadPool(int num_threads,
                        PoolTelemetry telemetry = PoolTelemetry{});

    /** Waits for outstanding tasks, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueues @p task (or runs it inline for a 0-thread pool). */
    void submit(std::function<void()> task);

    /**
     * Blocks until every submitted task has completed, then rethrows
     * the first exception any task threw since the last wait() (the
     * pool itself stays usable for further batches).
     */
    void wait();

    /** Worker count (0 for an inline pool). */
    int numThreads() const
    {
        return static_cast<int>(workers_.size());
    }

    /**
     * Threads the hardware reports, never less than 1. The engine's
     * default job count.
     */
    static int hardwareConcurrency();

  private:
    /** One queue entry; timestamps only taken when telemetry is on. */
    struct Task
    {
        std::function<void()> fn;
        std::uint64_t enqueueNanos = 0;
    };

    void workerLoop(int workerIndex);

    /**
     * Runs @p task under the catch-all and marks it finished.
     * @p workerIndex is -1 for inline execution.
     */
    void runTask(Task task, int workerIndex);

    std::vector<std::thread> workers_;
    std::deque<Task> queue_;
    mutable std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    std::size_t unfinished_ = 0; ///< queued + currently running
    bool stopping_ = false;

    PoolTelemetry telemetry_;

    /** First exception a task threw since the last wait(). */
    std::exception_ptr firstError_;
};

} // namespace gpsched

#endif // GPSCHED_ENGINE_THREAD_POOL_HH
