#include "engine/result_cache.hh"

#include "support/logging.hh"

namespace gpsched
{

double
CacheStats::hitRate() const
{
    std::uint64_t lookups = hits + misses;
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) /
                     static_cast<double>(lookups);
}

ResultCache::ResultCache(std::size_t capacity, std::size_t num_shards)
{
    GPSCHED_ASSERT(capacity >= 1, "cache capacity must be >= 1");
    GPSCHED_ASSERT(num_shards >= 1, "cache needs >= 1 shard");
    if (num_shards > capacity)
        num_shards = capacity;
    capacityPerShard_ = (capacity + num_shards - 1) / num_shards;
    shards_.reserve(num_shards);
    for (std::size_t i = 0; i < num_shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

ResultCache::Shard &
ResultCache::shardFor(const LoopKey &key)
{
    return *shards_[key.digest % shards_.size()];
}

bool
ResultCache::lookup(const LoopKey &key, CompiledLoop &out)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        ++shard.stats.misses;
        return false;
    }
    ++shard.stats.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    out = it->second->value;
    return true;
}

void
ResultCache::insert(const LoopKey &key, const CompiledLoop &value)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        it->second->value = value;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    if (shard.lru.size() >= capacityPerShard_) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        ++shard.stats.evictions;
    }
    shard.lru.push_front(Entry{key, value});
    shard.index.emplace(key, shard.lru.begin());
    ++shard.stats.insertions;
}

void
ResultCache::clear()
{
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->lru.clear();
        shard->index.clear();
    }
}

std::size_t
ResultCache::size() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->lru.size();
    }
    return total;
}

CacheStats
ResultCache::stats() const
{
    CacheStats total;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total.hits += shard->stats.hits;
        total.misses += shard->stats.misses;
        total.insertions += shard->stats.insertions;
        total.evictions += shard->stats.evictions;
    }
    return total;
}

} // namespace gpsched
