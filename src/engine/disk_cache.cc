#include "engine/disk_cache.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include <unistd.h>

#include "serialize/record.hh"
#include "support/logging.hh"

namespace fs = std::filesystem;

namespace gpsched
{

double
DiskCacheStats::hitRate() const
{
    const std::uint64_t lookups = hits + misses;
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) /
                     static_cast<double>(lookups);
}

namespace
{

constexpr const char *recordExtension = ".gpc";
constexpr const char *tempPrefix = ".tmp-";

std::string
hexDigest(std::uint64_t digest, int digits)
{
    static const char table[] = "0123456789abcdef";
    std::string out(digits, '0');
    for (int i = digits - 1; i >= 0; --i) {
        out[i] = table[digest & 0xf];
        digest >>= 4;
    }
    return out;
}

/** Reads a whole file; false when it cannot be opened or read. */
bool
readFile(const fs::path &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad())
        return false;
    out = buffer.str();
    return true;
}

/** One record found by a store walk. */
struct WalkEntry
{
    fs::path path;
    std::uint64_t size = 0;
    fs::file_time_type mtime;
};

/**
 * Collects every record (and, separately, leftover temp files) under
 * @p root. Filesystem races with concurrent engines are expected;
 * every stat uses the error_code overloads and skips on failure.
 */
void
walkStore(const fs::path &root, std::vector<WalkEntry> &records,
          std::vector<fs::path> &temps)
{
    std::error_code ec;
    for (const fs::directory_entry &shard :
         fs::directory_iterator(root, ec)) {
        if (!shard.is_directory(ec))
            continue;
        std::error_code shardEc;
        for (const fs::directory_entry &entry :
             fs::directory_iterator(shard.path(), shardEc)) {
            const std::string name = entry.path().filename().string();
            if (name.rfind(tempPrefix, 0) == 0) {
                temps.push_back(entry.path());
                continue;
            }
            if (entry.path().extension() != recordExtension)
                continue;
            std::error_code statEc;
            WalkEntry record;
            record.path = entry.path();
            record.size = entry.file_size(statEc);
            if (statEc)
                continue;
            record.mtime = entry.last_write_time(statEc);
            if (statEc)
                continue;
            records.push_back(std::move(record));
        }
    }
}

} // namespace

DiskCache::DiskCache(std::string dir, std::uint64_t max_bytes)
    : dir_(std::move(dir)), maxBytes_(max_bytes)
{
    GPSCHED_ASSERT(!dir_.empty(), "disk cache without a directory");
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
        GPSCHED_FATAL("cannot create cache directory '", dir_,
                      "': ", ec.message());
    }
    // Probe writability now: a cache that cannot store is a user
    // error worth a diagnostic at startup, not a silent no-op.
    const fs::path probe =
        fs::path(dir_) / (std::string(tempPrefix) + "probe");
    {
        std::ofstream out(probe, std::ios::binary);
        if (!out) {
            GPSCHED_FATAL("cache directory '", dir_,
                          "' is not writable");
        }
    }
    fs::remove(probe, ec);

    std::vector<WalkEntry> records;
    std::vector<fs::path> temps;
    walkStore(dir_, records, temps);
    std::uint64_t total = 0;
    for (const WalkEntry &record : records)
        total += record.size;
    approxBytes_.store(static_cast<std::int64_t>(total),
                       std::memory_order_relaxed);
}

std::string
DiskCache::shardDir(const LoopKey &key) const
{
    return (fs::path(dir_) / hexDigest(key.digest >> 56, 2))
        .string();
}

std::string
DiskCache::recordPath(const LoopKey &key) const
{
    return (fs::path(shardDir(key)) /
            (hexDigest(key.digest, 16) + recordExtension))
        .string();
}

bool
DiskCache::lookup(const LoopKey &key, CompiledLoop &out)
{
    const fs::path path = recordPath(key);
    std::string bytes;
    if (!readFile(path, bytes)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }

    LoopKey storedKey;
    CompiledLoop storedValue;
    if (!decodeCacheRecord(bytes, storedKey, storedValue)) {
        // Malformed, truncated or version-mismatched: evict so the
        // slot is rewritten with a fresh record on the next store.
        std::error_code ec;
        fs::remove(path, ec);
        if (!ec) {
            approxBytes_.fetch_sub(
                static_cast<std::int64_t>(bytes.size()),
                std::memory_order_relaxed);
        }
        corruptEvicted_.fetch_add(1, std::memory_order_relaxed);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (storedKey.canonical != key.canonical) {
        // A full-digest collision: the record is valid, it is just
        // someone else's. Leave it in place.
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }

    // Touch for LRU-by-mtime compaction.
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);

    out = std::move(storedValue);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
DiskCache::store(const LoopKey &key, const CompiledLoop &value)
{
    const std::string record = encodeCacheRecord(key, value);
    const fs::path shard = shardDir(key);
    const fs::path path = recordPath(key);

    std::error_code ec;
    fs::create_directories(shard, ec);
    if (ec)
        return;

    // Unique temp name per (process, cache object, store): crashed
    // writers leave only temp files behind, never partial records,
    // and concurrent processes sharing one directory can never open
    // the same temp file.
    const std::uint64_t seq =
        tempSeq_.fetch_add(1, std::memory_order_relaxed);
    const fs::path temp =
        shard / (std::string(tempPrefix) +
                 std::to_string(::getpid()) + "-" +
                 hexDigest(reinterpret_cast<std::uintptr_t>(this),
                           16) +
                 "-" + std::to_string(seq));
    {
        std::ofstream out(temp, std::ios::binary);
        if (!out)
            return;
        out.write(record.data(),
                  static_cast<std::streamsize>(record.size()));
        if (!out) {
            out.close();
            fs::remove(temp, ec);
            return;
        }
    }

    std::uint64_t replaced = 0;
    const std::uint64_t oldSize = fs::file_size(path, ec);
    if (!ec)
        replaced = oldSize;

    // rename(2) is atomic within a filesystem: readers see either
    // the old complete record or the new complete record.
    fs::rename(temp, path, ec);
    if (ec) {
        fs::remove(temp, ec);
        return;
    }
    stores_.fetch_add(1, std::memory_order_relaxed);

    const std::int64_t delta =
        static_cast<std::int64_t>(record.size()) -
        static_cast<std::int64_t>(replaced);
    const std::int64_t approx =
        approxBytes_.fetch_add(delta, std::memory_order_relaxed) +
        delta;
    if (maxBytes_ > 0 &&
        approx > static_cast<std::int64_t>(maxBytes_))
        compact();
}

void
DiskCache::compact()
{
    std::lock_guard<std::mutex> lock(compactMutex_);

    std::vector<WalkEntry> records;
    std::vector<fs::path> temps;
    walkStore(dir_, records, temps);

    // Reap temp files abandoned by crashed writers. Anything older
    // than an hour cannot belong to an in-flight store.
    const auto now = fs::file_time_type::clock::now();
    for (const fs::path &temp : temps) {
        std::error_code ec;
        const auto mtime = fs::last_write_time(temp, ec);
        if (!ec && now - mtime > std::chrono::hours(1))
            fs::remove(temp, ec);
    }

    std::uint64_t total = 0;
    for (const WalkEntry &record : records)
        total += record.size;

    if (maxBytes_ > 0 && total > maxBytes_) {
        std::sort(records.begin(), records.end(),
                  [](const WalkEntry &a, const WalkEntry &b) {
                      if (a.mtime != b.mtime)
                          return a.mtime < b.mtime;
                      return a.path < b.path;
                  });
        for (const WalkEntry &record : records) {
            if (total <= maxBytes_)
                break;
            std::error_code ec;
            fs::remove(record.path, ec);
            if (ec)
                continue;
            total -= std::min(record.size, total);
            compacted_.fetch_add(1, std::memory_order_relaxed);
        }
    }
    approxBytes_.store(static_cast<std::int64_t>(total),
                       std::memory_order_relaxed);
}

std::uint64_t
DiskCache::residentBytes() const
{
    std::vector<WalkEntry> records;
    std::vector<fs::path> temps;
    walkStore(dir_, records, temps);
    std::uint64_t total = 0;
    for (const WalkEntry &record : records)
        total += record.size;
    return total;
}

DiskCacheStats
DiskCache::stats() const
{
    DiskCacheStats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    stats.stores = stores_.load(std::memory_order_relaxed);
    stats.corruptEvicted =
        corruptEvicted_.load(std::memory_order_relaxed);
    stats.compacted = compacted_.load(std::memory_order_relaxed);
    return stats;
}

} // namespace gpsched
