#include "engine/loop_key.hh"

#include <cstring>
#include <type_traits>

namespace gpsched
{

namespace
{

/**
 * Compact canonical encoder. Integers are rendered in decimal with a
 * one-character tag and a separator, so no two distinct field
 * sequences can collide; doubles are encoded via their IEEE-754 bit
 * pattern to stay exact.
 */
class Encoder
{
  public:
    template <typename Int>
    Encoder &
    field(char tag, Int value,
          std::enable_if_t<std::is_integral_v<Int>> * = nullptr)
    {
        out_ += tag;
        out_ += std::to_string(value);
        out_ += ';';
        return *this;
    }

    Encoder &
    field(char tag, double value)
    {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(value),
                      "double is not 64-bit");
        std::memcpy(&bits, &value, sizeof(bits));
        out_ += tag;
        out_ += std::to_string(bits);
        out_ += ';';
        return *this;
    }

    std::string
    take()
    {
        return std::move(out_);
    }

  private:
    std::string out_;
};

void
encodeDdg(Encoder &enc, const Ddg &ddg)
{
    enc.field('n', ddg.numNodes());
    enc.field('t', ddg.tripCount());
    for (NodeId v = 0; v < ddg.numNodes(); ++v)
        enc.field('o', static_cast<int>(ddg.node(v).opcode));
    enc.field('e', ddg.numEdges());
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        const DdgEdge &edge = ddg.edge(e);
        enc.field('s', edge.src);
        enc.field('d', edge.dst);
        enc.field('l', edge.latency);
        enc.field('i', edge.distance);
        enc.field('k', static_cast<int>(edge.kind));
    }
}

void
encodeMachine(Encoder &enc, const MachineConfig &machine)
{
    // Full per-cluster encoding: machines differing in a single
    // cluster's FU mix or register file, or in any bus class, must
    // never alias. Cluster display names are excluded (they do not
    // affect scheduling), matching the loop-name exclusion policy.
    enc.field('C', machine.numClusters());
    for (int c = 0; c < machine.numClusters(); ++c) {
        for (int k = 0; k < numFuClasses; ++k) {
            enc.field('F',
                      machine.fuInCluster(c, static_cast<FuClass>(k)));
        }
        enc.field('R', machine.regsInCluster(c));
    }
    enc.field('B', machine.numBusClasses());
    for (int i = 0; i < machine.numBusClasses(); ++i) {
        enc.field('N', machine.busClass(i).count);
        enc.field('L', machine.busClass(i).latency);
    }
    const LatencyTable &lat = machine.latencies();
    for (int op = 0; op < numOpcodes; ++op) {
        const OpTiming &t = lat.timing(static_cast<Opcode>(op));
        enc.field('a', t.latency);
        enc.field('u', t.occupancy);
    }
}

void
encodeOptions(Encoder &enc, SchedulerKind kind,
              const LoopCompilerOptions &options)
{
    enc.field('K', static_cast<int>(kind));
    enc.field('r', static_cast<int>(options.repartition));
    enc.field('T', static_cast<int>(options.transfer.costModel));
    enc.field('z', options.transfer.slackMargin);
    enc.field('f', options.fomThreshold);
    enc.field('m', options.maxIiSlack);
    enc.field('h', options.maxIiHardCap);

    const GpPartitionerOptions &part = options.partitioner;
    enc.field('M', static_cast<int>(part.matching));
    enc.field('A', static_cast<int>(part.assignment));
    enc.field('w', part.edgeWeights.useDelayTerm ? 1 : 0);
    enc.field('W', part.edgeWeights.useSlackTerm ? 1 : 0);
    enc.field('b', part.refine.balancePass ? 1 : 0);
    enc.field('E', part.refine.edgeImpactPass ? 1 : 0);
    enc.field('g', part.refine.registerAware ? 1 : 0);
    enc.field('p', part.refine.prescanTopK);
    enc.field('c', part.refine.maxChangesPerLevel);
    enc.field('x', part.refineEnabled ? 1 : 0);
    enc.field('G', part.registerAware ? 1 : 0);
    enc.field('S', static_cast<std::int64_t>(part.seed));
}

} // namespace

std::uint64_t
fnv1a64(const char *data, std::size_t size)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= static_cast<unsigned char>(data[i]);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::uint64_t
fnv1a64(const std::string &bytes)
{
    return fnv1a64(bytes.data(), bytes.size());
}

LoopKey
makeLoopKey(const Ddg &ddg, const MachineConfig &machine,
            SchedulerKind kind, const LoopCompilerOptions &options)
{
    Encoder enc;
    encodeDdg(enc, ddg);
    encodeMachine(enc, machine);
    encodeOptions(enc, kind, options);

    LoopKey key;
    key.canonical = enc.take();
    key.digest = fnv1a64(key.canonical);
    return key;
}

} // namespace gpsched
