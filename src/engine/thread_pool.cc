#include "engine/thread_pool.hh"

#include "support/logging.hh"

namespace gpsched
{

ThreadPool::ThreadPool(int num_threads)
{
    GPSCHED_ASSERT(num_threads >= 0,
                   "negative thread count ", num_threads);
    workers_.reserve(static_cast<std::size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        allDone_.wait(lock, [this] { return unfinished_ == 0; });
        stopping_ = true;
    }
    workReady_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (workers_.empty()) {
        task();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        GPSCHED_ASSERT(!stopping_, "submit on a stopping pool");
        queue_.push_back(std::move(task));
        ++unfinished_;
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    if (workers_.empty())
        return;
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return unfinished_ == 0; });
}

int
ThreadPool::hardwareConcurrency()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --unfinished_;
            if (unfinished_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace gpsched
