#include "engine/thread_pool.hh"

#include <string>
#include <utility>

#include "support/logging.hh"
#include "support/telemetry.hh"
#include "support/timer.hh"
#include "support/trace.hh"

namespace gpsched
{

ThreadPool::ThreadPool(int num_threads, PoolTelemetry telemetry)
    : telemetry_(telemetry)
{
    GPSCHED_ASSERT(num_threads >= 0,
                   "negative thread count ", num_threads);
    workers_.reserve(static_cast<std::size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        allDone_.wait(lock, [this] { return unfinished_ == 0; });
        stopping_ = true;
        // A destructor cannot rethrow; a still-captured task
        // exception is dropped here.
        firstError_ = nullptr;
    }
    workReady_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::runTask(Task task, int workerIndex)
{
    std::uint64_t startNanos = 0;
    if (telemetry_.enabled()) {
        startNanos = traceNowNanos();
        if (task.enqueueNanos != 0) {
            std::uint64_t waitNanos = startNanos >= task.enqueueNanos
                                          ? startNanos - task.enqueueNanos
                                          : 0;
            if (telemetry_.metrics != nullptr)
                telemetry_.metrics->histogram("pool.taskWaitMicros")
                    .add(static_cast<double>(waitNanos) * 1e-3);
            // Async span, not 'X': the wait interval overlaps
            // whatever this worker thread was running.
            if (telemetry_.trace != nullptr)
                telemetry_.trace->asyncSpan(
                    "queue-wait", "queue", telemetry_.pid,
                    traceThreadId(), traceNextPairId(),
                    task.enqueueNanos, startNanos);
        }
    }

    // The catch-all is the pool's fault barrier: a throwing task
    // must neither std::terminate a worker nor skip the unfinished_
    // decrement below (which would deadlock every later wait()).
    try {
        task.fn();
    } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!firstError_)
            firstError_ = std::current_exception();
    }

    if (telemetry_.metrics != nullptr) {
        std::uint64_t runNanos = traceNowNanos() - startNanos;
        telemetry_.metrics->histogram("pool.taskRunMicros")
            .add(static_cast<double>(runNanos) * 1e-3);
        if (workerIndex >= 0) {
            std::string prefix =
                "pool.worker." + std::to_string(workerIndex);
            telemetry_.metrics->counter(prefix + ".tasks").add(1);
            telemetry_.metrics->counter(prefix + ".busyMicros")
                .add(runNanos / 1000);
        }
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        --unfinished_;
        if (unfinished_ == 0)
            allDone_.notify_all();
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    Task entry;
    entry.fn = std::move(task);
    if (workers_.empty()) {
        // Inline mode counts the task like a worker would, so a
        // throw mid-task still balances the books for wait().
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++unfinished_;
        }
        runTask(std::move(entry), -1);
        return;
    }
    if (telemetry_.enabled())
        entry.enqueueNanos = traceNowNanos();
    std::size_t depth = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        GPSCHED_ASSERT(!stopping_, "submit on a stopping pool");
        queue_.push_back(std::move(entry));
        ++unfinished_;
        depth = queue_.size();
    }
    if (telemetry_.metrics != nullptr)
        telemetry_.metrics->gauge("pool.queueDepth")
            .set(static_cast<std::int64_t>(depth));
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        allDone_.wait(lock, [this] { return unfinished_ == 0; });
        error = std::exchange(firstError_, nullptr);
    }
    if (error)
        std::rethrow_exception(error);
}

int
ThreadPool::hardwareConcurrency()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

void
ThreadPool::workerLoop(int workerIndex)
{
    if (telemetry_.trace != nullptr)
        telemetry_.trace->metadata(
            "thread_name", telemetry_.pid, traceThreadId(),
            "worker-" + std::to_string(workerIndex));
    for (;;) {
        Task task;
        std::size_t depth = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            depth = queue_.size();
        }
        if (telemetry_.metrics != nullptr)
            telemetry_.metrics->gauge("pool.queueDepth")
                .set(static_cast<std::int64_t>(depth));
        runTask(std::move(task), workerIndex);
    }
}

} // namespace gpsched
