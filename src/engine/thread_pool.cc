#include "engine/thread_pool.hh"

#include <utility>

#include "support/logging.hh"

namespace gpsched
{

ThreadPool::ThreadPool(int num_threads)
{
    GPSCHED_ASSERT(num_threads >= 0,
                   "negative thread count ", num_threads);
    workers_.reserve(static_cast<std::size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        allDone_.wait(lock, [this] { return unfinished_ == 0; });
        stopping_ = true;
        // A destructor cannot rethrow; a still-captured task
        // exception is dropped here.
        firstError_ = nullptr;
    }
    workReady_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::runTask(std::function<void()> task)
{
    // The catch-all is the pool's fault barrier: a throwing task
    // must neither std::terminate a worker nor skip the unfinished_
    // decrement below (which would deadlock every later wait()).
    try {
        task();
    } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!firstError_)
            firstError_ = std::current_exception();
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --unfinished_;
        if (unfinished_ == 0)
            allDone_.notify_all();
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (workers_.empty()) {
        // Inline mode counts the task like a worker would, so a
        // throw mid-task still balances the books for wait().
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++unfinished_;
        }
        runTask(std::move(task));
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        GPSCHED_ASSERT(!stopping_, "submit on a stopping pool");
        queue_.push_back(std::move(task));
        ++unfinished_;
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        allDone_.wait(lock, [this] { return unfinished_ == 0; });
        error = std::exchange(firstError_, nullptr);
    }
    if (error)
        std::rethrow_exception(error);
}

int
ThreadPool::hardwareConcurrency()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        runTask(std::move(task));
    }
}

} // namespace gpsched
