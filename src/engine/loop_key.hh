/**
 * @file
 * Canonical fingerprint of one compilation job: everything that can
 * influence the schedule of a loop — DDG structure (opcodes, edges,
 * trip count), machine configuration (clusters, functional units,
 * registers, buses, the whole latency table), scheduler kind, and
 * every LoopCompilerOptions knob — encoded into one canonical string.
 *
 * Loop and node *names* are deliberately excluded: two structurally
 * identical loops compile to identical schedules, and excluding names
 * is what lets the result cache dedupe repeated loop shapes across
 * programs, schemes and sweeps. Equality compares the canonical
 * encoding byte for byte, so a cache keyed on LoopKey can never
 * return a wrong result due to a hash collision; the 64-bit digest
 * exists for shard selection and hash-table bucketing only.
 */

#ifndef GPSCHED_ENGINE_LOOP_KEY_HH
#define GPSCHED_ENGINE_LOOP_KEY_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "core/gp_scheduler.hh"
#include "graph/ddg.hh"
#include "machine/machine.hh"

namespace gpsched
{

/** Value key identifying one (loop, machine, scheme, options) job. */
struct LoopKey
{
    /** Exact canonical encoding; equality of jobs iff equality here. */
    std::string canonical;

    /** FNV-1a digest of @c canonical (sharding / bucketing). */
    std::uint64_t digest = 0;

    bool operator==(const LoopKey &other) const
    {
        return digest == other.digest && canonical == other.canonical;
    }
    bool operator!=(const LoopKey &other) const
    {
        return !(*this == other);
    }
};

/** Builds the fingerprint of one compilation job. */
LoopKey makeLoopKey(const Ddg &ddg, const MachineConfig &machine,
                    SchedulerKind kind,
                    const LoopCompilerOptions &options);

/** FNV-1a over @p size bytes at @p data. */
std::uint64_t fnv1a64(const char *data, std::size_t size);

/** FNV-1a over @p bytes (exposed for tests). */
std::uint64_t fnv1a64(const std::string &bytes);

} // namespace gpsched

namespace std
{
template <> struct hash<gpsched::LoopKey>
{
    std::size_t operator()(const gpsched::LoopKey &key) const
    {
        return static_cast<std::size_t>(key.digest);
    }
};
} // namespace std

#endif // GPSCHED_ENGINE_LOOP_KEY_HH
