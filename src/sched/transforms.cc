#include "sched/transforms.hh"

#include <algorithm>
#include <climits>
#include <vector>

#include "support/logging.hh"

namespace gpsched
{

namespace
{

/** Valid home-register read windows of a (possibly spilled) value. */
std::vector<std::pair<int, int>>
validReadRanges(const PartialSchedule &ps, bool spilled, int spill_st,
                int reload, int lo, int hi)
{
    (void)ps;
    std::vector<std::pair<int, int>> ranges;
    if (lo > hi)
        return ranges;
    if (!spilled) {
        ranges.push_back({lo, hi});
        return ranges;
    }
    if (lo <= std::min(hi, spill_st))
        ranges.push_back({lo, std::min(hi, spill_st)});
    if (std::max(lo, reload) <= hi)
        ranges.push_back({std::max(lo, reload), hi});
    return ranges;
}

} // namespace

bool
TransformEngine::trySpill(PartialSchedule &ps, int cluster)
{
    const LatencyTable &lat = ps.machine_.latencies();
    const int lat_st = lat.latency(Opcode::SpillSt);
    const int occ_st = lat.occupancy(Opcode::SpillSt);
    const int lat_ld = lat.latency(Opcode::SpillLd);
    const int occ_ld = lat.occupancy(Opcode::SpillLd);
    ModuloReservationTable &mem = ps.fu(cluster, FuClass::Mem);

    struct Candidate
    {
        NodeId p = invalidNode;
        int st = 0;
        int ld = 0;
        int saving = 0;
    };
    Candidate best;
    for (NodeId p = 0; p < ps.ddg_.numNodes(); ++p) {
        const auto &pl = ps.placed_[p];
        if (!pl.scheduled || pl.cluster != cluster)
            continue;
        if (!definesValue(ps.ddg_.node(p).opcode))
            continue;
        const auto &vs = ps.values_[p];
        if (vs.spilled)
            continue;
        auto ev_it = vs.events.find(cluster);
        if (ev_it == vs.events.end() || ev_it->second.empty())
            continue;
        std::vector<int> points{ps.writeCycleOf(p)};
        points.insert(points.end(), ev_it->second.begin(),
                      ev_it->second.end());
        for (std::size_t i = 0; i + 1 < points.size(); ++i) {
            int g0 = points[i];
            int g1 = points[i + 1];
            if (g1 - g0 <= lat_st + lat_ld)
                continue;
            int st = PartialSchedule::findSlot(
                mem, g0, g1 - lat_ld - lat_st, occ_st, {}, INT_MIN, 0);
            if (st == INT_MIN)
                continue;
            int ld = PartialSchedule::findSlot(
                mem, g1 - lat_ld, st + lat_st, occ_ld, {{st, occ_st}},
                INT_MIN, 0);
            if (ld == INT_MIN)
                continue;
            int saving = ld + lat_ld - st - 1;
            if (saving > best.saving)
                best = {p, st, ld, saving};
        }
    }
    if (best.p == invalidNode)
        return false;

    FigureOfMerit before = ps.globalFom();
    auto &vs = ps.values_[best.p];
    std::vector<LiveSegment> old_segs;
    auto reg_it = vs.registered.find(cluster);
    if (reg_it != vs.registered.end())
        old_segs = reg_it->second;

    vs.spilled = true;
    vs.spillSt = best.st;
    vs.spillLd = best.ld;
    mem.reserve(best.st, occ_st);
    mem.reserve(best.ld, occ_ld);
    ps.overheadMemOps_[cluster] += occ_st + occ_ld;
    ps.overheadMemTotal_ += occ_st + occ_ld;
    ++ps.numSpills_;
    ps.setRegistered(best.p, cluster,
                     ps.currentSegments(best.p, cluster));

    if (FigureOfMerit::better(ps.globalFom(), before, 0.0))
        return true;

    ps.setRegistered(best.p, cluster, old_segs);
    mem.release(best.st, occ_st);
    mem.release(best.ld, occ_ld);
    ps.overheadMemOps_[cluster] -= occ_st + occ_ld;
    ps.overheadMemTotal_ -= occ_st + occ_ld;
    --ps.numSpills_;
    vs.spilled = false;
    return false;
}

bool
TransformEngine::tryUnspill(PartialSchedule &ps, int cluster)
{
    const LatencyTable &lat = ps.machine_.latencies();
    const int occ_st = lat.occupancy(Opcode::SpillSt);
    const int occ_ld = lat.occupancy(Opcode::SpillLd);
    ModuloReservationTable &mem = ps.fu(cluster, FuClass::Mem);

    for (NodeId p = 0; p < ps.ddg_.numNodes(); ++p) {
        const auto &pl = ps.placed_[p];
        if (!pl.scheduled || pl.cluster != cluster)
            continue;
        auto &vs = ps.values_[p];
        if (!vs.spilled)
            continue;
        static const std::multiset<int> no_events;
        auto ev_it = vs.events.find(cluster);
        const std::multiset<int> &events =
            ev_it == vs.events.end() ? no_events : ev_it->second;
        std::vector<LiveSegment> merged = ps.segmentsFromState(
            ps.writeCycleOf(p), events, true, 0, false, 0, 0);
        std::vector<LiveSegment> old_segs;
        auto reg_it = vs.registered.find(cluster);
        if (reg_it != vs.registered.end())
            old_segs = reg_it->second;
        if (!ps.regs_[cluster].fitsWithDiff(old_segs, merged))
            continue;

        FigureOfMerit before = ps.globalFom();
        int st = vs.spillSt, ld = vs.spillLd;
        mem.release(st, occ_st);
        mem.release(ld, occ_ld);
        ps.overheadMemOps_[cluster] -= occ_st + occ_ld;
        ps.overheadMemTotal_ -= occ_st + occ_ld;
        --ps.numSpills_;
        vs.spilled = false;
        ps.setRegistered(p, cluster, merged);

        if (FigureOfMerit::better(ps.globalFom(), before, 0.0))
            return true;

        ps.setRegistered(p, cluster, old_segs);
        vs.spilled = true;
        vs.spillSt = st;
        vs.spillLd = ld;
        mem.reserve(st, occ_st);
        mem.reserve(ld, occ_ld);
        ps.overheadMemOps_[cluster] += occ_st + occ_ld;
        ps.overheadMemTotal_ += occ_st + occ_ld;
        ++ps.numSpills_;
    }
    return false;
}

bool
TransformEngine::tryBusToMem(PartialSchedule &ps)
{
    const LatencyTable &lat = ps.machine_.latencies();
    const int lat_st = lat.latency(Opcode::CommSt);
    const int occ_st = lat.occupancy(Opcode::CommSt);
    const int lat_ld = lat.latency(Opcode::CommLd);
    const int occ_ld = lat.occupancy(Opcode::CommLd);

    for (NodeId p = 0; p < ps.ddg_.numNodes(); ++p) {
        if (!ps.placed_[p].scheduled)
            continue;
        auto &vs = ps.values_[p];
        const int home = ps.placed_[p].cluster;
        for (auto &[dest, t] : vs.transfers) {
            if (!t.viaBus)
                continue;
            auto dev_it = vs.events.find(dest);
            if (dev_it == vs.events.end() || dev_it->second.empty())
                continue;
            int min_use = *dev_it->second.begin();
            int write = ps.writeCycleOf(p);
            int reload = vs.spillLd + lat.latency(Opcode::SpillLd);

            int st = INT_MIN, ld = INT_MIN;
            for (const auto &[lo, hi] :
                 validReadRanges(ps, vs.spilled, vs.spillSt, reload,
                                 write, min_use - lat_ld - lat_st)) {
                int cand_st = lo;
                while (cand_st <= hi) {
                    cand_st = PartialSchedule::findSlot(
                        ps.fu(home, FuClass::Mem), cand_st, hi, occ_st,
                        {}, INT_MIN, 0);
                    if (cand_st == INT_MIN)
                        break;
                    int cand_ld = PartialSchedule::findSlot(
                        ps.fu(dest, FuClass::Mem), min_use - lat_ld,
                        cand_st + lat_st, occ_ld, {}, INT_MIN, 0);
                    if (cand_ld != INT_MIN) {
                        st = cand_st;
                        ld = cand_ld;
                        break;
                    }
                    ++cand_st;
                }
                if (st != INT_MIN)
                    break;
            }
            if (st == INT_MIN)
                continue;

            // Register feasibility with the moved read and arrival.
            std::multiset<int> home_ev = vs.events[home];
            auto pos = home_ev.find(t.readCycle);
            GPSCHED_ASSERT(pos != home_ev.end(),
                           "transfer read missing from home events");
            home_ev.erase(pos);
            home_ev.insert(st);
            std::vector<LiveSegment> home_after =
                ps.segmentsFromState(write, home_ev, true, 0,
                                     vs.spilled, vs.spillSt,
                                     vs.spillLd);
            std::vector<LiveSegment> dest_after = ps.segmentsFromState(
                write, dev_it->second, false, ld + lat_ld, false, 0, 0);
            std::vector<LiveSegment> home_before =
                vs.registered.count(home) ? vs.registered[home]
                                          : std::vector<LiveSegment>{};
            std::vector<LiveSegment> dest_before =
                vs.registered.count(dest) ? vs.registered[dest]
                                          : std::vector<LiveSegment>{};
            if (home == dest) {
                GPSCHED_PANIC("transfer with home == dest");
            }
            if (!ps.regs_[home].fitsWithDiff(home_before, home_after))
                continue;
            if (!ps.regs_[dest].fitsWithDiff(dest_before, dest_after))
                continue;

            FigureOfMerit before = ps.globalFom();
            Transfer old = t;
            ps.releaseTransfer(old);
            Transfer repl{p, dest, false, 0, 0, st, ld, st,
                          ld + lat_ld};
            t = repl;
            ps.reserveTransfer(repl);
            auto &events = vs.events[home];
            auto epos = events.find(old.readCycle);
            GPSCHED_ASSERT(epos != events.end(), "stale read event");
            events.erase(epos);
            events.insert(st);
            ps.setRegistered(p, home, home_after);
            ps.setRegistered(p, dest, dest_after);

            if (FigureOfMerit::better(ps.globalFom(), before, 0.0))
                return true;

            ps.setRegistered(p, home, home_before);
            ps.setRegistered(p, dest, dest_before);
            auto rpos = vs.events[home].find(st);
            vs.events[home].erase(rpos);
            vs.events[home].insert(old.readCycle);
            ps.releaseTransfer(repl);
            t = old;
            ps.reserveTransfer(old);
        }
    }
    return false;
}

bool
TransformEngine::tryMemToBus(PartialSchedule &ps)
{
    if (ps.machine_.numBuses() == 0)
        return false;
    const LatencyTable &lat = ps.machine_.latencies();

    for (NodeId p = 0; p < ps.ddg_.numNodes(); ++p) {
        if (!ps.placed_[p].scheduled)
            continue;
        auto &vs = ps.values_[p];
        const int home = ps.placed_[p].cluster;
        for (auto &[dest, t] : vs.transfers) {
            if (t.viaBus)
                continue;
            auto dev_it = vs.events.find(dest);
            if (dev_it == vs.events.end() || dev_it->second.empty())
                continue;
            int min_use = *dev_it->second.begin();
            int write = ps.writeCycleOf(p);
            int reload = vs.spillLd + lat.latency(Opcode::SpillLd);

            // Fastest class first (classes sort by ascending latency).
            int bus_class = -1;
            int bus_cycle = INT_MIN;
            for (int bc = 0; bc < ps.machine_.numBusClasses() &&
                             bus_cycle == INT_MIN;
                 ++bc) {
                const int cls_lat = ps.machine_.busLatencyOf(bc);
                for (const auto &[lo, hi] :
                     validReadRanges(ps, vs.spilled, vs.spillSt,
                                     reload, write,
                                     min_use - cls_lat)) {
                    bus_cycle = PartialSchedule::findSlot(
                        ps.busMrts_[bc], lo, hi, cls_lat, {}, INT_MIN,
                        0);
                    if (bus_cycle != INT_MIN) {
                        bus_class = bc;
                        break;
                    }
                }
            }
            if (bus_cycle == INT_MIN)
                continue;
            const int lat_bus = ps.machine_.busLatencyOf(bus_class);

            std::multiset<int> home_ev = vs.events[home];
            auto pos = home_ev.find(t.readCycle);
            GPSCHED_ASSERT(pos != home_ev.end(),
                           "transfer read missing from home events");
            home_ev.erase(pos);
            home_ev.insert(bus_cycle);
            std::vector<LiveSegment> home_after =
                ps.segmentsFromState(write, home_ev, true, 0,
                                     vs.spilled, vs.spillSt,
                                     vs.spillLd);
            std::vector<LiveSegment> dest_after = ps.segmentsFromState(
                write, dev_it->second, false, bus_cycle + lat_bus,
                false, 0, 0);
            std::vector<LiveSegment> home_before =
                vs.registered.count(home) ? vs.registered[home]
                                          : std::vector<LiveSegment>{};
            std::vector<LiveSegment> dest_before =
                vs.registered.count(dest) ? vs.registered[dest]
                                          : std::vector<LiveSegment>{};
            if (!ps.regs_[home].fitsWithDiff(home_before, home_after))
                continue;
            if (!ps.regs_[dest].fitsWithDiff(dest_before, dest_after))
                continue;

            FigureOfMerit before = ps.globalFom();
            Transfer old = t;
            ps.releaseTransfer(old);
            Transfer repl{p, dest, true, bus_class, bus_cycle, 0, 0,
                          bus_cycle, bus_cycle + lat_bus};
            t = repl;
            ps.reserveTransfer(repl);
            auto &events = vs.events[home];
            auto epos = events.find(old.readCycle);
            GPSCHED_ASSERT(epos != events.end(), "stale read event");
            events.erase(epos);
            events.insert(bus_cycle);
            ps.setRegistered(p, home, home_after);
            ps.setRegistered(p, dest, dest_after);

            if (FigureOfMerit::better(ps.globalFom(), before, 0.0))
                return true;

            ps.setRegistered(p, home, home_before);
            ps.setRegistered(p, dest, dest_before);
            auto rpos = vs.events[home].find(bus_cycle);
            vs.events[home].erase(rpos);
            vs.events[home].insert(old.readCycle);
            ps.releaseTransfer(repl);
            t = old;
            ps.reserveTransfer(old);
        }
    }
    return false;
}

int
TransformEngine::run(PartialSchedule &ps)
{
    const int num_clusters = ps.machine_.numClusters();
    int applied = 0;
    for (int round = 0; round < 32; ++round) {
        // Rank candidate transformations by the utilization of the
        // resource they relieve, most saturated first.
        struct Action
        {
            double saturation = 0.0;
            int kind = 0; // 0 spill, 1 bus->mem, 2 mem->bus, 3 unspill
            int cluster = 0;
        };
        std::vector<Action> actions;
        for (int c = 0; c < num_clusters; ++c) {
            double reg_sat = ps.regs_[c].numRegs() > 0
                                 ? 100.0 * ps.regs_[c].maxLive() /
                                       ps.regs_[c].numRegs()
                                 : 0.0;
            actions.push_back({reg_sat, 0, c});
        }
        if (ps.busTotalSlots() > 0) {
            double bus_sat = 100.0 * ps.busUsedSlots() /
                             ps.busTotalSlots();
            actions.push_back({bus_sat, 1, 0});
        }
        for (int c = 0; c < num_clusters; ++c) {
            const auto &mem = ps.fu(c, FuClass::Mem);
            double mem_sat =
                100.0 * mem.usedSlots() / mem.totalSlots();
            actions.push_back({mem_sat, 2, c});
            actions.push_back({mem_sat, 3, c});
        }
        std::stable_sort(actions.begin(), actions.end(),
                         [](const Action &a, const Action &b) {
                             return a.saturation > b.saturation;
                         });

        bool any = false;
        for (const Action &a : actions) {
            bool ok = false;
            switch (a.kind) {
              case 0:
                ok = trySpill(ps, a.cluster);
                break;
              case 1:
                ok = tryBusToMem(ps);
                break;
              case 2:
                ok = tryMemToBus(ps);
                break;
              case 3:
                ok = tryUnspill(ps, a.cluster);
                break;
            }
            if (ok) {
                ++applied;
                any = true;
                break;
            }
        }
        if (!any)
            break;
    }
    return applied;
}

// --- PartialSchedule forwarding ---------------------------------------

bool
PartialSchedule::trySpill(int cluster)
{
    return TransformEngine::trySpill(*this, cluster);
}

bool
PartialSchedule::tryUnspill(int cluster)
{
    return TransformEngine::tryUnspill(*this, cluster);
}

bool
PartialSchedule::tryBusToMem()
{
    return TransformEngine::tryBusToMem(*this);
}

bool
PartialSchedule::tryMemToBus()
{
    return TransformEngine::tryMemToBus(*this);
}

int
PartialSchedule::runTransformations()
{
    return TransformEngine::run(*this);
}

} // namespace gpsched
