/**
 * @file
 * Modulo reservation table: tracks occupancy of one resource pool
 * (the INT/FP/MEM units of one cluster, or one bus class's pool)
 * across the II kernel slots of a modulo schedule. Pool sizes come
 * from the (possibly heterogeneous) machine description: consumers
 * build one table per (cluster, FU class) and one per bus class.
 *
 * An operation issued at flat cycle t with occupancy c busies one
 * unit at kernel slots (t mod II) .. (t+c-1 mod II). Occupancy
 * counting per slot is the standard (slightly optimistic for
 * multi-cycle ops, exact for pipelined ones) modulo-scheduling
 * resource model. Flat cycles may be negative; slots use Euclidean
 * modulo.
 */

#ifndef GPSCHED_SCHED_MRT_HH
#define GPSCHED_SCHED_MRT_HH

#include <vector>

namespace gpsched
{

/** Euclidean modulo: result always in [0, m). */
inline int
wrapSlot(int cycle, int m)
{
    int r = cycle % m;
    return r < 0 ? r + m : r;
}

/** Reservation table for one resource pool at one II. */
class ModuloReservationTable
{
  public:
    /** @param num_units pool size; @param ii kernel length. */
    ModuloReservationTable(int num_units, int ii);

    /** True when @p occupancy slots starting at @p cycle fit. */
    bool canReserve(int cycle, int occupancy) const;

    /** Reserves; caller must have checked canReserve. */
    void reserve(int cycle, int occupancy);

    /** Releases a prior reservation. */
    void release(int cycle, int occupancy);

    /** Kernel length. */
    int ii() const { return ii_; }

    /** Pool size. */
    int numUnits() const { return numUnits_; }

    /** Busy unit-slots summed over the kernel. */
    int usedSlots() const { return used_; }

    /** Total unit-slots in the kernel (units * II). */
    int totalSlots() const { return numUnits_ * ii_; }

    /** totalSlots() - usedSlots(). */
    int freeSlots() const { return totalSlots() - used_; }

    /** Busy units at kernel slot (cycle mod II). */
    int busyAt(int cycle) const;

  private:
    int numUnits_;
    int ii_;
    int used_ = 0;
    std::vector<int> busy_;
};

} // namespace gpsched

#endif // GPSCHED_SCHED_MRT_HH
