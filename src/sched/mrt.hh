/**
 * @file
 * Modulo reservation table: tracks occupancy of one resource pool
 * (the INT/FP/MEM units of one cluster, or one bus class's pool)
 * across the II kernel slots of a modulo schedule. Pool sizes come
 * from the (possibly heterogeneous) machine description: consumers
 * build one table per (cluster, FU class) and one per bus class.
 *
 * An operation issued at flat cycle t with occupancy c busies one
 * unit at kernel slots (t mod II) .. (t+c-1 mod II). Occupancy
 * counting per slot is the standard (slightly optimistic for
 * multi-cycle ops, exact for pipelined ones) modulo-scheduling
 * resource model. Flat cycles may be negative; slots use Euclidean
 * modulo.
 *
 * Representation: word-packed multiplicity planes instead of a
 * per-slot counter array. Plane l is a bitset over the II kernel
 * slots (ceil(II/64) words) whose bit s is set iff slot s has more
 * than l busy units, so the planes are nested (plane 0 ⊇ plane 1 ⊇
 * ...) and the per-slot count is the number of planes covering the
 * slot. canReserve is a mask-AND against the top plane (a slot has
 * a free unit iff its top-plane bit is clear), reserve/release are
 * word-parallel carry walks across the planes, and firstFit scans
 * whole 64-slot words for a free start slot. Pool sizes of the
 * Table-1 machines are <= 8 and II rarely exceeds a few dozen, so
 * the whole table fits the inline word buffer and copying a table
 * (the findSlot probe) is a small memcpy instead of a heap
 * allocation.
 */

#ifndef GPSCHED_SCHED_MRT_HH
#define GPSCHED_SCHED_MRT_HH

#include <cstdint>
#include <vector>

namespace gpsched
{

class CompileArena;

/** Euclidean modulo: result always in [0, m). */
inline int
wrapSlot(int cycle, int m)
{
    int r = cycle % m;
    return r < 0 ? r + m : r;
}

/** Reservation table for one resource pool at one II. */
class ModuloReservationTable
{
  public:
    /**
     * @param num_units pool size; @param ii kernel length;
     * @param arena optional backing for tables too large for the
     *        inline buffer (per-compile arena; null = heap).
     */
    ModuloReservationTable(int num_units, int ii,
                           CompileArena *arena = nullptr);

    ModuloReservationTable(const ModuloReservationTable &other);
    ModuloReservationTable &
    operator=(const ModuloReservationTable &other);

    /** True when @p occupancy slots starting at @p cycle fit. */
    bool canReserve(int cycle, int occupancy) const;

    /** Reserves; panics (one pass, no pre-check) when it cannot. */
    void reserve(int cycle, int occupancy);

    /** Releases a prior reservation. */
    void release(int cycle, int occupancy);

    /**
     * First cycle c scanning @p from towards @p to (inclusive,
     * either direction) with canReserve(c, @p occupancy); INT_MIN
     * when none. Equivalent to the per-cycle canReserve scan but
     * word-accelerated: ascending scans test 64 start slots per
     * word op and skip fully-busy words outright.
     */
    int firstFit(int from, int to, int occupancy) const;

    /** Kernel length. */
    int ii() const { return ii_; }

    /** Pool size. */
    int numUnits() const { return numUnits_; }

    /** Busy unit-slots summed over the kernel. */
    int usedSlots() const { return used_; }

    /** Total unit-slots in the kernel (units * II). */
    int totalSlots() const { return numUnits_ * ii_; }

    /** totalSlots() - usedSlots(). */
    int freeSlots() const { return totalSlots() - used_; }

    /** Busy units at kernel slot (cycle mod II). */
    int busyAt(int cycle) const;

  private:
    /**
     * 128 inline bytes cover every pool the Table-1 presets and the
     * .machine corpus build (units * ceil(II/64) <= 16), keeping
     * probe copies allocation-free; larger tables spill to the
     * arena (or heap without one).
     */
    static constexpr int kInlineWords = 16;

    int numUnits_;
    int ii_;
    int used_ = 0;
    int words_; ///< 64-bit words per plane: ceil(ii / 64)

    std::uint64_t *planes_; ///< numUnits_ planes of words_ words
    std::uint64_t inline_[kInlineWords];
    std::vector<std::uint64_t> heap_; ///< overflow without an arena

    std::uint64_t *plane(int l) { return planes_ + l * words_; }
    const std::uint64_t *
    plane(int l) const
    {
        return planes_ + l * words_;
    }

    /** Points planes_ at storage for @p total words. */
    void attachStorage(int total, CompileArena *arena);

    /** Adds one busy unit to every slot in [s0, s0+len) mod II. */
    void incrementRange(int s0, int len);

    /** Removes one busy unit from every slot in [s0, s0+len) mod II. */
    void decrementRange(int s0, int len);

    /** True when plane @p l has no bit in [s0, s0+len) mod II. */
    bool rangeClear(int l, int s0, int len) const;

    /** True when plane @p l has no bit outside [s0, s0+len) mod II. */
    bool clearOutsideRange(int l, int s0, int len) const;
};

} // namespace gpsched

#endif // GPSCHED_SCHED_MRT_HH
