#include "sched/fom.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/logging.hh"

namespace gpsched
{

double
FigureOfMerit::sum() const
{
    const double *c = data();
    double total = 0.0;
    for (std::size_t i = 0; i < size_; ++i)
        total += c[i];
    return total;
}

double
FigureOfMerit::maxComponent() const
{
    const double *c = data();
    double best = 0.0;
    for (std::size_t i = 0; i < size_; ++i)
        best = std::max(best, c[i]);
    return best;
}

bool
FigureOfMerit::better(const FigureOfMerit &a, const FigureOfMerit &b,
                      double threshold)
{
    GPSCHED_ASSERT(a.size() == b.size(),
                   "figure-of-merit arity mismatch: ", a.size(),
                   " vs ", b.size());
    const std::size_t n = a.size();
    // Stack copies for the sort: better() runs once per candidate
    // cluster inside the scheduler's placement loop, and the figures
    // fit the inline buffer on every realistic machine.
    double sa_buf[kInline];
    double sb_buf[kInline];
    std::vector<double> sa_heap, sb_heap;
    double *sa = sa_buf;
    double *sb = sb_buf;
    if (n > kInline) {
        sa_heap.assign(a.data(), a.data() + n);
        sb_heap.assign(b.data(), b.data() + n);
        sa = sa_heap.data();
        sb = sb_heap.data();
    } else {
        std::copy(a.data(), a.data() + n, sa);
        std::copy(b.data(), b.data() + n, sb);
    }
    std::sort(sa, sa + n, std::greater<double>());
    std::sort(sb, sb + n, std::greater<double>());
    for (std::size_t i = 0; i < n; ++i) {
        if (std::abs(sa[i] - sb[i]) > threshold)
            return sa[i] < sb[i];
    }
    return a.sum() < b.sum();
}

std::string
FigureOfMerit::toString() const
{
    const double *c = data();
    std::ostringstream oss;
    oss << "[";
    for (std::size_t i = 0; i < size_; ++i) {
        if (i)
            oss << ", ";
        oss << c[i];
    }
    oss << "]";
    return oss.str();
}

} // namespace gpsched
