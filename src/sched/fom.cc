#include "sched/fom.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/logging.hh"

namespace gpsched
{

void
FigureOfMerit::addComponent(double percentage)
{
    GPSCHED_ASSERT(percentage >= 0.0,
                   "negative figure-of-merit component");
    components_.push_back(percentage);
}

double
FigureOfMerit::sum() const
{
    double total = 0.0;
    for (double c : components_)
        total += c;
    return total;
}

double
FigureOfMerit::maxComponent() const
{
    double best = 0.0;
    for (double c : components_)
        best = std::max(best, c);
    return best;
}

bool
FigureOfMerit::better(const FigureOfMerit &a, const FigureOfMerit &b,
                      double threshold)
{
    GPSCHED_ASSERT(a.size() == b.size(),
                   "figure-of-merit arity mismatch: ", a.size(),
                   " vs ", b.size());
    std::vector<double> sa = a.components_;
    std::vector<double> sb = b.components_;
    std::sort(sa.rbegin(), sa.rend());
    std::sort(sb.rbegin(), sb.rend());
    for (std::size_t i = 0; i < sa.size(); ++i) {
        if (std::abs(sa[i] - sb[i]) > threshold)
            return sa[i] < sb[i];
    }
    return a.sum() < b.sum();
}

std::string
FigureOfMerit::toString() const
{
    std::ostringstream oss;
    oss << "[";
    for (std::size_t i = 0; i < components_.size(); ++i) {
        if (i)
            oss << ", ";
        oss << components_[i];
    }
    oss << "]";
    return oss.str();
}

} // namespace gpsched
