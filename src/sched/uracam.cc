#include "sched/uracam.hh"

#include <climits>
#include <vector>

#include "sched/sms_order.hh"
#include "support/logging.hh"

namespace gpsched
{

ModuloScheduler::ModuloScheduler(const Ddg &ddg,
                                 const MachineConfig &machine,
                                 ModuloSchedulerOptions options)
    : ddg_(ddg), machine_(machine), options_(options)
{
}

bool
ModuloScheduler::placeNode(PartialSchedule &ps, NodeId v,
                           ClusterPolicy policy,
                           const Partition *assignment,
                           const DdgAnalysis &analysis,
                           bool deviate) const
{
    const int ii = ps.ii();
    const LatencyTable &lat = machine_.latencies();

    // Scheduling window from the already-placed neighbours (SMS: a
    // node never has both sides unordered, but recurrences may bound
    // it on both sides).
    bool any_pred = false, any_succ = false;
    int early = INT_MIN, late = INT_MAX;
    for (EdgeId eid : ddg_.inEdges(v)) {
        const DdgEdge &e = ddg_.edge(eid);
        if (e.src == v || !ps.isScheduled(e.src))
            continue;
        int eff = e.latency - ii * e.distance;
        early = std::max(early, ps.cycleOf(e.src) + eff);
        any_pred = true;
    }
    for (EdgeId eid : ddg_.outEdges(v)) {
        const DdgEdge &e = ddg_.edge(eid);
        if (e.dst == v || !ps.isScheduled(e.dst))
            continue;
        int eff = e.latency - ii * e.distance;
        late = std::min(late, ps.cycleOf(e.dst) - eff);
        any_succ = true;
    }

    // Communications may delay a node past the pure-latency bound, so
    // widen one-sided windows by the worst-case transfer delay.
    const int extra = machine_.numClusters() > 1
                          ? machine_.maxBusLatency() +
                                lat.latency(Opcode::CommSt) +
                                lat.latency(Opcode::CommLd)
                          : 0;
    const int span = ii + extra;
    int from, to;
    if (!any_pred && !any_succ) {
        from = analysis.asap(v);
        to = from + ii - 1;
    } else if (any_pred && !any_succ) {
        from = early;
        to = early + span - 1;
    } else if (!any_pred && any_succ) {
        from = late;
        to = late - span + 1; // scan downwards
    } else {
        if (early > late)
            return false;
        from = early;
        to = std::min(late, early + span - 1);
    }

    // Candidate clusters in policy order. A deviating PreferAssigned
    // attempt considers everything but the assigned cluster (which
    // the non-deviating attempts have already exhausted).
    std::vector<int> clusters;
    int assigned = -1;
    if (policy != ClusterPolicy::FreeChoice) {
        GPSCHED_ASSERT(assignment != nullptr,
                       "partition required for this cluster policy");
        assigned = assignment->clusterOf(v);
    }
    switch (policy) {
      case ClusterPolicy::AssignedOnly:
        clusters.push_back(assigned);
        break;
      case ClusterPolicy::PreferAssigned:
        if (!deviate) {
            clusters.push_back(assigned);
        } else {
            for (int c = 0; c < machine_.numClusters(); ++c) {
                if (c != assigned)
                    clusters.push_back(c);
            }
        }
        break;
      case ClusterPolicy::FreeChoice:
        for (int c = 0; c < machine_.numClusters(); ++c)
            clusters.push_back(c);
        break;
    }

    // One alternative partial schedule per cluster with resources;
    // the figure of merit picks the winner (Section 3.3.3). With a
    // single candidate the figure of merit decides nothing, so the
    // first feasible plan is committed directly.
    bool have_best = false;
    PlacementPlan best;
    FigureOfMerit best_fom;
    for (int c : clusters) {
        PlacementPlan plan = ps.planInWindow(v, c, from, to);
        if (!plan.feasible)
            continue;
        if (clusters.size() == 1) {
            ps.apply(plan);
            return true;
        }
        FigureOfMerit fom = ps.insertionFom(plan);
        if (!have_best ||
            FigureOfMerit::better(fom, best_fom, ps.fomThreshold())) {
            best = std::move(plan);
            best_fom = std::move(fom);
            have_best = true;
        }
    }
    if (!have_best)
        return false;
    ps.apply(best);
    return true;
}

bool
ModuloScheduler::schedule(PartialSchedule &ps, ClusterPolicy policy,
                          const Partition *assignment) const
{
    GPSCHED_ASSERT(ps.numScheduled() == 0,
                   "schedule into a non-empty partial schedule");
    if (!sccs_)
        sccs_.emplace(computeSccs(ddg_));
    DdgAnalysis analysis(ddg_, machine_.latencies(), ps.ii(), nullptr,
                         &*sccs_);
    if (!analysis.feasible())
        return false;

    // Section 3.3.3: after a placement the transformations are
    // tried, most saturated resource first. They bail out
    // immediately unless some resource is near critical, so the gate
    // only skips provably fruitless scans.
    auto relieveNearCritical = [&ps]() {
        constexpr double nearCriticalPercent = 85.0;
        if (ps.globalFom().maxComponent() >= nearCriticalPercent)
            ps.runTransformations();
    };

    if (!smsSets_)
        smsSets_.emplace(computeSmsNodeSets(ddg_, &*sccs_));
    std::vector<NodeId> order = smsOrder(ddg_, analysis, *smsSets_);
    for (NodeId v : order) {
        if (placeNode(ps, v, policy, assignment, analysis, false)) {
            relieveNearCritical();
            continue;
        }
        // Shift pressure between resource types and retry once.
        if (ps.runTransformations() > 0 &&
            placeNode(ps, v, policy, assignment, analysis, false))
            continue;
        // GP only: the assigned cluster is beyond saving at this II,
        // so deviate from the partition (Figure 1, alternative (b)).
        // Deviating last keeps every Fixed-schedulable trajectory
        // intact, so GP can never do worse than Fixed at equal II on
        // the same partition; the post-placement pass cannot perturb
        // that trajectory either, because deviation only happens once
        // it is already dead at this II.
        if (policy == ClusterPolicy::PreferAssigned &&
            placeNode(ps, v, policy, assignment, analysis, true)) {
            relieveNearCritical();
            continue;
        }
        return false;
    }
    return true;
}

} // namespace gpsched
