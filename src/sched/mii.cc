#include "sched/mii.hh"

#include <algorithm>

#include "graph/ddg_analysis.hh"
#include "support/compile_error.hh"
#include "support/logging.hh"

namespace gpsched
{

int
resMii(const Ddg &ddg, const MachineConfig &machine)
{
    int worst = 1;
    for (int k = 0; k < numFuClasses; ++k) {
        FuClass cls = static_cast<FuClass>(k);
        int occ = ddg.totalOccupancy(cls, machine.latencies());
        int units = machine.totalFu(cls);
        worst = std::max(worst, (occ + units - 1) / units);
    }
    return worst;
}

int
computeMii(const Ddg &ddg, const MachineConfig &machine)
{
    // A DDG's flow-edge latencies are baked in when the graph is
    // built (from whatever latency table the builder saw); the
    // schedulers read op latencies from @p machine. If the machine's
    // producer latency exceeds an edge's promise, every downstream
    // layer would disagree about when the value exists — the oracle
    // validator rejects such schedules — so refuse loudly here, at
    // the driver choke point, rather than emit a corrupt schedule.
    // (Machines with the default timing table can never trip this;
    // it exists for `.machine` files using the `latency` directive
    // on prebuilt workloads.) Thrown, not fatal: the rejection is
    // recoverable per loop — the engine turns it into a diagnostic
    // CompileResult so one bad loop never kills a batch.
    const LatencyTable &lat = machine.latencies();
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        const DdgEdge &edge = ddg.edge(e);
        if (!edge.isFlow())
            continue;
        int producer = lat.latency(ddg.node(edge.src).opcode);
        if (edge.latency < producer) {
            GPSCHED_COMPILE_ERROR(
                CompileErrorKind::InvalidInput, ddg.name(),
                "loop '", ddg.name(), "': flow edge ", edge.src,
                " -> ", edge.dst, " promises latency ", edge.latency,
                " but machine '", machine.name(), "' needs ",
                producer, " for ", toString(ddg.node(edge.src).opcode),
                "; rebuild the DDG against this machine's latency "
                "table (its `latency` overrides exceed the table the "
                "workload was generated with)");
        }
    }
    return std::max(resMii(ddg, machine), recMii(ddg));
}

} // namespace gpsched
