#include "sched/mii.hh"

#include <algorithm>

#include "graph/ddg_analysis.hh"

namespace gpsched
{

int
resMii(const Ddg &ddg, const MachineConfig &machine)
{
    int worst = 1;
    for (int k = 0; k < numFuClasses; ++k) {
        FuClass cls = static_cast<FuClass>(k);
        int occ = ddg.totalOccupancy(cls, machine.latencies());
        int units = machine.totalFu(cls);
        worst = std::max(worst, (occ + units - 1) / units);
    }
    return worst;
}

int
computeMii(const Ddg &ddg, const MachineConfig &machine)
{
    return std::max(resMii(ddg, machine), recMii(ddg));
}

} // namespace gpsched
