#include "sched/validate.hh"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "core/gp_scheduler.hh"
#include "support/telemetry.hh"

namespace gpsched
{

namespace
{

/** Euclidean modulo. */
int
wrap(int cycle, int m)
{
    int r = cycle % m;
    return r < 0 ? r + m : r;
}

/** Accumulates [from, to] (inclusive) into per-slot counts. */
void
cover(int from, int to, std::vector<int> &slots)
{
    const int ii = static_cast<int>(slots.size());
    int len = to - from + 1;
    int full = len / ii;
    int rem = len % ii;
    for (int s = 0; s < ii; ++s)
        slots[s] += full;
    for (int i = 0; i < rem; ++i)
        slots[wrap(from + i, ii)] += 1;
}

/**
 * Uniform read-only image of a schedule, buildable from either a
 * live PartialSchedule or a recorded CompiledLoop. Shape problems
 * found while building (unscheduled nodes aside, which the checker
 * reports with its historical message) are stored in @c error.
 */
struct ScheduleView
{
    int ii = 0;
    std::string error; ///< non-empty: malformed before checking

    struct PlacedAt
    {
        bool scheduled = false;
        int cluster = -1;
        int cycle = 0;
    };
    std::vector<PlacedAt> place;               ///< by NodeId
    std::vector<std::map<int, Transfer>> xfer; ///< by producer
    std::vector<SpillInfo> spill;              ///< by producer
    ScheduleStats stats;
    bool hasMaxLive = false;     ///< bookkeeping recount available
    std::vector<int> bookMaxLive; ///< per cluster when hasMaxLive

    template <typename... Args>
    void
    shapeFail(Args &&...args)
    {
        if (!error.empty())
            return;
        std::ostringstream oss;
        (oss << ... << std::forward<Args>(args));
        error = oss.str();
    }
};

ScheduleView
makeView(const Ddg &ddg, const MachineConfig &machine,
         const PartialSchedule &ps)
{
    ScheduleView view;
    view.ii = ps.ii();
    const int n = ddg.numNodes();
    view.place.resize(n);
    view.xfer.resize(n);
    view.spill.resize(n);
    for (NodeId v = 0; v < n; ++v) {
        if (ps.isScheduled(v)) {
            view.place[v] = {true, ps.clusterOf(v), ps.cycleOf(v)};
        }
        view.xfer[v] = ps.transfersOf(v);
        view.spill[v] = ps.spillOf(v);
    }
    view.stats = ps.stats();
    view.hasMaxLive = true;
    view.bookMaxLive.resize(machine.numClusters());
    for (int c = 0; c < machine.numClusters(); ++c)
        view.bookMaxLive[c] = ps.maxLive(c);
    return view;
}

ScheduleView
makeView(const Ddg &ddg, const MachineConfig &machine,
         const CompiledLoop &loop)
{
    ScheduleView view;
    view.ii = loop.ii;
    const int n = ddg.numNodes();
    view.place.resize(n);
    view.xfer.resize(n);
    view.spill.resize(n);
    if (!loop.moduloScheduled) {
        view.shapeFail("loop not modulo scheduled "
                       "(list-scheduling fallback carries no "
                       "placements)");
        return view;
    }
    if (loop.ii < 1) {
        view.shapeFail("bad II ", loop.ii);
        return view;
    }
    if (static_cast<int>(loop.placements.size()) != n) {
        view.shapeFail("schedule records ", loop.placements.size(),
                       " placements for ", n, " nodes");
        return view;
    }
    for (NodeId v = 0; v < n; ++v)
        view.place[v] = {true, loop.placements[v].cluster,
                         loop.placements[v].cycle};
    for (const Transfer &t : loop.transfers) {
        if (t.producer < 0 || t.producer >= n) {
            view.shapeFail("transfer from unknown node ", t.producer);
            return view;
        }
        if (t.destCluster < 0 ||
            t.destCluster >= machine.numClusters()) {
            view.shapeFail("transfer of ", t.producer,
                           " to bad cluster ", t.destCluster);
            return view;
        }
        if (!view.xfer[t.producer].emplace(t.destCluster, t).second) {
            view.shapeFail("duplicate transfer of ", t.producer,
                           " to cluster ", t.destCluster);
            return view;
        }
    }
    for (const SpillRecord &s : loop.spills) {
        if (s.node < 0 || s.node >= n) {
            view.shapeFail("spill of unknown node ", s.node);
            return view;
        }
        if (view.spill[s.node].spilled) {
            view.shapeFail("duplicate spill of node ", s.node);
            return view;
        }
        view.spill[s.node] = {true, s.storeCycle, s.loadCycle};
    }
    view.stats = loop.stats;
    view.hasMaxLive = false; // CompiledLoop records no MaxLive
    return view;
}

struct Checker
{
    const Ddg &ddg;
    const MachineConfig &machine;
    const ScheduleView &sv;
    const LatencyTable &lat;
    int ii;
    ValidationResult result;

    Checker(const Ddg &d, const MachineConfig &m,
            const ScheduleView &v)
        : ddg(d), machine(m), sv(v), lat(m.latencies()), ii(v.ii)
    {
    }

    template <typename... Args>
    bool
    fail(Args &&...args)
    {
        std::ostringstream oss;
        (oss << ... << std::forward<Args>(args));
        result.valid = false;
        result.message = oss.str();
        return false;
    }

    int cycleOf(NodeId v) const { return sv.place[v].cycle; }
    int clusterOf(NodeId v) const { return sv.place[v].cluster; }

    const std::map<int, Transfer> &
    transfersOf(NodeId v) const
    {
        return sv.xfer[v];
    }

    int
    writeCycle(NodeId v) const
    {
        return cycleOf(v) + lat.latency(ddg.node(v).opcode);
    }

    /** Value-read time of edge e in the producer's iteration frame. */
    int
    useCycle(EdgeId e) const
    {
        const DdgEdge &edge = ddg.edge(e);
        return cycleOf(edge.dst) + ii * edge.distance;
    }

    bool
    checkPlacements()
    {
        for (NodeId v = 0; v < ddg.numNodes(); ++v) {
            if (!sv.place[v].scheduled)
                return fail("node ", v, " not scheduled");
            int c = clusterOf(v);
            if (c < 0 || c >= machine.numClusters())
                return fail("node ", v, " in bad cluster ", c);
        }
        return true;
    }

    /** True when a home-cluster read of @p p at @p t is legal under
     *  its spill split. */
    bool
    readOk(NodeId p, int t) const
    {
        const SpillInfo &spill = sv.spill[p];
        if (!spill.spilled)
            return true;
        int reload =
            spill.loadCycle + lat.latency(Opcode::SpillLd);
        return t <= spill.storeCycle || t >= reload;
    }

    bool
    checkDependences()
    {
        for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
            const DdgEdge &edge = ddg.edge(e);
            int src_cycle = cycleOf(edge.src);
            int dst_cycle = cycleOf(edge.dst);
            int eff = edge.latency - ii * edge.distance;
            if (dst_cycle < src_cycle + eff) {
                return fail("edge ", e, " (", edge.src, "->",
                            edge.dst, ") violated: ", dst_cycle,
                            " < ", src_cycle, " + ", eff);
            }
            if (!edge.isFlow())
                continue;
            int use = useCycle(e);
            if (clusterOf(edge.src) == clusterOf(edge.dst)) {
                if (use < writeCycle(edge.src)) {
                    return fail("edge ", e, " reads before write: ",
                                use, " < ", writeCycle(edge.src));
                }
                if (!readOk(edge.src, use)) {
                    return fail("edge ", e,
                                " reads inside the spill gap of ",
                                edge.src, " at ", use);
                }
                continue;
            }
            // Cross-cluster value: must travel via a transfer.
            const auto &transfers = transfersOf(edge.src);
            auto it = transfers.find(clusterOf(edge.dst));
            if (it == transfers.end()) {
                return fail("edge ", e, ": no transfer of ",
                            edge.src, " to cluster ",
                            clusterOf(edge.dst));
            }
            const Transfer &t = it->second;
            if (t.readCycle < writeCycle(edge.src)) {
                return fail("transfer of ", edge.src,
                            " reads before write: ", t.readCycle,
                            " < ", writeCycle(edge.src));
            }
            if (!readOk(edge.src, t.readCycle)) {
                return fail("transfer of ", edge.src,
                            " reads inside the spill gap at ",
                            t.readCycle);
            }
            if (t.arrivalCycle > use) {
                return fail("transfer of ", edge.src, " to cluster ",
                            t.destCluster, " arrives at ",
                            t.arrivalCycle, " after use ", use);
            }
            if (t.viaBus) {
                if (t.busClass < 0 ||
                    t.busClass >= machine.numBusClasses()) {
                    return fail("transfer of ", edge.src,
                                " rides unknown bus class ",
                                t.busClass);
                }
                if (t.readCycle != t.busCycle ||
                    t.arrivalCycle !=
                        t.busCycle +
                            machine.busLatencyOf(t.busClass)) {
                    return fail("bus transfer of ", edge.src,
                                " has inconsistent timing");
                }
            } else {
                if (t.readCycle != t.stCycle ||
                    t.ldCycle <
                        t.stCycle + lat.latency(Opcode::CommSt) ||
                    t.arrivalCycle !=
                        t.ldCycle + lat.latency(Opcode::CommLd)) {
                    return fail("memory transfer of ", edge.src,
                                " has inconsistent timing");
                }
            }
        }
        return true;
    }

    bool
    checkSpills()
    {
        for (NodeId v = 0; v < ddg.numNodes(); ++v) {
            const SpillInfo &spill = sv.spill[v];
            if (!spill.spilled)
                continue;
            if (!definesValue(ddg.node(v).opcode))
                return fail("non-defining node ", v, " spilled");
            if (spill.storeCycle < writeCycle(v)) {
                return fail("spill store of ", v, " at ",
                            spill.storeCycle, " before write ",
                            writeCycle(v));
            }
            int reload =
                spill.loadCycle + lat.latency(Opcode::SpillLd);
            if (reload <= spill.storeCycle +
                              lat.latency(Opcode::SpillSt)) {
                return fail("spill of ", v,
                            " reloads before the store completes");
            }
        }
        return true;
    }

    bool
    checkResources()
    {
        const int clusters = machine.numClusters();
        // (cluster, class) -> per-slot usage.
        std::vector<std::vector<int>> fu(
            clusters * numFuClasses, std::vector<int>(ii, 0));
        // Per bus class -> per-slot usage.
        std::vector<std::vector<int>> bus(
            machine.numBusClasses(), std::vector<int>(ii, 0));
        auto reserve = [&](int cluster, FuClass cls, int cycle,
                           int occ) {
            auto &slots =
                fu[cluster * numFuClasses + static_cast<int>(cls)];
            for (int i = 0; i < occ; ++i)
                slots[wrap(cycle + i, ii)] += 1;
        };

        int bus_transfers = 0, mem_transfers = 0, spills = 0;
        for (NodeId v = 0; v < ddg.numNodes(); ++v) {
            const Opcode op = ddg.node(v).opcode;
            reserve(clusterOf(v), fuClassOf(op), cycleOf(v),
                    lat.occupancy(op));
            for (const auto &[dest, t] : transfersOf(v)) {
                if (t.viaBus) {
                    ++bus_transfers;
                    if (t.busClass < 0 ||
                        t.busClass >= machine.numBusClasses()) {
                        return fail("transfer of ", v,
                                    " rides unknown bus class ",
                                    t.busClass);
                    }
                    int lat_bus = machine.busLatencyOf(t.busClass);
                    for (int i = 0; i < lat_bus; ++i)
                        bus[t.busClass][wrap(t.busCycle + i, ii)] += 1;
                } else {
                    ++mem_transfers;
                    reserve(clusterOf(v), FuClass::Mem, t.stCycle,
                            lat.occupancy(Opcode::CommSt));
                    reserve(dest, FuClass::Mem, t.ldCycle,
                            lat.occupancy(Opcode::CommLd));
                }
            }
            const SpillInfo &spill = sv.spill[v];
            if (spill.spilled) {
                ++spills;
                reserve(clusterOf(v), FuClass::Mem,
                        spill.storeCycle,
                        lat.occupancy(Opcode::SpillSt));
                reserve(clusterOf(v), FuClass::Mem,
                        spill.loadCycle,
                        lat.occupancy(Opcode::SpillLd));
            }
        }

        for (int c = 0; c < clusters; ++c) {
            for (int k = 0; k < numFuClasses; ++k) {
                FuClass cls = static_cast<FuClass>(k);
                int units = machine.fuInCluster(c, cls);
                const auto &slots =
                    fu[c * numFuClasses + k];
                for (int s = 0; s < ii; ++s) {
                    if (slots[s] > units) {
                        return fail("cluster ", c, " ",
                                    toString(cls), " over capacity ",
                                    slots[s], "/", units,
                                    " at kernel slot ", s);
                    }
                }
            }
        }
        for (int bc = 0; bc < machine.numBusClasses(); ++bc) {
            int count = machine.busClass(bc).count;
            for (int s = 0; s < ii; ++s) {
                if (bus[bc][s] > count) {
                    return fail("bus class ", bc, " over capacity ",
                                bus[bc][s], "/", count, " at slot ",
                                s);
                }
            }
        }

        const ScheduleStats &stats = sv.stats;
        if (stats.busTransfers != bus_transfers ||
            stats.memTransfers != mem_transfers ||
            stats.spills != spills) {
            return fail("stats mismatch: schedule reports ",
                        stats.busTransfers, "/", stats.memTransfers,
                        "/", stats.spills, " recount ",
                        bus_transfers, "/", mem_transfers, "/",
                        spills);
        }
        return true;
    }

    bool
    checkRegisters()
    {
        const int clusters = machine.numClusters();
        std::vector<std::vector<int>> live(clusters,
                                           std::vector<int>(ii, 0));

        for (NodeId v = 0; v < ddg.numNodes(); ++v) {
            if (!definesValue(ddg.node(v).opcode))
                continue;
            const int home = clusterOf(v);
            const int write = writeCycle(v);

            // Gather read events per cluster from consumers and
            // transfers.
            std::map<int, std::vector<int>> events;
            for (EdgeId e : ddg.outEdges(v)) {
                const DdgEdge &edge = ddg.edge(e);
                if (!edge.isFlow())
                    continue;
                events[clusterOf(edge.dst)].push_back(
                    useCycle(e));
            }
            for (const auto &[dest, t] : transfersOf(v))
                events[home].push_back(t.readCycle);

            // Home lifetime (with optional spill split).
            const SpillInfo &spill = sv.spill[v];
            int home_last = write;
            for (int t : events[home])
                home_last = std::max(home_last, t);
            if (!spill.spilled) {
                cover(write, home_last, live[home]);
            } else {
                cover(write, spill.storeCycle, live[home]);
                int reload =
                    spill.loadCycle + lat.latency(Opcode::SpillLd);
                if (home_last >= reload)
                    cover(reload, home_last, live[home]);
            }

            // Destination lifetimes: arrival to last read.
            for (const auto &[dest, t] : transfersOf(v)) {
                auto it = events.find(dest);
                if (it == events.end() || it->second.empty()) {
                    return fail("transfer of ", v, " to cluster ",
                                dest, " has no consumer");
                }
                int last = *std::max_element(it->second.begin(),
                                             it->second.end());
                cover(t.arrivalCycle, std::max(last, t.arrivalCycle),
                      live[dest]);
            }
        }

        for (int c = 0; c < clusters; ++c) {
            int max_live = 0;
            for (int s = 0; s < ii; ++s)
                max_live = std::max(max_live, live[c][s]);
            if (max_live > machine.regsInCluster(c)) {
                return fail("cluster ", c, " MaxLive ", max_live,
                            " exceeds ", machine.regsInCluster(c),
                            " registers");
            }
            if (sv.hasMaxLive && max_live != sv.bookMaxLive[c]) {
                return fail("cluster ", c, " MaxLive recount ",
                            max_live, " != schedule's ",
                            sv.bookMaxLive[c]);
            }
        }
        return true;
    }
};

ValidationResult
check(const Ddg &ddg, const MachineConfig &machine,
      const ScheduleView &view)
{
    if (!view.error.empty())
        return {false, view.error};
    Checker checker(ddg, machine, view);
    checker.checkPlacements() && checker.checkDependences() &&
        checker.checkSpills() && checker.checkResources() &&
        checker.checkRegisters();
    return checker.result;
}

} // namespace

ValidationResult
validateSchedule(const Ddg &ddg, const MachineConfig &machine,
                 const PartialSchedule &schedule)
{
    GPSCHED_PHASE_SPAN(Validate);
    return check(ddg, machine, makeView(ddg, machine, schedule));
}

ValidationResult
validateSchedule(const Ddg &ddg, const MachineConfig &machine,
                 const CompiledLoop &loop)
{
    GPSCHED_PHASE_SPAN(Validate);
    return check(ddg, machine, makeView(ddg, machine, loop));
}

} // namespace gpsched
