/**
 * @file
 * Independent modulo-schedule validator.
 *
 * Recomputes, from nothing but the public placement/transfer/spill
 * introspection of a schedule, every property a correct modulo
 * schedule must have, and reports the first violation as a
 * human-readable message:
 *
 *  - every node placed, clusters in range;
 *  - every dependence satisfied (order edges by issue distance; flow
 *    edges by value availability, through the transfer chain when the
 *    endpoints sit in different clusters);
 *  - spill splits never break a read;
 *  - functional units, memory ports (incl. overhead ops), and buses
 *    within capacity at every kernel slot;
 *  - register MaxLive within each cluster's file, recomputed from
 *    value lifetimes from first principles;
 *  - the schedule's own bookkeeping (maxLive, stats) agrees with the
 *    recount.
 *
 * The validator shares no code with the scheduler's internal
 * bookkeeping or with the replay simulator (src/sim/), which is what
 * makes the three mutually meaningful oracles. It accepts either a
 * live PartialSchedule (full checks, including the bookkeeping
 * recounts) or a recorded CompiledLoop (same structural checks on
 * the serialized placement/transfer/spill record).
 *
 * Grew up in tests/testing/ (PR 1); promoted into the library so the
 * CLI, benches, and the simulator's differential tests can all call
 * it. tests/testing/validate.hh remains as a source-compatible shim.
 */

#ifndef GPSCHED_SCHED_VALIDATE_HH
#define GPSCHED_SCHED_VALIDATE_HH

#include <string>

#include "graph/ddg.hh"
#include "machine/machine.hh"
#include "sched/schedule.hh"

namespace gpsched
{

struct CompiledLoop;

/** Validation outcome; ok() is false on the first violation. */
struct ValidationResult
{
    bool valid = true;
    std::string message;

    explicit operator bool() const { return valid; }
};

/** Validates a complete schedule of @p ddg on @p machine. */
ValidationResult validateSchedule(const Ddg &ddg,
                                  const MachineConfig &machine,
                                  const PartialSchedule &schedule);

/**
 * Validates the schedule recorded in @p loop (placements, transfers,
 * spills, stats) against @p ddg on @p machine. List-scheduled loops
 * (moduloScheduled == false) carry no placements and fail. The
 * MaxLive bookkeeping recount is skipped — CompiledLoop does not
 * record per-cluster MaxLive — but the register-file capacity check
 * still runs from recomputed lifetimes.
 */
ValidationResult validateSchedule(const Ddg &ddg,
                                  const MachineConfig &machine,
                                  const CompiledLoop &loop);

} // namespace gpsched

#endif // GPSCHED_SCHED_VALIDATE_HH
