#include "sched/lifetime.hh"

#include <algorithm>

#include "sched/mrt.hh"
#include "support/logging.hh"

namespace gpsched
{

LifetimeTracker::LifetimeTracker(int num_regs, int ii)
    : numRegs_(num_regs)
{
    GPSCHED_ASSERT(num_regs >= 0, "negative register count");
    GPSCHED_ASSERT(ii >= 1, "II must be >= 1");
    live_.assign(ii, 0);
}

void
LifetimeTracker::cover(const LiveSegment &seg, std::vector<int> &counts,
                       int delta)
{
    GPSCHED_ASSERT(seg.to >= seg.from, "bad segment [", seg.from, ",",
                   seg.to, "]");
    const int ii = static_cast<int>(counts.size());
    int len = seg.length();
    int full = len / ii;
    int rem = len % ii;
    for (int s = 0; s < ii; ++s)
        counts[s] += delta * full;
    for (int i = 0; i < rem; ++i)
        counts[wrapSlot(seg.from + i, ii)] += delta;
}

void
LifetimeTracker::apply(const LiveSegment &seg, int delta)
{
    cover(seg, live_, delta);
    used_ += delta * seg.length();
}

void
LifetimeTracker::add(const LiveSegment &seg)
{
    apply(seg, 1);
}

void
LifetimeTracker::remove(const LiveSegment &seg)
{
    apply(seg, -1);
    for (int count : live_)
        GPSCHED_ASSERT(count >= 0, "negative live count after remove");
}

bool
LifetimeTracker::fitsWithDiff(
    const std::vector<LiveSegment> &removed,
    const std::vector<LiveSegment> &added) const
{
    std::vector<int> counts = live_;
    for (const auto &seg : removed)
        cover(seg, counts, -1);
    for (const auto &seg : added)
        cover(seg, counts, 1);
    for (int count : counts) {
        GPSCHED_ASSERT(count >= 0, "diff removes unknown coverage");
        if (count > numRegs_)
            return false;
    }
    return true;
}

int
LifetimeTracker::maxLive() const
{
    return live_.empty() ? 0
                         : *std::max_element(live_.begin(), live_.end());
}

int
LifetimeTracker::liveAt(int cycle) const
{
    return live_[wrapSlot(cycle, static_cast<int>(live_.size()))];
}

} // namespace gpsched
