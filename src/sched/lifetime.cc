#include "sched/lifetime.hh"

#include <algorithm>

#include "sched/mrt.hh"
#include "support/logging.hh"

namespace gpsched
{

LifetimeTracker::LifetimeTracker(int num_regs, int ii,
                                 CompileArena *arena)
    : numRegs_(num_regs), ii_(ii), live_(arena), scratch_(arena)
{
    GPSCHED_ASSERT(num_regs >= 0, "negative register count");
    GPSCHED_ASSERT(ii >= 1, "II must be >= 1");
    live_.assign(static_cast<std::size_t>(ii), 0);
}

void
LifetimeTracker::cover(const LiveSegment &seg, int *counts, int ii,
                       int delta)
{
    GPSCHED_ASSERT(seg.to >= seg.from, "bad segment [", seg.from, ",",
                   seg.to, "]");
    int len = seg.length();
    int full = len / ii;
    int rem = len % ii;
    if (full > 0) {
        for (int s = 0; s < ii; ++s)
            counts[s] += delta * full;
    }
    for (int i = 0; i < rem; ++i)
        counts[wrapSlot(seg.from + i, ii)] += delta;
}

void
LifetimeTracker::apply(const LiveSegment &seg, int delta)
{
    cover(seg, live_.data(), ii_, delta);
    used_ += delta * seg.length();
}

void
LifetimeTracker::add(const LiveSegment &seg)
{
    apply(seg, 1);
}

void
LifetimeTracker::remove(const LiveSegment &seg)
{
    apply(seg, -1);
    // A count can only have gone negative at a slot the removed
    // segment covered, so the check needs no full-kernel scan
    // unless the segment wrapped all the way around.
    if (seg.length() >= ii_) {
        for (int count : live_)
            GPSCHED_ASSERT(count >= 0,
                           "negative live count after remove");
    } else {
        for (int i = 0; i < seg.length(); ++i) {
            GPSCHED_ASSERT(live_[wrapSlot(seg.from + i, ii_)] >= 0,
                           "negative live count after remove");
        }
    }
}

bool
LifetimeTracker::fitsWithDiff(
    const std::vector<LiveSegment> &removed,
    const std::vector<LiveSegment> &added) const
{
    scratch_.assign(live_.data(), live_.size());
    int *counts = scratch_.data();
    for (const auto &seg : removed)
        cover(seg, counts, ii_, -1);
    for (const auto &seg : added)
        cover(seg, counts, ii_, 1);
    for (int s = 0; s < ii_; ++s) {
        GPSCHED_ASSERT(counts[s] >= 0, "diff removes unknown coverage");
        if (counts[s] > numRegs_)
            return false;
    }
    return true;
}

int
LifetimeTracker::maxLive() const
{
    return live_.empty() ? 0
                         : *std::max_element(live_.begin(), live_.end());
}

int
LifetimeTracker::liveAt(int cycle) const
{
    return live_[wrapSlot(cycle, ii_)];
}

} // namespace gpsched
