/**
 * @file
 * Figure of merit for comparing partial schedules (paper Section
 * 3.3.1).
 *
 * A figure of merit is a vector of percentages, one per critical
 * resource (inter-cluster communication slots, per-cluster memory
 * slots, per-cluster register lifetimes, plus the remaining-memory
 * extension of Sections 3.3.2/3.3.4). To compare two figures, the
 * components of each are sorted from highest to lowest and compared
 * pairwise starting from the highest until a significant difference
 * (above a threshold) appears; the figure with the lower component
 * wins. If every pair is similar, the lower component sum wins.
 * This "benefit the weakest resource" rule steers scheduling away
 * from saturating any single resource.
 */

#ifndef GPSCHED_SCHED_FOM_HH
#define GPSCHED_SCHED_FOM_HH

#include <cstddef>
#include <string>
#include <vector>

#include "support/logging.hh"

namespace gpsched
{

/**
 * Multi-dimensional figure of merit; lower is better.
 *
 * Storage is a fixed inline buffer with a heap fallback: a figure is
 * built per candidate placement inside the scheduler's innermost
 * cluster-selection loop, and the arity (1 + ~3 per cluster) fits
 * the buffer on every realistic machine, so the hot path never
 * allocates.
 */
class FigureOfMerit
{
  public:
    FigureOfMerit() = default;

    /** Appends one component (a percentage; may exceed 100). */
    void
    addComponent(double percentage)
    {
        GPSCHED_ASSERT(percentage >= 0.0,
                       "negative figure-of-merit component");
        if (!overflow_.empty()) {
            overflow_.push_back(percentage);
        } else if (size_ < kInline) {
            inline_[size_] = percentage;
        } else {
            overflow_.assign(inline_, inline_ + kInline);
            overflow_.push_back(percentage);
        }
        ++size_;
    }

    /** Number of components. */
    std::size_t size() const { return size_; }

    /** Raw components (unsorted). */
    const double *
    data() const
    {
        return overflow_.empty() ? inline_ : overflow_.data();
    }

    /** Component sum (final tie-break). */
    double sum() const;

    /** Largest component. */
    double maxComponent() const;

    /**
     * True when @p a is strictly better (lower) than @p b under the
     * sorted pairwise comparison with @p threshold percentage
     * points. Figures must have equal arity.
     */
    static bool better(const FigureOfMerit &a, const FigureOfMerit &b,
                       double threshold);

    /** Debug rendering. */
    std::string toString() const;

  private:
    /** Inline capacity: covers machines up to ~7 clusters. */
    static constexpr std::size_t kInline = 24;

    double inline_[kInline];
    std::size_t size_ = 0;

    /** Holds *all* components once the inline buffer overflows. */
    std::vector<double> overflow_;
};

} // namespace gpsched

#endif // GPSCHED_SCHED_FOM_HH
