/**
 * @file
 * Figure of merit for comparing partial schedules (paper Section
 * 3.3.1).
 *
 * A figure of merit is a vector of percentages, one per critical
 * resource (inter-cluster communication slots, per-cluster memory
 * slots, per-cluster register lifetimes, plus the remaining-memory
 * extension of Sections 3.3.2/3.3.4). To compare two figures, the
 * components of each are sorted from highest to lowest and compared
 * pairwise starting from the highest until a significant difference
 * (above a threshold) appears; the figure with the lower component
 * wins. If every pair is similar, the lower component sum wins.
 * This "benefit the weakest resource" rule steers scheduling away
 * from saturating any single resource.
 */

#ifndef GPSCHED_SCHED_FOM_HH
#define GPSCHED_SCHED_FOM_HH

#include <string>
#include <vector>

namespace gpsched
{

/** Multi-dimensional figure of merit; lower is better. */
class FigureOfMerit
{
  public:
    FigureOfMerit() = default;

    /** Appends one component (a percentage; may exceed 100). */
    void addComponent(double percentage);

    /** Number of components. */
    std::size_t size() const { return components_.size(); }

    /** Component sum (final tie-break). */
    double sum() const;

    /** Largest component. */
    double maxComponent() const;

    /** Raw components (unsorted). */
    const std::vector<double> &components() const
    {
        return components_;
    }

    /**
     * True when @p a is strictly better (lower) than @p b under the
     * sorted pairwise comparison with @p threshold percentage
     * points. Figures must have equal arity.
     */
    static bool better(const FigureOfMerit &a, const FigureOfMerit &b,
                       double threshold);

    /** Debug rendering. */
    std::string toString() const;

  private:
    std::vector<double> components_;
};

} // namespace gpsched

#endif // GPSCHED_SCHED_FOM_HH
