/**
 * @file
 * Schedule transformations (paper Section 3.3.2).
 *
 * The scheduler never backtracks on program operations, but it can
 * trade pressure between resource types by rewriting the overhead
 * operations of the partial schedule:
 *
 *  - spill: split a register lifetime across its widest idle gap with
 *    a SpillSt/SpillLd pair (registers -> memory pressure),
 *  - unspill: remove a spill when registers allow (memory ->
 *    registers),
 *  - bus-to-memory: turn a bus copy into a CommSt/CommLd pair
 *    (bus -> memory),
 *  - memory-to-bus: the reverse (memory -> bus).
 *
 * Every transformation is accepted only when it strictly improves the
 * global figure of merit, so chains of transformations terminate.
 * TransformEngine is the friend of PartialSchedule that implements
 * them; the PartialSchedule::trySpill() family forwards here.
 */

#ifndef GPSCHED_SCHED_TRANSFORMS_HH
#define GPSCHED_SCHED_TRANSFORMS_HH

#include "sched/schedule.hh"

namespace gpsched
{

/** Implements the Section-3.3.2 transformations on a schedule. */
class TransformEngine
{
  public:
    /** Spills the best candidate lifetime of @p cluster. */
    static bool trySpill(PartialSchedule &ps, int cluster);

    /** Removes one spill in @p cluster if registers allow. */
    static bool tryUnspill(PartialSchedule &ps, int cluster);

    /** Converts one bus transfer to a memory communication. */
    static bool tryBusToMem(PartialSchedule &ps);

    /** Converts one memory communication to a bus transfer. */
    static bool tryMemToBus(PartialSchedule &ps);

    /**
     * Applies transformations most-saturated-resource first until no
     * improvement remains (paper Section 3.3.3). Returns the number
     * of transformations applied.
     */
    static int run(PartialSchedule &ps);
};

} // namespace gpsched

#endif // GPSCHED_SCHED_TRANSFORMS_HH
