/**
 * @file
 * Partial modulo schedule with integrated register allocation and
 * communication management (the URACAM substrate of paper Section
 * 3.3, shared by the URACAM baseline and the GP/Fixed schedulers).
 *
 * The schedule assigns operations to (cluster, flat cycle) pairs at
 * a fixed II. Flat cycles are times within one iteration's schedule
 * (they may be negative; kernel slots are flat cycles mod II). State
 * tracked per placement:
 *
 *  - functional-unit reservation tables per (cluster, FU class),
 *    sized from the per-cluster machine description,
 *  - the non-pipelined inter-cluster bus pools, one per bus class;
 *    which class a transfer rides is decided by the configured
 *    TransferCostPolicy (slack-aware by default: tight transfers
 *    probe fastest-first, slack-rich ones are steered to slower
 *    classes so the fast buses stay free for the critical path),
 *  - exact per-cluster register pressure (kernel MaxLive) via value
 *    lifetimes, including loop-carried consumption at use + II*dist,
 *  - one communication per (value, destination cluster): a bus copy
 *    or a store/load pair through memory (Section 3.3.2), chosen
 *    on demand when the bus is saturated,
 *  - spill splits of register lifetimes (store after def, load
 *    before the late uses).
 *
 * Placement is two-phase: planPlacement() is a pure feasibility
 * check that returns a PlacementPlan describing every reservation
 * and lifetime change the insertion would make; apply() commits a
 * plan atomically. Figures of merit are computed from plans without
 * mutating anything, which is how URACAM compares per-cluster
 * alternatives cheaply. Only spill and communication ops are ever
 * unscheduled (by the transformation engine in transforms.cc).
 */

#ifndef GPSCHED_SCHED_SCHEDULE_HH
#define GPSCHED_SCHED_SCHEDULE_HH

#include <map>
#include <set>
#include <vector>

#include "graph/ddg.hh"
#include "machine/machine.hh"
#include "sched/fom.hh"
#include "sched/lifetime.hh"
#include "sched/mrt.hh"

namespace gpsched
{

/**
 * How planTransfer() picks a bus class for a value crossing
 * clusters on a machine with several classes. With a single bus
 * class (every Table-1 preset) the two policies are identical by
 * construction — there is only one class to pick — so homogeneous
 * fig2/fig3 output is bit-identical under either (pinned by
 * tests/test_transfer_policy.cc).
 */
enum class TransferCostPolicy
{
    /**
     * Legacy greedy rule: classes are probed fastest-first, so slow
     * buses only carry traffic once every faster class is saturated
     * in the transfer's window — even for transfers with cycles of
     * slack to spare.
     */
    FastestFirst,

    /**
     * Slack-aware cost model (the default): a transfer whose
     * ready-to-use window fits a slower class with at least
     * TransferPolicyOptions::slackMargin cycles to spare is steered
     * to the slowest such class first, preserving the fast classes
     * for transfers on or near the critical recurrence (whose tight
     * windows keep probing fastest-first). Feasibility never
     * regresses: when the preferred slow classes have no free slot
     * the probe falls through to the remaining classes
     * fastest-first, exactly like the legacy rule.
     */
    SlackAware,
};

/** Knobs of the bus-class transfer cost model. */
struct TransferPolicyOptions
{
    TransferCostPolicy costModel = TransferCostPolicy::SlackAware;

    /**
     * Free cycles a transfer's window must retain beyond a slower
     * class's latency before the SlackAware policy steers it there.
     * Larger margins keep more traffic on fast buses; 0 steers any
     * transfer that merely fits. Keyed into the engine's LoopKey.
     */
    int slackMargin = 2;

    bool operator==(const TransferPolicyOptions &other) const
    {
        return costModel == other.costModel &&
               slackMargin == other.slackMargin;
    }
};

/** One inter-cluster communication of a value. */
struct Transfer
{
    NodeId producer = invalidNode;
    int destCluster = -1;
    bool viaBus = true;
    int busClass = 0;      ///< viaBus: bus class carrying the value
    int busCycle = 0;      ///< viaBus: bus busy [busCycle, +lat-1]
    int stCycle = 0;       ///< !viaBus: CommSt issue in home cluster
    int ldCycle = 0;       ///< !viaBus: CommLd issue in dest cluster
    int readCycle = 0;     ///< when the home register is read
    int arrivalCycle = 0;  ///< when the value exists in dest

    bool operator==(const Transfer &other) const
    {
        return producer == other.producer &&
               destCluster == other.destCluster &&
               viaBus == other.viaBus && busClass == other.busClass &&
               busCycle == other.busCycle &&
               stCycle == other.stCycle &&
               ldCycle == other.ldCycle &&
               readCycle == other.readCycle &&
               arrivalCycle == other.arrivalCycle;
    }
};

/** Planned creation or replacement of a transfer. */
struct TransferPlan
{
    Transfer transfer;
    bool replaces = false; ///< an existing transfer for the same key
};

/** Planned lifetime change of one (value, cluster) pair. */
struct PairChange
{
    NodeId value = invalidNode;
    int cluster = -1;
    std::vector<LiveSegment> before; ///< currently registered
    std::vector<LiveSegment> after;  ///< segments once applied
};

/** Planned register-read event insertion. */
struct EventAdd
{
    NodeId value = invalidNode;
    int cluster = -1;
    int time = 0;
};

/** Planned register-read event time change (transfer re-placement). */
struct EventMove
{
    NodeId value = invalidNode;
    int cluster = -1;
    int oldTime = 0;
    int newTime = 0;
};

/** Atomic description of one op insertion. */
struct PlacementPlan
{
    bool feasible = false;
    NodeId node = invalidNode;
    int cluster = -1;
    int cycle = 0;
    std::vector<TransferPlan> transfers;
    std::vector<EventAdd> eventAdds;
    std::vector<EventMove> eventMoves;
    std::vector<PairChange> pairChanges;

    // Figure-of-merit ingredients (net deltas).
    int busSlotsDelta = 0;
    std::vector<int> memSlotsDelta;  ///< per cluster (incl. op itself)
    std::vector<int> overheadMemDelta; ///< per cluster (comm ops only)
    std::vector<int> regCyclesDelta; ///< per cluster
};

/** Aggregate overhead statistics of a schedule. */
struct ScheduleStats
{
    int busTransfers = 0;
    int memTransfers = 0;
    int spills = 0;
    int overheadMemOps = 0;

    bool operator==(const ScheduleStats &other) const
    {
        return busTransfers == other.busTransfers &&
               memTransfers == other.memTransfers &&
               spills == other.spills &&
               overheadMemOps == other.overheadMemOps;
    }
};

/** Spill placement of one value (for introspection/code emission). */
struct SpillInfo
{
    bool spilled = false;
    int storeCycle = 0;
    int loadCycle = 0;
};

/** Partial (growing) modulo schedule at a fixed II. */
class PartialSchedule
{
  public:
    /**
     * @param ddg loop being scheduled (must outlive the schedule)
     * @param machine target (must outlive the schedule)
     * @param ii initiation interval
     * @param planned_mem_per_cluster expected original memory ops
     *        per cluster (from the graph partition; Section 3.3.4
     *        extension). Empty for URACAM/unified scheduling, which
     *        uses the global remaining-memory component instead.
     * @param fom_threshold significant-difference threshold for
     *        figure-of-merit comparisons (percentage points)
     * @param transfer bus-class transfer cost model (defaults to the
     *        slack-aware policy; irrelevant on single-bus-class
     *        machines, where both policies coincide)
     * @param arena optional per-compile arena backing the reservation
     *        tables and lifetime trackers; must outlive the schedule
     *        and must not be reset while it is alive (null = heap)
     */
    PartialSchedule(const Ddg &ddg, const MachineConfig &machine,
                    int ii,
                    std::vector<int> planned_mem_per_cluster = {},
                    double fom_threshold = 10.0,
                    TransferPolicyOptions transfer = {},
                    CompileArena *arena = nullptr);

    /** Initiation interval. */
    int ii() const { return ii_; }

    /** True once @p v has been placed. */
    bool isScheduled(NodeId v) const;

    /** Flat issue cycle of @p v (must be scheduled). */
    int cycleOf(NodeId v) const;

    /** Cluster of @p v (must be scheduled). */
    int clusterOf(NodeId v) const;

    /** Number of placed program operations. */
    int numScheduled() const { return numScheduled_; }

    /**
     * Pure feasibility probe: can @p v issue at (@p cluster,
     * @p cycle)? Returns a plan with feasible=false when not.
     */
    PlacementPlan planPlacement(NodeId v, int cluster,
                                int cycle) const;

    /**
     * Scans cycles from @p from towards @p to (either direction,
     * inclusive) and returns the first feasible plan.
     */
    PlacementPlan planInWindow(NodeId v, int cluster, int from,
                               int to) const;

    /** Commits a feasible plan. State must be unchanged since plan. */
    void apply(const PlacementPlan &plan);

    /**
     * Figure of merit of inserting @p plan (Section 3.3.1 plus the
     * remaining-memory extension): percentage of free resources the
     * insertion consumes, one component per critical resource.
     */
    FigureOfMerit insertionFom(const PlacementPlan &plan) const;

    /**
     * Global utilization figure (bus, per-cluster memory slots,
     * per-cluster MaxLive) used to steer transformations.
     */
    FigureOfMerit globalFom() const;

    /** Comparison threshold configured at construction. */
    double fomThreshold() const { return fomThreshold_; }

    // --- transformations (Section 3.3.2; defined in transforms.cc) ---

    /**
     * Splits the lifetime of the best spill candidate in @p cluster
     * across its widest idle gap (store after the early part, load
     * before the late part). Returns true when applied.
     */
    bool trySpill(int cluster);

    /** Removes one spill in @p cluster if registers allow. */
    bool tryUnspill(int cluster);

    /** Converts one bus transfer to a memory communication. */
    bool tryBusToMem();

    /** Converts one memory communication to a bus transfer. */
    bool tryMemToBus();

    /**
     * Applies transformations while they improve the global figure
     * of merit, starting with the most saturated resource
     * (Section 3.3.3). Returns the number applied.
     */
    int runTransformations();

    // --- queries -------------------------------------------------------

    /**
     * Communications of @p producer's value, keyed by destination
     * cluster. Needed by code emission and by schedule validators.
     */
    const std::map<int, Transfer> &transfersOf(NodeId producer) const;

    /** Spill placement of @p producer's value. */
    SpillInfo spillOf(NodeId producer) const;

    /** Flat schedule length: max finish - min issue over all ops. */
    int scheduleLength() const;

    /** Kernel MaxLive of @p cluster. */
    int maxLive(int cluster) const;

    /** Overhead statistics. */
    ScheduleStats stats() const;

    /** Free slots summed over every bus-class pool. */
    int busFreeSlots() const;

    /** Busy slots summed over every bus-class pool. */
    int busUsedSlots() const;

    /** Total slots summed over every bus-class pool. */
    int busTotalSlots() const;

    /** Free memory slots of @p cluster. */
    int memFreeSlots(int cluster) const;

    /** Underlying machine. */
    const MachineConfig &machine() const { return machine_; }

    /** Underlying graph. */
    const Ddg &ddg() const { return ddg_; }

  private:
    friend class TransformEngine;

    struct PlacedOp
    {
        bool scheduled = false;
        int cluster = -1;
        int cycle = 0;
    };

    /** Logical register state of one value (producer node). */
    struct ValueState
    {
        /** Register-read events per cluster (home: local consumer
         *  reads and transfer reads; dest: consumer reads). */
        std::map<int, std::multiset<int>> events;

        /** Communications keyed by destination cluster. */
        std::map<int, Transfer> transfers;

        bool spilled = false;
        int spillSt = 0;
        int spillLd = 0;

        /** Segments currently registered with the trackers. */
        std::map<int, std::vector<LiveSegment>> registered;
    };

    const Ddg &ddg_;
    const MachineConfig &machine_;
    int ii_;
    double fomThreshold_;
    TransferPolicyOptions transfer_;

    /**
     * planTransfer() scratch (mutable: the method is a const
     * feasibility probe). Cleared, never shrunk, on each call so the
     * steady state allocates nothing. Safe because a PartialSchedule
     * is only ever driven from one thread.
     */
    mutable std::vector<std::vector<std::pair<int, int>>>
        claimedBusScratch_;
    mutable std::vector<std::pair<int, int>> claimedHomeMemScratch_;
    mutable std::vector<std::pair<int, int>> claimedDestMemScratch_;

    std::vector<PlacedOp> placed_;
    int numScheduled_ = 0;
    std::vector<ModuloReservationTable> fuMrt_; ///< cluster-major
    std::vector<ModuloReservationTable> busMrts_; ///< per bus class
    std::vector<LifetimeTracker> regs_;
    std::vector<ValueState> values_;

    std::vector<int> plannedMemOps_; ///< per cluster; empty = global
    int origMemOpsTotal_ = 0;
    std::vector<int> overheadMemOps_; ///< per cluster
    int overheadMemTotal_ = 0;
    int numBusTransfers_ = 0;
    int numMemTransfers_ = 0;
    int numSpills_ = 0;

    // --- helpers -------------------------------------------------------

    ModuloReservationTable &fu(int cluster, FuClass cls);
    const ModuloReservationTable &fu(int cluster, FuClass cls) const;

    int latencyOf(NodeId v) const;
    int occupancyOf(NodeId v) const;
    int writeCycleOf(NodeId v) const;

    /** Effective latency of edge e at this II. */
    int effLat(EdgeId e) const;

    /**
     * True when a register read of value @p p at @p time in the home
     * cluster is compatible with an existing spill split.
     */
    bool homeReadTimeValid(const ValueState &vs, int time) const;

    /**
     * Lifetime segments of (value, cluster) given explicit logical
     * state (pure; used for both current and hypothetical states).
     * Only the presence and the maximum of the read events matter,
     * so the primary overload takes exactly those; the multiset
     * overload is a convenience wrapper for callers that already
     * hold an event set (transforms.cc).
     */
    std::vector<LiveSegment>
    segmentsFromState(int write_cycle, bool has_events, int last_event,
                      bool home, int arrival, bool spilled,
                      int spill_st, int spill_ld) const;
    std::vector<LiveSegment>
    segmentsFromState(int write_cycle, const std::multiset<int> &events,
                      bool home, int arrival, bool spilled,
                      int spill_st, int spill_ld) const;

    /** Current segments of (value, cluster) from logical state. */
    std::vector<LiveSegment> currentSegments(NodeId p,
                                             int cluster) const;

    /** Re-registers (value, cluster) segments to match @p segs. */
    void setRegistered(NodeId p, int cluster,
                       std::vector<LiveSegment> segs);

    /**
     * Finds the first free slot for @p occupancy units in @p mrt
     * scanning @p from towards @p to, treating @p claimed as
     * additionally busy and @p ignore_cycle (occupancy
     * @p ignore_occ, -1 = none) as free. Returns INT_MIN when none.
     */
    static int findSlot(const ModuloReservationTable &mrt, int from,
                        int to, int occupancy,
                        const std::vector<std::pair<int, int>> &claimed,
                        int ignore_cycle, int ignore_occ);

    /**
     * Plans a transfer of @p producer's value to @p dest_cluster
     * with register read >= @p ready and arrival <= @p use, reusing
     * slot claims from @p plan (for intra-placement collisions).
     * Bus classes are probed in the order the TransferCostPolicy
     * dictates — ascending latency under FastestFirst; under
     * SlackAware, classes the ready->use window absorbs with
     * slackMargin cycles to spare come first (slowest first),
     * followed by the remaining classes fastest-first — and memory
     * communication is the fallback. Returns false when impossible.
     */
    bool planTransfer(NodeId producer, int dest_cluster, int ready,
                      int use, const PlacementPlan &plan,
                      TransferPlan &out) const;

    /** Releases the resources held by @p transfer. */
    void releaseTransfer(const Transfer &transfer);

    /** Reserves the resources needed by @p transfer. */
    void reserveTransfer(const Transfer &transfer);

    /** Finish cycle of an op or overhead op for scheduleLength(). */
    void accumulateExtent(int issue, int finish, int &lo,
                          int &hi) const;
};

} // namespace gpsched

#endif // GPSCHED_SCHED_SCHEDULE_HH
