/**
 * @file
 * Register-pressure tracking for one cluster's register file under
 * modulo execution.
 *
 * A value live over flat cycles [from, to] (inclusive) occupies one
 * register at every kernel slot congruent to a covered cycle; a
 * lifetime longer than II occupies several registers at once (the
 * kernel holds multiple overlapping iterations). The tracker keeps
 * exact per-slot live counts; feasibility is MaxLive <= registers,
 * the standard register model for modulo schedules.
 */

#ifndef GPSCHED_SCHED_LIFETIME_HH
#define GPSCHED_SCHED_LIFETIME_HH

#include <vector>

#include "support/arena.hh"

namespace gpsched
{

/** Half-open style is error-prone with wrapping; segments here are
 *  inclusive of both endpoints. */
struct LiveSegment
{
    int from = 0;
    int to = 0; ///< must satisfy to >= from

    /** Covered cycles. */
    int length() const { return to - from + 1; }
};

/** Per-cluster register lifetime tracker. */
class LifetimeTracker
{
  public:
    /**
     * @param num_regs register-file size; @param ii kernel length;
     * @param arena optional per-compile backing store for the count
     *        tables (null = heap).
     */
    LifetimeTracker(int num_regs, int ii,
                    CompileArena *arena = nullptr);

    /** Adds a live segment. */
    void add(const LiveSegment &seg);

    /** Removes a previously added segment. */
    void remove(const LiveSegment &seg);

    /**
     * True when adding @p added and removing @p removed keeps
     * MaxLive within the register file. Pure query.
     */
    bool fitsWithDiff(const std::vector<LiveSegment> &removed,
                      const std::vector<LiveSegment> &added) const;

    /** Current maximum live count over kernel slots. */
    int maxLive() const;

    /** Live count at kernel slot of @p cycle. */
    int liveAt(int cycle) const;

    /** Sum of live counts over the kernel (register-cycles). */
    int usedRegCycles() const { return used_; }

    /** Register-cycles available per kernel iteration. */
    int capacity() const { return numRegs_ * ii_; }

    /** Register file size. */
    int numRegs() const { return numRegs_; }

  private:
    int numRegs_;
    int ii_;
    int used_ = 0;
    ArenaVector<int> live_;

    /**
     * fitsWithDiff() working copy (mutable: the query is pure).
     * Reassigned, never shrunk, per call; single-threaded like the
     * schedule that owns the tracker.
     */
    mutable ArenaVector<int> scratch_;

    /** Applies +delta to every slot covered by @p seg. */
    void apply(const LiveSegment &seg, int delta);

    /** Adds segment coverage of @p seg into @p counts. */
    static void cover(const LiveSegment &seg, int *counts, int ii,
                      int delta);
};

} // namespace gpsched

#endif // GPSCHED_SCHED_LIFETIME_HH
