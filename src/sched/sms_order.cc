#include "sched/sms_order.hh"

#include <algorithm>
#include <set>

#include "graph/scc.hh"
#include "support/logging.hh"

namespace gpsched
{

namespace
{

/** RecMII of one recurrence component, via subgraph extraction. */
int
componentRecMii(const Ddg &ddg, const std::vector<NodeId> &comp,
                const std::vector<int> &component_of, int cid)
{
    Ddg sub("scc");
    std::vector<NodeId> localOf(ddg.numNodes(), invalidNode);
    for (NodeId v : comp)
        localOf[v] = sub.addNode(ddg.node(v).opcode);
    for (NodeId v : comp) {
        for (EdgeId e : ddg.outEdges(v)) {
            const auto &edge = ddg.edge(e);
            if (component_of[edge.dst] == cid) {
                sub.addEdge(localOf[edge.src], localOf[edge.dst],
                            edge.latency, edge.distance, edge.kind);
            }
        }
    }
    return recMii(sub);
}

/** Nodes reachable from @p from (forward=true) or reaching it. */
std::vector<bool>
reachability(const Ddg &ddg, const std::vector<bool> &from,
             bool forward)
{
    std::vector<bool> seen = from;
    std::vector<NodeId> work;
    for (NodeId v = 0; v < ddg.numNodes(); ++v) {
        if (seen[v])
            work.push_back(v);
    }
    while (!work.empty()) {
        NodeId v = work.back();
        work.pop_back();
        const auto &edges = forward ? ddg.outEdges(v)
                                    : ddg.inEdges(v);
        for (EdgeId e : edges) {
            NodeId next = forward ? ddg.edge(e).dst : ddg.edge(e).src;
            if (!seen[next]) {
                seen[next] = true;
                work.push_back(next);
            }
        }
    }
    return seen;
}

} // namespace

SmsNodeSets
computeSmsNodeSets(const Ddg &ddg, const SccDecomposition *shared_sccs)
{
    const int n = ddg.numNodes();
    SmsNodeSets result;
    if (n == 0)
        return result;

    SccDecomposition own_sccs;
    if (!shared_sccs) {
        own_sccs = computeSccs(ddg);
        shared_sccs = &own_sccs;
    }
    const SccDecomposition &sccs = *shared_sccs;

    // --- build the priority-ordered list of node sets -----------------
    struct NodeSet
    {
        std::vector<NodeId> nodes;
        int priority = 0; // recurrence RecMII; 0 for the residue set
    };
    std::vector<NodeSet> sets;
    for (int c = 0; c < sccs.numComponents(); ++c) {
        if (!sccs.isRecurrence[c])
            continue;
        NodeSet set;
        set.nodes = sccs.components[c];
        set.priority =
            componentRecMii(ddg, set.nodes, sccs.componentOf, c);
        sets.push_back(std::move(set));
    }
    std::sort(sets.begin(), sets.end(),
              [](const NodeSet &a, const NodeSet &b) {
                  if (a.priority != b.priority)
                      return a.priority > b.priority;
                  return a.nodes[0] < b.nodes[0];
              });

    // SMS set augmentation: each recurrence set also absorbs the
    // nodes on paths between the union of the previous sets and
    // itself, so intermediate chains are ordered adjacent to both
    // anchors instead of being left for a one-sided residue sweep.
    {
        std::vector<bool> assigned(n, false);
        std::vector<bool> prev(n, false);
        for (NodeSet &set : sets) {
            std::vector<bool> self(n, false);
            for (NodeId v : set.nodes)
                self[v] = true;
            std::vector<bool> from_prev = reachability(ddg, prev, true);
            std::vector<bool> to_self = reachability(ddg, self, false);
            std::vector<bool> from_self = reachability(ddg, self, true);
            std::vector<bool> to_prev = reachability(ddg, prev, false);
            std::vector<NodeId> augmented;
            for (NodeId v = 0; v < n; ++v) {
                bool between = (from_prev[v] && to_self[v]) ||
                               (from_self[v] && to_prev[v]);
                if ((self[v] || between) && !assigned[v])
                    augmented.push_back(v);
            }
            for (NodeId v : augmented) {
                assigned[v] = true;
                prev[v] = true;
            }
            set.nodes = std::move(augmented);
        }
        // Drop sets fully absorbed by earlier ones.
        sets.erase(std::remove_if(sets.begin(), sets.end(),
                                  [](const NodeSet &s) {
                                      return s.nodes.empty();
                                  }),
                   sets.end());
        NodeSet residue;
        for (NodeId v = 0; v < n; ++v) {
            if (!assigned[v])
                residue.nodes.push_back(v);
        }
        if (!residue.nodes.empty())
            sets.push_back(std::move(residue));
    }

    result.sets.reserve(sets.size());
    for (NodeSet &set : sets)
        result.sets.push_back(std::move(set.nodes));
    return result;
}

std::vector<NodeId>
smsOrder(const Ddg &ddg, const DdgAnalysis &analysis,
         const SmsNodeSets &node_sets)
{
    const int n = ddg.numNodes();
    std::vector<NodeId> order;
    if (n == 0)
        return order;
    order.reserve(n);

    // --- alternating sweep --------------------------------------------
    // The ready frontier is a membership bitmap plus a count: the
    // former std::set allocated a tree node per insert in the
    // innermost loop of every scheduling attempt. pick() scans ids in
    // ascending order, matching the set's iteration order, so the
    // chosen node (and thus the whole order) is unchanged.
    std::vector<bool> ordered(n, false);
    std::vector<bool> inCurrentSet(n, false);
    std::vector<bool> ready(n, false);
    int readyCount = 0;

    auto readyInsert = [&](NodeId v) {
        if (!ready[v]) {
            ready[v] = true;
            ++readyCount;
        }
    };
    auto readyErase = [&](NodeId v) {
        if (ready[v]) {
            ready[v] = false;
            --readyCount;
        }
    };

    // The frontier never leaves the current set, and sets are emitted
    // in ascending id order (asserted below), so the scan covers the
    // set's nodes only; the ascending order keeps tie-breaks exact.
    const std::vector<NodeId> *current_set = nullptr;
    auto pick = [&](bool top_down) {
        NodeId best = invalidNode;
        for (NodeId v : *current_set) {
            if (!ready[v])
                continue;
            if (best == invalidNode) {
                best = v;
                continue;
            }
            int pv = top_down ? analysis.height(v) : analysis.depth(v);
            int pb = top_down ? analysis.height(best)
                              : analysis.depth(best);
            if (pv != pb) {
                if (pv > pb)
                    best = v;
                continue;
            }
            if (analysis.mobility(v) != analysis.mobility(best)) {
                if (analysis.mobility(v) < analysis.mobility(best))
                    best = v;
                continue;
            }
            // the scan is ascending, so best stays the lower id
        }
        return best;
    };

    for (const std::vector<NodeId> &set_nodes : node_sets.sets) {
        current_set = &set_nodes;
        for (std::size_t i = 0; i < set_nodes.size(); ++i) {
            GPSCHED_ASSERT(i == 0 ||
                               set_nodes[i - 1] < set_nodes[i],
                           "SMS node set not ascending");
            inCurrentSet[set_nodes[i]] = true;
        }

        // Seeds the ready bitmap from connections to already-ordered
        // nodes; returns the number of seeds found.
        auto seedReady = [&](bool preds_of_ordered) {
            int found = 0;
            for (NodeId v : set_nodes) {
                if (ordered[v])
                    continue;
                const auto &edges = preds_of_ordered
                                        ? ddg.outEdges(v)
                                        : ddg.inEdges(v);
                for (EdgeId e : edges) {
                    NodeId other = preds_of_ordered ? ddg.edge(e).dst
                                                    : ddg.edge(e).src;
                    if (other != v && ordered[other]) {
                        readyInsert(v);
                        ++found;
                        break;
                    }
                }
            }
            return found;
        };

        std::size_t remaining = 0;
        for (NodeId v : set_nodes) {
            if (!ordered[v])
                ++remaining;
        }

        while (remaining > 0) {
            GPSCHED_ASSERT(readyCount == 0, "stale ready frontier");
            bool topDown;
            if (seedReady(false) > 0) {
                topDown = true;
            } else if (seedReady(true) > 0) {
                topDown = false;
            } else {
                // Disconnected from the ordered prefix: seed with the
                // most critical unordered node of the set.
                NodeId seed = invalidNode;
                for (NodeId v : set_nodes) {
                    if (ordered[v])
                        continue;
                    if (seed == invalidNode ||
                        analysis.asap(v) < analysis.asap(seed) ||
                        (analysis.asap(v) == analysis.asap(seed) &&
                         v < seed)) {
                        seed = v;
                    }
                }
                GPSCHED_ASSERT(seed != invalidNode, "no seed found");
                readyInsert(seed);
                topDown = true;
            }

            // Sweep in the chosen direction until the frontier dries
            // up, then flip direction (handled by the outer loop).
            while (readyCount > 0) {
                NodeId v = pick(topDown);
                readyErase(v);
                if (ordered[v])
                    continue;
                ordered[v] = true;
                order.push_back(v);
                --remaining;
                const auto &edges =
                    topDown ? ddg.outEdges(v) : ddg.inEdges(v);
                for (EdgeId e : edges) {
                    NodeId next = topDown ? ddg.edge(e).dst
                                          : ddg.edge(e).src;
                    if (next != v && !ordered[next] &&
                        inCurrentSet[next]) {
                        readyInsert(next);
                    }
                }
            }
        }

        for (NodeId v : set_nodes)
            inCurrentSet[v] = false;
    }

    GPSCHED_ASSERT(static_cast<int>(order.size()) == n,
                   "ordering missed nodes: ", order.size(), " of ", n);
    return order;
}

std::vector<NodeId>
smsOrder(const Ddg &ddg, const DdgAnalysis &analysis)
{
    return smsOrder(ddg, analysis, computeSmsNodeSets(ddg));
}

} // namespace gpsched
