/**
 * @file
 * Swing-Modulo-Scheduling node ordering (Llosa et al., PACT'96),
 * used by every scheduler in this repository (paper Section 3.3.3).
 *
 * Nodes are grouped into sets: recurrence SCCs first, ordered by
 * decreasing recurrence-limited MII (most constrained first), then
 * the remaining nodes. Within the sweep, nodes are appended so that
 * each one has either predecessors or successors already ordered
 * (never both sides unordered), alternating top-down / bottom-up;
 * this lets the scheduler place each node adjacent to its already
 * scheduled neighbours, keeping lifetimes short.
 *
 * Priorities within the ready set follow the SMS spirit: top-down
 * picks the candidate with the greatest height (most critical going
 * forward), bottom-up the greatest depth; ties prefer lower
 * mobility, then lower id (determinism).
 */

#ifndef GPSCHED_SCHED_SMS_ORDER_HH
#define GPSCHED_SCHED_SMS_ORDER_HH

#include <vector>

#include "graph/ddg.hh"
#include "graph/ddg_analysis.hh"

namespace gpsched
{

/** Computes the SMS scheduling order of all nodes of @p ddg. */
std::vector<NodeId> smsOrder(const Ddg &ddg,
                             const DdgAnalysis &analysis);

} // namespace gpsched

#endif // GPSCHED_SCHED_SMS_ORDER_HH
