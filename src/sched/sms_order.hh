/**
 * @file
 * Swing-Modulo-Scheduling node ordering (Llosa et al., PACT'96),
 * used by every scheduler in this repository (paper Section 3.3.3).
 *
 * Nodes are grouped into sets: recurrence SCCs first, ordered by
 * decreasing recurrence-limited MII (most constrained first), then
 * the remaining nodes. Within the sweep, nodes are appended so that
 * each one has either predecessors or successors already ordered
 * (never both sides unordered), alternating top-down / bottom-up;
 * this lets the scheduler place each node adjacent to its already
 * scheduled neighbours, keeping lifetimes short.
 *
 * Priorities within the ready set follow the SMS spirit: top-down
 * picks the candidate with the greatest height (most critical going
 * forward), bottom-up the greatest depth; ties prefer lower
 * mobility, then lower id (determinism).
 *
 * The grouping (SCCs, per-recurrence RecMII, path augmentation) is a
 * property of the graph alone, while the sweep priorities depend on
 * the candidate II. Schedulers probe many IIs over one DDG, so the
 * grouping is exposed separately (computeSmsNodeSets) for reuse
 * across attempts — the per-recurrence RecMII subgraph searches
 * dominated scheduling profiles when recomputed per attempt.
 */

#ifndef GPSCHED_SCHED_SMS_ORDER_HH
#define GPSCHED_SCHED_SMS_ORDER_HH

#include <vector>

#include "graph/ddg.hh"
#include "graph/ddg_analysis.hh"
#include "graph/scc.hh"

namespace gpsched
{

/** II-independent SMS node grouping of one DDG: recurrence sets in
 *  decreasing-RecMII order (path-augmented), then the residue. */
struct SmsNodeSets
{
    std::vector<std::vector<NodeId>> sets;
};

/**
 * Computes the SMS node sets of @p ddg. @p sccs optionally shares a
 * precomputed SCC decomposition (null = compute one internally).
 */
SmsNodeSets computeSmsNodeSets(const Ddg &ddg,
                               const SccDecomposition *sccs = nullptr);

/**
 * Computes the SMS scheduling order of all nodes of @p ddg using the
 * precomputed @p sets (which must come from the same graph).
 */
std::vector<NodeId> smsOrder(const Ddg &ddg,
                             const DdgAnalysis &analysis,
                             const SmsNodeSets &sets);

/** Convenience form: groups and sweeps in one call. */
std::vector<NodeId> smsOrder(const Ddg &ddg,
                             const DdgAnalysis &analysis);

} // namespace gpsched

#endif // GPSCHED_SCHED_SMS_ORDER_HH
