/**
 * @file
 * Minimum initiation interval: MII = max(ResMII, RecMII).
 *
 * ResMII is resource-limited (total FU occupancy of each class over
 * the machine-wide units of that class — the partition-independent
 * lower bound the GP scheme feeds to the partitioner); RecMII is
 * recurrence-limited (graph/ddg_analysis).
 */

#ifndef GPSCHED_SCHED_MII_HH
#define GPSCHED_SCHED_MII_HH

#include "graph/ddg.hh"
#include "machine/machine.hh"

namespace gpsched
{

/** Resource-limited minimum II over machine-wide resources. */
int resMii(const Ddg &ddg, const MachineConfig &machine);

/**
 * max(resMii, recMii); the paper's MII input to partitioning.
 *
 * Throws CompileError (kind InvalidInput) when a flow edge of
 * @p ddg promises less latency than @p machine's opcode table
 * provides — such a loop cannot be scheduled consistently, and the
 * rejection is recoverable per loop (see support/compile_error.hh).
 */
int computeMii(const Ddg &ddg, const MachineConfig &machine);

} // namespace gpsched

#endif // GPSCHED_SCHED_MII_HH
