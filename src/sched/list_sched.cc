#include "sched/list_sched.hh"

#include <algorithm>
#include <climits>
#include <map>

#include "support/logging.hh"

namespace gpsched
{

namespace
{

/** Growable per-cycle usage table for one resource pool. */
class CycleTable
{
  public:
    explicit CycleTable(int units) : units_(units) {}

    bool
    canUse(int cycle, int occupancy) const
    {
        for (int i = 0; i < occupancy; ++i) {
            int c = cycle + i;
            int used = c < static_cast<int>(busy_.size()) ? busy_[c]
                                                          : 0;
            if (used + 1 > units_)
                return false;
        }
        return true;
    }

    void
    use(int cycle, int occupancy)
    {
        int need = cycle + occupancy;
        if (static_cast<int>(busy_.size()) < need)
            busy_.resize(need, 0);
        for (int i = 0; i < occupancy; ++i)
            ++busy_[cycle + i];
    }

  private:
    int units_;
    std::vector<int> busy_;
};

/** Height (critical path to any sink) over distance-0 edges. */
std::vector<int>
acyclicHeights(const Ddg &ddg, const LatencyTable &lat)
{
    const int n = ddg.numNodes();
    std::vector<int> indeg_rev(n, 0);
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        const DdgEdge &edge = ddg.edge(e);
        if (edge.distance == 0)
            ++indeg_rev[edge.src];
    }
    std::vector<int> height(n, 0);
    for (NodeId v = 0; v < n; ++v)
        height[v] = lat.latency(ddg.node(v).opcode);
    std::vector<NodeId> ready;
    for (NodeId v = 0; v < n; ++v) {
        if (indeg_rev[v] == 0)
            ready.push_back(v);
    }
    std::size_t head = 0;
    while (head < ready.size()) {
        NodeId v = ready[head++];
        for (EdgeId e : ddg.inEdges(v)) {
            const DdgEdge &edge = ddg.edge(e);
            if (edge.distance != 0 || edge.src == v)
                continue;
            NodeId u = edge.src;
            height[u] =
                std::max(height[u], lat.latency(ddg.node(u).opcode) +
                                        height[v]);
            if (--indeg_rev[u] == 0)
                ready.push_back(u);
        }
    }
    return height;
}

} // namespace

ListScheduleResult
listSchedule(const Ddg &ddg, const MachineConfig &machine)
{
    const LatencyTable &lat = machine.latencies();
    const int n = ddg.numNodes();
    const int num_clusters = machine.numClusters();
    const int num_bus_classes = machine.numBusClasses();

    ListScheduleResult result;
    result.cycle.assign(n, 0);
    result.cluster.assign(n, 0);
    if (n == 0)
        return result;

    std::vector<int> height = acyclicHeights(ddg, lat);

    // Ready list over the distance-0 dependence DAG.
    std::vector<int> indeg(n, 0);
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        const DdgEdge &edge = ddg.edge(e);
        if (edge.distance == 0 && edge.src != edge.dst)
            ++indeg[edge.dst];
    }

    std::vector<CycleTable> fus;
    fus.reserve(num_clusters * numFuClasses);
    for (int c = 0; c < num_clusters; ++c) {
        for (int cls = 0; cls < numFuClasses; ++cls) {
            fus.emplace_back(
                machine.fuInCluster(c, static_cast<FuClass>(cls)));
        }
    }
    std::vector<CycleTable> buses;
    buses.reserve(num_bus_classes);
    for (int bc = 0; bc < num_bus_classes; ++bc)
        buses.emplace_back(machine.busClass(bc).count);
    // Earliest arrival over every bus class for a value ready at
    // @p read; fills @p best_bc / @p best_cycle for the commit path.
    auto earliestArrival = [&](int read, int &best_bc,
                               int &best_cycle) {
        int best = INT_MAX;
        best_bc = -1;
        best_cycle = 0;
        for (int bc = 0; bc < num_bus_classes; ++bc) {
            const int cls_lat = machine.busLatencyOf(bc);
            int b = read;
            while (!buses[bc].canUse(b, cls_lat))
                ++b;
            if (b + cls_lat < best) {
                best = b + cls_lat;
                best_bc = bc;
                best_cycle = b;
            }
        }
        return best;
    };
    std::vector<int> ops_in_cluster(num_clusters, 0);
    // Per (producer, cluster): arrival cycle of a value already
    // transferred there, so one transfer serves several consumers.
    std::map<std::pair<NodeId, int>, int> arrivals;
    std::vector<bool> placed(n, false);

    std::vector<NodeId> ready;
    for (NodeId v = 0; v < n; ++v) {
        if (indeg[v] == 0)
            ready.push_back(v);
    }

    int placed_count = 0;
    while (placed_count < n) {
        GPSCHED_ASSERT(!ready.empty(),
                       "distance-0 dependence cycle in DDG");
        // Pick the ready node with the greatest height.
        std::size_t best = 0;
        for (std::size_t i = 1; i < ready.size(); ++i) {
            NodeId a = ready[i], b = ready[best];
            if (height[a] > height[b] ||
                (height[a] == height[b] && a < b)) {
                best = i;
            }
        }
        NodeId v = ready[best];
        ready.erase(ready.begin() + static_cast<long>(best));

        const Opcode op = ddg.node(v).opcode;
        const FuClass cls = fuClassOf(op);
        const int occ = lat.occupancy(op);

        // Greedy cluster choice: earliest issue, then least loaded.
        // Clusters lacking the op's FU class entirely can never issue
        // it (and probing them would scan cycles forever); the
        // machine invariant of >= 1 unit per class machine-wide
        // guarantees some cluster remains.
        int best_cluster = -1, best_cycle = INT_MAX;
        for (int c = 0; c < num_clusters; ++c) {
            if (machine.fuInCluster(c, cls) == 0)
                continue;
            int earliest = 0;
            bool infeasible = false;
            for (EdgeId e : ddg.inEdges(v)) {
                const DdgEdge &edge = ddg.edge(e);
                if (edge.distance != 0 || edge.src == v)
                    continue;
                NodeId p = edge.src;
                int ready_at = result.cycle[p] + edge.latency;
                if (edge.isFlow() && result.cluster[p] != c) {
                    auto it = arrivals.find({p, c});
                    if (it != arrivals.end()) {
                        ready_at = it->second;
                    } else if (num_bus_classes == 0) {
                        infeasible = true;
                        break;
                    } else {
                        // Transfer as soon as the value is ready.
                        int read = result.cycle[p] + edge.latency;
                        int bc, b;
                        ready_at = earliestArrival(read, bc, b);
                    }
                }
                earliest = std::max(earliest, ready_at);
            }
            if (infeasible)
                continue;
            int cycle = earliest;
            while (!fus[c * numFuClasses + static_cast<int>(cls)]
                        .canUse(cycle, occ)) {
                ++cycle;
            }
            if (best_cluster == -1 || cycle < best_cycle ||
                (cycle == best_cycle &&
                 ops_in_cluster[c] < ops_in_cluster[best_cluster])) {
                best_cycle = cycle;
                best_cluster = c;
            }
        }
        GPSCHED_ASSERT(best_cluster != -1,
                       "list scheduler found no feasible cluster");

        // Commit: allocate the transfers this placement relies on,
        // then recompute the exact earliest issue from the actual
        // arrival cycles (the probe above was only an estimate).
        int earliest = 0;
        for (EdgeId e : ddg.inEdges(v)) {
            const DdgEdge &edge = ddg.edge(e);
            if (edge.distance != 0 || edge.src == v)
                continue;
            NodeId p = edge.src;
            int ready_at = result.cycle[p] + edge.latency;
            if (edge.isFlow() && result.cluster[p] != best_cluster) {
                auto key = std::make_pair(p, best_cluster);
                auto it = arrivals.find(key);
                if (it == arrivals.end()) {
                    int read = result.cycle[p] + edge.latency;
                    int bc, b;
                    int arrival = earliestArrival(read, bc, b);
                    buses[bc].use(b, machine.busLatencyOf(bc));
                    it = arrivals.emplace(key, arrival).first;
                    ++result.busTransfers;
                }
                ready_at = it->second;
            }
            earliest = std::max(earliest, ready_at);
        }
        best_cycle = std::max(best_cycle, earliest);
        while (!fus[best_cluster * numFuClasses +
                    static_cast<int>(cls)]
                    .canUse(best_cycle, occ)) {
            ++best_cycle;
        }
        fus[best_cluster * numFuClasses + static_cast<int>(cls)]
            .use(best_cycle, occ);
        result.cycle[v] = best_cycle;
        result.cluster[v] = best_cluster;
        ops_in_cluster[best_cluster] += 1;
        placed[v] = true;
        ++placed_count;

        for (EdgeId e : ddg.outEdges(v)) {
            const DdgEdge &edge = ddg.edge(e);
            if (edge.distance != 0 || edge.dst == v)
                continue;
            if (--indeg[edge.dst] == 0)
                ready.push_back(edge.dst);
        }
    }

    int makespan = 0;
    for (NodeId v = 0; v < n; ++v) {
        makespan = std::max(makespan,
                            result.cycle[v] +
                                lat.latency(ddg.node(v).opcode));
    }
    result.scheduleLength = makespan;
    return result;
}

} // namespace gpsched
