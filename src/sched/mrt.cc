#include "sched/mrt.hh"

#include "support/logging.hh"

namespace gpsched
{

ModuloReservationTable::ModuloReservationTable(int num_units, int ii)
    : numUnits_(num_units), ii_(ii)
{
    GPSCHED_ASSERT(num_units >= 0, "negative unit count");
    GPSCHED_ASSERT(ii >= 1, "II must be >= 1");
    busy_.assign(ii, 0);
}

bool
ModuloReservationTable::canReserve(int cycle, int occupancy) const
{
    GPSCHED_ASSERT(occupancy >= 1, "occupancy must be >= 1");
    if (occupancy >= ii_) {
        // The op busies every kernel slot at least once; it fits only
        // if every slot has a unit free for the required multiplicity.
        int full = occupancy / ii_;
        int rem = occupancy % ii_;
        for (int s = 0; s < ii_; ++s) {
            int need = full + (wrapSlot(s - cycle, ii_) < rem ? 1 : 0);
            if (busy_[s] + need > numUnits_)
                return false;
        }
        return true;
    }
    for (int i = 0; i < occupancy; ++i) {
        if (busy_[wrapSlot(cycle + i, ii_)] + 1 > numUnits_)
            return false;
    }
    return true;
}

void
ModuloReservationTable::reserve(int cycle, int occupancy)
{
    GPSCHED_ASSERT(canReserve(cycle, occupancy),
                   "reserve without canReserve");
    for (int i = 0; i < occupancy; ++i)
        ++busy_[wrapSlot(cycle + i, ii_)];
    used_ += occupancy;
}

void
ModuloReservationTable::release(int cycle, int occupancy)
{
    for (int i = 0; i < occupancy; ++i) {
        int slot = wrapSlot(cycle + i, ii_);
        GPSCHED_ASSERT(busy_[slot] > 0, "release of free slot");
        --busy_[slot];
    }
    used_ -= occupancy;
}

int
ModuloReservationTable::busyAt(int cycle) const
{
    return busy_[wrapSlot(cycle, ii_)];
}

} // namespace gpsched
