#include "sched/mrt.hh"

#include <algorithm>
#include <climits>

#include "support/arena.hh"
#include "support/logging.hh"

namespace gpsched
{

namespace
{

/** Mask of bits [lo, hi] inclusive, 0 <= lo <= hi <= 63. */
inline std::uint64_t
bitsMask(int lo, int hi)
{
    std::uint64_t m = hi >= 63 ? ~0ull : ((1ull << (hi + 1)) - 1);
    return m & (~0ull << lo);
}

/** A linear slot range [a, b], both inclusive. */
struct Lin
{
    int a = 0;
    int b = 0;
};

/**
 * Splits the wrapped range of @p len slots starting at slot @p s0
 * (0 <= s0 < ii, 0 <= len <= ii) into at most two linear parts.
 * Returns the part count.
 */
inline int
splitRange(int s0, int len, int ii, Lin parts[2])
{
    if (len <= 0)
        return 0;
    if (s0 + len <= ii) {
        parts[0] = {s0, s0 + len - 1};
        return 1;
    }
    parts[0] = {s0, ii - 1};
    parts[1] = {0, s0 + len - 1 - ii};
    return 2;
}

} // namespace

void
ModuloReservationTable::attachStorage(int total, CompileArena *arena)
{
    if (total <= kInlineWords) {
        planes_ = inline_;
        return;
    }
    if (arena != nullptr) {
        planes_ = arena->makeArray<std::uint64_t>(
            static_cast<std::size_t>(total));
        return;
    }
    heap_.assign(static_cast<std::size_t>(total), 0);
    planes_ = heap_.data();
}

ModuloReservationTable::ModuloReservationTable(int num_units, int ii,
                                               CompileArena *arena)
    : numUnits_(num_units), ii_(ii)
{
    GPSCHED_ASSERT(num_units >= 0, "negative unit count");
    GPSCHED_ASSERT(ii >= 1, "II must be >= 1");
    words_ = (ii + 63) / 64;
    const int total = numUnits_ * words_;
    attachStorage(total, arena);
    std::fill(planes_, planes_ + total, 0);
}

ModuloReservationTable::ModuloReservationTable(
    const ModuloReservationTable &other)
    : numUnits_(other.numUnits_), ii_(other.ii_), used_(other.used_),
      words_(other.words_)
{
    const int total = numUnits_ * words_;
    attachStorage(total, nullptr);
    std::copy(other.planes_, other.planes_ + total, planes_);
}

ModuloReservationTable &
ModuloReservationTable::operator=(const ModuloReservationTable &other)
{
    if (this == &other)
        return *this;
    numUnits_ = other.numUnits_;
    ii_ = other.ii_;
    used_ = other.used_;
    words_ = other.words_;
    const int total = numUnits_ * words_;
    attachStorage(total, nullptr);
    std::copy(other.planes_, other.planes_ + total, planes_);
    return *this;
}

bool
ModuloReservationTable::rangeClear(int l, int s0, int len) const
{
    const std::uint64_t *pl = plane(l);
    Lin parts[2];
    const int n = splitRange(s0, len, ii_, parts);
    for (int p = 0; p < n; ++p) {
        const int wa = parts[p].a >> 6, wb = parts[p].b >> 6;
        for (int w = wa; w <= wb; ++w) {
            const int lo = w == wa ? parts[p].a & 63 : 0;
            const int hi = w == wb ? parts[p].b & 63 : 63;
            if (pl[w] & bitsMask(lo, hi))
                return false;
        }
    }
    return true;
}

bool
ModuloReservationTable::clearOutsideRange(int l, int s0, int len) const
{
    const std::uint64_t *pl = plane(l);
    Lin parts[2];
    const int n = splitRange(s0, len, ii_, parts);
    for (int w = 0; w < words_; ++w) {
        std::uint64_t allowed = 0;
        for (int p = 0; p < n; ++p) {
            const int lo = std::max(parts[p].a, w << 6);
            const int hi = std::min(parts[p].b, (w << 6) + 63);
            if (lo <= hi)
                allowed |= bitsMask(lo - (w << 6), hi - (w << 6));
        }
        if (pl[w] & ~allowed)
            return false;
    }
    return true;
}

void
ModuloReservationTable::incrementRange(int s0, int len)
{
    Lin parts[2];
    const int n = splitRange(s0, len, ii_, parts);
    for (int p = 0; p < n; ++p) {
        const int wa = parts[p].a >> 6, wb = parts[p].b >> 6;
        for (int w = wa; w <= wb; ++w) {
            const int lo = w == wa ? parts[p].a & 63 : 0;
            const int hi = w == wb ? parts[p].b & 63 : 63;
            // Word-parallel per-slot increment: each slot bit moves
            // to the lowest plane not yet covering it (the planes
            // are nested, so that is exactly busy+1).
            std::uint64_t carry = bitsMask(lo, hi);
            for (int l = 0; l < numUnits_ && carry; ++l) {
                std::uint64_t *pl = plane(l);
                const std::uint64_t add = carry & ~pl[w];
                pl[w] |= add;
                carry &= ~add;
            }
            GPSCHED_ASSERT(carry == 0, "reserve without canReserve");
        }
    }
}

void
ModuloReservationTable::decrementRange(int s0, int len)
{
    Lin parts[2];
    const int n = splitRange(s0, len, ii_, parts);
    for (int p = 0; p < n; ++p) {
        const int wa = parts[p].a >> 6, wb = parts[p].b >> 6;
        for (int w = wa; w <= wb; ++w) {
            const int lo = w == wa ? parts[p].a & 63 : 0;
            const int hi = w == wb ? parts[p].b & 63 : 63;
            // Mirror image of incrementRange: clear each slot's
            // highest covering plane.
            std::uint64_t carry = bitsMask(lo, hi);
            for (int l = numUnits_ - 1; l >= 0 && carry; --l) {
                std::uint64_t *pl = plane(l);
                const std::uint64_t take = carry & pl[w];
                pl[w] &= ~take;
                carry &= ~take;
            }
            GPSCHED_ASSERT(carry == 0, "release of free slot");
        }
    }
}

bool
ModuloReservationTable::canReserve(int cycle, int occupancy) const
{
    GPSCHED_ASSERT(occupancy >= 1, "occupancy must be >= 1");
    if (numUnits_ == 0)
        return false;
    if (occupancy >= ii_) {
        // The op busies every kernel slot `full` times plus one more
        // over a `rem`-slot window: in-window slots need busy <=
        // units-full-1 (plane units-full-1 clear), the rest busy <=
        // units-full (plane units-full clear; nesting makes the
        // in-window part of that plane follow from the first check).
        const int full = occupancy / ii_;
        const int rem = occupancy % ii_;
        if (full > numUnits_)
            return false;
        if (rem == 0)
            return clearOutsideRange(numUnits_ - full, 0, 0);
        if (full == numUnits_)
            return false;
        const int s0 = wrapSlot(cycle, ii_);
        return rangeClear(numUnits_ - full - 1, s0, rem) &&
               clearOutsideRange(numUnits_ - full, s0, rem);
    }
    return rangeClear(numUnits_ - 1, wrapSlot(cycle, ii_), occupancy);
}

void
ModuloReservationTable::reserve(int cycle, int occupancy)
{
    GPSCHED_ASSERT(occupancy >= 1, "occupancy must be >= 1");
    // One pass: the carry walk itself panics when a slot lacks a
    // free unit, so no separate canReserve pre-check is needed.
    const int full = occupancy / ii_;
    const int rem = occupancy % ii_;
    const int s0 = wrapSlot(cycle, ii_);
    for (int i = 0; i < full; ++i)
        incrementRange(0, ii_);
    incrementRange(s0, rem);
    used_ += occupancy;
}

void
ModuloReservationTable::release(int cycle, int occupancy)
{
    GPSCHED_ASSERT(occupancy >= 1, "occupancy must be >= 1");
    const int full = occupancy / ii_;
    const int rem = occupancy % ii_;
    const int s0 = wrapSlot(cycle, ii_);
    for (int i = 0; i < full; ++i)
        decrementRange(0, ii_);
    decrementRange(s0, rem);
    used_ -= occupancy;
}

int
ModuloReservationTable::firstFit(int from, int to, int occupancy) const
{
    GPSCHED_ASSERT(occupancy >= 1, "occupancy must be >= 1");
    if (numUnits_ == 0)
        return INT_MIN;
    const int step = from <= to ? 1 : -1;
    if (occupancy >= ii_ || words_ > kInlineWords) {
        // Multiplicity (or oversized-table) path: plain scan.
        for (int c = from;; c += step) {
            if (canReserve(c, occupancy))
                return c;
            if (c == to)
                break;
        }
        return INT_MIN;
    }

    // Blocked-start mask over the kernel slots: start s infeasible
    // iff any of slots s..s+occ-1 has its top-plane bit set. Built
    // by OR-ing occ down-rotations of the top plane.
    std::uint64_t blocked[kInlineWords];
    std::uint64_t cur[kInlineWords];
    const std::uint64_t *top = plane(numUnits_ - 1);
    for (int w = 0; w < words_; ++w)
        blocked[w] = cur[w] = top[w];
    const int last = ii_ - 1;
    for (int i = 1; i < occupancy; ++i) {
        const std::uint64_t wrap = cur[0] & 1;
        for (int w = 0; w < words_; ++w) {
            const std::uint64_t in =
                w + 1 < words_ ? cur[w + 1] & 1 : 0;
            cur[w] = (cur[w] >> 1) | (in << 63);
        }
        cur[last >> 6] |= wrap << (last & 63);
        for (int w = 0; w < words_; ++w)
            blocked[w] |= cur[w];
    }

    if (step == 1) {
        // Whole-word probing: one word op tests up to 64 start
        // slots; fully-blocked words are skipped outright.
        long long c = from;
        while (true) {
            const int s = wrapSlot(static_cast<int>(c), ii_);
            const int wi = s >> 6;
            std::uint64_t free = ~blocked[wi] & (~0ull << (s & 63));
            if (wi == words_ - 1 && (ii_ & 63) != 0)
                free &= (1ull << (ii_ & 63)) - 1;
            if (free != 0) {
                const int slot = (wi << 6) + __builtin_ctzll(free);
                const long long cand = c + (slot - s);
                return cand > to ? INT_MIN
                                 : static_cast<int>(cand);
            }
            const int word_end = std::min((wi + 1) << 6, ii_);
            c += word_end - s;
            if (c > to)
                return INT_MIN;
        }
    }
    // Descending scans are short in practice (latest-load probes):
    // per-cycle bit tests suffice.
    for (int c = from;; --c) {
        const int s = wrapSlot(c, ii_);
        if (((blocked[s >> 6] >> (s & 63)) & 1) == 0)
            return c;
        if (c == to)
            break;
    }
    return INT_MIN;
}

int
ModuloReservationTable::busyAt(int cycle) const
{
    const int s = wrapSlot(cycle, ii_);
    const int w = s >> 6;
    const std::uint64_t bit = 1ull << (s & 63);
    int count = 0;
    while (count < numUnits_ && (plane(count)[w] & bit) != 0)
        ++count;
    return count;
}

} // namespace gpsched
