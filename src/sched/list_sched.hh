/**
 * @file
 * Cluster-aware list scheduling, the fallback for loops whose
 * initiation interval grows past the point where modulo scheduling
 * pays off (paper Section 4.1: "for these cases, list scheduling is
 * applied").
 *
 * One iteration is scheduled acyclically: only intra-iteration
 * (distance 0) dependences constrain issue cycles, since iterations
 * do not overlap under list scheduling. Nodes are placed greedily in
 * critical-path (height) order; cross-cluster flow dependences
 * allocate a bus transfer and delay the consumer by the bus latency.
 * Register pressure is not modelled: without software pipelining,
 * lifetimes are bounded by the flat schedule and spilling is rarely
 * needed on these machines.
 */

#ifndef GPSCHED_SCHED_LIST_SCHED_HH
#define GPSCHED_SCHED_LIST_SCHED_HH

#include <cstdint>
#include <vector>

#include "graph/ddg.hh"
#include "machine/machine.hh"

namespace gpsched
{

/** Outcome of list scheduling one loop iteration. */
struct ListScheduleResult
{
    /** Cycles of one iteration (issue of first op to last result). */
    int scheduleLength = 0;

    /** Issue cycle of every node. */
    std::vector<int> cycle;

    /** Cluster of every node. */
    std::vector<int> cluster;

    /** Inter-cluster transfers allocated. */
    int busTransfers = 0;

    /** Total cycles for @p niter non-overlapped iterations. */
    std::int64_t totalCycles(std::int64_t niter) const
    {
        return niter * scheduleLength;
    }
};

/** List-schedules one iteration of @p ddg on @p machine. */
ListScheduleResult listSchedule(const Ddg &ddg,
                                const MachineConfig &machine);

} // namespace gpsched

#endif // GPSCHED_SCHED_LIST_SCHED_HH
