#include "sched/schedule.hh"

#include <algorithm>
#include <climits>
#include <map>
#include <utility>

#include "support/logging.hh"
#include "support/telemetry.hh"

namespace gpsched
{

namespace
{

/** Clamped percentage of @p free consumed by @p delta. */
double
consumedPct(int delta, int free)
{
    if (delta <= 0)
        return 0.0;
    if (free <= 0)
        return 200.0;
    return 100.0 * delta / free;
}

/** Utilization percentage used/total with a zero-total guard. */
double
usedPct(int used, int total)
{
    if (total <= 0)
        return used > 0 ? 200.0 : 0.0;
    return 100.0 * used / total;
}

/** Total lifetime length of a segment list. */
int
totalLength(const std::vector<LiveSegment> &segs)
{
    int total = 0;
    for (const auto &seg : segs)
        total += seg.length();
    return total;
}

} // namespace

PartialSchedule::PartialSchedule(const Ddg &ddg,
                                 const MachineConfig &machine, int ii,
                                 std::vector<int> planned_mem_per_cluster,
                                 double fom_threshold,
                                 TransferPolicyOptions transfer,
                                 CompileArena *arena)
    : ddg_(ddg), machine_(machine), ii_(ii),
      fomThreshold_(fom_threshold), transfer_(transfer),
      plannedMemOps_(std::move(planned_mem_per_cluster))
{
    GPSCHED_ASSERT(ii >= 1, "II must be >= 1");
    const int num_clusters = machine_.numClusters();
    GPSCHED_ASSERT(plannedMemOps_.empty() ||
                   static_cast<int>(plannedMemOps_.size()) ==
                       num_clusters,
                   "planned memory vector arity mismatch");

    placed_.resize(ddg_.numNodes());
    values_.resize(ddg_.numNodes());
    claimedBusScratch_.resize(machine_.numBusClasses());
    busMrts_.reserve(machine_.numBusClasses());
    for (int i = 0; i < machine_.numBusClasses(); ++i)
        busMrts_.emplace_back(machine_.busClass(i).count, ii, arena);
    fuMrt_.reserve(num_clusters * numFuClasses);
    for (int c = 0; c < num_clusters; ++c) {
        for (int cls = 0; cls < numFuClasses; ++cls) {
            fuMrt_.emplace_back(
                machine_.fuInCluster(c, static_cast<FuClass>(cls)),
                ii, arena);
        }
    }
    regs_.reserve(num_clusters);
    for (int c = 0; c < num_clusters; ++c)
        regs_.emplace_back(machine_.regsInCluster(c), ii, arena);
    overheadMemOps_.assign(num_clusters, 0);
    origMemOpsTotal_ =
        ddg_.totalOccupancy(FuClass::Mem, machine_.latencies());
}

ModuloReservationTable &
PartialSchedule::fu(int cluster, FuClass cls)
{
    return fuMrt_[cluster * numFuClasses + static_cast<int>(cls)];
}

const ModuloReservationTable &
PartialSchedule::fu(int cluster, FuClass cls) const
{
    return fuMrt_[cluster * numFuClasses + static_cast<int>(cls)];
}

bool
PartialSchedule::isScheduled(NodeId v) const
{
    return placed_[v].scheduled;
}

int
PartialSchedule::cycleOf(NodeId v) const
{
    GPSCHED_ASSERT(isScheduled(v), "cycleOf of unscheduled node ", v);
    return placed_[v].cycle;
}

int
PartialSchedule::clusterOf(NodeId v) const
{
    GPSCHED_ASSERT(isScheduled(v), "clusterOf of unscheduled node ", v);
    return placed_[v].cluster;
}

int
PartialSchedule::latencyOf(NodeId v) const
{
    return machine_.latencies().latency(ddg_.node(v).opcode);
}

int
PartialSchedule::occupancyOf(NodeId v) const
{
    return machine_.latencies().occupancy(ddg_.node(v).opcode);
}

int
PartialSchedule::writeCycleOf(NodeId v) const
{
    return cycleOf(v) + latencyOf(v);
}

int
PartialSchedule::effLat(EdgeId e) const
{
    const DdgEdge &edge = ddg_.edge(e);
    return edge.latency - ii_ * edge.distance;
}

int
PartialSchedule::memFreeSlots(int cluster) const
{
    return fu(cluster, FuClass::Mem).freeSlots();
}

int
PartialSchedule::busFreeSlots() const
{
    int free = 0;
    for (const ModuloReservationTable &mrt : busMrts_)
        free += mrt.freeSlots();
    return free;
}

int
PartialSchedule::busUsedSlots() const
{
    int used = 0;
    for (const ModuloReservationTable &mrt : busMrts_)
        used += mrt.usedSlots();
    return used;
}

int
PartialSchedule::busTotalSlots() const
{
    int total = 0;
    for (const ModuloReservationTable &mrt : busMrts_)
        total += mrt.totalSlots();
    return total;
}

bool
PartialSchedule::homeReadTimeValid(const ValueState &vs, int time) const
{
    if (!vs.spilled)
        return true;
    int reload =
        vs.spillLd + machine_.latencies().latency(Opcode::SpillLd);
    return time <= vs.spillSt || time >= reload;
}

std::vector<LiveSegment>
PartialSchedule::segmentsFromState(int write_cycle, bool has_events,
                                   int last_event, bool home,
                                   int arrival, bool spilled,
                                   int spill_st, int spill_ld) const
{
    std::vector<LiveSegment> segs;
    if (home) {
        if (!spilled) {
            int last = write_cycle;
            if (has_events)
                last = std::max(last, last_event);
            segs.push_back({write_cycle, last});
        } else {
            int reload = spill_ld +
                machine_.latencies().latency(Opcode::SpillLd);
            segs.push_back({write_cycle, spill_st});
            int last = has_events ? last_event : INT_MIN;
            if (last >= reload)
                segs.push_back({reload, last});
        }
    } else {
        if (!has_events)
            return segs;
        int last = std::max(last_event, arrival);
        segs.push_back({arrival, last});
    }
    return segs;
}

std::vector<LiveSegment>
PartialSchedule::segmentsFromState(int write_cycle,
                                   const std::multiset<int> &events,
                                   bool home, int arrival, bool spilled,
                                   int spill_st, int spill_ld) const
{
    return segmentsFromState(write_cycle, !events.empty(),
                             events.empty() ? INT_MIN
                                            : *events.rbegin(),
                             home, arrival, spilled, spill_st,
                             spill_ld);
}

std::vector<LiveSegment>
PartialSchedule::currentSegments(NodeId p, int cluster) const
{
    const ValueState &vs = values_[p];
    auto ev_it = vs.events.find(cluster);
    static const std::multiset<int> no_events;
    const std::multiset<int> &events =
        ev_it == vs.events.end() ? no_events : ev_it->second;
    bool home = placed_[p].cluster == cluster;
    int arrival = 0;
    if (!home) {
        auto t_it = vs.transfers.find(cluster);
        if (t_it == vs.transfers.end())
            return {};
        arrival = t_it->second.arrivalCycle;
    }
    return segmentsFromState(writeCycleOf(p), events, home, arrival,
                             vs.spilled, vs.spillSt, vs.spillLd);
}

void
PartialSchedule::setRegistered(NodeId p, int cluster,
                               std::vector<LiveSegment> segs)
{
    ValueState &vs = values_[p];
    auto it = vs.registered.find(cluster);
    if (it != vs.registered.end()) {
        for (const auto &seg : it->second)
            regs_[cluster].remove(seg);
    }
    for (const auto &seg : segs)
        regs_[cluster].add(seg);
    if (segs.empty()) {
        if (it != vs.registered.end())
            vs.registered.erase(it);
    } else {
        vs.registered[cluster] = std::move(segs);
    }
}

int
PartialSchedule::findSlot(const ModuloReservationTable &mrt, int from,
                          int to, int occupancy,
                          const std::vector<std::pair<int, int>> &claimed,
                          int ignore_cycle, int ignore_occ)
{
    if (claimed.empty() && (ignore_cycle == INT_MIN || ignore_occ <= 0))
        return mrt.firstFit(from, to, occupancy);
    ModuloReservationTable probe = mrt;
    if (ignore_cycle != INT_MIN && ignore_occ > 0)
        probe.release(ignore_cycle, ignore_occ);
    for (const auto &[cycle, occ] : claimed) {
        if (!probe.canReserve(cycle, occ))
            return INT_MIN; // claims already exhaust the pool
        probe.reserve(cycle, occ);
    }
    return probe.firstFit(from, to, occupancy);
}

bool
PartialSchedule::planTransfer(NodeId producer, int dest_cluster,
                              int ready, int use,
                              const PlacementPlan &plan,
                              TransferPlan &out) const
{
    // Totals-only phase (no Chrome event): planTransfer runs nested
    // inside ModuloSchedule thousands of times per compile.
    GPSCHED_PHASE_SPAN(TransferPlanning);
    const ValueState &vs = values_[producer];
    const int home = producer == plan.node ? plan.cluster
                                           : placed_[producer].cluster;
    GPSCHED_ASSERT(home != dest_cluster,
                   "transfer within a single cluster");
    const LatencyTable &lat = machine_.latencies();
    const int num_bus_classes = machine_.numBusClasses();
    const int lat_st = lat.latency(Opcode::CommSt);
    const int occ_st = lat.occupancy(Opcode::CommSt);
    const int lat_ld = lat.latency(Opcode::CommLd);
    const int occ_ld = lat.occupancy(Opcode::CommLd);

    // Collect the slots other parts of this plan already claim, and
    // the slots freed when an existing transfer is being replaced.
    // The collections are persistent scratch: planTransfer runs
    // thousands of times per compile and the steady state must not
    // allocate.
    std::vector<std::vector<std::pair<int, int>>> &claimed_bus =
        claimedBusScratch_;
    for (auto &per_class : claimed_bus)
        per_class.clear();
    std::vector<std::pair<int, int>> &claimed_home_mem =
        claimedHomeMemScratch_;
    std::vector<std::pair<int, int>> &claimed_dest_mem =
        claimedDestMemScratch_;
    claimed_home_mem.clear();
    claimed_dest_mem.clear();
    if (plan.node != invalidNode &&
        fuClassOf(ddg_.node(plan.node).opcode) == FuClass::Mem) {
        int op_occ = lat.occupancy(ddg_.node(plan.node).opcode);
        if (plan.cluster == home)
            claimed_home_mem.push_back({plan.cycle, op_occ});
        if (plan.cluster == dest_cluster)
            claimed_dest_mem.push_back({plan.cycle, op_occ});
    }
    for (const auto &tp : plan.transfers) {
        const Transfer &t = tp.transfer;
        int t_home = t.producer == plan.node
                         ? plan.cluster
                         : placed_[t.producer].cluster;
        if (t.viaBus) {
            claimed_bus[t.busClass].push_back(
                {t.busCycle, machine_.busLatencyOf(t.busClass)});
            continue;
        }
        if (t_home == home)
            claimed_home_mem.push_back({t.stCycle, occ_st});
        if (t_home == dest_cluster)
            claimed_dest_mem.push_back({t.stCycle, occ_st});
        if (t.destCluster == home)
            claimed_home_mem.push_back({t.ldCycle, occ_ld});
        if (t.destCluster == dest_cluster)
            claimed_dest_mem.push_back({t.ldCycle, occ_ld});
    }
    int ign_bus_class = -1, ign_bus_cycle = INT_MIN, ign_bus_occ = 0;
    int ign_home_cycle = INT_MIN, ign_home_occ = 0;
    int ign_dest_cycle = INT_MIN, ign_dest_occ = 0;
    auto old_it = vs.transfers.find(dest_cluster);
    if (old_it != vs.transfers.end()) {
        const Transfer &old = old_it->second;
        if (old.viaBus) {
            ign_bus_class = old.busClass;
            ign_bus_cycle = old.busCycle;
            ign_bus_occ = machine_.busLatencyOf(old.busClass);
        } else {
            ign_home_cycle = old.stCycle;
            ign_home_occ = occ_st;
            ign_dest_cycle = old.ldCycle;
            ign_dest_occ = occ_ld;
        }
    }

    // The producer's spill split (if any) restricts home read times to
    // at most two intervals, so a fixed-size result avoids a heap
    // allocation per probe.
    struct ReadRanges
    {
        std::pair<int, int> r[2];
        int n = 0;
    };
    auto valid_ranges = [&](int lo, int hi) {
        ReadRanges ranges;
        if (lo > hi)
            return ranges;
        if (!vs.spilled || producer == plan.node) {
            ranges.r[ranges.n++] = {lo, hi};
            return ranges;
        }
        int reload = vs.spillLd + lat.latency(Opcode::SpillLd);
        if (lo <= std::min(hi, vs.spillSt))
            ranges.r[ranges.n++] = {lo, std::min(hi, vs.spillSt)};
        if (std::max(lo, reload) <= hi)
            ranges.r[ranges.n++] = {std::max(lo, reload), hi};
        return ranges;
    };

    // Bus first, classes probed in cost-model order (within a class
    // the earliest read slot keeps the home lifetime shortest).
    // Under SlackAware, classes the ready->use window absorbs with
    // slackMargin cycles to spare are probed first — slowest of them
    // first, parking slack-rich transfers on slow buses so the fast
    // classes stay free for tight (critical-recurrence) windows.
    // The remaining classes — the complete set under FastestFirst,
    // for tight windows, or with a single class — are probed
    // fastest-first (ascending latency), the legacy greedy rule.
    auto probe_class = [&](int bc) {
        const int lat_bus = machine_.busLatencyOf(bc);
        const ReadRanges ranges = valid_ranges(ready, use - lat_bus);
        for (int i = 0; i < ranges.n; ++i) {
            const auto [lo, hi] = ranges.r[i];
            int b = findSlot(busMrts_[bc], lo, hi, lat_bus,
                             claimed_bus[bc],
                             bc == ign_bus_class ? ign_bus_cycle
                                                 : INT_MIN,
                             bc == ign_bus_class ? ign_bus_occ : 0);
            if (b == INT_MIN)
                continue;
            out.transfer = Transfer{producer, dest_cluster, true,
                                    bc, b, 0, 0, b, b + lat_bus};
            return true;
        }
        return false;
    };
    auto steered_slow = [&](int bc) {
        return transfer_.costModel == TransferCostPolicy::SlackAware &&
               num_bus_classes > 1 &&
               machine_.busLatencyOf(bc) + transfer_.slackMargin <=
                   use - ready;
    };
    for (int bc = num_bus_classes - 1; bc >= 0; --bc) {
        if (steered_slow(bc) && probe_class(bc))
            return true;
    }
    for (int bc = 0; bc < num_bus_classes; ++bc) {
        if (!steered_slow(bc) && probe_class(bc))
            return true;
    }

    // Communication through memory: earliest store, latest load.
    const ModuloReservationTable &home_mem = fu(home, FuClass::Mem);
    const ModuloReservationTable &dest_mem =
        fu(dest_cluster, FuClass::Mem);
    const ReadRanges mem_ranges =
        valid_ranges(ready, use - lat_ld - lat_st);
    for (int i = 0; i < mem_ranges.n; ++i) {
        const auto [lo, hi] = mem_ranges.r[i];
        int st = lo;
        while (st <= hi) {
            st = findSlot(home_mem, st, hi, occ_st, claimed_home_mem,
                          ign_home_cycle, ign_home_occ);
            if (st == INT_MIN)
                break;
            int ld = findSlot(dest_mem, use - lat_ld, st + lat_st,
                              occ_ld, claimed_dest_mem, ign_dest_cycle,
                              ign_dest_occ);
            if (ld != INT_MIN) {
                out.transfer = Transfer{producer, dest_cluster, false,
                                        0, 0, st, ld, st,
                                        ld + lat_ld};
                return true;
            }
            ++st;
        }
    }
    return false;
}

PlacementPlan
PartialSchedule::planPlacement(NodeId v, int cluster, int cycle) const
{
    GPSCHED_ASSERT(!isScheduled(v), "node ", v, " already scheduled");
    GPSCHED_ASSERT(cluster >= 0 && cluster < machine_.numClusters(),
                   "cluster out of range");
    const int num_clusters = machine_.numClusters();

    PlacementPlan plan;
    plan.node = v;
    plan.cluster = cluster;
    plan.cycle = cycle;

    const Opcode op = ddg_.node(v).opcode;
    const LatencyTable &lat = machine_.latencies();

    // --- 1. necessary precedence bounds ------------------------------
    for (EdgeId eid : ddg_.inEdges(v)) {
        const DdgEdge &e = ddg_.edge(eid);
        if (e.src == v) {
            // Self edge: start(v) >= start(v) + lat - II*dist.
            if (effLat(eid) > 0)
                return plan;
            continue;
        }
        if (!isScheduled(e.src))
            continue;
        if (cycle < placed_[e.src].cycle + effLat(eid))
            return plan;
    }
    for (EdgeId eid : ddg_.outEdges(v)) {
        const DdgEdge &e = ddg_.edge(eid);
        if (e.dst == v || !isScheduled(e.dst))
            continue;
        if (cycle > placed_[e.dst].cycle - effLat(eid))
            return plan;
    }

    // --- 2. functional unit ------------------------------------------
    const FuClass cls = fuClassOf(op);
    const int occ = lat.occupancy(op);
    if (!fu(cluster, cls).canReserve(cycle, occ))
        return plan;

    // Deltas are only read off feasible plans; allocating them after
    // the precedence/FU early-outs keeps rejected probes free of
    // heap traffic (the window scans reject far more than they keep).
    plan.memSlotsDelta.assign(num_clusters, 0);
    plan.overheadMemDelta.assign(num_clusters, 0);
    plan.regCyclesDelta.assign(num_clusters, 0);

    // Every plan vector is bounded by the node degree, so one exact
    // reservation here replaces the doubling reallocations that used
    // to dominate the surviving probes' allocation profile.
    const std::size_t n_in = ddg_.inEdges(v).size();
    const std::size_t n_out = ddg_.outEdges(v).size();
    plan.eventAdds.reserve(n_in + n_out + 1);
    plan.eventMoves.reserve(n_in);
    plan.transfers.reserve(n_in + n_out);

    if (cls == FuClass::Mem)
        plan.memSlotsDelta[cluster] += occ;

    const int occ_st = lat.occupancy(Opcode::CommSt);
    const int occ_ld = lat.occupancy(Opcode::CommLd);
    auto add_transfer_deltas = [&](const TransferPlan &tp, int home) {
        if (tp.transfer.viaBus) {
            plan.busSlotsDelta +=
                machine_.busLatencyOf(tp.transfer.busClass);
        } else {
            plan.memSlotsDelta[home] += occ_st;
            plan.memSlotsDelta[tp.transfer.destCluster] += occ_ld;
            plan.overheadMemDelta[home] += occ_st;
            plan.overheadMemDelta[tp.transfer.destCluster] += occ_ld;
        }
        if (!tp.replaces)
            return;
        const Transfer &old =
            values_[tp.transfer.producer].transfers.at(
                tp.transfer.destCluster);
        if (old.viaBus) {
            plan.busSlotsDelta -= machine_.busLatencyOf(old.busClass);
        } else {
            plan.memSlotsDelta[home] -= occ_st;
            plan.memSlotsDelta[tp.transfer.destCluster] -= occ_ld;
            plan.overheadMemDelta[home] -= occ_st;
            plan.overheadMemDelta[tp.transfer.destCluster] -= occ_ld;
        }
    };

    // --- 3. incoming values -------------------------------------------
    // Cross-cluster producers, grouped by producer in ascending node
    // order. A flat (producer, edge) list sorted stably replaces the
    // former std::map<NodeId, std::vector<EdgeId>>: the iteration
    // order (sorted keys, insertion order within a key) is identical
    // and the placement probe loop stops allocating tree nodes.
    std::vector<std::pair<NodeId, EdgeId>> cross_in;
    cross_in.reserve(n_in);
    std::vector<int> own_events; // reads of v's value in its cluster
    own_events.reserve(n_in + n_out);
    for (EdgeId eid : ddg_.inEdges(v)) {
        const DdgEdge &e = ddg_.edge(eid);
        if (!e.isFlow())
            continue;
        if (e.src == v) {
            // Loop-carried self dependence: v reads its own value.
            own_events.push_back(cycle + ii_ * e.distance);
            continue;
        }
        if (!isScheduled(e.src))
            continue;
        int use = cycle + ii_ * e.distance;
        if (placed_[e.src].cluster == cluster) {
            if (!homeReadTimeValid(values_[e.src], use))
                return plan;
            plan.eventAdds.push_back({e.src, cluster, use});
        } else {
            cross_in.emplace_back(e.src, eid);
        }
    }
    std::stable_sort(cross_in.begin(), cross_in.end(),
                     [](const std::pair<NodeId, EdgeId> &a,
                        const std::pair<NodeId, EdgeId> &b) {
                         return a.first < b.first;
                     });
    for (std::size_t gi = 0; gi < cross_in.size();) {
        const NodeId p = cross_in[gi].first;
        std::size_t ge = gi;
        while (ge < cross_in.size() && cross_in[ge].first == p)
            ++ge;
        int use_min = INT_MAX;
        for (std::size_t k = gi; k < ge; ++k)
            use_min = std::min(
                use_min,
                cycle + ii_ * ddg_.edge(cross_in[k].second).distance);
        const ValueState &vs = values_[p];
        auto t_it = vs.transfers.find(cluster);
        bool reuse = t_it != vs.transfers.end() &&
                     t_it->second.arrivalCycle <= use_min;
        if (!reuse) {
            TransferPlan tp;
            if (!planTransfer(p, cluster, writeCycleOf(p), use_min,
                              plan, tp)) {
                return plan;
            }
            tp.replaces = t_it != vs.transfers.end();
            int home = placed_[p].cluster;
            if (tp.replaces) {
                plan.eventMoves.push_back({p, home,
                                           t_it->second.readCycle,
                                           tp.transfer.readCycle});
            } else {
                plan.eventAdds.push_back(
                    {p, home, tp.transfer.readCycle});
            }
            add_transfer_deltas(tp, home);
            plan.transfers.push_back(tp);
        }
        for (std::size_t k = gi; k < ge; ++k) {
            plan.eventAdds.push_back(
                {p, cluster,
                 cycle + ii_ * ddg_.edge(cross_in[k].second).distance});
        }
        gi = ge;
    }

    // --- 4. outgoing values to already-scheduled consumers -------------
    // (dest cluster, use) pairs, grouped like cross_in above.
    std::vector<std::pair<int, int>> cross_out;
    cross_out.reserve(n_out);
    for (EdgeId eid : ddg_.outEdges(v)) {
        const DdgEdge &e = ddg_.edge(eid);
        if (!e.isFlow() || e.dst == v || !isScheduled(e.dst))
            continue;
        int use = placed_[e.dst].cycle + ii_ * e.distance;
        if (placed_[e.dst].cluster == cluster)
            own_events.push_back(use);
        else
            cross_out.emplace_back(placed_[e.dst].cluster, use);
    }
    std::stable_sort(cross_out.begin(), cross_out.end(),
                     [](const std::pair<int, int> &a,
                        const std::pair<int, int> &b) {
                         return a.first < b.first;
                     });
    for (std::size_t gi = 0; gi < cross_out.size();) {
        const int dest = cross_out[gi].first;
        std::size_t ge = gi;
        int use_min = INT_MAX;
        while (ge < cross_out.size() && cross_out[ge].first == dest) {
            use_min = std::min(use_min, cross_out[ge].second);
            ++ge;
        }
        TransferPlan tp;
        if (!planTransfer(v, dest, cycle + latencyOf(v), use_min, plan,
                          tp)) {
            return plan;
        }
        add_transfer_deltas(tp, cluster);
        plan.transfers.push_back(tp);
        own_events.push_back(tp.transfer.readCycle);
        for (std::size_t k = gi; k < ge; ++k)
            plan.eventAdds.push_back({v, dest, cross_out[k].second});
        gi = ge;
    }
    if (definesValue(op)) {
        for (int t : own_events)
            plan.eventAdds.push_back({v, cluster, t});
    } else {
        GPSCHED_ASSERT(own_events.empty() && cross_out.empty(),
                       "flow edge out of a non-defining op");
    }

    // --- 5. lifetime changes -------------------------------------------
    struct PairDelta
    {
        std::vector<int> adds;
        std::vector<std::pair<int, int>> moves;
        const TransferPlan *newTransfer = nullptr;
    };
    // Flat (value, cluster) -> delta table: the handful of touched
    // pairs per plan makes a linear probe plus one final sort cheaper
    // than a std::map, and the sorted-key iteration below stays
    // byte-identical to the map it replaced.
    std::vector<std::pair<std::pair<NodeId, int>, PairDelta>> touched;
    touched.reserve(plan.eventAdds.size() + plan.eventMoves.size() +
                    plan.transfers.size() + 1);
    auto touch = [&](NodeId val, int cl) -> PairDelta & {
        for (auto &entry : touched) {
            if (entry.first.first == val && entry.first.second == cl)
                return entry.second;
        }
        touched.emplace_back(std::make_pair(val, cl), PairDelta{});
        return touched.back().second;
    };
    for (const auto &ea : plan.eventAdds)
        touch(ea.value, ea.cluster).adds.push_back(ea.time);
    for (const auto &em : plan.eventMoves) {
        touch(em.value, em.cluster)
            .moves.push_back({em.oldTime, em.newTime});
    }
    for (const auto &tp : plan.transfers) {
        touch(tp.transfer.producer, tp.transfer.destCluster)
            .newTransfer = &tp;
    }
    if (definesValue(op))
        touch(v, cluster); // the definition itself occupies a reg
    std::sort(touched.begin(), touched.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });

    plan.pairChanges.reserve(touched.size());
    for (const auto &[key, delta] : touched) {
        const auto [val, cl] = key;
        PairChange pc;
        pc.value = val;
        pc.cluster = cl;
        const ValueState &vs = values_[val];
        auto reg_it = vs.registered.find(cl);
        if (reg_it != vs.registered.end())
            pc.before = reg_it->second;

        // segmentsFromState only needs the presence and maximum of
        // the read events, so the common no-move case derives both
        // without copying the multiset; event moves can lower the
        // maximum, so they fall back to a working copy.
        auto ev_it = vs.events.find(cl);
        bool has_events = false;
        int last_event = INT_MIN;
        if (delta.moves.empty()) {
            if (ev_it != vs.events.end() && !ev_it->second.empty()) {
                has_events = true;
                last_event = *ev_it->second.rbegin();
            }
        } else {
            std::multiset<int> events;
            if (ev_it != vs.events.end())
                events = ev_it->second;
            for (const auto &[from, to] : delta.moves) {
                auto pos = events.find(from);
                GPSCHED_ASSERT(pos != events.end(),
                               "event move of unknown time");
                events.erase(pos);
                events.insert(to);
            }
            if (!events.empty()) {
                has_events = true;
                last_event = *events.rbegin();
            }
        }
        for (int t : delta.adds) {
            has_events = true;
            last_event = std::max(last_event, t);
        }

        bool home = val == v ? cl == cluster
                             : placed_[val].cluster == cl;
        int write = val == v ? cycle + latencyOf(v) : writeCycleOf(val);
        int arrival = 0;
        if (!home) {
            if (delta.newTransfer)
                arrival = delta.newTransfer->transfer.arrivalCycle;
            else
                arrival = vs.transfers.at(cl).arrivalCycle;
        }
        bool spilled = val != v && vs.spilled;
        pc.after = segmentsFromState(write, has_events, last_event,
                                     home, arrival, spilled,
                                     vs.spillSt, vs.spillLd);
        plan.regCyclesDelta[cl] +=
            totalLength(pc.after) - totalLength(pc.before);
        plan.pairChanges.push_back(std::move(pc));
    }

    // --- 6. register feasibility per cluster ---------------------------
    std::vector<LiveSegment> removed, added;
    for (int c = 0; c < num_clusters; ++c) {
        removed.clear();
        added.clear();
        for (const auto &pc : plan.pairChanges) {
            if (pc.cluster != c)
                continue;
            removed.insert(removed.end(), pc.before.begin(),
                           pc.before.end());
            added.insert(added.end(), pc.after.begin(), pc.after.end());
        }
        if (removed.empty() && added.empty())
            continue;
        if (!regs_[c].fitsWithDiff(removed, added))
            return plan;
    }

    plan.feasible = true;
    return plan;
}

PlacementPlan
PartialSchedule::planInWindow(NodeId v, int cluster, int from,
                              int to) const
{
    const ModuloReservationTable &unit =
        fu(cluster, fuClassOf(ddg_.node(v).opcode));
    const int occ = occupancyOf(v);
    const int step = from <= to ? 1 : -1;
    for (int cycle = from;;) {
        // A cycle whose FU pool cannot host v is infeasible no
        // matter what, so jump straight to the next free slot
        // (word-accelerated) instead of probing every cycle.
        cycle = unit.firstFit(cycle, to, occ);
        if (cycle == INT_MIN)
            break;
        PlacementPlan plan = planPlacement(v, cluster, cycle);
        if (plan.feasible)
            return plan;
        if (cycle == to)
            break;
        cycle += step;
    }
    PlacementPlan fail;
    fail.node = v;
    fail.cluster = cluster;
    return fail;
}

void
PartialSchedule::reserveTransfer(const Transfer &transfer)
{
    const LatencyTable &lat = machine_.latencies();
    if (transfer.viaBus) {
        busMrts_[transfer.busClass].reserve(
            transfer.busCycle,
            machine_.busLatencyOf(transfer.busClass));
        ++numBusTransfers_;
        return;
    }
    int home = placed_[transfer.producer].cluster;
    int occ_st = lat.occupancy(Opcode::CommSt);
    int occ_ld = lat.occupancy(Opcode::CommLd);
    fu(home, FuClass::Mem).reserve(transfer.stCycle, occ_st);
    fu(transfer.destCluster, FuClass::Mem)
        .reserve(transfer.ldCycle, occ_ld);
    overheadMemOps_[home] += occ_st;
    overheadMemOps_[transfer.destCluster] += occ_ld;
    overheadMemTotal_ += occ_st + occ_ld;
    ++numMemTransfers_;
}

void
PartialSchedule::releaseTransfer(const Transfer &transfer)
{
    const LatencyTable &lat = machine_.latencies();
    if (transfer.viaBus) {
        busMrts_[transfer.busClass].release(
            transfer.busCycle,
            machine_.busLatencyOf(transfer.busClass));
        --numBusTransfers_;
        return;
    }
    int home = placed_[transfer.producer].cluster;
    int occ_st = lat.occupancy(Opcode::CommSt);
    int occ_ld = lat.occupancy(Opcode::CommLd);
    fu(home, FuClass::Mem).release(transfer.stCycle, occ_st);
    fu(transfer.destCluster, FuClass::Mem)
        .release(transfer.ldCycle, occ_ld);
    overheadMemOps_[home] -= occ_st;
    overheadMemOps_[transfer.destCluster] -= occ_ld;
    overheadMemTotal_ -= occ_st + occ_ld;
    --numMemTransfers_;
}

void
PartialSchedule::apply(const PlacementPlan &plan)
{
    GPSCHED_ASSERT(plan.feasible, "apply of infeasible plan");
    GPSCHED_ASSERT(!isScheduled(plan.node), "double apply");

    const Opcode op = ddg_.node(plan.node).opcode;
    fu(plan.cluster, fuClassOf(op))
        .reserve(plan.cycle, occupancyOf(plan.node));
    placed_[plan.node] = {true, plan.cluster, plan.cycle};
    ++numScheduled_;

    for (const auto &em : plan.eventMoves) {
        auto &events = values_[em.value].events[em.cluster];
        auto pos = events.find(em.oldTime);
        GPSCHED_ASSERT(pos != events.end(), "stale event move");
        events.erase(pos);
        events.insert(em.newTime);
    }
    for (const auto &ea : plan.eventAdds)
        values_[ea.value].events[ea.cluster].insert(ea.time);

    for (const auto &tp : plan.transfers) {
        ValueState &vs = values_[tp.transfer.producer];
        if (tp.replaces) {
            releaseTransfer(vs.transfers.at(tp.transfer.destCluster));
        }
        vs.transfers[tp.transfer.destCluster] = tp.transfer;
        reserveTransfer(tp.transfer);
    }

    for (const auto &pc : plan.pairChanges)
        setRegistered(pc.value, pc.cluster, pc.after);
}

FigureOfMerit
PartialSchedule::insertionFom(const PlacementPlan &plan) const
{
    const int num_clusters = machine_.numClusters();
    FigureOfMerit fom;
    fom.addComponent(
        consumedPct(plan.busSlotsDelta, busFreeSlots()));
    for (int c = 0; c < num_clusters; ++c)
        fom.addComponent(
            consumedPct(plan.memSlotsDelta[c], memFreeSlots(c)));
    for (int c = 0; c < num_clusters; ++c) {
        int free = regs_[c].capacity() - regs_[c].usedRegCycles();
        fom.addComponent(consumedPct(plan.regCyclesDelta[c], free));
    }
    if (plannedMemOps_.empty()) {
        int budget = 0;
        for (int c = 0; c < num_clusters; ++c)
            budget += fu(c, FuClass::Mem).totalSlots();
        budget -= origMemOpsTotal_;
        int delta = 0;
        for (int c = 0; c < num_clusters; ++c)
            delta += plan.overheadMemDelta[c];
        fom.addComponent(
            consumedPct(delta, budget - overheadMemTotal_));
    } else {
        for (int c = 0; c < num_clusters; ++c) {
            int budget = fu(c, FuClass::Mem).totalSlots() -
                         plannedMemOps_[c];
            fom.addComponent(consumedPct(plan.overheadMemDelta[c],
                                         budget - overheadMemOps_[c]));
        }
    }
    return fom;
}

FigureOfMerit
PartialSchedule::globalFom() const
{
    const int num_clusters = machine_.numClusters();
    FigureOfMerit fom;
    fom.addComponent(usedPct(busUsedSlots(), busTotalSlots()));
    for (int c = 0; c < num_clusters; ++c) {
        const auto &mem = fu(c, FuClass::Mem);
        fom.addComponent(usedPct(mem.usedSlots(), mem.totalSlots()));
    }
    for (int c = 0; c < num_clusters; ++c)
        fom.addComponent(
            usedPct(regs_[c].maxLive(), regs_[c].numRegs()));
    if (plannedMemOps_.empty()) {
        int budget = 0;
        for (int c = 0; c < num_clusters; ++c)
            budget += fu(c, FuClass::Mem).totalSlots();
        budget -= origMemOpsTotal_;
        fom.addComponent(usedPct(overheadMemTotal_, budget));
    } else {
        for (int c = 0; c < num_clusters; ++c) {
            int budget = fu(c, FuClass::Mem).totalSlots() -
                         plannedMemOps_[c];
            fom.addComponent(usedPct(overheadMemOps_[c], budget));
        }
    }
    return fom;
}

void
PartialSchedule::accumulateExtent(int issue, int finish, int &lo,
                                  int &hi) const
{
    lo = std::min(lo, issue);
    hi = std::max(hi, finish);
}

int
PartialSchedule::scheduleLength() const
{
    const LatencyTable &lat = machine_.latencies();
    int lo = INT_MAX, hi = INT_MIN;
    for (NodeId v = 0; v < ddg_.numNodes(); ++v) {
        if (!placed_[v].scheduled)
            continue;
        accumulateExtent(placed_[v].cycle,
                         placed_[v].cycle + latencyOf(v), lo, hi);
        const ValueState &vs = values_[v];
        for (const auto &[dest, t] : vs.transfers) {
            if (t.viaBus) {
                accumulateExtent(t.busCycle, t.arrivalCycle, lo, hi);
            } else {
                accumulateExtent(t.stCycle,
                                 t.stCycle +
                                     lat.latency(Opcode::CommSt),
                                 lo, hi);
                accumulateExtent(t.ldCycle, t.arrivalCycle, lo, hi);
            }
        }
        if (vs.spilled) {
            accumulateExtent(vs.spillSt,
                             vs.spillSt + lat.latency(Opcode::SpillSt),
                             lo, hi);
            accumulateExtent(vs.spillLd,
                             vs.spillLd + lat.latency(Opcode::SpillLd),
                             lo, hi);
        }
    }
    return hi == INT_MIN ? 0 : hi - lo;
}

const std::map<int, Transfer> &
PartialSchedule::transfersOf(NodeId producer) const
{
    return values_[producer].transfers;
}

SpillInfo
PartialSchedule::spillOf(NodeId producer) const
{
    const ValueState &vs = values_[producer];
    return {vs.spilled, vs.spillSt, vs.spillLd};
}

int
PartialSchedule::maxLive(int cluster) const
{
    return regs_[cluster].maxLive();
}

ScheduleStats
PartialSchedule::stats() const
{
    ScheduleStats stats;
    stats.busTransfers = numBusTransfers_;
    stats.memTransfers = numMemTransfers_;
    stats.spills = numSpills_;
    stats.overheadMemOps = 2 * numMemTransfers_ + 2 * numSpills_;
    return stats;
}

} // namespace gpsched
