/**
 * @file
 * The integrated modulo scheduler (paper Section 3.3; Codina et
 * al.'s URACAM framework).
 *
 * One engine serves every evaluated scheme; they differ only in the
 * cluster policy used when a node is placed:
 *
 *  - FreeChoice      every cluster is a candidate and the figure of
 *                    merit picks the winner. This is the URACAM
 *                    baseline (and the unified machine, trivially).
 *  - PreferAssigned  the GP scheme: the cluster chosen by the graph
 *                    partition is tried first and kept whenever
 *                    feasible; other clusters are considered only
 *                    when the assigned one fails (Figure 1, (b)).
 *  - AssignedOnly    the Fixed Partition variant: a node may only go
 *                    to its assigned cluster (Figure 1, (a)).
 *
 * Nodes are visited in SMS order. When a node fits in no allowed
 * cluster the Section-3.3.2 transformations are run to shift
 * pressure between resources and the node is retried once. Under
 * PreferAssigned a node that still fails then deviates to the other
 * clusters; deviating only after the transform-and-retry step means
 * the GP scheme follows the Fixed Partition trajectory exactly for
 * as long as that trajectory is viable, so at an equal II on the
 * same partition GP can never produce a worse schedule than Fixed.
 * If every allowed cluster fails the attempt is abandoned and the
 * driver increases the initiation interval.
 */

#ifndef GPSCHED_SCHED_URACAM_HH
#define GPSCHED_SCHED_URACAM_HH

#include <optional>

#include "graph/ddg.hh"
#include "graph/ddg_analysis.hh"
#include "graph/scc.hh"
#include "machine/machine.hh"
#include "partition/partition.hh"
#include "sched/schedule.hh"
#include "sched/sms_order.hh"

namespace gpsched
{

/** Cluster-selection policy of one scheduling attempt. */
enum class ClusterPolicy
{
    FreeChoice,     ///< URACAM: figure of merit picks the cluster
    PreferAssigned, ///< GP: partition first, deviate on failure
    AssignedOnly,   ///< Fixed Partition: never deviate
};

/** Tuning knobs of the modulo scheduler. */
struct ModuloSchedulerOptions
{
    /** Significant-difference threshold for figure-of-merit
     *  comparisons (percentage points). */
    double fomThreshold = 10.0;
};

/** Integrated modulo scheduler over a PartialSchedule. */
class ModuloScheduler
{
  public:
    /** References must outlive the scheduler. */
    ModuloScheduler(const Ddg &ddg, const MachineConfig &machine,
                    ModuloSchedulerOptions options = {});

    /**
     * Attempts a complete schedule into the fresh schedule @p ps
     * (constructed for the same DDG/machine and the candidate II).
     *
     * @param policy cluster-selection policy
     * @param assignment node-to-cluster map; required for
     *        PreferAssigned/AssignedOnly, ignored for FreeChoice
     * @return true when every node was placed
     */
    bool schedule(PartialSchedule &ps, ClusterPolicy policy,
                  const Partition *assignment) const;

  private:
    const Ddg &ddg_;
    const MachineConfig &machine_;
    ModuloSchedulerOptions options_;

    // The DDG is fixed for the scheduler's lifetime while the driver
    // probes many IIs, so the II-independent per-graph work (SCC
    // decomposition and the SMS node grouping with its per-recurrence
    // RecMII searches) is computed once on first use and reused by
    // every attempt. Lazily built in schedule(), hence mutable; one
    // scheduler is only ever driven from a single compile thread.
    mutable std::optional<SccDecomposition> sccs_;
    mutable std::optional<SmsNodeSets> smsSets_;

    /**
     * Places one node; returns false when no allowed cluster accepts
     * it. @p deviate widens a PreferAssigned attempt from the
     * assigned cluster to every other cluster; it is ignored for the
     * other policies.
     */
    bool placeNode(PartialSchedule &ps, NodeId v, ClusterPolicy policy,
                   const Partition *assignment,
                   const DdgAnalysis &analysis,
                   bool deviate) const;
};

} // namespace gpsched

#endif // GPSCHED_SCHED_URACAM_HH
