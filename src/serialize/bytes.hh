/**
 * @file
 * Endian-stable binary primitives for the serialization subsystem.
 *
 * ByteWriter appends fixed-width little-endian integers, IEEE-754
 * doubles (by bit pattern, so round trips are exact) and
 * length-prefixed strings to a growing buffer. ByteReader is its
 * bounds-checked inverse: every accessor checks the remaining input
 * first and, on underflow, latches a sticky failure flag and returns
 * a zero value instead of reading out of bounds. Decoders built on
 * the reader can therefore consume arbitrary untrusted bytes —
 * truncated, bit-flipped or plain garbage — and report failure
 * instead of crashing, which is the contract the on-disk compile
 * cache depends on (engine/disk_cache.hh).
 *
 * The encoding is independent of host byte order and of the widths
 * of C++ implementation types: a record written on any supported
 * platform decodes on any other.
 */

#ifndef GPSCHED_SERIALIZE_BYTES_HH
#define GPSCHED_SERIALIZE_BYTES_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace gpsched
{

/** Appends little-endian primitives to a byte buffer. */
class ByteWriter
{
  public:
    void u8(std::uint8_t value);
    void u32(std::uint32_t value);
    void u64(std::uint64_t value);

    /** Two's-complement via the unsigned encodings. */
    void i32(std::int32_t value);
    void i64(std::int64_t value);

    /** IEEE-754 bit pattern; NaNs round trip bit-exactly. */
    void f64(double value);

    /** u32 byte length followed by the raw bytes. */
    void str(const std::string &value);

    /** Raw bytes, no length prefix. */
    void raw(const void *data, std::size_t size);

    const std::string &buffer() const { return buffer_; }
    std::string take() { return std::move(buffer_); }

  private:
    std::string buffer_;
};

/** Bounds-checked reader over an immutable byte buffer. */
class ByteReader
{
  public:
    /** @p bytes must outlive the reader. */
    ByteReader(const void *bytes, std::size_t size);
    explicit ByteReader(const std::string &bytes);

    /** False once any read ran past the end. Sticky. */
    bool ok() const { return ok_; }

    /** True when every byte has been consumed (and no read failed). */
    bool atEnd() const { return ok_ && pos_ == size_; }

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return size_ - pos_; }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int32_t i32();
    std::int64_t i64();
    double f64();

    /**
     * Length-prefixed string. Fails (and returns empty) when the
     * prefix exceeds the remaining input, so a corrupt length can
     * never trigger a huge allocation.
     */
    std::string str();

  private:
    /** Claims @p n bytes; false (and latches failure) on underflow. */
    bool claim(std::size_t n);

    const unsigned char *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace gpsched

#endif // GPSCHED_SERIALIZE_BYTES_HH
