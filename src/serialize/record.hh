/**
 * @file
 * Versioned binary codec for the persistent compile cache: the full
 * LoopKey and the full CompiledLoop — metrics, per-node placements,
 * transfers (including the bus class each one rides), spill splits
 * and the partition — framed as a self-verifying record.
 *
 * Record layout (all integers little-endian, see serialize/bytes.hh):
 *
 *   u32 magic               "GPSC"
 *   u32 recordFormatVersion bumped when this framing or the
 *                           CompiledLoop encoding changes
 *   u32 keySchemaVersion    version of the LoopKey canonical
 *                           encoding, which embeds the machine shape
 *                           (clusters, FU mixes, register files, bus
 *                           classes, the latency table); bumped when
 *                           makeLoopKey's encoding changes, so
 *                           records written against an older machine
 *                           encoding are invalidated wholesale
 *   u64 payloadSize         exact byte length of the payload
 *   u64 payloadChecksum     FNV-1a of the payload bytes
 *   payload                 encoded LoopKey then CompiledLoop
 *
 * decodeCacheRecord() verifies every layer — magic, both versions,
 * size, checksum, the key digest against its canonical bytes, and
 * bounds-checked field decoding — and reports failure on any
 * mismatch. Malformed bytes can therefore never crash a reader or
 * smuggle a wrong schedule past it; the disk cache treats a failed
 * decode as a miss and evicts the record.
 */

#ifndef GPSCHED_SERIALIZE_RECORD_HH
#define GPSCHED_SERIALIZE_RECORD_HH

#include <cstdint>
#include <string>

#include "core/gp_scheduler.hh"
#include "engine/loop_key.hh"
#include "serialize/bytes.hh"

namespace gpsched
{

/** "GPSC" read as a little-endian u32. */
constexpr std::uint32_t diskRecordMagic = 0x43535047u;

/** Version of the record framing + CompiledLoop field encoding. */
constexpr std::uint32_t recordFormatVersion = 1;

/**
 * Version of the LoopKey canonical encoding (engine/loop_key.cc).
 * The canonical string embeds the machine shape and every compiler
 * option, so bumping this constant when that encoding changes
 * invalidates every on-disk record written under the old scheme.
 *
 * v2: AssignmentPolicy ('A') and the transfer cost model ('T'/'z')
 * joined the option encoding — and changed scheduling defaults on
 * heterogeneous machines — so v1 records are stale.
 */
constexpr std::uint32_t keySchemaVersion = 2;

/** Byte offsets of the header fields (for tests and tooling). */
constexpr std::size_t recordMagicOffset = 0;
constexpr std::size_t recordVersionOffset = 4;
constexpr std::size_t recordKeySchemaOffset = 8;
constexpr std::size_t recordHeaderSize = 28;

// --- field-level codecs --------------------------------------------

void encodeLoopKey(ByteWriter &out, const LoopKey &key);

/** False when bytes are malformed or the digest does not match. */
bool decodeLoopKey(ByteReader &in, LoopKey &key);

void encodeCompiledLoop(ByteWriter &out, const CompiledLoop &loop);

/** False on malformed bytes; @p loop is unspecified then. */
bool decodeCompiledLoop(ByteReader &in, CompiledLoop &loop);

// --- record framing ------------------------------------------------

/** Serializes one cache record (header + key + value). */
std::string encodeCacheRecord(const LoopKey &key,
                              const CompiledLoop &value);

/**
 * Decodes and fully verifies one cache record. Returns false —
 * never crashes, never partially succeeds — on any corruption:
 * truncation, bit flips, version or schema mismatches, checksum
 * failures or trailing garbage.
 */
bool decodeCacheRecord(const std::string &bytes, LoopKey &key,
                       CompiledLoop &value);

} // namespace gpsched

#endif // GPSCHED_SERIALIZE_RECORD_HH
