#include "serialize/record.hh"

namespace gpsched
{

namespace
{

/**
 * Caps every decoded element count. Any genuine record is far below
 * this; a corrupt count past it is rejected before the element loop
 * so a flipped length byte cannot make a decoder spin or allocate
 * wildly. (The bounds-checked reader already prevents out-of-range
 * reads; this bounds the work.)
 */
constexpr std::uint32_t maxElements = 1u << 24;

bool
readCount(ByteReader &in, std::uint32_t &count)
{
    count = in.u32();
    return in.ok() && count <= maxElements;
}

} // namespace

// --- LoopKey -------------------------------------------------------

void
encodeLoopKey(ByteWriter &out, const LoopKey &key)
{
    out.str(key.canonical);
    out.u64(key.digest);
}

bool
decodeLoopKey(ByteReader &in, LoopKey &key)
{
    key.canonical = in.str();
    key.digest = in.u64();
    // The digest is derivable, so a mismatch means corruption.
    return in.ok() && key.digest == fnv1a64(key.canonical);
}

// --- CompiledLoop --------------------------------------------------

void
encodeCompiledLoop(ByteWriter &out, const CompiledLoop &loop)
{
    out.str(loop.loopName);
    out.u8(loop.moduloScheduled ? 1 : 0);
    out.i32(loop.mii);
    out.i32(loop.ii);
    out.i32(loop.scheduleLength);
    out.i64(loop.cycles);
    out.i64(loop.ops);
    out.f64(loop.ipc);
    out.i32(loop.stats.busTransfers);
    out.i32(loop.stats.memTransfers);
    out.i32(loop.stats.spills);
    out.i32(loop.stats.overheadMemOps);
    out.i32(loop.partitionRuns);
    out.i32(loop.scheduleAttempts);
    out.f64(loop.schedSeconds);

    out.u32(static_cast<std::uint32_t>(loop.placements.size()));
    for (const OpPlacement &p : loop.placements) {
        out.i32(p.cluster);
        out.i32(p.cycle);
    }

    out.u32(static_cast<std::uint32_t>(loop.transfers.size()));
    for (const Transfer &t : loop.transfers) {
        out.i32(t.producer);
        out.i32(t.destCluster);
        out.u8(t.viaBus ? 1 : 0);
        out.i32(t.busClass);
        out.i32(t.busCycle);
        out.i32(t.stCycle);
        out.i32(t.ldCycle);
        out.i32(t.readCycle);
        out.i32(t.arrivalCycle);
    }

    out.u32(static_cast<std::uint32_t>(loop.spills.size()));
    for (const SpillRecord &s : loop.spills) {
        out.i32(s.node);
        out.i32(s.storeCycle);
        out.i32(s.loadCycle);
    }

    out.u32(static_cast<std::uint32_t>(loop.partition.size()));
    for (int cluster : loop.partition)
        out.i32(cluster);
}

bool
decodeCompiledLoop(ByteReader &in, CompiledLoop &loop)
{
    loop = CompiledLoop();
    loop.loopName = in.str();
    loop.moduloScheduled = in.u8() != 0;
    loop.mii = in.i32();
    loop.ii = in.i32();
    loop.scheduleLength = in.i32();
    loop.cycles = in.i64();
    loop.ops = in.i64();
    loop.ipc = in.f64();
    loop.stats.busTransfers = in.i32();
    loop.stats.memTransfers = in.i32();
    loop.stats.spills = in.i32();
    loop.stats.overheadMemOps = in.i32();
    loop.partitionRuns = in.i32();
    loop.scheduleAttempts = in.i32();
    loop.schedSeconds = in.f64();

    std::uint32_t count = 0;
    if (!readCount(in, count))
        return false;
    loop.placements.resize(count);
    for (OpPlacement &p : loop.placements) {
        p.cluster = in.i32();
        p.cycle = in.i32();
    }

    if (!readCount(in, count))
        return false;
    loop.transfers.resize(count);
    for (Transfer &t : loop.transfers) {
        t.producer = in.i32();
        t.destCluster = in.i32();
        t.viaBus = in.u8() != 0;
        t.busClass = in.i32();
        t.busCycle = in.i32();
        t.stCycle = in.i32();
        t.ldCycle = in.i32();
        t.readCycle = in.i32();
        t.arrivalCycle = in.i32();
    }

    if (!readCount(in, count))
        return false;
    loop.spills.resize(count);
    for (SpillRecord &s : loop.spills) {
        s.node = in.i32();
        s.storeCycle = in.i32();
        s.loadCycle = in.i32();
    }

    if (!readCount(in, count))
        return false;
    loop.partition.resize(count);
    for (int &cluster : loop.partition)
        cluster = in.i32();

    return in.ok();
}

// --- record framing ------------------------------------------------

std::string
encodeCacheRecord(const LoopKey &key, const CompiledLoop &value)
{
    ByteWriter payload;
    encodeLoopKey(payload, key);
    encodeCompiledLoop(payload, value);

    ByteWriter record;
    record.u32(diskRecordMagic);
    record.u32(recordFormatVersion);
    record.u32(keySchemaVersion);
    record.u64(payload.buffer().size());
    record.u64(fnv1a64(payload.buffer()));
    record.raw(payload.buffer().data(), payload.buffer().size());
    return record.take();
}

bool
decodeCacheRecord(const std::string &bytes, LoopKey &key,
                  CompiledLoop &value)
{
    ByteReader in(bytes);
    if (in.u32() != diskRecordMagic)
        return false;
    if (in.u32() != recordFormatVersion)
        return false;
    if (in.u32() != keySchemaVersion)
        return false;
    const std::uint64_t payloadSize = in.u64();
    const std::uint64_t checksum = in.u64();
    if (!in.ok() || payloadSize != in.remaining())
        return false;
    if (checksum != fnv1a64(bytes.data() + recordHeaderSize,
                            payloadSize))
        return false;
    if (!decodeLoopKey(in, key))
        return false;
    if (!decodeCompiledLoop(in, value))
        return false;
    // Trailing garbage means the record is not what it claims.
    return in.atEnd();
}

} // namespace gpsched
