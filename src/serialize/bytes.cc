#include "serialize/bytes.hh"

#include <cstring>

namespace gpsched
{

// --- writer --------------------------------------------------------

void
ByteWriter::u8(std::uint8_t value)
{
    buffer_.push_back(static_cast<char>(value));
}

void
ByteWriter::u32(std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        u8(static_cast<std::uint8_t>(value >> (8 * i)));
}

void
ByteWriter::u64(std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        u8(static_cast<std::uint8_t>(value >> (8 * i)));
}

void
ByteWriter::i32(std::int32_t value)
{
    u32(static_cast<std::uint32_t>(value));
}

void
ByteWriter::i64(std::int64_t value)
{
    u64(static_cast<std::uint64_t>(value));
}

void
ByteWriter::f64(double value)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value),
                  "double is not 64-bit");
    std::memcpy(&bits, &value, sizeof(bits));
    u64(bits);
}

void
ByteWriter::str(const std::string &value)
{
    u32(static_cast<std::uint32_t>(value.size()));
    raw(value.data(), value.size());
}

void
ByteWriter::raw(const void *data, std::size_t size)
{
    buffer_.append(static_cast<const char *>(data), size);
}

// --- reader --------------------------------------------------------

ByteReader::ByteReader(const void *bytes, std::size_t size)
    : data_(static_cast<const unsigned char *>(bytes)), size_(size)
{
}

ByteReader::ByteReader(const std::string &bytes)
    : ByteReader(bytes.data(), bytes.size())
{
}

bool
ByteReader::claim(std::size_t n)
{
    if (!ok_ || n > size_ - pos_) {
        ok_ = false;
        return false;
    }
    return true;
}

std::uint8_t
ByteReader::u8()
{
    if (!claim(1))
        return 0;
    return data_[pos_++];
}

std::uint32_t
ByteReader::u32()
{
    if (!claim(4))
        return 0;
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return value;
}

std::uint64_t
ByteReader::u64()
{
    if (!claim(8))
        return 0;
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return value;
}

std::int32_t
ByteReader::i32()
{
    return static_cast<std::int32_t>(u32());
}

std::int64_t
ByteReader::i64()
{
    return static_cast<std::int64_t>(u64());
}

double
ByteReader::f64()
{
    std::uint64_t bits = u64();
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

std::string
ByteReader::str()
{
    std::uint32_t size = u32();
    if (!claim(size))
        return std::string();
    std::string value(reinterpret_cast<const char *>(data_ + pos_),
                      size);
    pos_ += size;
    return value;
}

} // namespace gpsched
