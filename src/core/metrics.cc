#include "core/metrics.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/stats.hh"

namespace gpsched
{

std::int64_t
moduloLoopCycles(int ii, int schedule_length, std::int64_t niter)
{
    GPSCHED_ASSERT(ii >= 1 && niter >= 1,
                   "bad modulo cycle parameters");
    return std::max<std::int64_t>(
        (niter - 1) * static_cast<std::int64_t>(ii) + schedule_length,
        1);
}

std::int64_t
listLoopCycles(int schedule_length, std::int64_t niter)
{
    GPSCHED_ASSERT(niter >= 1, "bad list cycle parameters");
    return std::max<std::int64_t>(
        niter * static_cast<std::int64_t>(schedule_length), 1);
}

double
ipcOf(std::int64_t ops, std::int64_t cycles)
{
    if (cycles <= 0)
        return 0.0;
    return static_cast<double>(ops) / static_cast<double>(cycles);
}

double
ipcGainPercent(double x, double baseline)
{
    return speedupPercent(x, baseline);
}

double
averageIpc(const std::vector<double> &program_ipcs)
{
    return arithmeticMean(program_ipcs);
}

} // namespace gpsched
