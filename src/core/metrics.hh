/**
 * @file
 * Performance accounting (paper Section 4.1).
 *
 * IPC counts original program operations only; overhead operations
 * (spill, communications) consume slots but are not "useful" work,
 * which keeps the unified configuration's IPC an upper bound for the
 * clustered ones. Modulo-scheduled loops run in
 * (niter - 1) * II + SL cycles — the SL term charges the prolog and
 * epilog, as the paper's IPC does. List-scheduled loops execute
 * iterations back to back.
 */

#ifndef GPSCHED_CORE_METRICS_HH
#define GPSCHED_CORE_METRICS_HH

#include <cstdint>
#include <vector>

namespace gpsched
{

/** Cycles of a modulo-scheduled loop incl. prolog/epilog. */
std::int64_t moduloLoopCycles(int ii, int schedule_length,
                              std::int64_t niter);

/** Cycles of a list-scheduled loop (non-overlapped iterations). */
std::int64_t listLoopCycles(int schedule_length, std::int64_t niter);

/** ops / cycles with a zero-cycle guard. */
double ipcOf(std::int64_t ops, std::int64_t cycles);

/**
 * Relative IPC gain of @p x over @p baseline in percent
 * (the paper's "+23%" metric).
 */
double ipcGainPercent(double x, double baseline);

/** Arithmetic mean of per-program IPCs (the paper's average bar). */
double averageIpc(const std::vector<double> &program_ipcs);

} // namespace gpsched

#endif // GPSCHED_CORE_METRICS_HH
