/**
 * @file
 * Whole-program compilation pipeline: compiles every innermost loop
 * of a program with one scheme on one machine and aggregates IPC the
 * way the paper's evaluation does (Section 4.1). A "program" stands
 * for one SPECfp95 benchmark: a set of profiled innermost-loop DDGs
 * that cover ~95% of its execution time.
 */

#ifndef GPSCHED_CORE_PIPELINE_HH
#define GPSCHED_CORE_PIPELINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/gp_scheduler.hh"
#include "graph/ddg.hh"
#include "machine/machine.hh"

namespace gpsched
{

/** One benchmark: a named set of profiled innermost loops. */
struct Program
{
    std::string name;
    std::vector<Ddg> loops;
};

/** Aggregated outcome of compiling one program. */
struct ProgramResult
{
    std::string name;
    std::vector<CompiledLoop> loops;

    /** Program operations executed over all loops. */
    std::int64_t totalOps = 0;

    /** Execution cycles over all loops. */
    std::int64_t totalCycles = 0;

    /** totalOps / totalCycles. */
    double ipc = 0.0;

    /** Scheduling CPU time summed over loops (Table 2 metric). */
    double schedSeconds = 0.0;

    /** Loops that fell back to list scheduling. */
    int listScheduled = 0;
};

/** Outcome of compiling a whole suite. */
struct SuiteResult
{
    std::vector<ProgramResult> programs;

    /** Arithmetic mean of program IPCs (the paper's average bar). */
    double meanIpc = 0.0;

    /** Total scheduling CPU time. */
    double schedSeconds = 0.0;
};

/** Compiles every loop of @p program. */
ProgramResult compileProgram(const Program &program,
                             const MachineConfig &machine,
                             SchedulerKind kind,
                             const LoopCompilerOptions &options = {});

/** Compiles every program of @p suite. */
SuiteResult compileSuite(const std::vector<Program> &suite,
                         const MachineConfig &machine,
                         SchedulerKind kind,
                         const LoopCompilerOptions &options = {});

} // namespace gpsched

#endif // GPSCHED_CORE_PIPELINE_HH
