/**
 * @file
 * Whole-program compilation pipeline: compiles every innermost loop
 * of a program with one scheme on one machine and aggregates IPC the
 * way the paper's evaluation does (Section 4.1). A "program" stands
 * for one SPECfp95 benchmark: a set of profiled innermost-loop DDGs
 * that cover ~95% of its execution time.
 *
 * All compilation routes through the batch engine (engine/engine.hh).
 * The Engine-taking overloads run the loops of a program — and, for
 * compileSuite, of the whole suite — as one concurrent batch and
 * reuse the engine's fingerprint cache; the engine-less overloads
 * keep the historical serial semantics by running on a private
 * one-job, cache-less engine. Aggregates are computed from results
 * in submission order, so every overload is bit-deterministic and
 * independent of the worker count.
 *
 * Per-loop failures are skipped and reported, never fatal: a loop
 * the engine rejects (CompileError) is excluded from the aggregates,
 * recorded in ProgramResult::failures, and warned about on stderr —
 * the rest of the program and suite compiles normally.
 */

#ifndef GPSCHED_CORE_PIPELINE_HH
#define GPSCHED_CORE_PIPELINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/gp_scheduler.hh"
#include "graph/ddg.hh"
#include "machine/machine.hh"
#include "support/compile_error.hh"
#include "support/telemetry.hh"

namespace gpsched
{

class Engine;

/** One benchmark: a named set of profiled innermost loops. */
struct Program
{
    std::string name;
    std::vector<Ddg> loops;
};

/** Aggregated outcome of compiling one program. */
struct ProgramResult
{
    std::string name;

    /** Successfully compiled loops, in submission order; loops that
     *  failed are absent here and recorded in failures instead. */
    std::vector<CompiledLoop> loops;

    /** Per-loop diagnostics of the loops that failed to compile
     *  (excluded from every aggregate below). */
    std::vector<CompileError> failures;

    /** Program operations executed over all loops. */
    std::int64_t totalOps = 0;

    /** Execution cycles over all loops. */
    std::int64_t totalCycles = 0;

    /** totalOps / totalCycles. */
    double ipc = 0.0;

    /** Scheduling CPU time summed over loops (Table 2 metric). */
    double schedSeconds = 0.0;

    /** Loops that fell back to list scheduling. */
    int listScheduled = 0;

    /** Phase breakdown summed over the loops this program actually
     *  compiled (empty() unless the engine collected phases; cache
     *  hits contribute nothing). */
    CompileTrace phases;
};

/** Outcome of compiling a whole suite. */
struct SuiteResult
{
    std::vector<ProgramResult> programs;

    /** Arithmetic mean of program IPCs (the paper's average bar). */
    double meanIpc = 0.0;

    /** Total scheduling CPU time. */
    double schedSeconds = 0.0;

    /** Loops that failed across the whole suite (the per-program
     *  diagnostics live in ProgramResult::failures). */
    std::uint64_t failedLoops = 0;

    /** Suite-wide phase breakdown (sum of the programs' phases). */
    CompileTrace phases;
};

/** Compiles every loop of @p program serially (one-job engine). */
ProgramResult compileProgram(const Program &program,
                             const MachineConfig &machine,
                             SchedulerKind kind,
                             const LoopCompilerOptions &options = {});

/** Compiles every program of @p suite serially (one-job engine). */
SuiteResult compileSuite(const std::vector<Program> &suite,
                         const MachineConfig &machine,
                         SchedulerKind kind,
                         const LoopCompilerOptions &options = {});

/** Compiles @p program's loops as one batch on @p engine. */
ProgramResult compileProgram(Engine &engine, const Program &program,
                             const MachineConfig &machine,
                             SchedulerKind kind,
                             const LoopCompilerOptions &options = {});

/** Compiles every loop of every program as one batch on @p engine. */
SuiteResult compileSuite(Engine &engine,
                         const std::vector<Program> &suite,
                         const MachineConfig &machine,
                         SchedulerKind kind,
                         const LoopCompilerOptions &options = {});

} // namespace gpsched

#endif // GPSCHED_CORE_PIPELINE_HH
