#include "core/gp_scheduler.hh"

#include <algorithm>
#include <utility>

#include "graph/ddg_analysis.hh"
#include "sched/list_sched.hh"
#include "sched/mii.hh"
#include "support/arena.hh"
#include "support/logging.hh"
#include "support/telemetry.hh"
#include "support/timer.hh"

namespace gpsched
{

std::string
toString(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Uracam:
        return "URACAM";
      case SchedulerKind::FixedPartition:
        return "Fixed";
      case SchedulerKind::Gp:
        return "GP";
    }
    GPSCHED_PANIC("unknown scheduler kind");
}

namespace
{

/** Per-cluster occupancy of original memory ops under a partition
 *  (the Section-3.3.4 planned-memory extension). */
std::vector<int>
plannedMemOps(const Ddg &ddg, const MachineConfig &machine,
              const Partition &partition)
{
    std::vector<int> planned(machine.numClusters(), 0);
    const LatencyTable &lat = machine.latencies();
    for (NodeId v = 0; v < ddg.numNodes(); ++v) {
        const Opcode op = ddg.node(v).opcode;
        if (isMemoryOpcode(op))
            planned[partition.clusterOf(v)] += lat.occupancy(op);
    }
    return planned;
}

/**
 * Copies the final schedule out of @p ps into the serializable
 * CompiledLoop payload: per-node placements, the transfer list
 * (sorted by (producer, destCluster) — transfersOf already keys by
 * destination) and spill splits.
 */
void
recordSchedule(const Ddg &ddg, const PartialSchedule &ps,
               CompiledLoop &out)
{
    out.placements.resize(ddg.numNodes());
    for (NodeId v = 0; v < ddg.numNodes(); ++v) {
        out.placements[v] =
            OpPlacement{ps.clusterOf(v), ps.cycleOf(v)};
        for (const auto &entry : ps.transfersOf(v))
            out.transfers.push_back(entry.second);
        SpillInfo spill = ps.spillOf(v);
        if (spill.spilled) {
            out.spills.push_back(SpillRecord{v, spill.storeCycle,
                                             spill.loadCycle});
        }
    }
}

} // namespace

LoopCompiler::LoopCompiler(const MachineConfig &machine,
                           SchedulerKind kind,
                           LoopCompilerOptions options)
    : machine_(machine), kind_(kind), options_(std::move(options))
{
}

CompiledLoop
LoopCompiler::compile(const Ddg &ddg) const
{
    CompiledLoop out;
    out.loopName = ddg.name();
    out.ops = static_cast<std::int64_t>(ddg.numNodes()) *
              ddg.tripCount();

    CpuTimer timer;
    timer.start();

    int mii = 0;
    int max_ii = 0;
    {
        GPSCHED_PHASE_SPAN(Mii);
        mii = computeMii(ddg, machine_);
        out.mii = mii;

        // List-scheduling bound: once II reaches the flat schedule
        // length, the kernel no longer overlaps iterations.
        DdgAnalysis base(ddg, machine_.latencies(), mii);
        GPSCHED_ASSERT(base.feasible(), "MII analysis infeasible");
        max_ii =
            std::min(options_.maxIiHardCap,
                     std::max(mii, base.scheduleLength() +
                                       options_.maxIiSlack));
    }

    const bool partitioned = kind_ != SchedulerKind::Uracam &&
                             machine_.numClusters() > 1;
    // One arena per compile: every II attempt resets it (retaining
    // the grown chunks), so the steady state of the II search does no
    // heap allocation for schedule/partition scratch. Partition
    // results stay heap-backed and survive resets.
    CompileArena arena;
    GpPartitioner partitioner(machine_, options_.partitioner);
    GpPartitionResult part{Partition(ddg.numNodes(),
                                     machine_.numClusters()),
                           0,
                           {}};
    if (partitioned) {
        part = partitioner.run(ddg, mii, &arena);
        ++out.partitionRuns;
    }

    ClusterPolicy policy = ClusterPolicy::FreeChoice;
    if (kind_ == SchedulerKind::FixedPartition)
        policy = ClusterPolicy::AssignedOnly;
    else if (kind_ == SchedulerKind::Gp)
        policy = ClusterPolicy::PreferAssigned;

    ModuloScheduler scheduler(ddg, machine_,
                              {options_.fomThreshold});

    int ii = mii;
    while (ii <= max_ii) {
        ++out.scheduleAttempts;
        // No arena-backed object from the previous attempt is alive
        // here: ps destructs at the end of each iteration and the
        // mid-loop repartition below only appends to the arena.
        arena.reset();
        PartialSchedule ps(ddg, machine_, ii,
                           partitioned
                               ? plannedMemOps(ddg, machine_,
                                               part.partition)
                               : std::vector<int>{},
                           options_.fomThreshold,
                           options_.transfer, &arena);
        const Partition *assignment =
            partitioned ? &part.partition : nullptr;
        ClusterPolicy attempt_policy =
            partitioned ? policy : ClusterPolicy::FreeChoice;
        bool scheduled = false;
        {
            GPSCHED_PHASE_SPAN(ModuloSchedule);
            scheduled =
                scheduler.schedule(ps, attempt_policy, assignment);
        }
        if (scheduled) {
            out.moduloScheduled = true;
            out.ii = ii;
            out.scheduleLength = ps.scheduleLength();
            out.stats = ps.stats();
            recordSchedule(ddg, ps, out);
            if (partitioned) {
                out.partition.resize(ddg.numNodes());
                for (NodeId v = 0; v < ddg.numNodes(); ++v)
                    out.partition[v] =
                        part.partition.clusterOf(v);
            }
            out.cycles = (ddg.tripCount() - 1) *
                             static_cast<std::int64_t>(ii) +
                         out.scheduleLength;
            out.cycles = std::max<std::int64_t>(out.cycles, 1);
            out.ipc = static_cast<double>(out.ops) / out.cycles;
            out.schedSeconds = timer.elapsedSeconds();
            return out;
        }
        ++ii;
        // Figure 1(b): recompute the partition only when the bus
        // bound exceeds the new II — then a new partition can reduce
        // IIbus; otherwise keep the current one. The ablation
        // policies force either extreme.
        bool recompute = false;
        switch (options_.repartition) {
          case RepartitionPolicy::Never:
            break;
          case RepartitionPolicy::Selective:
            recompute = part.iiBus > ii;
            break;
          case RepartitionPolicy::Always:
            recompute = true;
            break;
        }
        if (kind_ == SchedulerKind::Gp && partitioned &&
            ii <= max_ii && recompute) {
            part = partitioner.run(ddg, ii, &arena);
            ++out.partitionRuns;
        }
    }

    // Modulo scheduling is no longer profitable: list schedule.
    GPSCHED_PHASE_SPAN(ListSchedule);
    ListScheduleResult ls = listSchedule(ddg, machine_);
    out.moduloScheduled = false;
    out.ii = 0;
    out.scheduleLength = ls.scheduleLength;
    out.stats = ScheduleStats{};
    out.stats.busTransfers = ls.busTransfers;
    out.cycles = std::max<std::int64_t>(
        ls.totalCycles(ddg.tripCount()), 1);
    out.ipc = static_cast<double>(out.ops) / out.cycles;
    out.schedSeconds = timer.elapsedSeconds();
    return out;
}

} // namespace gpsched
