/**
 * @file
 * Per-loop code generation drivers (paper Figure 1).
 *
 * A LoopCompiler turns one loop DDG into a schedule for one machine
 * using one of the three evaluated schemes:
 *
 *  - SchedulerKind::Uracam — the URACAM baseline: no preliminary
 *    partition; cluster assignment, scheduling and register
 *    allocation in a single phase (on a unified machine this is the
 *    paper's "unified" bar).
 *  - SchedulerKind::FixedPartition — Figure 1, alternative (a): the
 *    DDG is partitioned once at MII; on failure only the initiation
 *    interval grows and the scheduler never deviates from the
 *    partition.
 *  - SchedulerKind::Gp — Figure 1, alternative (b), the paper's
 *    proposal: the scheduler may deviate from the partition, and
 *    when an attempt fails at II the partition is recomputed iff
 *    IIbus > II (recomputing can then reduce IIbus; otherwise it
 *    would likely not help).
 *
 * When the initiation interval climbs past the flat schedule length
 * modulo scheduling has lost to simple iteration-by-iteration
 * execution, and the driver falls back to list scheduling, as the
 * paper does for a few loops.
 */

#ifndef GPSCHED_CORE_GP_SCHEDULER_HH
#define GPSCHED_CORE_GP_SCHEDULER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "graph/ddg.hh"
#include "machine/machine.hh"
#include "partition/multilevel.hh"
#include "sched/schedule.hh"
#include "sched/uracam.hh"

namespace gpsched
{

/** The code-generation scheme compiling a loop. */
enum class SchedulerKind
{
    Uracam,         ///< single-phase baseline (Codina et al.)
    FixedPartition, ///< partition once, never deviate (Fig. 1a)
    Gp,             ///< partition + deviation + selective re-partition
};

/** Printable name ("URACAM", "Fixed", "GP"). */
std::string toString(SchedulerKind kind);

/**
 * When the GP driver recomputes the partition after a failed
 * scheduling attempt (ablation of the Figure-1 decision; the paper's
 * conclusion is that Selective wins).
 */
enum class RepartitionPolicy
{
    Never,     ///< keep the initial partition forever
    Selective, ///< recompute iff IIbus > II (the paper's rule)
    Always,    ///< recompute on every II bump
};

/** Driver configuration. */
struct LoopCompilerOptions
{
    /** Partitioner knobs (GP / FixedPartition only). */
    GpPartitionerOptions partitioner;

    /** GP re-partition rule (SchedulerKind::Gp only). */
    RepartitionPolicy repartition = RepartitionPolicy::Selective;

    /**
     * Bus-class transfer cost model (sched/schedule.hh): slack-aware
     * by default, TransferCostPolicy::FastestFirst restores the
     * pre-cost-model *transfer selection* (the partitioner's
     * cut-edge cost input changed unconditionally to the expected
     * bus latency — see GpPartitionerOptions::assignment — so this
     * knob alone is not a full pre-PR baseline on multi-class
     * machines whose expectation rounds above the fastest class).
     * Irrelevant on single-bus-class machines, where both policies
     * coincide. Keyed into the engine's LoopKey alongside the
     * partitioner's AssignmentPolicy.
     */
    TransferPolicyOptions transfer;

    /** Figure-of-merit comparison threshold. */
    double fomThreshold = 10.0;

    /**
     * List-scheduling fallback margin: modulo scheduling is abandoned
     * once II exceeds the flat schedule length at MII plus this
     * slack.
     */
    int maxIiSlack = 2;

    /** Absolute cap on the initiation interval (safety net). */
    int maxIiHardCap = 1024;
};

/** Final placement of one program operation. */
struct OpPlacement
{
    int cluster = -1;
    int cycle = 0;

    bool operator==(const OpPlacement &other) const
    {
        return cluster == other.cluster && cycle == other.cycle;
    }
};

/** Spill split of one value (producer node) in the final schedule. */
struct SpillRecord
{
    NodeId node = invalidNode;
    int storeCycle = 0;
    int loadCycle = 0;

    bool operator==(const SpillRecord &other) const
    {
        return node == other.node &&
               storeCycle == other.storeCycle &&
               loadCycle == other.loadCycle;
    }
};

/** Outcome of compiling one loop. */
struct CompiledLoop
{
    std::string loopName;

    /** False when the list-scheduling fallback was used. */
    bool moduloScheduled = true;

    /** Lower bound max(ResMII, RecMII). */
    int mii = 0;

    /** Achieved initiation interval (0 when list scheduled). */
    int ii = 0;

    /** Flat schedule length of one iteration. */
    int scheduleLength = 0;

    /** Execution cycles incl. prolog/epilog at the profiled trip. */
    std::int64_t cycles = 0;

    /** Program operations executed (overhead ops excluded). */
    std::int64_t ops = 0;

    /** ops / cycles. */
    double ipc = 0.0;

    /** Overhead operations of the final schedule. */
    ScheduleStats stats;

    /** Partitioner invocations (GP: >= 1 when re-partitioned). */
    int partitionRuns = 0;

    /** Scheduling attempts (II bumps + 1). */
    int scheduleAttempts = 0;

    /** Scheduling CPU time (Table 2 metric). */
    double schedSeconds = 0.0;

    // --- the schedule itself (serialized by src/serialize/) ---------

    /**
     * Final (cluster, flat cycle) of every node, indexed by NodeId.
     * Empty when the list-scheduling fallback was used.
     */
    std::vector<OpPlacement> placements;

    /**
     * Inter-cluster communications of the final schedule, sorted by
     * (producer, destCluster). Includes the bus class each bus
     * transfer rides.
     */
    std::vector<Transfer> transfers;

    /** Spill splits of the final schedule, sorted by node. */
    std::vector<SpillRecord> spills;

    /**
     * Cluster assignment the partitioner last produced, indexed by
     * NodeId (the GP scheme may deviate from it; placements record
     * the final choice). Empty when no partition was computed
     * (URACAM or unified machines).
     */
    std::vector<int> partition;
};

/** Compiles loops for one machine with one scheme. */
class LoopCompiler
{
  public:
    /** @p machine must outlive the compiler. */
    LoopCompiler(const MachineConfig &machine, SchedulerKind kind,
                 LoopCompilerOptions options = {});

    /** Compiles @p ddg and reports the outcome. */
    CompiledLoop compile(const Ddg &ddg) const;

    /** Scheme this compiler runs. */
    SchedulerKind kind() const { return kind_; }

  private:
    const MachineConfig &machine_;
    SchedulerKind kind_;
    LoopCompilerOptions options_;
};

} // namespace gpsched

#endif // GPSCHED_CORE_GP_SCHEDULER_HH
