#include "core/pipeline.hh"

#include "core/metrics.hh"

namespace gpsched
{

ProgramResult
compileProgram(const Program &program, const MachineConfig &machine,
               SchedulerKind kind, const LoopCompilerOptions &options)
{
    LoopCompiler compiler(machine, kind, options);
    ProgramResult result;
    result.name = program.name;
    result.loops.reserve(program.loops.size());
    for (const Ddg &loop : program.loops) {
        CompiledLoop compiled = compiler.compile(loop);
        result.totalOps += compiled.ops;
        result.totalCycles += compiled.cycles;
        result.schedSeconds += compiled.schedSeconds;
        if (!compiled.moduloScheduled)
            ++result.listScheduled;
        result.loops.push_back(std::move(compiled));
    }
    result.ipc = ipcOf(result.totalOps, result.totalCycles);
    return result;
}

SuiteResult
compileSuite(const std::vector<Program> &suite,
             const MachineConfig &machine, SchedulerKind kind,
             const LoopCompilerOptions &options)
{
    SuiteResult result;
    result.programs.reserve(suite.size());
    std::vector<double> ipcs;
    for (const Program &program : suite) {
        ProgramResult pr =
            compileProgram(program, machine, kind, options);
        ipcs.push_back(pr.ipc);
        result.schedSeconds += pr.schedSeconds;
        result.programs.push_back(std::move(pr));
    }
    result.meanIpc = averageIpc(ipcs);
    return result;
}

} // namespace gpsched
