#include "core/pipeline.hh"

#include "core/metrics.hh"
#include "engine/engine.hh"
#include "support/logging.hh"

namespace gpsched
{

namespace
{

/**
 * Folds per-loop results (in loop order) into a ProgramResult.
 * Failed loops are skipped and reported: their diagnostics land in
 * ProgramResult::failures (with a stderr warning) and every
 * aggregate is computed over the successful loops only.
 */
ProgramResult
aggregateProgram(const Program &program,
                 std::vector<CompileResult> results)
{
    ProgramResult result;
    result.name = program.name;
    result.loops.reserve(results.size());
    for (CompileResult &item : results) {
        if (!item.ok()) {
            GPSCHED_WARN("skipping loop '", item.error->loopName(),
                         "' of program '", program.name,
                         "': ", item.error->what());
            result.failures.push_back(std::move(*item.error));
            continue;
        }
        result.phases.merge(item.trace);
        CompiledLoop &compiled = item.loop;
        result.totalOps += compiled.ops;
        result.totalCycles += compiled.cycles;
        result.schedSeconds += compiled.schedSeconds;
        if (!compiled.moduloScheduled)
            ++result.listScheduled;
        result.loops.push_back(std::move(compiled));
    }
    result.ipc = ipcOf(result.totalOps, result.totalCycles);
    return result;
}

std::vector<EngineJob>
jobsFor(const Program &program, const MachineConfig &machine,
        SchedulerKind kind, const LoopCompilerOptions &options)
{
    std::vector<EngineJob> jobs;
    jobs.reserve(program.loops.size());
    for (const Ddg &loop : program.loops)
        jobs.push_back(EngineJob{&loop, &machine, kind, options});
    return jobs;
}

} // namespace

ProgramResult
compileProgram(Engine &engine, const Program &program,
               const MachineConfig &machine, SchedulerKind kind,
               const LoopCompilerOptions &options)
{
    return aggregateProgram(
        program,
        engine.compileBatch(jobsFor(program, machine, kind, options)));
}

SuiteResult
compileSuite(Engine &engine, const std::vector<Program> &suite,
             const MachineConfig &machine, SchedulerKind kind,
             const LoopCompilerOptions &options)
{
    // One flat batch over every loop of every program, so parallelism
    // spans program boundaries instead of draining per program.
    std::vector<EngineJob> jobs;
    for (const Program &program : suite) {
        std::vector<EngineJob> programJobs =
            jobsFor(program, machine, kind, options);
        jobs.insert(jobs.end(), programJobs.begin(),
                    programJobs.end());
    }
    std::vector<CompileResult> compiled = engine.compileBatch(jobs);

    SuiteResult result;
    result.programs.reserve(suite.size());
    std::vector<double> ipcs;
    std::size_t next = 0;
    for (const Program &program : suite) {
        std::vector<CompileResult> loops(
            std::make_move_iterator(compiled.begin() +
                                    static_cast<std::ptrdiff_t>(next)),
            std::make_move_iterator(
                compiled.begin() +
                static_cast<std::ptrdiff_t>(next +
                                            program.loops.size())));
        next += program.loops.size();
        ProgramResult pr =
            aggregateProgram(program, std::move(loops));
        ipcs.push_back(pr.ipc);
        result.schedSeconds += pr.schedSeconds;
        result.failedLoops += pr.failures.size();
        result.phases.merge(pr.phases);
        result.programs.push_back(std::move(pr));
    }
    result.meanIpc = averageIpc(ipcs);
    return result;
}

ProgramResult
compileProgram(const Program &program, const MachineConfig &machine,
               SchedulerKind kind, const LoopCompilerOptions &options)
{
    Engine engine(serialEngineOptions());
    return compileProgram(engine, program, machine, kind, options);
}

SuiteResult
compileSuite(const std::vector<Program> &suite,
             const MachineConfig &machine, SchedulerKind kind,
             const LoopCompilerOptions &options)
{
    Engine engine(serialEngineOptions());
    return compileSuite(engine, suite, machine, kind, options);
}

} // namespace gpsched
