#include "partition/multilevel.hh"

#include <algorithm>
#include <numeric>

#include "support/logging.hh"
#include "support/random.hh"

namespace gpsched
{

GpPartitioner::GpPartitioner(const MachineConfig &machine,
                             GpPartitionerOptions options)
    : machine_(machine), options_(options)
{
}

GpPartitionResult
GpPartitioner::run(const Ddg &ddg, int ii) const
{
    GPSCHED_ASSERT(ii >= 1, "partitioner needs II >= 1");
    const int clusters = machine_.numClusters();

    if (clusters == 1 || ddg.numNodes() == 0) {
        GpPartitionResult result{
            Partition(ddg.numNodes(), std::max(clusters, 1)), 0, {}};
        PartitionEstimator estimator(ddg, machine_, ii,
                                     options_.registerAware);
        result.estimate = estimator.evaluate(result.partition);
        result.iiBus = result.estimate.iiBus;
        return result;
    }

    // --- 1. edge weights at the input II -----------------------------
    // Heterogeneous bus fabrics weight cut edges by the fastest bus
    // (optimistic, matching the estimator's communication model).
    std::vector<std::int64_t> weights =
        computeEdgeWeights(ddg, machine_.latencies(), ii,
                           machine_.minBusLatency(),
                           options_.edgeWeights);

    // --- 2. coarsen ---------------------------------------------------
    Rng rng(options_.seed);
    CoarseningHierarchy hierarchy(ddg, weights, clusters,
                                  options_.matching, rng);

    // --- 3. initial assignment: heaviest macro-nodes first, one per
    //        cluster. Clusters are visited widest-issue first so a
    //        heterogeneous machine hands its biggest cluster the
    //        heaviest macro-node (a stable no-op when homogeneous) ----
    const CoarseLevel &coarsest = hierarchy.coarsest();
    Partition partition(ddg.numNodes(), clusters);
    {
        std::vector<int> cluster_order(clusters);
        std::iota(cluster_order.begin(), cluster_order.end(), 0);
        std::stable_sort(cluster_order.begin(), cluster_order.end(),
                         [&](int a, int b) {
                             return machine_.issueWidthOfCluster(a) >
                                    machine_.issueWidthOfCluster(b);
                         });
        std::vector<int> order(coarsest.numNodes());
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(), [&](int x, int y) {
            auto sx = coarsest.members[x].size();
            auto sy = coarsest.members[y].size();
            if (sx != sy)
                return sx > sy;
            return x < y;
        });
        for (std::size_t i = 0; i < order.size(); ++i) {
            int cluster = cluster_order[i % clusters];
            for (NodeId v : coarsest.members[order[i]])
                partition.assign(v, cluster);
        }
    }

    // --- 4. refine coarsest -> finest ---------------------------------
    if (options_.refineEnabled) {
        RefineOptions refine_options = options_.refine;
        refine_options.registerAware |= options_.registerAware;
        PartitionRefiner refiner(ddg, machine_, ii, weights,
                                 refine_options);
        const auto &levels = hierarchy.levels();
        for (auto it = levels.rbegin(); it != levels.rend(); ++it)
            refiner.refineLevel(*it, partition);
    }

    GpPartitionResult result{partition, 0, {}};
    PartitionEstimator estimator(ddg, machine_, ii,
                                 options_.registerAware);
    result.estimate = estimator.evaluate(partition);
    result.iiBus = result.estimate.iiBus;
    return result;
}

} // namespace gpsched
