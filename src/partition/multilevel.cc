#include "partition/multilevel.hh"

#include <algorithm>
#include <limits>
#include <numeric>
#include <optional>

#include "support/logging.hh"
#include "support/random.hh"
#include "support/telemetry.hh"

namespace gpsched
{

GpPartitioner::GpPartitioner(const MachineConfig &machine,
                             GpPartitionerOptions options)
    : machine_(machine), options_(options)
{
}

void
GpPartitioner::assignCapacityBalanced(const Ddg &ddg,
                                      const CoarseLevel &coarsest,
                                      const std::vector<int> &order,
                                      Partition &partition) const
{
    const int clusters = machine_.numClusters();
    const LatencyTable &lat = machine_.latencies();

    // Per-macro occupancy of each FU class.
    std::vector<int> mocc(
        static_cast<std::size_t>(coarsest.numNodes()) * numFuClasses,
        0);
    for (int m = 0; m < coarsest.numNodes(); ++m) {
        for (NodeId v : coarsest.members[m]) {
            Opcode op = ddg.node(v).opcode;
            mocc[static_cast<std::size_t>(m) * numFuClasses +
                 static_cast<int>(fuClassOf(op))] += lat.occupancy(op);
        }
    }

    // Greedy heaviest-first placement, minimizing the peak
    // post-placement class pressure load[c][k] / fu[c][k]. A cluster
    // lacking a class the placement would load (fu == 0, load > 0)
    // scores infinite and is only ever chosen when every cluster
    // does — the estimator's overload penalty then sorts it out.
    std::vector<int> load(
        static_cast<std::size_t>(clusters) * numFuClasses, 0);
    for (int m : order) {
        const int *macro =
            &mocc[static_cast<std::size_t>(m) * numFuClasses];
        int best = -1;
        double best_score = 0.0;
        for (int c = 0; c < clusters; ++c) {
            double score = 0.0;
            for (int k = 0; k < numFuClasses; ++k) {
                int fus = machine_.fuInCluster(
                    c, static_cast<FuClass>(k));
                int after =
                    load[static_cast<std::size_t>(c) * numFuClasses +
                         k] +
                    macro[k];
                if (after == 0)
                    continue;
                double pressure =
                    fus == 0 ? std::numeric_limits<double>::infinity()
                             : static_cast<double>(after) / fus;
                score = std::max(score, pressure);
            }
            bool better;
            if (best == -1) {
                better = true;
            } else if (score != best_score) {
                better = score < best_score;
            } else if (machine_.issueWidthOfCluster(c) !=
                       machine_.issueWidthOfCluster(best)) {
                better = machine_.issueWidthOfCluster(c) >
                         machine_.issueWidthOfCluster(best);
            } else {
                better = false; // keep the lower index
            }
            if (better) {
                best = c;
                best_score = score;
            }
        }
        for (int k = 0; k < numFuClasses; ++k) {
            load[static_cast<std::size_t>(best) * numFuClasses + k] +=
                macro[k];
        }
        for (NodeId v : coarsest.members[m])
            partition.assign(v, best);
    }
}

GpPartitionResult
GpPartitioner::run(const Ddg &ddg, int ii, CompileArena *arena) const
{
    GPSCHED_ASSERT(ii >= 1, "partitioner needs II >= 1");
    const int clusters = machine_.numClusters();

    if (clusters == 1 || ddg.numNodes() == 0) {
        GpPartitionResult result{
            Partition(ddg.numNodes(), std::max(clusters, 1)), 0, {}};
        PartitionEstimator estimator(ddg, machine_, ii,
                                     options_.registerAware);
        result.estimate = estimator.evaluate(result.partition);
        result.iiBus = result.estimate.iiBus;
        return result;
    }

    // The graph never changes within a run, so one SCC decomposition
    // serves the edge weights, the refiner's estimator and the final
    // estimate (Tarjan three times per run showed up in profiles).
    const SccDecomposition sccs = computeSccs(ddg);

    // --- 1. edge weights at the input II -----------------------------
    // Heterogeneous bus fabrics weight cut edges by the expected
    // (capacity-weighted mean) bus latency, matching the estimator's
    // communication model; a single-class fabric reduces to exactly
    // that class's latency.
    std::vector<std::int64_t> weights =
        computeEdgeWeights(ddg, machine_.latencies(), ii,
                           machine_.expectedBusLatency(),
                           options_.edgeWeights, &sccs);

    // --- 2. coarsen ---------------------------------------------------
    Rng rng(options_.seed);
    std::optional<CoarseningHierarchy> hierarchyStorage;
    {
        GPSCHED_PHASE_SPAN(Coarsen);
        hierarchyStorage.emplace(ddg, weights, clusters,
                                 options_.matching, rng, arena);
    }
    const CoarseningHierarchy &hierarchy = *hierarchyStorage;

    // --- 3. initial assignment (AssignmentPolicy) ---------------------
    const CoarseLevel &coarsest = hierarchy.coarsest();
    Partition partition(ddg.numNodes(), clusters);
    {
        GPSCHED_PHASE_SPAN(InitialPartition);
        std::vector<int> order(coarsest.numNodes());
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(), [&](int x, int y) {
            auto sx = coarsest.members[x].size();
            auto sy = coarsest.members[y].size();
            if (sx != sy)
                return sx > sy;
            return x < y;
        });
        // Homogeneous machines take the legacy round-robin path
        // regardless of the configured policy: capacity balancing
        // has nothing to balance when every cluster is identical,
        // and forcing the branch — rather than trusting the greedy
        // rule to tie-break the same way — is what *enforces* the
        // bit-identical Table-1 parity guarantee (pinned by
        // tests/test_transfer_policy.cc). Do not remove this
        // short-circuit as "redundant": the greedy rule can
        // legitimately stack disjoint-class macro-nodes where
        // round-robin would separate them.
        if (options_.assignment == AssignmentPolicy::WidestClusterFirst ||
            machine_.homogeneous()) {
            std::vector<int> cluster_order(clusters);
            std::iota(cluster_order.begin(), cluster_order.end(), 0);
            std::stable_sort(
                cluster_order.begin(), cluster_order.end(),
                [&](int a, int b) {
                    return machine_.issueWidthOfCluster(a) >
                           machine_.issueWidthOfCluster(b);
                });
            for (std::size_t i = 0; i < order.size(); ++i) {
                int cluster = cluster_order[i % clusters];
                for (NodeId v : coarsest.members[order[i]])
                    partition.assign(v, cluster);
            }
        } else {
            assignCapacityBalanced(ddg, coarsest, order, partition);
        }
    }

    // --- 4. refine coarsest -> finest ---------------------------------
    if (options_.refineEnabled) {
        GPSCHED_PHASE_SPAN(Refine);
        RefineOptions refine_options = options_.refine;
        refine_options.registerAware |= options_.registerAware;
        PartitionRefiner refiner(ddg, machine_, ii, weights,
                                 refine_options, arena, &sccs);
        const auto &levels = hierarchy.levels();
        for (auto it = levels.rbegin(); it != levels.rend(); ++it)
            refiner.refineLevel(*it, partition);
    }

    GpPartitionResult result{partition, 0, {}};
    PartitionEstimator estimator(ddg, machine_, ii,
                                 options_.registerAware, &sccs);
    result.estimate = estimator.evaluate(partition);
    result.iiBus = result.estimate.iiBus;
    return result;
}

} // namespace gpsched
