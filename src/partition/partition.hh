/**
 * @file
 * Cluster assignment of the nodes of one DDG, plus the communication
 * queries the GP scheme needs: cut edges, the number of values that
 * must cross the interconnect (NComm) and the bus-imposed initiation
 * interval bound IIbus = ceil(NComm * LatBus / NBus) from Section 3.1
 * of the paper.
 */

#ifndef GPSCHED_PARTITION_PARTITION_HH
#define GPSCHED_PARTITION_PARTITION_HH

#include <vector>

#include "graph/ddg.hh"
#include "machine/machine.hh"
#include "support/logging.hh"

namespace gpsched
{

/** Maps every node of a DDG to a cluster. */
class Partition
{
  public:
    /** All @p num_nodes nodes start in cluster @p initial. */
    Partition(int num_nodes, int num_clusters, int initial = 0);

    /** Number of clusters. */
    int numClusters() const { return numClusters_; }

    /** Number of nodes. */
    int numNodes() const
    {
        return static_cast<int>(clusterOf_.size());
    }

    /** Cluster of @p v. Inline: the single hottest read of the
     *  refinement and estimation loops. */
    int
    clusterOf(NodeId v) const
    {
        GPSCHED_ASSERT(v >= 0 && v < numNodes(), "bad node ", v);
        return clusterOf_[v];
    }

    /** Reassigns @p v to @p cluster. */
    void
    assign(NodeId v, int cluster)
    {
        GPSCHED_ASSERT(v >= 0 && v < numNodes(), "bad node ", v);
        GPSCHED_ASSERT(cluster >= 0 && cluster < numClusters_,
                       "bad cluster ", cluster);
        clusterOf_[v] = cluster;
    }

    /** Nodes currently mapped to @p cluster. */
    std::vector<NodeId> nodesIn(int cluster) const;

    /** Raw assignment vector (for dot export etc.). */
    const std::vector<int> &raw() const { return clusterOf_; }

  private:
    int numClusters_;
    std::vector<int> clusterOf_;
};

/** Number of edges whose endpoints lie in different clusters. */
int numCutEdges(const Ddg &ddg, const Partition &partition);

/**
 * Number of values communicated over the interconnect: one transfer
 * per (producer value, distinct consumer cluster) pair, counting
 * Flow edges only (paper's NComm).
 */
int numCommunications(const Ddg &ddg, const Partition &partition);

/**
 * Bus-imposed II bound: minimum cycles needed to place NComm
 * transfers of LatBus cycles each on NBus non-pipelined buses
 * (paper Section 3.1). Zero for unified machines.
 */
int iiBusBound(const Ddg &ddg, const Partition &partition,
               const MachineConfig &machine);

} // namespace gpsched

#endif // GPSCHED_PARTITION_PARTITION_HH
