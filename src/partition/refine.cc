#include "partition/refine.hh"

#include <algorithm>

#include "support/logging.hh"

namespace gpsched
{

namespace
{

/** A candidate refinement change: a single move or a pair swap. */
struct Change
{
    int macroA = -1;
    int destA = -1;   ///< cluster macroA moves to
    int macroB = -1;  ///< -1 for single moves
    int destB = -1;   ///< cluster macroB moves to (swaps only)
    std::int64_t staticGain = 0;
};

} // namespace

PartitionRefiner::PartitionRefiner(
    const Ddg &ddg, const MachineConfig &machine, int ii,
    const std::vector<std::int64_t> &static_weights,
    RefineOptions options, CompileArena *arena,
    const SccDecomposition *sccs)
    : ddg_(ddg), machine_(machine), ii_(ii),
      staticWeights_(static_weights), options_(options),
      estimator_(ddg, machine, ii, options.registerAware, sccs),
      macroOcc_(arena), clusterOcc_(arena)
{
    GPSCHED_ASSERT(static_cast<int>(static_weights.size()) ==
                       ddg.numEdges(),
                   "static weight vector size mismatch");
}

void
PartitionRefiner::computeMacroOccupancy(const CoarseLevel &level) const
{
    const LatencyTable &lat = machine_.latencies();
    macroOcc_.assign(
        static_cast<std::size_t>(level.numNodes()) * numFuClasses, 0);
    for (int m = 0; m < level.numNodes(); ++m) {
        for (NodeId v : level.members[m]) {
            Opcode op = ddg_.node(v).opcode;
            macroOcc_[static_cast<std::size_t>(m) * numFuClasses +
                      static_cast<int>(fuClassOf(op))] +=
                lat.occupancy(op);
        }
    }
}

void
PartitionRefiner::computeClusterOccupancy(
    const Partition &partition) const
{
    const LatencyTable &lat = machine_.latencies();
    clusterOcc_.assign(static_cast<std::size_t>(
                           machine_.numClusters()) *
                           numFuClasses,
                       0);
    for (NodeId v = 0; v < ddg_.numNodes(); ++v) {
        Opcode op = ddg_.node(v).opcode;
        clusterOcc_[static_cast<std::size_t>(
                        partition.clusterOf(v)) *
                        numFuClasses +
                    static_cast<int>(fuClassOf(op))] +=
            lat.occupancy(op);
    }
}

int
PartitionRefiner::macroCluster(const CoarseLevel &level, int macro,
                               const Partition &partition) const
{
    // O(1) by invariant: every member of a macro-node shares one
    // cluster (moveMacro moves them together). The full straddle
    // check runs once per level in refineLevel — this accessor is
    // called per candidate inside the refinement loops, where the
    // old every-member verification walk dominated the profile.
    GPSCHED_ASSERT(!level.members[macro].empty(), "empty macro-node");
    return partition.clusterOf(level.members[macro][0]);
}

void
PartitionRefiner::moveMacro(const CoarseLevel &level, int macro,
                            int cluster, Partition &partition) const
{
    for (NodeId v : level.members[macro])
        partition.assign(v, cluster);
}

std::int64_t
PartitionRefiner::staticGain(const CoarseLevel &level, int macro,
                             int dest,
                             const Partition &partition) const
{
    // Gain = cut weight that becomes internal (edges to dest) minus
    // internal weight that becomes cut (edges within the source
    // cluster but outside the macro-node).
    int src = macroCluster(level, macro, partition);
    std::int64_t gain = 0;
    for (NodeId v : level.members[macro]) {
        auto scanEdge = [&](EdgeId e, NodeId other) {
            if (level.coarseOf[other] == macro)
                return; // internal to the macro-node
            int otherCluster = partition.clusterOf(other);
            if (otherCluster == dest)
                gain += staticWeights_[e];
            else if (otherCluster == src)
                gain -= staticWeights_[e];
        };
        for (EdgeId e : ddg_.outEdges(v))
            scanEdge(e, ddg_.edge(e).dst);
        for (EdgeId e : ddg_.inEdges(v))
            scanEdge(e, ddg_.edge(e).src);
    }
    return gain;
}

bool
PartitionRefiner::runBalancePass(const CoarseLevel &level,
                                 Partition &partition,
                                 int &budget) const
{
    const int clusters = machine_.numClusters();

    // (cluster, class) occupancy bookkeeping.
    computeClusterOccupancy(partition);
    int *const occ = clusterOcc_.data();
    auto slots = [&](int c, int k) {
        return machine_.fuInCluster(c, static_cast<FuClass>(k)) * ii_;
    };

    bool changedAny = false;
    std::vector<bool> considered(numFuClasses, false);
    int guard = 4 * level.numNodes() + 16;

    while (budget > 0 && guard-- > 0) {
        // Most saturated overloaded (cluster, class).
        int bestC = -1, bestK = -1;
        double bestRatio = 1.0;
        for (int c = 0; c < clusters; ++c) {
            for (int k = 0; k < numFuClasses; ++k) {
                int s = slots(c, k);
                // A class the cluster lacks entirely is infinitely
                // saturated the moment anything is assigned to it.
                int o = occ[c * numFuClasses + k];
                double ratio =
                    s == 0 ? (o > 0 ? 1e9 : 0.0)
                           : static_cast<double>(o) /
                                 static_cast<double>(s);
                if (ratio > bestRatio) {
                    bestRatio = ratio;
                    bestC = c;
                    bestK = k;
                }
            }
        }
        if (bestC == -1)
            break; // nothing overloaded

        considered[bestK] = true;
        FuClass cls = static_cast<FuClass>(bestK);

        // Best feasible movement of a macro-node using this resource
        // out of the overloaded cluster.
        int moveMacroIdx = -1, moveDest = -1;
        std::int64_t moveGain = 0;
        bool haveMove = false;
        for (int m = 0; m < level.numNodes(); ++m) {
            if (level.members[m].empty())
                continue;
            if (macroCluster(level, m, partition) != bestC)
                continue;
            int mocc = macroOccupancy(m, cls);
            if (mocc == 0)
                continue;
            for (int c2 = 0; c2 < clusters; ++c2) {
                if (c2 == bestC)
                    continue;
                // Must not overload this resource in c2, nor any
                // resource already considered (more critical).
                bool ok = occ[c2 * numFuClasses + bestK] + mocc <=
                          slots(c2, bestK);
                for (int k = 0; ok && k < numFuClasses; ++k) {
                    if (!considered[k] || k == bestK)
                        continue;
                    int mk = macroOccupancy(
                        m, static_cast<FuClass>(k));
                    ok = occ[c2 * numFuClasses + k] + mk <=
                         slots(c2, k);
                }
                if (!ok)
                    continue;
                std::int64_t gain =
                    staticGain(level, m, c2, partition);
                if (!haveMove || gain > moveGain) {
                    haveMove = true;
                    moveGain = gain;
                    moveMacroIdx = m;
                    moveDest = c2;
                }
            }
        }
        if (!haveMove)
            break; // wait for a finer level (paper Section 3.2.2)

        // Apply and update bookkeeping.
        for (int k = 0; k < numFuClasses; ++k) {
            int mk =
                macroOccupancy(moveMacroIdx, static_cast<FuClass>(k));
            occ[bestC * numFuClasses + k] -= mk;
            occ[moveDest * numFuClasses + k] += mk;
        }
        moveMacro(level, moveMacroIdx, moveDest, partition);
        changedAny = true;
        --budget;
    }
    return changedAny;
}

bool
PartitionRefiner::runEdgeImpactPass(const CoarseLevel &level,
                                    Partition &partition,
                                    int &budget) const
{
    const int clusters = machine_.numClusters();
    bool changedAny = false;

    PartitionEstimate current = estimator_.evaluate(partition);

    auto slotOf = [&](int c, int k) {
        return machine_.fuInCluster(c, static_cast<FuClass>(k)) * ii_;
    };

    // Occupancy table for feasibility tests: built once, then kept
    // in sync incrementally as changes are applied (rebuilding it —
    // and reallocating its rows — every round dominated this pass's
    // profile on large loops).
    computeClusterOccupancy(partition);
    int *const occ = clusterOcc_.data();
    auto applyToOcc = [&](int macro, int from, int to) {
        for (int k = 0; k < numFuClasses; ++k) {
            int mk = macroOccupancy(macro, static_cast<FuClass>(k));
            occ[from * numFuClasses + k] -= mk;
            occ[to * numFuClasses + k] += mk;
        }
    };

    std::vector<Change> candidates;
    std::vector<bool> isNeighbour(
        static_cast<std::size_t>(clusters), false);
    // Reused across rounds and candidates so each exact evaluation
    // assigns into existing capacity instead of allocating a copy.
    Partition trial(partition.numNodes(), partition.numClusters());

    while (budget > 0) {
        auto moveFits = [&](int macro, int from, int to) {
            for (int k = 0; k < numFuClasses; ++k) {
                int mk =
                    macroOccupancy(macro, static_cast<FuClass>(k));
                if (occ[to * numFuClasses + k] + mk > slotOf(to, k))
                    return false;
                (void)from;
            }
            return true;
        };
        auto swapFits = [&](int ma, int ca, int mb, int cb) {
            // ma: ca -> cb, mb: cb -> ca.
            for (int k = 0; k < numFuClasses; ++k) {
                FuClass cls = static_cast<FuClass>(k);
                int ak = macroOccupancy(ma, cls);
                int bk = macroOccupancy(mb, cls);
                if (occ[cb * numFuClasses + k] - bk + ak >
                    slotOf(cb, k))
                    return false;
                if (occ[ca * numFuClasses + k] - ak + bk >
                    slotOf(ca, k))
                    return false;
            }
            return true;
        };

        // Mutual edge weight between two macro-nodes (for swap gain).
        auto mutualWeight = [&](int ma, int mb) {
            std::int64_t w = 0;
            for (NodeId v : level.members[ma]) {
                for (EdgeId e : ddg_.outEdges(v)) {
                    if (level.coarseOf[ddg_.edge(e).dst] == mb)
                        w += staticWeights_[e];
                }
                for (EdgeId e : ddg_.inEdges(v)) {
                    if (level.coarseOf[ddg_.edge(e).src] == mb)
                        w += staticWeights_[e];
                }
            }
            return w;
        };

        candidates.clear();
        for (int m = 0; m < level.numNodes(); ++m) {
            if (level.members[m].empty())
                continue;
            int c1 = macroCluster(level, m, partition);

            // Neighbouring clusters of this macro-node (flag array
            // instead of a std::set: clusters are few and this runs
            // per macro per round).
            std::fill(isNeighbour.begin(), isNeighbour.end(), false);
            for (NodeId v : level.members[m]) {
                for (EdgeId e : ddg_.outEdges(v)) {
                    int c = partition.clusterOf(ddg_.edge(e).dst);
                    if (c != c1)
                        isNeighbour[c] = true;
                }
                for (EdgeId e : ddg_.inEdges(v)) {
                    int c = partition.clusterOf(ddg_.edge(e).src);
                    if (c != c1)
                        isNeighbour[c] = true;
                }
            }

            for (int c2 = 0; c2 < clusters; ++c2) {
                if (!isNeighbour[c2])
                    continue;
                if (moveFits(m, c1, c2)) {
                    std::int64_t gain =
                        staticGain(level, m, c2, partition);
                    if (gain > 0)
                        candidates.push_back(
                            Change{m, c2, -1, -1, gain});
                } else {
                    // Pairwise interchanges that free the capacity.
                    int considered = 0;
                    for (int u = 0;
                         u < level.numNodes() && considered < 8;
                         ++u) {
                        if (u == m || level.members[u].empty())
                            continue;
                        if (macroCluster(level, u, partition) != c2)
                            continue;
                        if (!swapFits(m, c1, u, c2))
                            continue;
                        ++considered;
                        std::int64_t gain =
                            staticGain(level, m, c2, partition) +
                            staticGain(level, u, c1, partition) -
                            2 * mutualWeight(m, u);
                        if (gain > 0)
                            candidates.push_back(
                                Change{m, c2, u, c1, gain});
                    }
                }
            }
        }
        if (candidates.empty())
            break;

        // Pre-rank by the static proxy; evaluate only the top K
        // exactly.
        std::sort(candidates.begin(), candidates.end(),
                  [](const Change &x, const Change &y) {
                      if (x.staticGain != y.staticGain)
                          return x.staticGain > y.staticGain;
                      if (x.macroA != y.macroA)
                          return x.macroA < y.macroA;
                      return x.macroB < y.macroB;
                  });
        int topK = std::max(1, options_.prescanTopK);
        if (static_cast<int>(candidates.size()) > topK)
            candidates.resize(topK);

        bool haveBest = false;
        Change bestChange;
        PartitionEstimate bestEst;
        for (const Change &cand : candidates) {
            trial = partition;
            moveMacro(level, cand.macroA, cand.destA, trial);
            if (cand.macroB != -1)
                moveMacro(level, cand.macroB, cand.destB, trial);
            PartitionEstimate est = estimator_.evaluate(trial);
            // Largest execution-time benefit; tie-breaks: larger cut
            // slack, then fewer cut edges (paper Section 3.2.2).
            bool better = false;
            if (!haveBest) {
                better = true;
            } else if (est.execTime != bestEst.execTime) {
                better = est.execTime < bestEst.execTime;
            } else if (est.cutSlackTotal != bestEst.cutSlackTotal) {
                better = est.cutSlackTotal > bestEst.cutSlackTotal;
            } else if (est.cutEdges != bestEst.cutEdges) {
                better = est.cutEdges < bestEst.cutEdges;
            } else if (!machine_.homogeneous()) {
                // Heterogeneity-aware final tie-break: prefer the
                // change that leaves the most pressured (cluster, FU
                // class) least loaded. Never consulted on homogeneous
                // machines, keeping Table-1 output bit-identical.
                better = est.peakUtilPermille <
                         bestEst.peakUtilPermille;
            }
            if (better) {
                haveBest = true;
                bestChange = cand;
                bestEst = est;
            }
        }

        if (!haveBest || bestEst.execTime >= current.execTime)
            break; // no positive benefit remains

        applyToOcc(bestChange.macroA,
                   macroCluster(level, bestChange.macroA, partition),
                   bestChange.destA);
        moveMacro(level, bestChange.macroA, bestChange.destA,
                  partition);
        if (bestChange.macroB != -1) {
            applyToOcc(bestChange.macroB,
                       macroCluster(level, bestChange.macroB,
                                    partition),
                       bestChange.destB);
            moveMacro(level, bestChange.macroB, bestChange.destB,
                      partition);
        }
        current = bestEst;
        changedAny = true;
        --budget;
    }
    return changedAny;
}

void
PartitionRefiner::refineLevel(const CoarseLevel &level,
                              Partition &partition) const
{
    // Per-level straddle verification (once; macroCluster relies on
    // it holding throughout the level).
    for (int m = 0; m < level.numNodes(); ++m) {
        if (level.members[m].empty())
            continue;
        int cluster = partition.clusterOf(level.members[m][0]);
        for (NodeId v : level.members[m]) {
            GPSCHED_ASSERT(partition.clusterOf(v) == cluster,
                           "macro-node straddles clusters");
        }
    }
    computeMacroOccupancy(level);
    int budget = options_.maxChangesPerLevel > 0
                     ? options_.maxChangesPerLevel
                     : 2 * level.numNodes() + 8;
    if (options_.balancePass)
        runBalancePass(level, partition, budget);
    if (options_.edgeImpactPass)
        runEdgeImpactPass(level, partition, budget);
}

} // namespace gpsched
