#include "partition/estimator.hh"

#include <algorithm>
#include <climits>
#include <limits>
#include <optional>

#include "graph/ddg_analysis.hh"
#include "sched/lifetime.hh"
#include "support/logging.hh"

namespace gpsched
{

PartitionEstimator::PartitionEstimator(const Ddg &ddg,
                                       const MachineConfig &machine,
                                       int ii, bool register_aware,
                                       const SccDecomposition *sccs)
    : ddg_(ddg), machine_(machine), ii_(ii),
      registerAware_(register_aware),
      extraScratch_(ddg.numEdges(), 0)
{
    GPSCHED_ASSERT(ii >= 1, "estimator needs II >= 1");
    if (sccs) {
        sccs_ = sccs;
    } else {
        ownSccs_ = computeSccs(ddg);
        sccs_ = &ownSccs_;
    }
}

int
PartitionEstimator::occupancy(const Partition &partition, int cluster,
                              FuClass cls) const
{
    const LatencyTable &lat = machine_.latencies();
    int occ = 0;
    for (NodeId v = 0; v < ddg_.numNodes(); ++v) {
        if (partition.clusterOf(v) != cluster)
            continue;
        Opcode op = ddg_.node(v).opcode;
        if (fuClassOf(op) == cls)
            occ += lat.occupancy(op);
    }
    return occ;
}

double
PartitionEstimator::utilization(const Partition &partition, int cluster,
                                FuClass cls) const
{
    int occ = occupancy(partition, cluster, cls);
    int slots = machine_.fuInCluster(cluster, cls) * ii_;
    if (slots == 0) {
        // A cluster without this unit class: empty is fine, any
        // assigned occupancy is infinitely overloaded.
        return occ > 0 ? std::numeric_limits<double>::infinity() : 0.0;
    }
    return static_cast<double>(occ) / static_cast<double>(slots);
}

bool
PartitionEstimator::resourcesOk(const Partition &partition) const
{
    for (int c = 0; c < machine_.numClusters(); ++c) {
        for (int k = 0; k < numFuClasses; ++k) {
            FuClass cls = static_cast<FuClass>(k);
            int slots = machine_.fuInCluster(c, cls) * ii_;
            if (occupancy(partition, c, cls) > slots)
                return false;
        }
    }
    return true;
}

int
PartitionEstimator::perClusterResMii(const Partition &partition) const
{
    int worst = 1;
    for (int c = 0; c < machine_.numClusters(); ++c) {
        for (int k = 0; k < numFuClasses; ++k) {
            FuClass cls = static_cast<FuClass>(k);
            int occ = occupancy(partition, c, cls);
            int fus = machine_.fuInCluster(c, cls);
            if (fus == 0) {
                // No II makes a missing unit class feasible; resource
                // rebalancing, not II growth, must fix this.
                if (occ > 0)
                    worst = std::max(worst, INT_MAX / 2);
                continue;
            }
            worst = std::max(worst, (occ + fus - 1) / fus);
        }
    }
    return worst;
}

PartitionEstimate
PartitionEstimator::evaluate(const Partition &partition) const
{
    PartitionEstimate est;

    // One pass over the nodes yields every (cluster, class) occupancy
    // needed for both the overload test and the per-cluster ResMII.
    const int clusters = machine_.numClusters();
    const LatencyTable &lat = machine_.latencies();
    occScratch_.assign(clusters * numFuClasses, 0);
    std::vector<int> &occ = occScratch_;
    for (NodeId v = 0; v < ddg_.numNodes(); ++v) {
        Opcode op = ddg_.node(v).opcode;
        occ[partition.clusterOf(v) * numFuClasses +
            static_cast<int>(fuClassOf(op))] += lat.occupancy(op);
    }
    est.resourcesOk = true;
    int res_mii = 1;
    for (int c = 0; c < clusters; ++c) {
        for (int k = 0; k < numFuClasses; ++k) {
            int fus = machine_.fuInCluster(c, static_cast<FuClass>(k));
            int o = occ[c * numFuClasses + k];
            if (o > fus * ii_)
                est.resourcesOk = false;
            if (fus > 0) {
                res_mii = std::max(res_mii, (o + fus - 1) / fus);
                est.peakUtilPermille = std::max(
                    est.peakUtilPermille,
                    static_cast<int>(static_cast<std::int64_t>(o) *
                                     1000 / (fus * ii_)));
            } else if (o > 0) {
                // fus == 0 with assigned ops: no II helps; the
                // overload penalty below ranks the partition last and
                // the pressure sentinel dominates every finite peak
                // (max-ed so an even larger finite overload recorded
                // earlier is never lowered).
                est.peakUtilPermille =
                    std::max(est.peakUtilPermille, 1000000);
            }
        }
    }

    est.iiBus = iiBusBound(ddg_, partition, machine_);

    // Communication delays on cut flow edges: the bus-class cost
    // model charges a cut value the capacity-weighted expected
    // latency of the fabric (exactly the class latency on
    // single-class machines). Hoisted: evaluate() is the refinement
    // hot path and the machine never changes. The cut-edge count
    // rides the same pass (it was a separate identical scan).
    const int comm_latency = machine_.expectedBusLatency();
    std::vector<int> &extra = extraScratch_;
    std::fill(extra.begin(), extra.end(), 0);
    for (EdgeId e = 0; e < ddg_.numEdges(); ++e) {
        const auto &edge = ddg_.edge(e);
        if (partition.clusterOf(edge.src) ==
            partition.clusterOf(edge.dst))
            continue;
        ++est.cutEdges;
        if (edge.isFlow())
            extra[e] = comm_latency;
    }

    int start = std::max({ii_, est.iiBus, res_mii});
    // Cut edges inside recurrences can force the II above the input;
    // scan a few steps before falling back to a full RecMII search.
    // The successful probe *is* the final analysis — rebuilding it at
    // iiFeas would redo identical work (this path is the refinement
    // hot loop's unit cost).
    std::optional<DdgAnalysis> analysisStorage;
    int iiFeas = -1;
    for (int ii = start; ii <= start + 4; ++ii) {
        analysisStorage.emplace(ddg_, lat, ii, &extra, sccs_);
        if (analysisStorage->feasible()) {
            iiFeas = ii;
            break;
        }
    }
    if (iiFeas == -1) {
        iiFeas = std::max(start, recMii(ddg_, &extra));
        analysisStorage.emplace(ddg_, lat, iiFeas, &extra, sccs_);
    }
    const DdgAnalysis &analysis = *analysisStorage;
    GPSCHED_ASSERT(analysis.feasible(), "estimator analysis infeasible");

    est.iiEff = iiFeas;
    est.pathLength = analysis.scheduleLength();
    est.execTime = static_cast<std::int64_t>(ddg_.tripCount() - 1) *
                       est.iiEff +
                   est.pathLength;
    if (!est.resourcesOk) {
        // Overloaded partitions are never acceptable; rank them last
        // but keep relative order so the balance pass can compare.
        est.execTime += 1000000000000LL;
    }

    for (EdgeId e = 0; e < ddg_.numEdges(); ++e) {
        const auto &edge = ddg_.edge(e);
        if (partition.clusterOf(edge.src) !=
            partition.clusterOf(edge.dst)) {
            if (edge.isFlow())
                est.cutSlackTotal += analysis.slack(e);
        }
    }

    // Register-aware extension (paper Section 4.2, future work):
    // project each value's home-cluster lifetime at the ASAP
    // schedule ([write, last same-cluster use]) and penalize
    // partitions whose per-cluster MaxLive overflows the file —
    // overflowing values will spill, costing roughly an II bump per
    // pair of them.
    if (registerAware_) {
        std::vector<LifetimeTracker> live;
        live.reserve(clusters);
        for (int c = 0; c < clusters; ++c)
            live.emplace_back(machine_.regsInCluster(c), iiFeas);
        for (NodeId v = 0; v < ddg_.numNodes(); ++v) {
            if (!definesValue(ddg_.node(v).opcode))
                continue;
            int home = partition.clusterOf(v);
            int write = analysis.asap(v) +
                        lat.latency(ddg_.node(v).opcode);
            int last = write;
            for (EdgeId e : ddg_.outEdges(v)) {
                const auto &edge = ddg_.edge(e);
                if (!edge.isFlow() ||
                    partition.clusterOf(edge.dst) != home) {
                    continue;
                }
                last = std::max(last, analysis.asap(edge.dst) +
                                          iiFeas * edge.distance);
            }
            live[home].add({write, last});
        }
        est.regPressure.resize(clusters);
        std::int64_t overflow = 0;
        for (int c = 0; c < clusters; ++c) {
            est.regPressure[c] = live[c].maxLive();
            overflow += std::max(0, est.regPressure[c] -
                                        machine_.regsInCluster(c));
        }
        est.execTime +=
            overflow * std::max<std::int64_t>(
                           1, (ddg_.tripCount() - 1) / 2);
    }
    return est;
}

} // namespace gpsched
