/**
 * @file
 * Maximum-weight matching used by the coarsening phase.
 *
 * The paper computes maximum-weight matchings with LEDA, which is
 * closed source. Coarsening only needs *heavy* matchings (METIS uses
 * plain greedy heavy-edge matching), so the default policy here is
 * greedy-by-weight followed by a 2-augmentation local-search pass
 * that fixes the classic greedy mistakes (an edge blocking two
 * heavier neighbors). An exact exponential solver is provided for
 * small graphs and used by tests to bound the heuristic gap; a
 * random maximal policy exists for the matching ablation bench.
 */

#ifndef GPSCHED_PARTITION_MATCHING_HH
#define GPSCHED_PARTITION_MATCHING_HH

#include <cstdint>
#include <vector>

#include "support/random.hh"

namespace gpsched
{

/** Undirected weighted edge between coarse-graph vertices. */
struct MatchEdge
{
    int a = 0;
    int b = 0;
    std::int64_t weight = 0;
};

/** Matching policies. */
enum class MatchingPolicy
{
    GreedyHeavy,   ///< greedy by weight + 2-augmentation (default)
    RandomMaximal, ///< random maximal matching (ablation baseline)
};

/**
 * Computes a matching over vertices [0, num_vertices). Returns the
 * indices into @p edges of the selected edges. Self loops are
 * ignored. Deterministic: ties break on (weight desc, index asc);
 * the RandomMaximal policy draws from @p rng.
 */
std::vector<int> computeMatching(int num_vertices,
                                 const std::vector<MatchEdge> &edges,
                                 MatchingPolicy policy, Rng &rng);

/**
 * Exact maximum-weight matching by branch and bound; exponential,
 * intended for graphs with <= ~20 vertices (tests only). Returns
 * selected edge indices.
 */
std::vector<int>
exactMaxWeightMatching(int num_vertices,
                       const std::vector<MatchEdge> &edges);

/** Sum of weights of the edges selected by @p matching. */
std::int64_t matchingWeight(const std::vector<MatchEdge> &edges,
                            const std::vector<int> &matching);

} // namespace gpsched

#endif // GPSCHED_PARTITION_MATCHING_HH
