/**
 * @file
 * Multilevel coarsening (paper Section 3.2.1 / background 2.1.2).
 *
 * The DDG is viewed as an undirected weighted graph; parallel and
 * opposite edges between the same node pair combine by summing
 * weights. Each coarsening step computes a (maximum-weight) matching
 * and fuses matched pairs into macro-nodes until as many nodes
 * remain as the architecture has clusters. Every level remembers
 * which original nodes each macro-node contains, so refinement can
 * move macro-nodes by reassigning their members in a Partition over
 * the original graph.
 */

#ifndef GPSCHED_PARTITION_COARSEN_HH
#define GPSCHED_PARTITION_COARSEN_HH

#include <cstdint>
#include <vector>

#include "graph/ddg.hh"
#include "partition/matching.hh"
#include "support/random.hh"

namespace gpsched
{

class CompileArena;

/** One level of the coarsening hierarchy. */
struct CoarseLevel
{
    /** Original node ids contained in each macro-node. */
    std::vector<std::vector<NodeId>> members;

    /** Macro-node of each original node at this level. */
    std::vector<int> coarseOf;

    /** Combined undirected edges between macro-nodes. */
    std::vector<MatchEdge> edges;

    /** Number of macro-nodes. */
    int numNodes() const
    {
        return static_cast<int>(members.size());
    }
};

/** Finest-to-coarsest hierarchy of macro-node graphs. */
class CoarseningHierarchy
{
  public:
    /**
     * Coarsens @p ddg until at most @p target_nodes macro-nodes
     * remain (or no further reduction is possible, which cannot
     * happen because unconnected nodes are force-merged).
     *
     * @param edge_weights per-original-edge weight (Section 3.2.1)
     * @param policy matching policy for each step
     * @param rng randomness source (RandomMaximal policy only)
     * @param arena optional per-compile arena for coarsening scratch
     *        (edge-combining buffers); must outlive the constructor
     *        call only — the hierarchy itself stays heap-backed.
     */
    CoarseningHierarchy(const Ddg &ddg,
                        const std::vector<std::int64_t> &edge_weights,
                        int target_nodes, MatchingPolicy policy,
                        Rng &rng, CompileArena *arena = nullptr);

    /** levels()[0] is the original graph; back() is the coarsest. */
    const std::vector<CoarseLevel> &levels() const { return levels_; }

    /** Coarsest level (used for the initial partition). */
    const CoarseLevel &coarsest() const { return levels_.back(); }

  private:
    std::vector<CoarseLevel> levels_;

    static CoarseLevel buildFinestLevel(
        const Ddg &ddg, const std::vector<std::int64_t> &edge_weights,
        CompileArena *arena);
    static CoarseLevel contract(const CoarseLevel &level,
                                const std::vector<int> &pair_of,
                                CompileArena *arena);
};

} // namespace gpsched

#endif // GPSCHED_PARTITION_COARSEN_HH
