/**
 * @file
 * Execution-time estimation of a partition (paper Section 3.2.2).
 *
 * The estimate models "a hypothetical machine with the actual
 * resources except for registers, which are assumed unlimited, ...
 * assuming an ideal memory", while "the interconnection network as
 * well as the memory ports are taken into account in a realistic
 * way":
 *
 *   T(P) = (niter - 1) * IIeff + pathLength(P)
 *
 * where IIeff = max(II, IIbus(P), per-cluster ResMII(P), RecMII with
 * the machine's *expected* bus latency — the capacity-weighted mean
 * over its bus classes — added to every cut flow edge), and
 * pathLength is the flat-schedule length under those same
 * communication delays. Estimates also carry the tie-break metrics
 * refinement uses: total slack of cut edges (maximize), cut-edge
 * count (minimize) and, on heterogeneous machines, the peak
 * per-cluster FU-class pressure (minimize).
 */

#ifndef GPSCHED_PARTITION_ESTIMATOR_HH
#define GPSCHED_PARTITION_ESTIMATOR_HH

#include <cstdint>
#include <vector>

#include "graph/ddg.hh"
#include "graph/scc.hh"
#include "machine/machine.hh"
#include "partition/partition.hh"

namespace gpsched
{

/** Estimator verdict for one partition. */
struct PartitionEstimate
{
    /** False when some (cluster, FU class) exceeds 100% utilization. */
    bool resourcesOk = true;

    /**
     * Estimated per-cluster MaxLive at the ASAP schedule (filled
     * only by register-aware estimators; the paper's future-work
     * extension).
     */
    std::vector<int> regPressure;

    /** Bus-imposed II bound (Section 3.1). */
    int iiBus = 0;

    /** II used for the execution-time estimate. */
    int iiEff = 1;

    /** Flat schedule length including communication delays. */
    int pathLength = 0;

    /** Estimated execution time (cycles); lower is better. */
    std::int64_t execTime = 0;

    /** Total slack of cut flow edges (first tie-break, maximize). */
    std::int64_t cutSlackTotal = 0;

    /** Number of cut edges (second tie-break, minimize). */
    int cutEdges = 0;

    /**
     * Peak per-cluster FU-class pressure in permille: the maximum
     * over every (cluster, class) of occupancy * 1000 / (FUs * II),
     * with ops assigned to a class a cluster lacks scoring a huge
     * sentinel. The heterogeneity-aware refinement tie-break
     * (minimize; only consulted on heterogeneous machines so
     * homogeneous Table-1 results stay bit-identical).
     */
    int peakUtilPermille = 0;
};

/** Evaluates partitions of one DDG at a fixed input II. */
class PartitionEstimator
{
  public:
    /**
     * References must outlive the estimator.
     *
     * @param register_aware when true, the estimate also projects
     *        per-cluster register pressure (MaxLive of the ASAP
     *        schedule's value lifetimes) and penalizes partitions
     *        whose pressure overflows a cluster's file. The paper
     *        evaluates the partitioner *without* this heuristic and
     *        names it as future work (Section 4.2); it is off by
     *        default.
     * @param sccs optional precomputed SCC decomposition of @p ddg
     *        (must outlive the estimator). The partitioner builds
     *        several estimators per run over one immutable graph;
     *        sharing the decomposition avoids repeating Tarjan.
     */
    PartitionEstimator(const Ddg &ddg, const MachineConfig &machine,
                       int ii, bool register_aware = false,
                       const SccDecomposition *sccs = nullptr);

    /** Full estimate of @p partition. */
    PartitionEstimate evaluate(const Partition &partition) const;

    /**
     * Utilization of (cluster, FU class): occupancy of assigned ops
     * divided by available slots (FUs * II). May exceed 1.
     */
    double utilization(const Partition &partition, int cluster,
                       FuClass cls) const;

    /** True when no (cluster, class) utilization exceeds 100%. */
    bool resourcesOk(const Partition &partition) const;

    /** Largest per-cluster ResMII induced by @p partition. */
    int perClusterResMii(const Partition &partition) const;

    /** Input II the estimator was built for. */
    int ii() const { return ii_; }

  private:
    const Ddg &ddg_;
    const MachineConfig &machine_;
    int ii_;
    bool registerAware_;

    /** Own SCC decomposition; empty when the caller shared one. */
    SccDecomposition ownSccs_;

    /** Decomposition in use: &ownSccs_ or the caller's. */
    const SccDecomposition *sccs_;

    /** Scratch per-edge communication delays, reused per evaluate. */
    mutable std::vector<int> extraScratch_;

    /** Scratch (cluster, FU class) occupancy, reused per evaluate. */
    mutable std::vector<int> occScratch_;

    /** Occupancy of ops of @p cls assigned to @p cluster. */
    int occupancy(const Partition &partition, int cluster,
                  FuClass cls) const;
};

} // namespace gpsched

#endif // GPSCHED_PARTITION_ESTIMATOR_HH
