/**
 * @file
 * The GP scheme's cluster-assignment phase (paper Section 3.2):
 * multilevel graph partitioning of a loop DDG.
 *
 *   1. compute edge weights at the input II (Section 3.2.1), using
 *      the machine's expected bus latency — the capacity-weighted
 *      mean over its bus classes — as the cut penalty,
 *   2. coarsen by maximum-weight matching until as many macro-nodes
 *      remain as the machine has clusters,
 *   3. assign each coarsest macro-node to a cluster under the
 *      configured AssignmentPolicy (capacity-balanced by default;
 *      see below),
 *   4. refine every level from coarsest to finest with the balance
 *      and edge-impact passes (Section 3.2.2); on heterogeneous
 *      machines the refiner additionally tie-breaks on per-cluster
 *      FU-class pressure (PartitionEstimate::peakUtilPermille).
 *
 * The result carries the cluster assignment, the bus-imposed bound
 * IIbus that the driver of Section 3.1 compares against the current
 * II, and the final execution-time estimate.
 */

#ifndef GPSCHED_PARTITION_MULTILEVEL_HH
#define GPSCHED_PARTITION_MULTILEVEL_HH

#include <cstdint>

#include "graph/ddg.hh"
#include "machine/machine.hh"
#include "partition/coarsen.hh"
#include "partition/edge_weights.hh"
#include "partition/estimator.hh"
#include "partition/partition.hh"
#include "partition/refine.hh"

namespace gpsched
{

/**
 * How the coarsest macro-nodes are seeded onto clusters before
 * refinement (step 3 of the pipeline above).
 *
 * On homogeneous machines the partitioner takes the legacy
 * round-robin path no matter which policy is configured (the
 * capacity-balanced greedy rule is *not* mathematically equivalent
 * to round-robin there — the short-circuit is what enforces
 * parity), so Table-1 presets schedule bit-identically under either
 * setting — pinned by tests/test_transfer_policy.cc.
 */
enum class AssignmentPolicy
{
    /**
     * Legacy rule: heaviest macro-nodes first, clusters visited
     * round-robin in descending issue-width order. Ignores *which*
     * functional-unit classes a cluster actually owns.
     */
    WidestClusterFirst,

    /**
     * Heterogeneity-aware rule (the default): heaviest macro-nodes
     * first, each placed on the cluster that minimizes the peak
     * per-FU-class pressure after placement — the cluster's
     * post-placement occupancy of each class divided by its capacity
     * of that class, i.e. its share of the machine-wide capacity. A
     * cluster with 0 units of a class the placement would load is
     * infinitely pressured and never seeded with it (the 0-FU guards
     * of the estimator are thereby preserved at seeding time). Ties
     * prefer the wider cluster, then the lower index, keeping the
     * policy deterministic.
     */
    CapacityBalanced,
};

/** Partitioner configuration (defaults reproduce the paper on
 *  homogeneous machines and add heterogeneity awareness beyond it). */
struct GpPartitionerOptions
{
    MatchingPolicy matching = MatchingPolicy::GreedyHeavy;
    EdgeWeightOptions edgeWeights;
    RefineOptions refine;
    bool refineEnabled = true;

    /**
     * Initial-assignment rule for the coarsest level. The default,
     * AssignmentPolicy::CapacityBalanced, seeds by per-FU-class
     * capacity shares; AssignmentPolicy::WidestClusterFirst restores
     * the pre-heterogeneity seeding rule (useful for ablations).
     * Note that the cut-edge cost input changed *unconditionally*
     * from the fastest-bus latency to the machine's expected bus
     * latency, so on multi-bus-class machines whose expectation
     * rounds above the minimum this knob alone does not reproduce
     * pre-cost-model partitions; on homogeneous single-class
     * machines (all Table-1 presets) it does, exactly. Both values
     * are encoded into the engine's LoopKey, so compiled-loop caches
     * never alias across policies.
     */
    AssignmentPolicy assignment = AssignmentPolicy::CapacityBalanced;

    /** Steer refinement away from register-overflowing partitions
     *  (the paper's Section-4.2 future-work heuristic). */
    bool registerAware = false;

    std::uint64_t seed = 0xc0ffee;
};

/** Result of one partitioning run. */
struct GpPartitionResult
{
    Partition partition;
    int iiBus = 0;
    PartitionEstimate estimate;
};

class CompileArena;

/** Multilevel cluster assignment for modulo scheduling. */
class GpPartitioner
{
  public:
    /** @p machine must outlive the partitioner. */
    explicit GpPartitioner(const MachineConfig &machine,
                           GpPartitionerOptions options = {});

    /**
     * Partitions @p ddg for initiation interval @p ii. @p arena, when
     * given, backs the run's internal scratch (coarsening tables,
     * refiner occupancy); the returned result is always heap-backed
     * and survives an arena reset.
     */
    GpPartitionResult run(const Ddg &ddg, int ii,
                          CompileArena *arena = nullptr) const;

  private:
    const MachineConfig &machine_;
    GpPartitionerOptions options_;

    /**
     * AssignmentPolicy::CapacityBalanced seeding: places the coarsest
     * macro-nodes (visited in @p order, heaviest first) one by one on
     * the cluster whose peak per-FU-class pressure after the
     * placement is smallest.
     */
    void assignCapacityBalanced(const Ddg &ddg,
                                const CoarseLevel &coarsest,
                                const std::vector<int> &order,
                                Partition &partition) const;
};

} // namespace gpsched

#endif // GPSCHED_PARTITION_MULTILEVEL_HH
