/**
 * @file
 * The GP scheme's cluster-assignment phase (paper Section 3.2):
 * multilevel graph partitioning of a loop DDG.
 *
 *   1. compute edge weights at the input II (Section 3.2.1),
 *   2. coarsen by maximum-weight matching until as many macro-nodes
 *      remain as the machine has clusters,
 *   3. assign each coarsest macro-node to a distinct cluster,
 *   4. refine every level from coarsest to finest with the balance
 *      and edge-impact passes (Section 3.2.2).
 *
 * The result carries the cluster assignment, the bus-imposed bound
 * IIbus that the driver of Section 3.1 compares against the current
 * II, and the final execution-time estimate.
 */

#ifndef GPSCHED_PARTITION_MULTILEVEL_HH
#define GPSCHED_PARTITION_MULTILEVEL_HH

#include <cstdint>

#include "graph/ddg.hh"
#include "machine/machine.hh"
#include "partition/coarsen.hh"
#include "partition/edge_weights.hh"
#include "partition/estimator.hh"
#include "partition/partition.hh"
#include "partition/refine.hh"

namespace gpsched
{

/** Partitioner configuration (defaults reproduce the paper). */
struct GpPartitionerOptions
{
    MatchingPolicy matching = MatchingPolicy::GreedyHeavy;
    EdgeWeightOptions edgeWeights;
    RefineOptions refine;
    bool refineEnabled = true;

    /** Steer refinement away from register-overflowing partitions
     *  (the paper's Section-4.2 future-work heuristic). */
    bool registerAware = false;

    std::uint64_t seed = 0xc0ffee;
};

/** Result of one partitioning run. */
struct GpPartitionResult
{
    Partition partition;
    int iiBus = 0;
    PartitionEstimate estimate;
};

/** Multilevel cluster assignment for modulo scheduling. */
class GpPartitioner
{
  public:
    /** @p machine must outlive the partitioner. */
    explicit GpPartitioner(const MachineConfig &machine,
                           GpPartitionerOptions options = {});

    /** Partitions @p ddg for initiation interval @p ii. */
    GpPartitionResult run(const Ddg &ddg, int ii) const;

  private:
    const MachineConfig &machine_;
    GpPartitionerOptions options_;
};

} // namespace gpsched

#endif // GPSCHED_PARTITION_MULTILEVEL_HH
