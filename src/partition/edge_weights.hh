/**
 * @file
 * Edge weights for coarsening (paper Section 3.2.1).
 *
 * The weight of an edge reflects the penalty of placing its
 * endpoints in different clusters:
 *
 *   weight(e) = delay(e) * (maxsl + 1) + maxsl - slack(e) + 1
 *
 * where delay(e) is the execution-time growth caused by adding the
 * bus latency to e,
 *
 *   delay(e) = (niter - 1) * (II' - II) + new_max_path - max_path,
 *
 * II' being the smallest feasible initiation interval after the
 * extra latency (recurrences through e may force II' > II), and
 * slack(e) the scheduling freedom of the edge. The lexicographic
 * scaling by (maxsl + 1) makes any difference in delay dominate any
 * difference in slack, and the trailing +1 keeps every weight
 * nonzero so zero-impact edges can still enter the matching.
 */

#ifndef GPSCHED_PARTITION_EDGE_WEIGHTS_HH
#define GPSCHED_PARTITION_EDGE_WEIGHTS_HH

#include <cstdint>
#include <vector>

#include "graph/ddg.hh"
#include "machine/op.hh"

namespace gpsched
{

struct SccDecomposition;

/** Term toggles for the edge-weight ablation bench. */
struct EdgeWeightOptions
{
    bool useDelayTerm = true; ///< include delay(e)*(maxsl+1)
    bool useSlackTerm = true; ///< include maxsl - slack(e)
};

/**
 * Computes the per-edge coarsening weights of @p ddg at initiation
 * interval @p ii with a bus of @p bus_latency cycles. On machines
 * with several bus classes the partitioner passes
 * MachineConfig::expectedBusLatency() — the capacity-weighted mean
 * over the classes — which reduces to the single class's latency on
 * homogeneous fabrics. @p sccs optionally shares a precomputed SCC
 * decomposition of @p ddg (null = compute one internally).
 */
std::vector<std::int64_t>
computeEdgeWeights(const Ddg &ddg, const LatencyTable &latencies,
                   int ii, int bus_latency,
                   const EdgeWeightOptions &options = {},
                   const SccDecomposition *sccs = nullptr);

/**
 * The delay(e) component alone (execution-time growth from adding
 * @p bus_latency to edge @p e at initiation interval @p ii).
 */
std::int64_t edgeDelay(const Ddg &ddg, const LatencyTable &latencies,
                       EdgeId e, int ii, int bus_latency);

} // namespace gpsched

#endif // GPSCHED_PARTITION_EDGE_WEIGHTS_HH
