/**
 * @file
 * Partition refinement (paper Section 3.2.2).
 *
 * At each level of the multilevel hierarchy, from coarsest to
 * finest, two heuristics improve the induced partition:
 *
 *  1. *Balance pass* — while some (cluster, FU class) is utilized
 *     above 100%, move a macro-node that uses the overloaded
 *     resource out of the overloaded cluster, provided the
 *     destination does not overload this resource or resources fixed
 *     earlier in the pass. If no movement helps, the pass defers to
 *     a finer level.
 *
 *  2. *Edge-impact pass* — consider moving each boundary macro-node
 *     to a neighbouring cluster (and, when capacity blocks the move,
 *     pairwise interchanges that free the capacity), apply the
 *     single change with the largest estimated execution-time
 *     benefit; ties prefer larger total slack of cut edges, then
 *     fewer cut edges, then — on heterogeneous machines only — lower
 *     peak per-cluster FU-class pressure
 *     (PartitionEstimate::peakUtilPermille); repeat until no
 *     positive-benefit change remains.
 *
 * Exact execution-time estimates are relatively expensive, so
 * candidates are pre-ranked with a static gain proxy (sum of
 * Section-3.2.1 edge weights that enter/leave the cut) and only the
 * top candidates are evaluated exactly. This keeps the GP scheme
 * faster than URACAM, as in the paper's Table 2.
 */

#ifndef GPSCHED_PARTITION_REFINE_HH
#define GPSCHED_PARTITION_REFINE_HH

#include <cstdint>
#include <vector>

#include "graph/ddg.hh"
#include "machine/machine.hh"
#include "partition/coarsen.hh"
#include "partition/estimator.hh"
#include "partition/partition.hh"
#include "support/arena.hh"

namespace gpsched
{

/** Refinement knobs (defaults reproduce the paper's scheme). */
struct RefineOptions
{
    bool balancePass = true;
    bool edgeImpactPass = true;

    /** Enable the register-pressure term of the estimator (paper
     *  Section 4.2 future work; off reproduces the paper). */
    bool registerAware = false;

    /** Exact estimator evaluations per edge-impact round. */
    int prescanTopK = 3;

    /** Cap on applied changes per level (0 = 2 * nodes + 8). */
    int maxChangesPerLevel = 0;
};

/** Refines partitions at macro-node granularity. */
class PartitionRefiner
{
  public:
    /**
     * @param static_weights per-original-edge Section-3.2.1 weights
     *        (the cheap gain proxy); references must outlive the
     *        refiner.
     * @param arena optional per-compile arena for the refiner's
     *        scratch tables; must outlive the refiner (null = heap).
     * @param sccs optional precomputed SCC decomposition of @p ddg,
     *        shared with the refiner's estimator (null = the
     *        estimator computes its own).
     */
    PartitionRefiner(const Ddg &ddg, const MachineConfig &machine,
                     int ii,
                     const std::vector<std::int64_t> &static_weights,
                     RefineOptions options = {},
                     CompileArena *arena = nullptr,
                     const SccDecomposition *sccs = nullptr);

    /**
     * Runs both passes on @p partition, moving whole macro-nodes of
     * @p level. @p partition maps original nodes.
     */
    void refineLevel(const CoarseLevel &level,
                     Partition &partition) const;

  private:
    const Ddg &ddg_;
    const MachineConfig &machine_;
    int ii_;
    const std::vector<std::int64_t> &staticWeights_;
    RefineOptions options_;
    PartitionEstimator estimator_;

    /**
     * Per-level scratch: occupancy of each (macro-node, FU class),
     * computed once per refineLevel (macro membership never changes
     * within a level) so the passes' inner loops read a table
     * instead of re-walking member lists.
     */
    mutable ArenaVector<int> macroOcc_;

    /**
     * Pass-local (cluster, FU class) occupancy table, flattened
     * cluster-major; reused across passes and levels so the steady
     * state allocates nothing.
     */
    mutable ArenaVector<int> clusterOcc_;

    /** Fills clusterOcc_ from @p partition. */
    void computeClusterOccupancy(const Partition &partition) const;

    /** Fills macroOcc_ for @p level. */
    void computeMacroOccupancy(const CoarseLevel &level) const;

    /** Occupancy of ops of @p cls inside macro-node @p macro. */
    int
    macroOccupancy(int macro, FuClass cls) const
    {
        return macroOcc_[static_cast<std::size_t>(macro) *
                             numFuClasses +
                         static_cast<int>(cls)];
    }

    /** Cluster of a macro-node (all members agree). */
    int macroCluster(const CoarseLevel &level, int macro,
                     const Partition &partition) const;

    /** Moves all members of @p macro to @p cluster. */
    void moveMacro(const CoarseLevel &level, int macro, int cluster,
                   Partition &partition) const;

    /**
     * Static gain of moving @p macro to @p dest: cut weight removed
     * minus cut weight created.
     */
    std::int64_t staticGain(const CoarseLevel &level, int macro,
                            int dest, const Partition &partition) const;

    bool runBalancePass(const CoarseLevel &level, Partition &partition,
                        int &budget) const;

    bool runEdgeImpactPass(const CoarseLevel &level,
                           Partition &partition, int &budget) const;
};

} // namespace gpsched

#endif // GPSCHED_PARTITION_REFINE_HH
