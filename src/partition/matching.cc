#include "partition/matching.hh"

#include <algorithm>
#include <functional>
#include <numeric>

#include "support/logging.hh"

namespace gpsched
{

namespace
{

/** Validates edge endpoints. */
void
checkEdges(int num_vertices, const std::vector<MatchEdge> &edges)
{
    for (const auto &e : edges) {
        GPSCHED_ASSERT(e.a >= 0 && e.a < num_vertices &&
                           e.b >= 0 && e.b < num_vertices,
                       "matching edge endpoint out of range");
        GPSCHED_ASSERT(e.weight >= 0, "negative matching weight");
    }
}

/**
 * Greedy heavy-edge matching: scan edges by decreasing weight and
 * take every edge whose endpoints are still free.
 */
std::vector<int>
greedyMatching(int num_vertices, const std::vector<MatchEdge> &edges)
{
    std::vector<int> order(edges.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int x, int y) {
        if (edges[x].weight != edges[y].weight)
            return edges[x].weight > edges[y].weight;
        return x < y;
    });

    std::vector<bool> used(num_vertices, false);
    std::vector<int> picked;
    for (int idx : order) {
        const auto &e = edges[idx];
        if (e.a == e.b || used[e.a] || used[e.b])
            continue;
        used[e.a] = used[e.b] = true;
        picked.push_back(idx);
    }
    return picked;
}

/**
 * One 2-augmentation pass: for each selected edge, check whether
 * dropping it and adding two currently-blocked edges (one per freed
 * endpoint) increases total weight. Repeats until no improvement.
 */
void
augmentPairs(int num_vertices, const std::vector<MatchEdge> &edges,
             std::vector<int> &picked)
{
    // adjacency: for each vertex, candidate edge indices.
    std::vector<std::vector<int>> adj(num_vertices);
    for (std::size_t i = 0; i < edges.size(); ++i) {
        if (edges[i].a != edges[i].b) {
            adj[edges[i].a].push_back(static_cast<int>(i));
            adj[edges[i].b].push_back(static_cast<int>(i));
        }
    }

    auto rebuildUsed = [&](std::vector<int> &matchedEdgeOf) {
        matchedEdgeOf.assign(num_vertices, -1);
        for (int idx : picked) {
            matchedEdgeOf[edges[idx].a] = idx;
            matchedEdgeOf[edges[idx].b] = idx;
        }
    };

    std::vector<int> matchedEdgeOf;
    rebuildUsed(matchedEdgeOf);

    bool improved = true;
    int guard = 0;
    while (improved && guard++ < 64) {
        improved = false;
        for (std::size_t p = 0; p < picked.size(); ++p) {
            int dropIdx = picked[p];
            const auto &drop = edges[dropIdx];
            // Best replacement edge per freed endpoint, not touching
            // the other endpoint and with both other ends free.
            auto bestAt = [&](int vertex, int avoid) {
                int best = -1;
                for (int cand : adj[vertex]) {
                    if (cand == dropIdx)
                        continue;
                    const auto &ce = edges[cand];
                    int other = ce.a == vertex ? ce.b : ce.a;
                    if (other == avoid)
                        continue;
                    if (matchedEdgeOf[other] != -1 &&
                        matchedEdgeOf[other] != dropIdx) {
                        continue;
                    }
                    if (other == drop.a || other == drop.b)
                        continue;
                    if (best == -1 ||
                        ce.weight > edges[best].weight) {
                        best = cand;
                    }
                }
                return best;
            };
            int repA = bestAt(drop.a, drop.b);
            int repB = bestAt(drop.b, drop.a);
            std::int64_t gain = -drop.weight;
            if (repA != -1)
                gain += edges[repA].weight;
            if (repB != -1 && repB != repA)
                gain += edges[repB].weight;
            if (repA != -1 && repB != -1 && repA != repB) {
                // Both replacements must not collide on a vertex.
                const auto &ra = edges[repA];
                const auto &rb = edges[repB];
                int otherA = ra.a == drop.a ? ra.b : ra.a;
                int otherB = rb.a == drop.b ? rb.b : rb.a;
                if (otherA == otherB)
                    continue;
            }
            if (gain > 0 && (repA != -1 || repB != -1) &&
                repA != repB) {
                picked.erase(picked.begin() +
                             static_cast<std::ptrdiff_t>(p));
                if (repA != -1)
                    picked.push_back(repA);
                if (repB != -1)
                    picked.push_back(repB);
                rebuildUsed(matchedEdgeOf);
                improved = true;
                break;
            }
        }
    }
}

/** Random maximal matching for the ablation bench. */
std::vector<int>
randomMaximalMatching(int num_vertices,
                      const std::vector<MatchEdge> &edges, Rng &rng)
{
    std::vector<int> order(edges.size());
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    std::vector<bool> used(num_vertices, false);
    std::vector<int> picked;
    for (int idx : order) {
        const auto &e = edges[idx];
        if (e.a == e.b || used[e.a] || used[e.b])
            continue;
        used[e.a] = used[e.b] = true;
        picked.push_back(idx);
    }
    return picked;
}

} // namespace

std::vector<int>
computeMatching(int num_vertices, const std::vector<MatchEdge> &edges,
                MatchingPolicy policy, Rng &rng)
{
    checkEdges(num_vertices, edges);
    switch (policy) {
      case MatchingPolicy::GreedyHeavy: {
        auto picked = greedyMatching(num_vertices, edges);
        augmentPairs(num_vertices, edges, picked);
        return picked;
      }
      case MatchingPolicy::RandomMaximal:
        return randomMaximalMatching(num_vertices, edges, rng);
      default:
        GPSCHED_PANIC("bad matching policy");
    }
}

std::vector<int>
exactMaxWeightMatching(int num_vertices,
                       const std::vector<MatchEdge> &edges)
{
    checkEdges(num_vertices, edges);
    GPSCHED_ASSERT(num_vertices <= 24,
                   "exact matching is exponential; vertex count ",
                   num_vertices, " too large");

    std::vector<int> best;
    std::int64_t bestWeight = 0;
    std::vector<int> current;

    // Depth-first over edges; prune on remaining optimistic weight.
    std::vector<std::int64_t> suffixMax(edges.size() + 1, 0);
    for (int i = static_cast<int>(edges.size()) - 1; i >= 0; --i)
        suffixMax[i] = suffixMax[i + 1] + edges[i].weight;

    std::vector<bool> used(num_vertices, false);
    std::int64_t currentWeight = 0;

    std::function<void(std::size_t)> visit = [&](std::size_t i) {
        if (currentWeight > bestWeight ||
            (currentWeight == bestWeight &&
             current.size() > best.size())) {
            bestWeight = currentWeight;
            best = current;
        }
        if (i >= edges.size())
            return;
        if (currentWeight + suffixMax[i] < bestWeight)
            return;
        const auto &e = edges[i];
        if (e.a != e.b && !used[e.a] && !used[e.b]) {
            used[e.a] = used[e.b] = true;
            current.push_back(static_cast<int>(i));
            currentWeight += e.weight;
            visit(i + 1);
            currentWeight -= e.weight;
            current.pop_back();
            used[e.a] = used[e.b] = false;
        }
        visit(i + 1);
    };
    visit(0);
    return best;
}

std::int64_t
matchingWeight(const std::vector<MatchEdge> &edges,
               const std::vector<int> &matching)
{
    std::int64_t total = 0;
    for (int idx : matching) {
        GPSCHED_ASSERT(idx >= 0 &&
                           idx < static_cast<int>(edges.size()),
                       "bad matching index");
        total += edges[idx].weight;
    }
    return total;
}

} // namespace gpsched
