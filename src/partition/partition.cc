#include "partition/partition.hh"

#include <algorithm>
#include <cstdint>

#include "support/logging.hh"

namespace gpsched
{

Partition::Partition(int num_nodes, int num_clusters, int initial)
    : numClusters_(num_clusters)
{
    GPSCHED_ASSERT(num_nodes >= 0, "negative node count");
    GPSCHED_ASSERT(num_clusters >= 1, "need at least one cluster");
    GPSCHED_ASSERT(initial >= 0 && initial < num_clusters,
                   "bad initial cluster ", initial);
    clusterOf_.assign(num_nodes, initial);
}

std::vector<NodeId>
Partition::nodesIn(int cluster) const
{
    std::vector<NodeId> nodes;
    for (NodeId v = 0; v < numNodes(); ++v) {
        if (clusterOf_[v] == cluster)
            nodes.push_back(v);
    }
    return nodes;
}

int
numCutEdges(const Ddg &ddg, const Partition &partition)
{
    int cut = 0;
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        const auto &edge = ddg.edge(e);
        if (partition.clusterOf(edge.src) !=
            partition.clusterOf(edge.dst)) {
            ++cut;
        }
    }
    return cut;
}

int
numCommunications(const Ddg &ddg, const Partition &partition)
{
    // Counts distinct (producer, dest cluster) pairs. Called once per
    // estimator evaluation, i.e. per refinement candidate — a
    // per-node std::set here dominated the evaluation's allocation
    // profile, so small machines use a bitmask and wide ones a
    // stamped flag array (one allocation per call, not per node).
    int comms = 0;
    const int clusters = partition.numClusters();
    if (clusters <= 64) {
        for (NodeId v = 0; v < ddg.numNodes(); ++v) {
            std::uint64_t mask = 0;
            const int home = partition.clusterOf(v);
            for (EdgeId e : ddg.outEdges(v)) {
                const auto &edge = ddg.edge(e);
                if (!edge.isFlow())
                    continue;
                int dstCluster = partition.clusterOf(edge.dst);
                if (dstCluster != home)
                    mask |= std::uint64_t{1} << dstCluster;
            }
            comms += __builtin_popcountll(mask);
        }
        return comms;
    }
    std::vector<NodeId> stamp(clusters, -1);
    for (NodeId v = 0; v < ddg.numNodes(); ++v) {
        const int home = partition.clusterOf(v);
        for (EdgeId e : ddg.outEdges(v)) {
            const auto &edge = ddg.edge(e);
            if (!edge.isFlow())
                continue;
            int dstCluster = partition.clusterOf(edge.dst);
            if (dstCluster != home && stamp[dstCluster] != v) {
                stamp[dstCluster] = v;
                ++comms;
            }
        }
    }
    return comms;
}

int
iiBusBound(const Ddg &ddg, const Partition &partition,
           const MachineConfig &machine)
{
    if (machine.unified())
        return 0;
    int ncomm = numCommunications(ddg, partition);
    if (ncomm == 0)
        return 0;
    // Smallest II whose kernel can carry ncomm transfers: bus class i
    // contributes floor(count_i * II / latency_i) transfers per
    // kernel. For a single class this reduces to the closed form
    // ceil(ncomm * latency / count).
    auto capacity = [&](long ii) {
        long total = 0;
        for (int i = 0; i < machine.numBusClasses(); ++i) {
            const BusDesc &bus = machine.busClass(i);
            total += bus.count * ii / bus.latency;
        }
        return total;
    };
    double per_cycle = 0.0;
    for (int i = 0; i < machine.numBusClasses(); ++i) {
        const BusDesc &bus = machine.busClass(i);
        per_cycle += static_cast<double>(bus.count) / bus.latency;
    }
    long ii = std::max(
        1L, static_cast<long>(ncomm / per_cycle) - 1);
    while (capacity(ii) < ncomm)
        ++ii;
    return static_cast<int>(ii);
}

} // namespace gpsched
