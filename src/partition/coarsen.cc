#include "partition/coarsen.hh"

#include <algorithm>
#include <map>
#include <utility>

#include "support/logging.hh"

namespace gpsched
{

CoarseLevel
CoarseningHierarchy::buildFinestLevel(
    const Ddg &ddg, const std::vector<std::int64_t> &edge_weights)
{
    CoarseLevel level;
    const int n = ddg.numNodes();
    level.members.resize(n);
    level.coarseOf.resize(n);
    for (NodeId v = 0; v < n; ++v) {
        level.members[v] = {v};
        level.coarseOf[v] = v;
    }

    std::map<std::pair<int, int>, std::int64_t> combined;
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        const auto &edge = ddg.edge(e);
        if (edge.src == edge.dst)
            continue; // self recurrences cannot be cut
        int lo = std::min<int>(edge.src, edge.dst);
        int hi = std::max<int>(edge.src, edge.dst);
        combined[{lo, hi}] += edge_weights[e];
    }
    for (const auto &[key, weight] : combined)
        level.edges.push_back(MatchEdge{key.first, key.second, weight});
    return level;
}

CoarseLevel
CoarseningHierarchy::contract(const CoarseLevel &level,
                              const std::vector<int> &pair_of)
{
    const int n = level.numNodes();
    // Assign new ids: matched pairs share one id; the lower index of
    // the pair visits first and claims the id.
    std::vector<int> newId(n, -1);
    int next = 0;
    for (int v = 0; v < n; ++v) {
        if (newId[v] != -1)
            continue;
        newId[v] = next;
        if (pair_of[v] != -1) {
            GPSCHED_ASSERT(newId[pair_of[v]] == -1,
                           "matching is not a matching");
            newId[pair_of[v]] = next;
        }
        ++next;
    }

    CoarseLevel out;
    out.members.resize(next);
    for (int v = 0; v < n; ++v) {
        auto &bucket = out.members[newId[v]];
        bucket.insert(bucket.end(), level.members[v].begin(),
                      level.members[v].end());
    }
    out.coarseOf.resize(level.coarseOf.size());
    for (std::size_t orig = 0; orig < level.coarseOf.size(); ++orig)
        out.coarseOf[orig] = newId[level.coarseOf[orig]];

    std::map<std::pair<int, int>, std::int64_t> combined;
    for (const auto &e : level.edges) {
        int a = newId[e.a];
        int b = newId[e.b];
        if (a == b)
            continue; // became internal
        combined[{std::min(a, b), std::max(a, b)}] += e.weight;
    }
    for (const auto &[key, weight] : combined)
        out.edges.push_back(MatchEdge{key.first, key.second, weight});
    return out;
}

CoarseningHierarchy::CoarseningHierarchy(
    const Ddg &ddg, const std::vector<std::int64_t> &edge_weights,
    int target_nodes, MatchingPolicy policy, Rng &rng)
{
    GPSCHED_ASSERT(static_cast<int>(edge_weights.size()) ==
                       ddg.numEdges(),
                   "edge weight vector size mismatch");
    GPSCHED_ASSERT(target_nodes >= 1, "bad coarsening target");

    levels_.push_back(buildFinestLevel(ddg, edge_weights));

    while (levels_.back().numNodes() > target_nodes) {
        const CoarseLevel &level = levels_.back();
        const int n = level.numNodes();

        std::vector<int> picked =
            computeMatching(n, level.edges, policy, rng);

        // Never shrink below the target: keep only the heaviest
        // excess edges.
        int excess = n - target_nodes;
        if (static_cast<int>(picked.size()) > excess) {
            std::sort(picked.begin(), picked.end(),
                      [&](int x, int y) {
                          if (level.edges[x].weight !=
                              level.edges[y].weight) {
                              return level.edges[x].weight >
                                     level.edges[y].weight;
                          }
                          return x < y;
                      });
            picked.resize(excess);
        }

        std::vector<int> pairOf(n, -1);
        for (int idx : picked) {
            pairOf[level.edges[idx].a] = level.edges[idx].b;
            pairOf[level.edges[idx].b] = level.edges[idx].a;
        }

        if (picked.empty()) {
            // Disconnected remainder: force-merge the two smallest
            // macro-nodes so coarsening always terminates.
            std::vector<int> bySize(n);
            for (int v = 0; v < n; ++v)
                bySize[v] = v;
            std::sort(bySize.begin(), bySize.end(), [&](int x, int y) {
                auto sx = level.members[x].size();
                auto sy = level.members[y].size();
                if (sx != sy)
                    return sx < sy;
                return x < y;
            });
            pairOf[bySize[0]] = bySize[1];
            pairOf[bySize[1]] = bySize[0];
        }

        levels_.push_back(contract(level, pairOf));
        GPSCHED_ASSERT(levels_.back().numNodes() <
                           levels_[levels_.size() - 2].numNodes(),
                       "coarsening made no progress");
    }
}

} // namespace gpsched
