#include "partition/coarsen.hh"

#include <algorithm>
#include <utility>

#include "support/arena.hh"
#include "support/logging.hh"

namespace gpsched
{

namespace
{

/** An undirected edge record awaiting pairwise combination. */
struct CombEdge
{
    int a;
    int b;
    std::int64_t w;
};

/**
 * Sums parallel edges: sorts @p comb by (a, b) and merges adjacent
 * runs. Output is in ascending (a, b) order — the same order the
 * std::map this replaces produced — and int64 addition over a run is
 * order-independent, so results are bit-identical to the map path.
 */
void
combineEdges(ArenaVector<CombEdge> &comb, std::vector<MatchEdge> &out)
{
    std::sort(comb.begin(), comb.end(),
              [](const CombEdge &x, const CombEdge &y) {
                  if (x.a != y.a)
                      return x.a < y.a;
                  return x.b < y.b;
              });
    for (std::size_t i = 0; i < comb.size();) {
        std::int64_t w = comb[i].w;
        std::size_t j = i + 1;
        while (j < comb.size() && comb[j].a == comb[i].a &&
               comb[j].b == comb[i].b) {
            w += comb[j].w;
            ++j;
        }
        out.push_back(MatchEdge{comb[i].a, comb[i].b, w});
        i = j;
    }
}

} // namespace

CoarseLevel
CoarseningHierarchy::buildFinestLevel(
    const Ddg &ddg, const std::vector<std::int64_t> &edge_weights,
    CompileArena *arena)
{
    CoarseLevel level;
    const int n = ddg.numNodes();
    level.members.resize(n);
    level.coarseOf.resize(n);
    for (NodeId v = 0; v < n; ++v) {
        level.members[v] = {v};
        level.coarseOf[v] = v;
    }

    ArenaVector<CombEdge> comb(arena);
    comb.reserve(ddg.numEdges());
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        const auto &edge = ddg.edge(e);
        if (edge.src == edge.dst)
            continue; // self recurrences cannot be cut
        int lo = std::min<int>(edge.src, edge.dst);
        int hi = std::max<int>(edge.src, edge.dst);
        comb.push_back(CombEdge{lo, hi, edge_weights[e]});
    }
    combineEdges(comb, level.edges);
    return level;
}

CoarseLevel
CoarseningHierarchy::contract(const CoarseLevel &level,
                              const std::vector<int> &pair_of,
                              CompileArena *arena)
{
    const int n = level.numNodes();
    // Assign new ids: matched pairs share one id; the lower index of
    // the pair visits first and claims the id.
    std::vector<int> newId(n, -1);
    int next = 0;
    for (int v = 0; v < n; ++v) {
        if (newId[v] != -1)
            continue;
        newId[v] = next;
        if (pair_of[v] != -1) {
            GPSCHED_ASSERT(newId[pair_of[v]] == -1,
                           "matching is not a matching");
            newId[pair_of[v]] = next;
        }
        ++next;
    }

    CoarseLevel out;
    out.members.resize(next);
    // Size each bucket up front: a merged pair otherwise grows its
    // bucket twice (allocate-copy-free per contract level adds up on
    // the compile hot path).
    std::vector<std::size_t> bucketSize(next, 0);
    for (int v = 0; v < n; ++v)
        bucketSize[newId[v]] += level.members[v].size();
    for (int m = 0; m < next; ++m)
        out.members[m].reserve(bucketSize[m]);
    for (int v = 0; v < n; ++v) {
        auto &bucket = out.members[newId[v]];
        bucket.insert(bucket.end(), level.members[v].begin(),
                      level.members[v].end());
    }
    out.coarseOf.resize(level.coarseOf.size());
    for (std::size_t orig = 0; orig < level.coarseOf.size(); ++orig)
        out.coarseOf[orig] = newId[level.coarseOf[orig]];

    ArenaVector<CombEdge> comb(arena);
    comb.reserve(level.edges.size());
    for (const auto &e : level.edges) {
        int a = newId[e.a];
        int b = newId[e.b];
        if (a == b)
            continue; // became internal
        comb.push_back(
            CombEdge{std::min(a, b), std::max(a, b), e.weight});
    }
    combineEdges(comb, out.edges);
    return out;
}

CoarseningHierarchy::CoarseningHierarchy(
    const Ddg &ddg, const std::vector<std::int64_t> &edge_weights,
    int target_nodes, MatchingPolicy policy, Rng &rng,
    CompileArena *arena)
{
    GPSCHED_ASSERT(static_cast<int>(edge_weights.size()) ==
                       ddg.numEdges(),
                   "edge weight vector size mismatch");
    GPSCHED_ASSERT(target_nodes >= 1, "bad coarsening target");

    levels_.push_back(buildFinestLevel(ddg, edge_weights, arena));

    while (levels_.back().numNodes() > target_nodes) {
        const CoarseLevel &level = levels_.back();
        const int n = level.numNodes();

        std::vector<int> picked =
            computeMatching(n, level.edges, policy, rng);

        // Never shrink below the target: keep only the heaviest
        // excess edges.
        int excess = n - target_nodes;
        if (static_cast<int>(picked.size()) > excess) {
            std::sort(picked.begin(), picked.end(),
                      [&](int x, int y) {
                          if (level.edges[x].weight !=
                              level.edges[y].weight) {
                              return level.edges[x].weight >
                                     level.edges[y].weight;
                          }
                          return x < y;
                      });
            picked.resize(excess);
        }

        std::vector<int> pairOf(n, -1);
        for (int idx : picked) {
            pairOf[level.edges[idx].a] = level.edges[idx].b;
            pairOf[level.edges[idx].b] = level.edges[idx].a;
        }

        if (picked.empty()) {
            // Disconnected remainder: force-merge the two smallest
            // macro-nodes so coarsening always terminates.
            std::vector<int> bySize(n);
            for (int v = 0; v < n; ++v)
                bySize[v] = v;
            std::sort(bySize.begin(), bySize.end(), [&](int x, int y) {
                auto sx = level.members[x].size();
                auto sy = level.members[y].size();
                if (sx != sy)
                    return sx < sy;
                return x < y;
            });
            pairOf[bySize[0]] = bySize[1];
            pairOf[bySize[1]] = bySize[0];
        }

        levels_.push_back(contract(level, pairOf, arena));
        GPSCHED_ASSERT(levels_.back().numNodes() <
                           levels_[levels_.size() - 2].numNodes(),
                       "coarsening made no progress");
    }
}

} // namespace gpsched
