#include "partition/edge_weights.hh"

#include <algorithm>

#include "graph/ddg_analysis.hh"
#include "support/logging.hh"

namespace gpsched
{

namespace
{

/**
 * delay(e) given a precomputed base analysis and SCC decomposition;
 * @p extra is an all-zero scratch vector restored before returning.
 */
std::int64_t
edgeDelayWithBase(const Ddg &ddg, const LatencyTable &latencies,
                  EdgeId e, int ii, int bus_latency,
                  const DdgAnalysis &base, const SccDecomposition &sccs,
                  std::vector<int> &extra)
{
    const auto &edge = ddg.edge(e);
    const bool same_scc = sccs.componentOf[edge.src] ==
                          sccs.componentOf[edge.dst];

    int new_ii = ii;
    std::int64_t path_growth = 0;
    if (!same_scc) {
        // The delayed edge lies on no cycle: the II is unaffected and
        // only paths through e can grow. The longest one is
        // asap(src) + efflat(e) + delay + height-from-dst, all known
        // from the base analysis — O(1) instead of a fresh sweep.
        int through = base.asap(edge.src) + base.effectiveLatency(e) +
                      bus_latency + base.scheduleLength() -
                      base.alap(edge.dst);
        path_growth =
            std::max(0, through - base.scheduleLength());
    } else {
        // Inside a recurrence the delay can also force the II up (by
        // at most bus_latency, since every cycle's distance sum is
        // >= 1); probe upward from the input II.
        extra[e] = bus_latency;
        for (;; ++new_ii) {
            GPSCHED_ASSERT(new_ii <= ii + bus_latency,
                           "augmented RecMII above bound");
            DdgAnalysis probe(ddg, latencies, new_ii, &extra, &sccs);
            if (probe.feasible()) {
                path_growth =
                    probe.scheduleLength() - base.scheduleLength();
                break;
            }
        }
        extra[e] = 0;
    }

    std::int64_t iters = ddg.tripCount();
    std::int64_t ii_growth =
        static_cast<std::int64_t>(new_ii - ii) * (iters - 1);
    // Raising II can shorten the flat schedule (loop-carried edges
    // relax); the total is still a delay, never a speedup.
    return std::max<std::int64_t>(0, ii_growth + path_growth);
}

} // namespace

std::int64_t
edgeDelay(const Ddg &ddg, const LatencyTable &latencies, EdgeId e,
          int ii, int bus_latency)
{
    SccDecomposition sccs = computeSccs(ddg);
    DdgAnalysis base(ddg, latencies, ii, nullptr, &sccs);
    GPSCHED_ASSERT(base.feasible(), "edgeDelay at infeasible II ", ii);
    std::vector<int> extra(ddg.numEdges(), 0);
    return edgeDelayWithBase(ddg, latencies, e, ii, bus_latency, base,
                             sccs, extra);
}

std::vector<std::int64_t>
computeEdgeWeights(const Ddg &ddg, const LatencyTable &latencies,
                   int ii, int bus_latency,
                   const EdgeWeightOptions &options,
                   const SccDecomposition *shared_sccs)
{
    SccDecomposition own_sccs;
    if (!shared_sccs) {
        own_sccs = computeSccs(ddg);
        shared_sccs = &own_sccs;
    }
    const SccDecomposition &sccs = *shared_sccs;
    DdgAnalysis base(ddg, latencies, ii, nullptr, &sccs);
    GPSCHED_ASSERT(base.feasible(),
                   "edge weights requested at infeasible II ", ii);

    const std::int64_t maxsl = base.maxSlack();
    std::vector<std::int64_t> weights(ddg.numEdges(), 1);
    std::vector<int> extra(ddg.numEdges(), 0);
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        std::int64_t weight = 1;
        if (options.useDelayTerm) {
            weight += edgeDelayWithBase(ddg, latencies, e, ii,
                                        bus_latency, base, sccs,
                                        extra) *
                      (maxsl + 1);
        }
        if (options.useSlackTerm)
            weight += maxsl - base.slack(e);
        weights[e] = std::max<std::int64_t>(1, weight);
    }
    return weights;
}

} // namespace gpsched
