#include "workload/fuzz.hh"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <utility>

#include "graph/ddg_builder.hh"
#include "graph/textio.hh"
#include "machine/configs.hh"
#include "machine/registry.hh"
#include "sched/validate.hh"
#include "sim/sim.hh"
#include "support/compile_error.hh"
#include "support/random.hh"
#include "workload/loop_shapes.hh"

namespace gpsched::fuzz
{

const char *
toString(ShapeClass shape)
{
    switch (shape) {
      case ShapeClass::Random:
        return "random";
      case ShapeClass::DeepRecurrence:
        return "deep-recurrence";
      case ShapeClass::NearZeroSlack:
        return "near-zero-slack";
      case ShapeClass::StoreHeavyTail:
        return "store-heavy-tail";
      case ShapeClass::WideFanout:
        return "wide-fanout";
      case ShapeClass::LatencyStress:
        return "latency-stress";
      default:
        return "?";
    }
}

const char *
toString(FuzzVerdict verdict)
{
    switch (verdict) {
      case FuzzVerdict::Pass:
        return "pass";
      case FuzzVerdict::CompileRejected:
        return "compile-rejected";
      case FuzzVerdict::OracleDisagree:
        return "oracle-disagree";
      case FuzzVerdict::ScheduleRejected:
        return "schedule-rejected";
      case FuzzVerdict::MetricMismatch:
        return "metric-mismatch";
      default:
        return "?";
    }
}

namespace
{

// ---------------------------------------------------------------
// Shape generators. Every generator must emit a *valid* loop: flow
// edges leave value-defining nodes with at least the producer's
// table latency, distance-0 edges run forward, trip count >= 1 —
// the compiler may struggle (that is the point) but must never be
// entitled to reject.
// ---------------------------------------------------------------

/** A trip count biased toward the awkward ends: 1- and 2-iteration
 *  loops stress prolog/epilog accounting, huge trips stress the
 *  cycle extrapolation. */
std::int64_t
drawTrip(Rng &rng)
{
    double r = rng.nextDouble();
    if (r < 0.15)
        return rng.nextRange(1, 3);
    if (r < 0.85)
        return rng.nextRange(4, 2000);
    return rng.nextRange(100000, 1000000);
}

Ddg
genRandom(const std::string &name, const LatencyTable &lat, Rng &rng)
{
    RandomLoopParams p;
    p.numOps = static_cast<int>(rng.nextRange(4, 64));
    p.memFraction = rng.nextDouble() * 0.6;
    p.fpFraction = rng.nextDouble();
    p.carriedProb = rng.nextDouble() * 0.3;
    p.fanoutProb = rng.nextDouble() * 0.6;
    p.maxDistance = static_cast<int>(rng.nextRange(1, 4));
    p.tripCount = drawTrip(rng);
    return randomLoop(name, lat, rng, p);
}

Ddg
genDeepRecurrence(const std::string &name, const LatencyTable &lat,
                  Rng &rng)
{
    RandomLoopParams p;
    p.numOps = static_cast<int>(rng.nextRange(12, 48));
    p.memFraction = 0.15 + rng.nextDouble() * 0.3;
    p.fpFraction = 0.3 + rng.nextDouble() * 0.5;
    p.carriedProb = 0.3 + rng.nextDouble() * 0.3;
    p.fanoutProb = rng.nextDouble() * 0.5;
    p.maxDistance = static_cast<int>(rng.nextRange(4, 8));
    p.tripCount = drawTrip(rng);
    return randomLoop(name, lat, rng, p);
}

/**
 * A distance-1 FP recurrence cycle plus just enough independent
 * parallel work that ResMII lands next to RecMII: the II search has
 * almost no slack, and both the recurrence and the resource model
 * bind at once.
 */
Ddg
genNearZeroSlack(const std::string &name, const LatencyTable &lat,
                 Rng &rng)
{
    DdgBuilder b(name, lat);
    int chainLen = static_cast<int>(rng.nextRange(2, 6));
    std::vector<NodeId> chain;
    int recLatency = 0;
    for (int i = 0; i < chainLen; ++i) {
        Opcode op = (i % 2 == 0) ? Opcode::FMul : Opcode::FAdd;
        chain.push_back(b.op(op, "rec" + std::to_string(i)));
        recLatency += lat.latency(op);
        if (i > 0)
            b.flow(chain[i - 1], chain[i]);
    }
    b.carried(chain.back(), chain.front(), 1);

    // Filler streams sized so the widest corpus machines still see a
    // resource bound in the same neighbourhood as the recurrence.
    int streams = static_cast<int>(
        rng.nextRange(std::max(1, recLatency / 2), recLatency + 2));
    for (int s = 0; s < streams; ++s) {
        NodeId ld = b.op(Opcode::Load, "ld" + std::to_string(s));
        NodeId fm = b.op(Opcode::FMul, "fm" + std::to_string(s));
        b.flow(ld, fm);
        // Half the streams touch the recurrence so deviation from
        // the partition has consequences.
        if (rng.nextBool(0.5))
            b.flow(fm, chain[rng.nextBelow(chain.size())]);
        NodeId st = b.op(Opcode::Store, "st" + std::to_string(s));
        b.flow(fm, st);
    }
    return b.tripCount(drawTrip(rng)).build();
}

/**
 * A handful of producers feeding a long store tail, optionally
 * serialized by memory-ordering edges: memory ports saturate, IAlu
 * slots idle, and the order chain can push II past the fallback
 * threshold (the 0-FU list-schedule regression family).
 */
Ddg
genStoreHeavyTail(const std::string &name, const LatencyTable &lat,
                  Rng &rng)
{
    DdgBuilder b(name, lat);
    int defs = static_cast<int>(rng.nextRange(2, 5));
    std::vector<NodeId> producers;
    for (int d = 0; d < defs; ++d) {
        Opcode op = rng.nextBool(0.5) ? Opcode::Load : Opcode::IAlu;
        producers.push_back(b.op(op, "def" + std::to_string(d)));
        if (d > 0 && rng.nextBool(0.5))
            b.flow(producers[d - 1], producers[d]);
    }
    int tails = static_cast<int>(rng.nextRange(8, 24));
    bool serialize = rng.nextBool(0.5);
    NodeId prev = invalidNode;
    for (int t = 0; t < tails; ++t) {
        NodeId st = b.op(Opcode::Store, "st" + std::to_string(t));
        b.flow(producers[rng.nextBelow(producers.size())], st);
        if (serialize && prev != invalidNode)
            b.order(prev, st, 1, 0);
        else if (prev != invalidNode && rng.nextBool(0.3))
            b.order(st, prev, 1, 1); // carried anti-dependence
        prev = st;
    }
    return b.tripCount(drawTrip(rng)).build();
}

/** Few producers, dozens of consumers each: the partitioner must
 *  split a fan-out whose every cut edge costs a transfer, and the
 *  register file holds the hot value live across the body. */
Ddg
genWideFanout(const std::string &name, const LatencyTable &lat,
              Rng &rng)
{
    DdgBuilder b(name, lat);
    int producers = static_cast<int>(rng.nextRange(1, 3));
    std::vector<NodeId> roots;
    for (int p = 0; p < producers; ++p)
        roots.push_back(b.op(Opcode::Load, "src" + std::to_string(p)));
    int consumers = static_cast<int>(rng.nextRange(16, 40));
    std::vector<NodeId> sinks;
    for (int c = 0; c < consumers; ++c) {
        Opcode op = rng.nextBool(0.6) ? Opcode::FAdd : Opcode::IAlu;
        NodeId v = b.op(op, "c" + std::to_string(c));
        b.flow(roots[rng.nextBelow(roots.size())], v);
        if (producers > 1 && rng.nextBool(0.4))
            b.flow(roots[rng.nextBelow(roots.size())], v);
        sinks.push_back(v);
    }
    int stores = static_cast<int>(rng.nextRange(1, 4));
    for (int s = 0; s < stores; ++s) {
        NodeId st = b.op(Opcode::Store, "out" + std::to_string(s));
        b.flow(sinks[rng.nextBelow(sinks.size())], st);
    }
    return b.tripCount(drawTrip(rng)).build();
}

/**
 * Random connectivity with *inflated* edge latencies (table latency
 * plus a drawn pad — legal; only under-table latencies are
 * rejected) and awkward trip counts: stresses slack computation,
 * lifetime lengths and the register files.
 */
Ddg
genLatencyStress(const std::string &name, const LatencyTable &lat,
                 Rng &rng)
{
    Ddg g(name);
    int numOps = static_cast<int>(rng.nextRange(6, 32));
    std::vector<NodeId> defs;
    defs.push_back(g.addNode(Opcode::Load, "seed"));
    auto pad = [&]() { return static_cast<int>(rng.nextBelow(12)); };
    for (int i = 1; i < numOps; ++i) {
        double r = rng.nextDouble();
        Opcode op = r < 0.3   ? Opcode::Load
                    : r < 0.4 ? Opcode::Store
                    : r < 0.7 ? Opcode::FMul
                    : r < 0.9 ? Opcode::IAlu
                              : Opcode::FDiv;
        NodeId v = g.addNode(op, "n" + std::to_string(i));
        NodeId p = defs[rng.nextBelow(defs.size())];
        g.addEdge(p, v, lat.latency(g.node(p).opcode) + pad(), 0,
                  DepKind::Flow);
        if (definesValue(op)) {
            if (rng.nextBool(0.2)) {
                // Carried edge with a large latency over a small
                // distance: a steep recurrence bound.
                NodeId dst = static_cast<NodeId>(rng.nextBelow(
                    static_cast<std::uint64_t>(v) + 1));
                g.addEdge(v, dst,
                          lat.latency(op) + pad(),
                          static_cast<int>(rng.nextRange(1, 3)),
                          DepKind::Flow);
            }
            defs.push_back(v);
        }
    }
    g.setTripCount(drawTrip(rng));
    return g;
}

Ddg
generate(const std::string &name, const LatencyTable &lat,
         std::uint64_t seed, ShapeClass &shape)
{
    Rng rng(seed);
    shape = static_cast<ShapeClass>(
        rng.nextBelow(static_cast<std::uint64_t>(ShapeClass::NumShapes)));
    switch (shape) {
      case ShapeClass::Random:
        return genRandom(name, lat, rng);
      case ShapeClass::DeepRecurrence:
        return genDeepRecurrence(name, lat, rng);
      case ShapeClass::NearZeroSlack:
        return genNearZeroSlack(name, lat, rng);
      case ShapeClass::StoreHeavyTail:
        return genStoreHeavyTail(name, lat, rng);
      case ShapeClass::WideFanout:
        return genWideFanout(name, lat, rng);
      case ShapeClass::LatencyStress:
        return genLatencyStress(name, lat, rng);
      default:
        GPSCHED_PANIC("bad ShapeClass");
    }
}

} // namespace

Ddg
fuzzLoop(const std::string &name, const LatencyTable &lat,
         std::uint64_t seed)
{
    ShapeClass shape;
    return generate(name, lat, seed, shape);
}

std::vector<std::uint64_t>
corpusSeeds(std::uint64_t corpusSeed, int count)
{
    Rng master(corpusSeed);
    std::vector<std::uint64_t> seeds;
    seeds.reserve(static_cast<std::size_t>(std::max(count, 0)));
    for (int i = 0; i < count; ++i)
        seeds.push_back(master.next());
    return seeds;
}

FuzzCase
corpusCase(std::uint64_t corpusSeed, int index, const LatencyTable &lat)
{
    GPSCHED_ASSERT(index >= 0, "bad corpus index ", index);
    FuzzCase c;
    c.index = index;
    c.seed = corpusSeeds(corpusSeed, index + 1).back();
    c.ddg = generate("fuzz_" + std::to_string(index), lat, c.seed,
                     c.shape);
    return c;
}

void
writeCorpus(std::ostream &os, std::uint64_t corpusSeed, int count,
            const LatencyTable &lat)
{
    os << "# ddg_fuzz corpus: seed " << corpusSeed << ", " << count
       << " loops\n";
    for (int i = 0; i < count; ++i) {
        FuzzCase c = corpusCase(corpusSeed, i, lat);
        os << "# case " << i << " seed " << c.seed << " shape "
           << toString(c.shape) << "\n";
        writeDdgText(os, c.ddg);
    }
}

std::vector<FuzzMachine>
fuzzMachines(const std::string &machinesDir)
{
    const MachineRegistry &registry = MachineRegistry::builtin();
    std::vector<FuzzMachine> machines;
    for (const MachineConfig &preset :
         {twoClusterConfig(32, 1), fourClusterConfig(32, 1),
          fourClusterConfig(64, 2)})
        machines.push_back({preset.name(), preset});
    if (machinesDir.empty())
        return machines;

    namespace fs = std::filesystem;
    std::error_code ec;
    fs::directory_iterator it(machinesDir, ec);
    if (ec) {
        GPSCHED_FATAL("cannot read machine directory '", machinesDir,
                      "': ", ec.message());
    }
    std::vector<fs::path> files;
    for (const auto &entry : it) {
        if (entry.path().extension() == ".machine")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const fs::path &file : files)
        machines.push_back({file.string(), registry.resolve(file.string())});
    return machines;
}

std::vector<MachineConfig>
fuzzConfigs(const std::vector<FuzzMachine> &machines)
{
    std::vector<MachineConfig> configs;
    configs.reserve(machines.size());
    for (const FuzzMachine &m : machines)
        configs.push_back(m.config);
    return configs;
}

std::string
FuzzFailure::toString() const
{
    std::ostringstream oss;
    oss << loopName << " @ " << machine << "/"
        << gpsched::toString(scheme) << ": "
        << fuzz::toString(kind);
    if (!detail.empty())
        oss << ": " << detail;
    return oss.str();
}

void
corruptLoop(CompiledLoop &loop, ScheduleCorruption corruption)
{
    switch (corruption) {
      case ScheduleCorruption::None:
        return;
      case ScheduleCorruption::ClusterOutOfRange:
        // The bad cluster index is one past any real machine's
        // clusters only if we know the machine; INT_MAX-ish is
        // out of range everywhere and keeps this machine-free.
        if (!loop.placements.empty())
            loop.placements.front().cluster = 1 << 20;
        return;
      case ScheduleCorruption::CyclesOffByOne:
        loop.cycles += 1;
        return;
    }
}

namespace
{

/** Differential contract on one compiled (or corrupted) record. */
void
checkRecord(const Ddg &ddg, const MachineConfig &machine,
            SchedulerKind scheme, const CompiledLoop &loop,
            FuzzCaseResult &result)
{
    auto fail = [&](FuzzVerdict kind, std::string detail) {
        FuzzFailure f;
        f.loopName = ddg.name();
        f.machine = machine.name();
        f.scheme = scheme;
        f.kind = kind;
        f.detail = std::move(detail);
        result.failures.push_back(std::move(f));
    };

    sim::SimResult s = sim::simulate(ddg, machine, loop);
    if (loop.moduloScheduled) {
        ValidationResult v = validateSchedule(ddg, machine, loop);
        if (v.valid != s.simOk) {
            fail(FuzzVerdict::OracleDisagree,
                 std::string("validator says '") +
                     (v.valid ? "ok" : v.message) +
                     "', simulator says " +
                     (s.fault ? s.fault->toString() : "ok"));
            return;
        }
        if (!v.valid) {
            fail(FuzzVerdict::ScheduleRejected,
                 "validator: " + v.message + "; simulator: " +
                     (s.fault ? s.fault->toString() : ""));
            return;
        }
    } else if (!s.simOk) {
        fail(FuzzVerdict::ScheduleRejected,
             "simulator rejects list-scheduled record: " +
                 (s.fault ? s.fault->toString() : ""));
        return;
    }

    std::ostringstream mm;
    if (loop.moduloScheduled && s.achievedII != loop.ii)
        mm << " achievedII " << s.achievedII << " != ii " << loop.ii;
    if (s.simCycles != loop.cycles)
        mm << " simCycles " << s.simCycles << " != cycles "
           << loop.cycles;
    if (s.achievedIpc != loop.ipc)
        mm << " achievedIpc " << s.achievedIpc << " != ipc "
           << loop.ipc;
    if (!mm.str().empty())
        fail(FuzzVerdict::MetricMismatch, mm.str());
}

} // namespace

FuzzCaseResult
runFuzzCase(const Ddg &ddg, const std::vector<MachineConfig> &machines,
            ScheduleCorruption corruption)
{
    FuzzCaseResult result;
    for (const MachineConfig &machine : machines) {
        for (SchedulerKind scheme :
             {SchedulerKind::Uracam, SchedulerKind::FixedPartition,
              SchedulerKind::Gp}) {
            CompiledLoop loop;
            try {
                loop = LoopCompiler(machine, scheme).compile(ddg);
            } catch (const CompileError &err) {
                FuzzFailure f;
                f.loopName = ddg.name();
                f.machine = machine.name();
                f.scheme = scheme;
                f.kind = FuzzVerdict::CompileRejected;
                f.detail = err.diagnostic();
                result.failures.push_back(std::move(f));
                continue;
            }
            ++result.pairsCompiled;
            if (loop.moduloScheduled)
                ++result.moduloScheduled;
            corruptLoop(loop, corruption);
            checkRecord(ddg, machine, scheme, loop, result);
        }
    }
    return result;
}

namespace
{

/** Rebuilds @p src keeping the masked nodes/edges, remapping ids. */
Ddg
rebuild(const Ddg &src, const std::vector<char> &keepNode,
        const std::vector<char> &keepEdge)
{
    Ddg out(src.name());
    out.setTripCount(src.tripCount());
    std::vector<NodeId> remap(
        static_cast<std::size_t>(src.numNodes()), invalidNode);
    for (NodeId n = 0; n < src.numNodes(); ++n) {
        if (!keepNode[static_cast<std::size_t>(n)])
            continue;
        const DdgNode &node = src.node(n);
        remap[static_cast<std::size_t>(n)] =
            out.addNode(node.opcode, node.label);
    }
    for (EdgeId e = 0; e < src.numEdges(); ++e) {
        if (!keepEdge[static_cast<std::size_t>(e)])
            continue;
        const DdgEdge &edge = src.edge(e);
        NodeId s = remap[static_cast<std::size_t>(edge.src)];
        NodeId d = remap[static_cast<std::size_t>(edge.dst)];
        if (s == invalidNode || d == invalidNode)
            continue;
        out.addEdge(s, d, edge.latency, edge.distance, edge.kind);
    }
    return out;
}

Ddg
dropNodes(const Ddg &src, int start, int count)
{
    std::vector<char> keepNode(
        static_cast<std::size_t>(src.numNodes()), 1);
    for (int n = start; n < start + count; ++n)
        keepNode[static_cast<std::size_t>(n)] = 0;
    std::vector<char> keepEdge(
        static_cast<std::size_t>(src.numEdges()), 1);
    return rebuild(src, keepNode, keepEdge);
}

Ddg
dropEdge(const Ddg &src, EdgeId e)
{
    std::vector<char> keepNode(
        static_cast<std::size_t>(src.numNodes()), 1);
    std::vector<char> keepEdge(
        static_cast<std::size_t>(src.numEdges()), 1);
    keepEdge[static_cast<std::size_t>(e)] = 0;
    return rebuild(src, keepNode, keepEdge);
}

} // namespace

Ddg
minimizeDdg(const Ddg &ddg,
            const std::function<bool(const Ddg &)> &stillFails,
            MinimizeStats *stats, int maxProbes)
{
    MinimizeStats local;
    MinimizeStats &st = stats ? *stats : local;
    st.nodesBefore = ddg.numNodes();
    st.edgesBefore = ddg.numEdges();
    st.probes = 0;

    auto probe = [&](const Ddg &g) {
        ++st.probes;
        return stillFails(g);
    };

    Ddg cur = ddg;
    if (!probe(cur)) {
        // Caller contract violated; return the input untouched
        // rather than "minimize" a graph that does not fail.
        st.nodesAfter = cur.numNodes();
        st.edgesAfter = cur.numEdges();
        return cur;
    }

    bool improved = true;
    while (improved && st.probes < maxProbes) {
        improved = false;
        // Chunked node deletion, halving chunks down to single
        // nodes. A successful cut keeps the scan position so runs
        // of deletable nodes fall in few probes.
        for (int chunk = std::max(cur.numNodes() / 2, 1); chunk >= 1;
             chunk /= 2) {
            int start = 0;
            while (start < cur.numNodes() && st.probes < maxProbes) {
                int count =
                    std::min(chunk, cur.numNodes() - start);
                if (count >= cur.numNodes()) {
                    start += chunk;
                    continue; // never propose an empty graph
                }
                Ddg cand = dropNodes(cur, start, count);
                if (probe(cand)) {
                    cur = std::move(cand);
                    improved = true;
                } else {
                    start += chunk;
                }
            }
            if (chunk == 1)
                break;
        }
        // Per-edge deletion.
        EdgeId e = 0;
        while (e < cur.numEdges() && st.probes < maxProbes) {
            Ddg cand = dropEdge(cur, e);
            if (probe(cand)) {
                cur = std::move(cand);
                improved = true;
            } else {
                ++e;
            }
        }
    }
    st.nodesAfter = cur.numNodes();
    st.edgesAfter = cur.numEdges();
    return cur;
}

} // namespace gpsched::fuzz
