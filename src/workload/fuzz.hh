/**
 * @file
 * Corpus-scale differential fuzzing of the whole compile pipeline.
 *
 * Three pieces, shared by tools/ddg_fuzz, the regression tests and
 * the nightly sweep:
 *
 *  - a seeded, shape-parameterized corpus generator that promotes
 *    the property tests' randomLoop into a standing adversary:
 *    every case draws a shape class (plain random bodies, deep
 *    multi-distance recurrences, near-zero-slack recurrence chains,
 *    store-heavy tails, wide-fanout producers, latency-inflated
 *    edges with extreme trip counts) and emits a valid DDG, so the
 *    schedulers face loops nobody hand-tuned for;
 *
 *  - a differential harness (runFuzzCase) that compiles one loop
 *    under all three schemes on a machine list and holds every
 *    compiled record to the two-oracle contract: the static
 *    validator (sched/validate.hh) and the cycle-accurate replay
 *    simulator (sim/sim.hh) must agree verdict-for-verdict, and on
 *    accepted schedules the replayed achievedII/cycles/IPC must
 *    equal the compiler's claims bit-exactly;
 *
 *  - a greedy minimizer (minimizeDdg) that shrinks a failing loop by
 *    chunked node deletion and per-edge deletion, re-running the
 *    caller's failure predicate after every candidate cut, so a
 *    corpus-sized failure becomes a pinnable few-node reproducer.
 *
 * Corruption injection (ScheduleCorruption) deliberately damages a
 * compiled record between the compiler and the oracles; it exists so
 * the harness can prove — in CTest and nightly CI — that a corrupt
 * schedule is caught, minimized and reproduced end to end (the
 * fuzzing analogue of the bench_delta gate canary).
 */

#ifndef GPSCHED_WORKLOAD_FUZZ_HH
#define GPSCHED_WORKLOAD_FUZZ_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "core/gp_scheduler.hh"
#include "graph/ddg.hh"
#include "machine/machine.hh"

namespace gpsched::fuzz
{

/** Shape family of one generated case. */
enum class ShapeClass : std::uint8_t
{
    Random,         ///< randomLoop with widened knob ranges
    DeepRecurrence, ///< carried-edge-dense, distances up to 8
    NearZeroSlack,  ///< recurrence chain whose RecMII leaves ~0 slack
    StoreHeavyTail, ///< few defs feeding a mem-port-saturating tail
    WideFanout,     ///< few producers, dozens of consumers each
    LatencyStress,  ///< inflated edge latencies + extreme trip counts
    NumShapes
};

/** Stable printable name ("random", "deep-recurrence", ...). */
const char *toString(ShapeClass shape);

/** One generated case: the loop plus how to regenerate it. */
struct FuzzCase
{
    /** Per-case seed (drawn from the corpus master stream). */
    std::uint64_t seed = 0;

    /** Index within its corpus. */
    int index = 0;

    ShapeClass shape = ShapeClass::Random;

    Ddg ddg;
};

/**
 * Generates one loop deterministically from @p seed: the shape class
 * and every knob are drawn from the seed alone, so a failure report
 * carrying the seed regenerates the exact graph.
 */
Ddg fuzzLoop(const std::string &name, const LatencyTable &lat,
             std::uint64_t seed);

/**
 * Case @p index of the corpus keyed by @p corpusSeed. Case seeds are
 * drawn from one master stream, so corpora with the same seed share
 * a prefix: growing GPSCHED_FUZZ_LOOPS only appends cases.
 */
FuzzCase corpusCase(std::uint64_t corpusSeed, int index,
                    const LatencyTable &lat);

/** Per-case seeds of the corpus keyed by @p corpusSeed. */
std::vector<std::uint64_t> corpusSeeds(std::uint64_t corpusSeed,
                                       int count);

/**
 * Writes cases [0, count) of the corpus as a multi-DDG `.ddg` stream
 * (graph/textio.hh blocks), loadable by gpsched_cli and ddg_fuzz.
 */
void writeCorpus(std::ostream &os, std::uint64_t corpusSeed,
                 int count, const LatencyTable &lat);

/** One machine of the fuzz sweep, with the spec string that
 *  re-resolves it (a registry name for presets, the `.machine` file
 *  path for corpus machines) — what a reproducer command line must
 *  carry, since corpus machines are not registry-addressable by
 *  name. */
struct FuzzMachine
{
    std::string spec;
    MachineConfig config;
};

/**
 * The standard fuzz machine list: the three Table-1 presets the
 * property tests sweep plus every `.machine` file under
 * @p machinesDir (13 machines for the shipped examples/machines/).
 * An empty @p machinesDir yields just the presets.
 */
std::vector<FuzzMachine> fuzzMachines(const std::string &machinesDir);

/** Strips the FuzzMachine wrappers down to the configs. */
std::vector<MachineConfig>
fuzzConfigs(const std::vector<FuzzMachine> &machines);

/** What a differential check found on one (machine, scheme) pair. */
enum class FuzzVerdict : std::uint8_t
{
    Pass,
    CompileRejected,  ///< CompileError from a generated (valid) loop
    OracleDisagree,   ///< validator and simulator verdicts differ
    ScheduleRejected, ///< both oracles reject a compiled schedule
    MetricMismatch,   ///< replayed II/cycles/IPC != compiler's claim
};

/** Stable printable name ("pass", "oracle-disagree", ...). */
const char *toString(FuzzVerdict verdict);

/** Deliberate damage applied to a compiled record before the
 *  oracles run (the harness's own canary). */
enum class ScheduleCorruption : std::uint8_t
{
    None,

    /** First placement moved to a nonexistent cluster: both oracles
     *  must reject (MalformedSchedule / range check). Applies only
     *  to modulo-scheduled records; list-scheduled fallbacks carry
     *  no placements to damage. */
    ClusterOutOfRange,

    /** Reported cycle count off by one: the replay must expose the
     *  estimator mismatch (MetricMismatch). */
    CyclesOffByOne,
};

/** One two-oracle violation. */
struct FuzzFailure
{
    std::string loopName;
    std::string machine; ///< MachineConfig::name()
    SchedulerKind scheme = SchedulerKind::Gp;
    FuzzVerdict kind = FuzzVerdict::Pass;
    std::string detail;

    /** "loop @ machine/scheme: kind — detail" one-liner. */
    std::string toString() const;
};

/** Outcome of one loop swept across machines x schemes. */
struct FuzzCaseResult
{
    /** (machine, scheme) pairs that produced a compiled record. */
    int pairsCompiled = 0;

    /** Pairs whose record was a modulo schedule (both oracles ran;
     *  the rest replayed the list-scheduled cycle model only). */
    int moduloScheduled = 0;

    std::vector<FuzzFailure> failures;

    bool ok() const { return failures.empty(); }
};

/**
 * Compiles @p ddg under all three schemes on every machine of
 * @p machines and applies the two-oracle differential contract to
 * each record (with @p corruption injected first, when requested).
 * Never throws on a rejected input — a CompileError becomes a
 * CompileRejected failure, because generator output is valid by
 * construction and an import path rejects before reaching here.
 */
FuzzCaseResult
runFuzzCase(const Ddg &ddg,
            const std::vector<MachineConfig> &machines,
            ScheduleCorruption corruption = ScheduleCorruption::None);

/** Injects @p corruption into @p loop (no-op for None, and for
 *  ClusterOutOfRange on records without placements). */
void corruptLoop(CompiledLoop &loop, ScheduleCorruption corruption);

/** Minimization bookkeeping. */
struct MinimizeStats
{
    int nodesBefore = 0;
    int nodesAfter = 0;
    int edgesBefore = 0;
    int edgesAfter = 0;

    /** Failure-predicate evaluations (oracle re-runs). */
    int probes = 0;
};

/**
 * Greedily shrinks @p ddg while @p stillFails holds: chunked node
 * deletion (delta-debugging style, chunk halving from n/2 to 1,
 * incident edges dropped and ids remapped) to a fixpoint, then
 * per-edge deletion, repeated until neither pass makes progress or
 * @p maxProbes predicate evaluations have run. @p stillFails must
 * accept the input graph itself; every intermediate and the result
 * are graphs the predicate confirmed failing.
 */
Ddg minimizeDdg(const Ddg &ddg,
                const std::function<bool(const Ddg &)> &stillFails,
                MinimizeStats *stats = nullptr,
                int maxProbes = 20000);

} // namespace gpsched::fuzz

#endif // GPSCHED_WORKLOAD_FUZZ_HH
