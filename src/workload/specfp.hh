/**
 * @file
 * Synthetic SPECfp95 workload (DESIGN.md, substitution 1).
 *
 * The paper evaluates on the SPECfp95 innermost loops extracted by
 * the ICTINEO compiler with profiled trip counts. Neither the
 * compiler nor the (proprietary) suite is available, so each
 * benchmark is modelled as a deterministic set of loop DDGs whose
 * shapes follow what is published about that benchmark's
 * modulo-scheduling behaviour: stencil sweeps in tomcatv/swim/mgrid,
 * reductions and matrix kernels in su2cor, first-order recurrences
 * in hydro2d/apsi, very large register-hungry blocks in fpppp,
 * gather/scatter integer address code in wave5, and so on. Trip
 * counts stand in for profiling. Loops are generated from per-
 * benchmark seeds, so the suite is bit-stable across runs and
 * machines.
 */

#ifndef GPSCHED_WORKLOAD_SPECFP_HH
#define GPSCHED_WORKLOAD_SPECFP_HH

#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "machine/op.hh"

namespace gpsched
{

/** The ten SPECfp95 benchmark names, in the paper's order. */
const std::vector<std::string> &specFp95Names();

/** Builds one named benchmark program; fatal on unknown name. */
Program specFp95Program(const std::string &name,
                        const LatencyTable &lat);

/** Builds the whole suite. */
std::vector<Program> specFp95Suite(const LatencyTable &lat);

} // namespace gpsched

#endif // GPSCHED_WORKLOAD_SPECFP_HH
