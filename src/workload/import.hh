/**
 * @file
 * JSON loop importer: turns a compiler's node/edge/latency dump into
 * DDGs.
 *
 * The accepted shape follows what a list-scheduler dump of real
 * compiler IR looks like (the Patmos SPListScheduler model —
 * operations with a latency each, dependence edges by node index):
 *
 *   {"loops": [
 *     {"name": "daxpy", "trip": 100,
 *      "nodes": [{"op": "load", "label": "x[i]", "latency": 3}, ...],
 *      "edges": [{"src": 0, "dst": 2, "latency": 3,
 *                 "distance": 0, "kind": "flow"}, ...]}]}
 *
 * A single loop object (detected by its "nodes" key) is accepted
 * without the {"loops": [...]} wrapper. Per-edge "latency" overrides
 * the producer node's "latency", which overrides the LatencyTable
 * default; "distance" defaults to 0, "kind" to "flow", "trip" to
 * 100, "label" to "".
 *
 * Every rejection — malformed JSON, NaN/infinite/negative latencies,
 * dangling edge indices, unknown opcodes, flow edges leaving
 * non-defining nodes, bad trip counts — throws CompileError (kind
 * Parse) whose message carries the input file:line, so a batch
 * front-end reports the bad loop and keeps going, exactly like the
 * .ddg text reader.
 */

#ifndef GPSCHED_WORKLOAD_IMPORT_HH
#define GPSCHED_WORKLOAD_IMPORT_HH

#include <istream>
#include <string>
#include <vector>

#include "graph/ddg.hh"
#include "machine/op.hh"

namespace gpsched
{

/**
 * Parses every loop of the JSON dump read from @p is. @p filename is
 * used in diagnostics only. Throws CompileError on the first
 * malformed loop; an importing front-end that wants keep-going
 * semantics splits the input per loop upstream.
 */
std::vector<Ddg> importDdgJson(std::istream &is,
                               const std::string &filename,
                               const LatencyTable &lat);

} // namespace gpsched

#endif // GPSCHED_WORKLOAD_IMPORT_HH
