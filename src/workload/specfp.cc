#include "workload/specfp.hh"

#include "support/logging.hh"
#include "support/random.hh"
#include "workload/loop_shapes.hh"

namespace gpsched
{

namespace
{

/** Stable per-benchmark seed (index in the canonical name order). */
std::uint64_t
benchmarkSeed(std::size_t index)
{
    return 0x5bec95ULL * 2654435761ULL + index * 0x9e3779b9ULL;
}

/** Appends @p count random filler loops with benchmark-flavoured
 *  parameters; models the long tail of small loops every benchmark
 *  carries besides its hot kernels. */
void
addFillerLoops(Program &prog, const LatencyTable &lat, Rng &rng,
               int count, const RandomLoopParams &base)
{
    for (int i = 0; i < count; ++i) {
        RandomLoopParams params = base;
        params.numOps =
            base.numOps + static_cast<int>(rng.nextBelow(9)) - 4;
        params.tripCount =
            20 + static_cast<std::int64_t>(rng.nextBelow(90));
        Rng child = rng.fork();
        prog.loops.push_back(randomLoop(
            prog.name + "_tail" + std::to_string(i), lat, child,
            params));
    }
}

} // namespace

const std::vector<std::string> &
specFp95Names()
{
    static const std::vector<std::string> names = {
        "tomcatv", "swim",   "su2cor", "hydro2d", "mgrid",
        "applu",   "turb3d", "apsi",   "fpppp",   "wave5",
    };
    return names;
}

Program
specFp95Program(const std::string &name, const LatencyTable &lat)
{
    const auto &names = specFp95Names();
    std::size_t index = 0;
    while (index < names.size() && names[index] != name)
        ++index;
    if (index == names.size())
        GPSCHED_FATAL("unknown SPECfp95 benchmark '", name, "'");
    Rng rng(benchmarkSeed(index));

    Program prog;
    prog.name = name;
    if (name == "tomcatv") {
        // Mesh generation: mid-size stencil sweeps plus streams.
        prog.loops.push_back(
            stencilKernel("tomcatv_relax", lat, 9, 420));
        prog.loops.push_back(
            stencilKernel("tomcatv_residual", lat, 5, 420));
        prog.loops.push_back(
            streamKernel("tomcatv_copy", lat, 3, 2, 420));
        prog.loops.push_back(
            daxpyKernel("tomcatv_update", lat, 2, 420));
        prog.loops.push_back(
            reductionKernel("tomcatv_norm", lat, 4, 420));
        addFillerLoops(prog, lat, rng, 2, {});
    } else if (name == "swim") {
        // Shallow-water 2D stencil updates; memory-port bound.
        prog.loops.push_back(stencilKernel("swim_calc1", lat, 9, 512));
        prog.loops.push_back(stencilKernel("swim_calc2", lat, 7, 512));
        prog.loops.push_back(stencilKernel("swim_calc3", lat, 5, 512));
        prog.loops.push_back(
            streamKernel("swim_periodic", lat, 4, 1, 512));
        addFillerLoops(prog, lat, rng, 2, {});
    } else if (name == "su2cor") {
        // Quark propagator: matrix kernels, dot products, reductions.
        prog.loops.push_back(
            dotProductKernel("su2cor_gamma", lat, 4, 300));
        prog.loops.push_back(
            reductionKernel("su2cor_trace", lat, 6, 300));
        prog.loops.push_back(
            wideBlockKernel("su2cor_su2mul", lat, 6, 3, 300));
        prog.loops.push_back(
            recurrenceKernel("su2cor_sweep", lat, 10, 300));
        prog.loops.push_back(
            streamKernel("su2cor_shift", lat, 3, 2, 300));
        addFillerLoops(prog, lat, rng, 2, {});
    } else if (name == "hydro2d") {
        // Navier-Stokes: recurrence-dominated with stencil updates.
        prog.loops.push_back(
            recurrenceKernel("hydro2d_filter", lat, 12, 350));
        prog.loops.push_back(
            recurrenceKernel("hydro2d_advec", lat, 8, 350));
        prog.loops.push_back(
            stencilKernel("hydro2d_flux", lat, 7, 350));
        prog.loops.push_back(
            daxpyKernel("hydro2d_corr", lat, 3, 350));
        prog.loops.push_back(
            reductionKernel("hydro2d_cfl", lat, 5, 350));
        addFillerLoops(prog, lat, rng, 2, {});
    } else if (name == "mgrid") {
        // Multigrid: 27-point 3D stencils; strongly memory bound.
        prog.loops.push_back(
            stencilKernel("mgrid_resid", lat, 21, 256));
        prog.loops.push_back(stencilKernel("mgrid_psinv", lat, 15, 256));
        prog.loops.push_back(
            stencilKernel("mgrid_interp", lat, 8, 256));
        prog.loops.push_back(
            streamKernel("mgrid_comm3", lat, 4, 1, 256));
        addFillerLoops(prog, lat, rng, 2, {});
    } else if (name == "applu") {
        // LU SSOR solver: blocked kernels plus wavefront recurrences.
        prog.loops.push_back(
            wideBlockKernel("applu_blts", lat, 8, 4, 280));
        prog.loops.push_back(
            wideBlockKernel("applu_buts", lat, 8, 4, 280));
        prog.loops.push_back(
            recurrenceKernel("applu_ssor", lat, 9, 280));
        prog.loops.push_back(stencilKernel("applu_rhs", lat, 9, 280));
        prog.loops.push_back(
            dotProductKernel("applu_l2norm", lat, 3, 280));
        addFillerLoops(prog, lat, rng, 2, {});
    } else if (name == "turb3d") {
        // Turbulence FFT butterflies: wide independent FP blocks.
        prog.loops.push_back(
            wideBlockKernel("turb3d_fft1", lat, 10, 4, 320));
        prog.loops.push_back(
            wideBlockKernel("turb3d_fft2", lat, 6, 6, 320));
        prog.loops.push_back(
            streamKernel("turb3d_transpose", lat, 4, 1, 320));
        prog.loops.push_back(
            streamKernel("turb3d_scale", lat, 3, 3, 320));
        addFillerLoops(prog, lat, rng, 2, {});
    } else if (name == "apsi") {
        // Mesoscale weather: mixed recurrences, stencils, integers.
        prog.loops.push_back(
            recurrenceKernel("apsi_hydro", lat, 10, 300));
        prog.loops.push_back(stencilKernel("apsi_dcdx", lat, 7, 300));
        prog.loops.push_back(
            intAddressKernel("apsi_index", lat, 3, 300));
        prog.loops.push_back(
            reductionKernel("apsi_energy", lat, 4, 300));
        prog.loops.push_back(
            daxpyKernel("apsi_smooth", lat, 2, 300));
        addFillerLoops(prog, lat, rng, 2, {});
    } else if (name == "fpppp") {
        // Gaussian integrals: enormous flat blocks, extreme register
        // pressure, few memory ops relative to FP work.
        prog.loops.push_back(
            wideBlockKernel("fpppp_twoel1", lat, 16, 6, 180));
        prog.loops.push_back(
            wideBlockKernel("fpppp_twoel2", lat, 12, 8, 180));
        prog.loops.push_back(
            wideBlockKernel("fpppp_fmtgen", lat, 8, 10, 180));
        addFillerLoops(prog, lat, rng, 1, {});
    } else { // wave5
        // Plasma PIC: gather/scatter address arithmetic plus streams.
        prog.loops.push_back(
            intAddressKernel("wave5_gather", lat, 4, 400));
        prog.loops.push_back(
            intAddressKernel("wave5_scatter", lat, 3, 400));
        prog.loops.push_back(
            streamKernel("wave5_push", lat, 4, 2, 400));
        prog.loops.push_back(
            stencilKernel("wave5_field", lat, 5, 400));
        prog.loops.push_back(
            reductionKernel("wave5_density", lat, 3, 400));
        addFillerLoops(prog, lat, rng, 2, {});
    }
    return prog;
}

std::vector<Program>
specFp95Suite(const LatencyTable &lat)
{
    std::vector<Program> suite;
    suite.reserve(specFp95Names().size());
    for (const std::string &name : specFp95Names())
        suite.push_back(specFp95Program(name, lat));
    return suite;
}

} // namespace gpsched
