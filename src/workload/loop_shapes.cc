#include "workload/loop_shapes.hh"

#include <algorithm>
#include <vector>

#include "graph/ddg_builder.hh"
#include "support/logging.hh"

namespace gpsched
{

namespace
{

/** Adds the canonical induction variable: i = i + 1 (carried). */
NodeId
addInduction(DdgBuilder &b)
{
    NodeId iv = b.op(Opcode::IAlu, "iv");
    b.carried(iv, iv, 1);
    return iv;
}

/** Balanced FAdd reduction tree over @p leaves; returns the root. */
NodeId
addReduceTree(DdgBuilder &b, std::vector<NodeId> leaves)
{
    GPSCHED_ASSERT(!leaves.empty(), "empty reduction");
    while (leaves.size() > 1) {
        std::vector<NodeId> next;
        for (std::size_t i = 0; i + 1 < leaves.size(); i += 2) {
            NodeId sum = b.op(Opcode::FAdd, "radd");
            b.flow(leaves[i], sum);
            b.flow(leaves[i + 1], sum);
            next.push_back(sum);
        }
        if (leaves.size() % 2 == 1)
            next.push_back(leaves.back());
        leaves = std::move(next);
    }
    return leaves[0];
}

} // namespace

Ddg
streamKernel(const std::string &name, const LatencyTable &lat,
             int streams, int chain_len, std::int64_t trip)
{
    GPSCHED_ASSERT(streams >= 1 && chain_len >= 1,
                   "bad stream kernel shape");
    DdgBuilder b(name, lat);
    NodeId iv = addInduction(b);
    for (int s = 0; s < streams; ++s) {
        NodeId addr = b.op(Opcode::IAlu, "addr");
        b.flow(iv, addr);
        NodeId ld = b.op(Opcode::Load, "ld");
        b.flow(addr, ld);
        NodeId cur = ld;
        for (int k = 0; k < chain_len; ++k) {
            NodeId fp =
                b.op(k % 2 == 0 ? Opcode::FMul : Opcode::FAdd, "fp");
            b.flow(cur, fp);
            cur = fp;
        }
        NodeId st = b.op(Opcode::Store, "st");
        b.flow(cur, st);
        b.flow(addr, st);
    }
    return b.tripCount(trip).build();
}

Ddg
stencilKernel(const std::string &name, const LatencyTable &lat,
              int taps, std::int64_t trip)
{
    GPSCHED_ASSERT(taps >= 2, "stencil needs >= 2 taps");
    DdgBuilder b(name, lat);
    NodeId iv = addInduction(b);
    std::vector<NodeId> terms;
    for (int t = 0; t < taps; ++t) {
        NodeId addr = b.op(Opcode::IAlu, "addr");
        b.flow(iv, addr);
        NodeId ld = b.op(Opcode::Load, "ld");
        b.flow(addr, ld);
        NodeId mul = b.op(Opcode::FMul, "coef");
        b.flow(ld, mul);
        terms.push_back(mul);
    }
    NodeId sum = addReduceTree(b, terms);
    NodeId st = b.op(Opcode::Store, "st");
    b.flow(sum, st);
    b.flow(iv, st);
    return b.tripCount(trip).build();
}

Ddg
reductionKernel(const std::string &name, const LatencyTable &lat,
                int width, std::int64_t trip)
{
    GPSCHED_ASSERT(width >= 1, "bad reduction width");
    DdgBuilder b(name, lat);
    NodeId iv = addInduction(b);
    std::vector<NodeId> terms;
    for (int w = 0; w < width; ++w) {
        NodeId addr = b.op(Opcode::IAlu, "addr");
        b.flow(iv, addr);
        NodeId ld = b.op(Opcode::Load, "ld");
        b.flow(addr, ld);
        NodeId mul = b.op(Opcode::FMul, "mul");
        b.flow(ld, mul);
        terms.push_back(mul);
    }
    NodeId partial = addReduceTree(b, terms);
    NodeId acc = b.op(Opcode::FAdd, "acc");
    b.flow(partial, acc);
    b.carried(acc, acc, 1);
    return b.tripCount(trip).build();
}

Ddg
recurrenceKernel(const std::string &name, const LatencyTable &lat,
                 int extra_ops, std::int64_t trip)
{
    GPSCHED_ASSERT(extra_ops >= 0, "bad extra op count");
    DdgBuilder b(name, lat);
    NodeId iv = addInduction(b);
    // x = a * x + b at distance 1.
    NodeId mul = b.op(Opcode::FMul, "ax");
    NodeId add = b.op(Opcode::FAdd, "x");
    b.flow(mul, add);
    b.carried(add, mul, 1);
    NodeId st = b.op(Opcode::Store, "st_x");
    b.flow(add, st);
    b.flow(iv, st);
    // Independent parallel work so the recurrence does not starve
    // the machine.
    NodeId prev = invalidNode;
    for (int k = 0; k < extra_ops; ++k) {
        if (k % 4 == 0) {
            NodeId addr = b.op(Opcode::IAlu, "addr");
            b.flow(iv, addr);
            NodeId ld = b.op(Opcode::Load, "ld");
            b.flow(addr, ld);
            prev = ld;
        } else {
            NodeId fp =
                b.op(k % 2 == 0 ? Opcode::FAdd : Opcode::FMul, "w");
            if (prev != invalidNode)
                b.flow(prev, fp);
            prev = fp;
        }
    }
    return b.tripCount(trip).build();
}

Ddg
wideBlockKernel(const std::string &name, const LatencyTable &lat,
                int chains, int chain_len, std::int64_t trip)
{
    GPSCHED_ASSERT(chains >= 1 && chain_len >= 1,
                   "bad wide block shape");
    DdgBuilder b(name, lat);
    NodeId iv = addInduction(b);
    // A few shared loads feed every chain: their values stay live
    // until the last chain reads them (register pressure).
    const int shared = std::max(2, chains / 4);
    std::vector<NodeId> inputs;
    for (int s = 0; s < shared; ++s) {
        NodeId addr = b.op(Opcode::IAlu, "addr");
        b.flow(iv, addr);
        NodeId ld = b.op(Opcode::Load, "ld");
        b.flow(addr, ld);
        inputs.push_back(ld);
    }
    std::vector<NodeId> results;
    for (int c = 0; c < chains; ++c) {
        NodeId cur = inputs[c % shared];
        for (int k = 0; k < chain_len; ++k) {
            NodeId fp =
                b.op(k % 2 == 0 ? Opcode::FMul : Opcode::FAdd, "fp");
            b.flow(cur, fp);
            if (k == 0)
                b.flow(inputs[(c + 1) % shared], fp);
            cur = fp;
        }
        results.push_back(cur);
    }
    // Converge pairs of chains into stores.
    for (std::size_t i = 0; i < results.size(); i += 2) {
        NodeId val = results[i];
        if (i + 1 < results.size()) {
            NodeId mix = b.op(Opcode::FAdd, "mix");
            b.flow(results[i], mix);
            b.flow(results[i + 1], mix);
            val = mix;
        }
        NodeId st = b.op(Opcode::Store, "st");
        b.flow(val, st);
    }
    return b.tripCount(trip).build();
}

Ddg
dotProductKernel(const std::string &name, const LatencyTable &lat,
                 int unroll, std::int64_t trip)
{
    GPSCHED_ASSERT(unroll >= 1, "bad unroll");
    DdgBuilder b(name, lat);
    NodeId iv = addInduction(b);
    for (int u = 0; u < unroll; ++u) {
        NodeId a = b.op(Opcode::Load, "lda");
        NodeId x = b.op(Opcode::Load, "ldx");
        b.flow(iv, a);
        b.flow(iv, x);
        NodeId mul = b.op(Opcode::FMul, "mul");
        b.flow(a, mul);
        b.flow(x, mul);
        NodeId acc = b.op(Opcode::FAdd, "acc");
        b.flow(mul, acc);
        b.carried(acc, acc, 1);
    }
    return b.tripCount(trip).build();
}

Ddg
daxpyKernel(const std::string &name, const LatencyTable &lat,
            int unroll, std::int64_t trip)
{
    GPSCHED_ASSERT(unroll >= 1, "bad unroll");
    DdgBuilder b(name, lat);
    NodeId iv = addInduction(b);
    for (int u = 0; u < unroll; ++u) {
        NodeId x = b.op(Opcode::Load, "ldx");
        NodeId y = b.op(Opcode::Load, "ldy");
        b.flow(iv, x);
        b.flow(iv, y);
        NodeId ax = b.op(Opcode::FMul, "ax");
        b.flow(x, ax);
        NodeId sum = b.op(Opcode::FAdd, "sum");
        b.flow(ax, sum);
        b.flow(y, sum);
        NodeId st = b.op(Opcode::Store, "sty");
        b.flow(sum, st);
        b.flow(iv, st);
        // y is re-read next iteration after this store retires.
        b.order(st, y, 1, 1);
    }
    return b.tripCount(trip).build();
}

Ddg
intAddressKernel(const std::string &name, const LatencyTable &lat,
                 int width, std::int64_t trip)
{
    GPSCHED_ASSERT(width >= 1, "bad width");
    DdgBuilder b(name, lat);
    NodeId iv = addInduction(b);
    NodeId base = b.op(Opcode::IMul, "scale");
    b.flow(iv, base);
    for (int w = 0; w < width; ++w) {
        NodeId off = b.op(Opcode::IAlu, "off");
        b.flow(base, off);
        NodeId idx = b.op(Opcode::Load, "ldidx");
        b.flow(off, idx);
        NodeId addr = b.op(Opcode::IAlu, "gather");
        b.flow(idx, addr);
        NodeId val = b.op(Opcode::Load, "ldval");
        b.flow(addr, val);
        NodeId upd = b.op(Opcode::FAdd, "upd");
        b.flow(val, upd);
        NodeId st = b.op(Opcode::Store, "st");
        b.flow(upd, st);
        b.flow(addr, st);
        b.order(st, val, 1, 1);
    }
    return b.tripCount(trip).build();
}

Ddg
randomLoop(const std::string &name, const LatencyTable &lat, Rng &rng,
           const RandomLoopParams &params)
{
    GPSCHED_ASSERT(params.numOps >= 2, "random loop too small");
    DdgBuilder b(name, lat);

    auto pick_opcode = [&]() {
        if (rng.nextBool(params.memFraction))
            return rng.nextBool(0.65) ? Opcode::Load : Opcode::Store;
        if (rng.nextBool(params.fpFraction)) {
            double r = rng.nextDouble();
            if (r < 0.45)
                return Opcode::FAdd;
            if (r < 0.9)
                return Opcode::FMul;
            return Opcode::FDiv;
        }
        double r = rng.nextDouble();
        if (r < 0.8)
            return Opcode::IAlu;
        if (r < 0.95)
            return Opcode::IMul;
        return Opcode::IDiv;
    };

    std::vector<NodeId> nodes;
    std::vector<NodeId> defs; // nodes that define a value
    // Seed with a defining op so every later node can find a producer.
    nodes.push_back(b.op(Opcode::Load, "seed"));
    defs.push_back(nodes[0]);
    for (int i = 1; i < params.numOps; ++i) {
        Opcode op = pick_opcode();
        NodeId v = b.op(op, "n" + std::to_string(i));
        // Connect from a random earlier producer: keeps the graph
        // connected and acyclic at distance 0.
        NodeId p = defs[rng.nextBelow(defs.size())];
        b.flow(p, v);
        if (rng.nextBool(params.fanoutProb)) {
            NodeId q = defs[rng.nextBelow(defs.size())];
            if (q != p)
                b.flow(q, v);
        }
        if (definesValue(op)) {
            // Loop-carried feedback with small probability.
            if (rng.nextBool(params.carriedProb) && !nodes.empty()) {
                NodeId dst = nodes[rng.nextBelow(nodes.size())];
                int dist = 1 + static_cast<int>(rng.nextBelow(
                                   params.maxDistance));
                b.carried(v, dst, dist);
            }
            defs.push_back(v);
        }
        nodes.push_back(v);
    }
    std::int64_t trip = params.tripCount;
    return b.tripCount(trip).build();
}

} // namespace gpsched
