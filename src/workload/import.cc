#include "workload/import.hh"

#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <utility>

#include "support/compile_error.hh"

namespace gpsched
{

namespace
{

// ---------------------------------------------------------------
// Minimal recursive-descent JSON parser with line tracking. The
// repo's json.hh is a writer only; this reader supports exactly the
// subset the import schema needs (objects, arrays, strings with
// basic escapes, numbers, true/false/null) and records the source
// line of every value so rejections point at the offending input.
// ---------------------------------------------------------------

struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;

    /** 1-based input line the value started on. */
    int line = 0;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &field : fields) {
            if (field.first == key)
                return &field.second;
        }
        return nullptr;
    }
};

const char *
typeName(JsonValue::Type type)
{
    switch (type) {
      case JsonValue::Type::Null:
        return "null";
      case JsonValue::Type::Bool:
        return "bool";
      case JsonValue::Type::Number:
        return "number";
      case JsonValue::Type::String:
        return "string";
      case JsonValue::Type::Array:
        return "array";
      case JsonValue::Type::Object:
        return "object";
      default:
        return "?";
    }
}

class JsonParser
{
  public:
    JsonParser(std::istream &is, const std::string &filename)
        : filename_(filename)
    {
        std::ostringstream oss;
        oss << is.rdbuf();
        text_ = oss.str();
    }

    JsonValue
    parse()
    {
        JsonValue root = parseValue();
        skipWs();
        if (pos_ < text_.size())
            fail(line_, "trailing content after JSON document");
        return root;
    }

    [[noreturn]] void
    fail(int line, const std::string &message) const
    {
        GPSCHED_COMPILE_ERROR(CompileErrorKind::Parse, loopName_,
                              filename_, ":", line, ": ", message);
    }

    void setLoopName(std::string name) { loopName_ = std::move(name); }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '\n')
                ++line_;
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail(line_, "unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(line_, std::string("expected '") + c + "', got '" +
                            text_[pos_] + "'");
        ++pos_;
    }

    JsonValue
    parseValue()
    {
        char c = peek();
        switch (c) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
          case 'f':
            return parseBool();
          case 'n':
            // "nan" shares null's leading 'n'; route it to the
            // number path so the NaN guard can report it as a
            // schema violation rather than a malformed literal.
            if (text_.compare(pos_, 3, "nan") == 0)
                return parseNumber();
            return parseNull();
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.type = JsonValue::Type::Object;
        v.line = line_;
        expect('{');
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            JsonValue key = parseString();
            expect(':');
            v.fields.emplace_back(key.text, parseValue());
            char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.type = JsonValue::Type::Array;
        v.line = line_;
        expect('[');
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.items.push_back(parseValue());
            char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    parseString()
    {
        JsonValue v;
        v.type = JsonValue::Type::String;
        expect('"');
        v.line = line_;
        while (true) {
            if (pos_ >= text_.size())
                fail(v.line, "unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return v;
            if (c == '\n')
                fail(v.line, "unterminated string");
            if (c != '\\') {
                v.text += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail(v.line, "unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                v.text += esc;
                break;
              case 'n':
                v.text += '\n';
                break;
              case 't':
                v.text += '\t';
                break;
              case 'r':
                v.text += '\r';
                break;
              default:
                fail(v.line, std::string("unsupported escape '\\") +
                                 esc + "'");
            }
        }
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.type = JsonValue::Type::Bool;
        v.line = line_;
        if (text_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            v.boolean = false;
            pos_ += 5;
        } else {
            fail(line_, "malformed literal");
        }
        return v;
    }

    JsonValue
    parseNull()
    {
        JsonValue v;
        v.line = line_;
        if (text_.compare(pos_, 4, "null") != 0)
            fail(line_, "malformed literal");
        pos_ += 4;
        return v;
    }

    JsonValue
    parseNumber()
    {
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.line = line_;
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        // Accept nan/inf spellings so the validation layer can
        // reject them with a schema diagnostic instead of a
        // character-level parse error.
        if (text_.compare(pos_, 3, "nan") == 0 ||
            text_.compare(pos_, 3, "NaN") == 0) {
            pos_ += 3;
            v.number = std::nan("");
            return v;
        }
        if (text_.compare(pos_, 3, "inf") == 0) {
            pos_ += 3;
            v.number = text_[start] == '-' ? -HUGE_VAL : HUGE_VAL;
            return v;
        }
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                c == 'E' || c == '+' || c == '-') {
                ++pos_;
                continue;
            }
            break;
        }
        if (pos_ == start)
            fail(line_, std::string("unexpected character '") +
                            text_[start] + "'");
        try {
            v.number = std::stod(text_.substr(start, pos_ - start));
        } catch (const std::exception &) {
            fail(v.line, "malformed number '" +
                             text_.substr(start, pos_ - start) + "'");
        }
        return v;
    }

    std::string filename_;
    std::string loopName_;
    std::string text_;
    std::size_t pos_ = 0;
    int line_ = 1;
};

// ---------------------------------------------------------------
// Schema layer.
// ---------------------------------------------------------------

const JsonValue &
require(const JsonParser &p, const JsonValue &obj,
        const std::string &key, JsonValue::Type type)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        p.fail(obj.line, "missing required key \"" + key + "\"");
    if (v->type != type)
        p.fail(v->line, "\"" + key + "\" must be a " +
                            typeName(type) + ", got " +
                            typeName(v->type));
    return *v;
}

/** Integer field with NaN/inf/fraction/range rejection. */
std::int64_t
intField(const JsonParser &p, const JsonValue &obj,
         const std::string &key, std::int64_t fallback,
         std::int64_t lo, std::int64_t hi)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return fallback;
    if (v->type != JsonValue::Type::Number)
        p.fail(v->line, "\"" + key + "\" must be a number, got " +
                            typeName(v->type));
    double d = v->number;
    if (std::isnan(d))
        p.fail(v->line, "\"" + key + "\" is NaN");
    if (std::isinf(d))
        p.fail(v->line, "\"" + key + "\" is infinite");
    if (d != std::floor(d))
        p.fail(v->line, "\"" + key + "\" must be an integer, got " +
                            std::to_string(d));
    auto n = static_cast<std::int64_t>(d);
    if (n < lo || n > hi)
        p.fail(v->line, "\"" + key + "\" = " + std::to_string(n) +
                            " out of range [" + std::to_string(lo) +
                            ", " + std::to_string(hi) + "]");
    return n;
}

Ddg
importLoop(JsonParser &p, const JsonValue &loopObj,
           const LatencyTable &lat)
{
    if (loopObj.type != JsonValue::Type::Object)
        p.fail(loopObj.line, std::string("loop must be an object, got ") +
                                 typeName(loopObj.type));
    std::string name = "imported";
    if (const JsonValue *nv = loopObj.find("name")) {
        if (nv->type != JsonValue::Type::String)
            p.fail(nv->line, "\"name\" must be a string");
        name = nv->text;
    }
    p.setLoopName(name);
    Ddg g(name);
    g.setTripCount(intField(p, loopObj, "trip", 100, 1,
                            std::int64_t(1) << 40));

    const JsonValue &nodes =
        require(p, loopObj, "nodes", JsonValue::Type::Array);
    if (nodes.items.empty())
        p.fail(nodes.line, "\"nodes\" is empty");
    std::vector<int> nodeLatency;
    for (const JsonValue &nodeObj : nodes.items) {
        if (nodeObj.type != JsonValue::Type::Object)
            p.fail(nodeObj.line,
                   std::string("node must be an object, got ") +
                       typeName(nodeObj.type));
        const JsonValue &opText =
            require(p, nodeObj, "op", JsonValue::Type::String);
        Opcode op;
        if (!opcodeFromString(opText.text, op))
            p.fail(opText.line,
                   "unknown opcode \"" + opText.text + "\"");
        if (!isProgramOpcode(op))
            p.fail(opText.line, "opcode \"" + opText.text +
                                    "\" is scheduler overhead and "
                                    "cannot appear in an input loop");
        std::string label;
        if (const JsonValue *lv = nodeObj.find("label")) {
            if (lv->type != JsonValue::Type::String)
                p.fail(lv->line, "\"label\" must be a string");
            label = lv->text;
        }
        g.addNode(op, label);
        nodeLatency.push_back(static_cast<int>(
            intField(p, nodeObj, "latency", lat.latency(op), 0,
                     1 << 20)));
    }

    const JsonValue *edges = loopObj.find("edges");
    if (edges && edges->type != JsonValue::Type::Array)
        p.fail(edges->line, "\"edges\" must be an array");
    int numNodes = g.numNodes();
    if (edges) {
        for (const JsonValue &edgeObj : edges->items) {
            if (edgeObj.type != JsonValue::Type::Object)
                p.fail(edgeObj.line,
                       std::string("edge must be an object, got ") +
                           typeName(edgeObj.type));
            auto src = static_cast<NodeId>(
                intField(p, edgeObj, "src", -1, -(1 << 30), 1 << 30));
            auto dst = static_cast<NodeId>(
                intField(p, edgeObj, "dst", -1, -(1 << 30), 1 << 30));
            if (src < 0 || src >= numNodes)
                p.fail(edgeObj.line, "edge src " + std::to_string(src) +
                                         " out of range [0, " +
                                         std::to_string(numNodes) +
                                         ")");
            if (dst < 0 || dst >= numNodes)
                p.fail(edgeObj.line, "edge dst " + std::to_string(dst) +
                                         " out of range [0, " +
                                         std::to_string(numNodes) +
                                         ")");
            DepKind kind = DepKind::Flow;
            if (const JsonValue *kv = edgeObj.find("kind")) {
                if (kv->type != JsonValue::Type::String)
                    p.fail(kv->line, "\"kind\" must be a string");
                if (kv->text == "flow")
                    kind = DepKind::Flow;
                else if (kv->text == "order")
                    kind = DepKind::Order;
                else
                    p.fail(kv->line, "unknown edge kind \"" +
                                         kv->text +
                                         "\" (want flow|order)");
            }
            int latency = static_cast<int>(intField(
                p, edgeObj, "latency",
                nodeLatency[static_cast<std::size_t>(src)], 0,
                1 << 20));
            int distance = static_cast<int>(
                intField(p, edgeObj, "distance", 0, 0, 1 << 20));
            if (kind == DepKind::Flow &&
                !definesValue(g.node(src).opcode))
                p.fail(edgeObj.line,
                       "flow edge from node " + std::to_string(src) +
                           " (" + toString(g.node(src).opcode) +
                           "), which defines no value");
            if (src == dst && distance == 0)
                p.fail(edgeObj.line,
                       "self-edge on node " + std::to_string(src) +
                           " requires distance >= 1");
            g.addEdge(src, dst, latency, distance, kind);
        }
    }
    return g;
}

} // namespace

std::vector<Ddg>
importDdgJson(std::istream &is, const std::string &filename,
              const LatencyTable &lat)
{
    JsonParser p(is, filename);
    JsonValue root = p.parse();

    std::vector<Ddg> loops;
    if (root.type == JsonValue::Type::Object && root.find("nodes")) {
        loops.push_back(importLoop(p, root, lat));
        return loops;
    }
    const JsonValue *list = nullptr;
    if (root.type == JsonValue::Type::Object) {
        list = root.find("loops");
        if (!list)
            p.fail(root.line,
                   "top-level object has neither \"loops\" nor "
                   "\"nodes\"");
        if (list->type != JsonValue::Type::Array)
            p.fail(list->line, "\"loops\" must be an array");
    } else if (root.type == JsonValue::Type::Array) {
        list = &root;
    } else {
        p.fail(root.line,
               std::string("top-level value must be an object or "
                           "array, got ") +
                   typeName(root.type));
    }
    if (list->items.empty())
        p.fail(list->line, "no loops in input");
    for (const JsonValue &loopObj : list->items)
        loops.push_back(importLoop(p, loopObj, lat));
    return loops;
}

} // namespace gpsched
