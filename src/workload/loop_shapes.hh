/**
 * @file
 * Parameterized innermost-loop DDG generators.
 *
 * These are the building blocks of the synthetic SPECfp95 suite
 * (DESIGN.md, substitution 1): each generator produces a loop shape
 * that appears in modulo-scheduling studies of that suite —
 * streaming kernels, stencils, reductions, first-order recurrences,
 * very wide independent blocks, integer address arithmetic — so the
 * schedulers face the same structural challenges (recurrence-limited
 * IIs, bus saturation, register pressure, memory-port saturation) as
 * in the paper's evaluation. A deterministic random generator
 * produces irregular bodies for property tests.
 */

#ifndef GPSCHED_WORKLOAD_LOOP_SHAPES_HH
#define GPSCHED_WORKLOAD_LOOP_SHAPES_HH

#include <cstdint>
#include <string>

#include "graph/ddg.hh"
#include "machine/op.hh"
#include "support/random.hh"

namespace gpsched
{

/**
 * Streaming map kernel: per stream, Load -> FP chain -> Store, plus
 * an induction-variable recurrence feeding the addresses.
 *
 * @param streams independent load/store streams
 * @param chain_len FP operations between load and store
 */
Ddg streamKernel(const std::string &name, const LatencyTable &lat,
                 int streams, int chain_len, std::int64_t trip);

/**
 * Stencil kernel: @p taps loads, coefficient multiplies, a balanced
 * FAdd reduction tree, one store. Memory-port heavy.
 */
Ddg stencilKernel(const std::string &name, const LatencyTable &lat,
                  int taps, std::int64_t trip);

/**
 * Sum reduction: @p width parallel Load -> FMul chains feeding one
 * loop-carried FAdd accumulator (distance-1 recurrence).
 */
Ddg reductionKernel(const std::string &name, const LatencyTable &lat,
                    int width, std::int64_t trip);

/**
 * First-order recurrence x = a*x + b (FMul -> FAdd cycle at
 * distance 1, RecMII = latFMul + latFAdd) with @p extra_ops of
 * independent parallel work.
 */
Ddg recurrenceKernel(const std::string &name, const LatencyTable &lat,
                     int extra_ops, std::int64_t trip);

/**
 * Very wide independent block (fpppp-like): @p chains independent
 * FP chains of @p chain_len ops fed by a few loads, converging into
 * stores late. High ILP and high register pressure.
 */
Ddg wideBlockKernel(const std::string &name, const LatencyTable &lat,
                    int chains, int chain_len, std::int64_t trip);

/** Unrolled dot product: @p unroll Load-pairs -> FMul -> carried
 *  FAdd accumulators. */
Ddg dotProductKernel(const std::string &name, const LatencyTable &lat,
                     int unroll, std::int64_t trip);

/** DAXPY: y[i] = a*x[i] + y[i], unrolled @p unroll times. */
Ddg daxpyKernel(const std::string &name, const LatencyTable &lat,
                int unroll, std::int64_t trip);

/**
 * Integer-dominated kernel: IAlu address chains (with an IMul) feed
 * @p width gather loads and a store (wave5-like particle code).
 */
Ddg intAddressKernel(const std::string &name, const LatencyTable &lat,
                     int width, std::int64_t trip);

/** Knobs for the random-loop generator. */
struct RandomLoopParams
{
    int numOps = 24;
    double memFraction = 0.3;  ///< loads+stores share
    double fpFraction = 0.5;   ///< FP share of the non-mem ops
    double carriedProb = 0.15; ///< per-node loop-carried edge prob.
    double fanoutProb = 0.35;  ///< extra consumer edge probability
    int maxDistance = 2;       ///< max carried-dependence distance
    std::int64_t tripCount = 100;
};

/**
 * Connected random loop DDG with the mix given by @p params; always
 * acyclic at distance 0 (cycles only through carried edges).
 * Deterministic for a given @p rng state.
 */
Ddg randomLoop(const std::string &name, const LatencyTable &lat,
               Rng &rng, const RandomLoopParams &params = {});

} // namespace gpsched

#endif // GPSCHED_WORKLOAD_LOOP_SHAPES_HH
