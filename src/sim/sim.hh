/**
 * @file
 * Cycle-accurate schedule replay simulator.
 *
 * Executes a complete modulo schedule — placements, transfer chains,
 * spill splits — against a MachineConfig on an absolute cycle
 * timeline, overlapping kernel iterations at the schedule's II, and
 * reports the achieved II/IPC plus a typed SimFault on the first
 * structural violation the replay trips over. The machine model
 * replayed:
 *
 *  - per-cluster functional units and memory ports: every issued op
 *    (program, CommSt/CommLd, SpillSt/SpillLd) occupies its unit for
 *    its occupancy, counted on the absolute timeline across all
 *    in-flight iterations;
 *  - per-class non-pipelined buses: a bus transfer occupies one bus
 *    of its class for the class latency;
 *  - value movement: a consumer in the producer's cluster reads the
 *    home register after the write (and outside any spill gap); a
 *    consumer in another cluster reads the destination register,
 *    which a transfer (bus copy, or CommSt/CommLd through memory)
 *    must have filled by then;
 *  - per-cluster register files: every value instance's home and
 *    destination lifetimes are replayed on the timeline and the live
 *    count is checked against the cluster's file every cycle.
 *
 * Schedules are periodic with period II, so the replay window is
 * truncated to enough iterations to contain a full steady-state band
 * (iteration depth + max dependence distance + 2); ramp-up occupancy
 * and pressure are bounded by steady state, so the truncation hides
 * no overflow. Total cycles are then extrapolated to the full trip
 * count analytically.
 *
 * Oracle-independence contract: this simulator shares no code with
 * the scheduler's bookkeeping (sched/schedule.cc) or with the static
 * validator (sched/validate.cc) — the validator folds one iteration
 * into II kernel slots, the simulator unrolls iterations onto an
 * absolute timeline. Agreement between the two (pinned by
 * tests/test_property.cc and tests/test_sim_mutation.cc) is what
 * makes either verdict trustworthy.
 */

#ifndef GPSCHED_SIM_SIM_HH
#define GPSCHED_SIM_SIM_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/ddg.hh"
#include "machine/machine.hh"

namespace gpsched
{
struct CompiledLoop;
class PartialSchedule;
} // namespace gpsched

namespace gpsched::sim
{

/** What the replay tripped over. */
enum class SimFaultKind : std::uint8_t
{
    MalformedSchedule,   ///< shape: counts, ranges, duplicates
    DependenceViolation, ///< issue-order edge constraint broken
    ReadBeforeWrite,     ///< register read before the value exists
    SpillGapRead,        ///< home read inside a spill gap
    MissingTransfer,     ///< cross-cluster consumer, no transfer
    UnusedTransfer,      ///< transfer whose dest has no consumer
    InconsistentTransfer, ///< recorded transfer timings disagree
    BadBusClass,         ///< transfer rides an unknown bus class
    BrokenSpill,         ///< spill store/reload ordering broken
    FuOverflow,          ///< Int/Fp units over capacity in a cycle
    MemPortOverflow,     ///< memory ports over capacity in a cycle
    BusOverflow,         ///< bus class over capacity in a cycle
    RegisterOverflow,    ///< live values exceed a register file
};

/** Printable kind name ("FuOverflow", ...). */
const char *toString(SimFaultKind kind);

/** First violation the replay hit. */
struct SimFault
{
    SimFaultKind kind = SimFaultKind::MalformedSchedule;

    /** Absolute replay cycle (iteration 0's earliest event is cycle
     *  0); -1 for structural faults with no meaningful cycle. */
    std::int64_t cycle = -1;

    /** Offending node, invalidNode when none applies. */
    NodeId node = invalidNode;

    /** Human-readable description. */
    std::string detail;

    /** One-line rendering ("RegisterOverflow @12 node 3: ..."). */
    std::string toString() const;
};

/** Replay outcome. */
struct SimResult
{
    /** True when the schedule executed without a fault. */
    bool simOk = false;

    /** True when a modulo kernel was actually replayed; false for
     *  list-scheduled loops, which carry no placements (their cycle
     *  count is still recomputed from the flat schedule length). */
    bool replayed = false;

    /** Measured initiation interval: first-issue separation between
     *  consecutive replayed iterations (0 when not replayed). */
    int achievedII = 0;

    /** Execution cycles at the loop's trip count (replay window
     *  extrapolated analytically; >= 1). */
    std::int64_t simCycles = 0;

    /** Program ops / simCycles (0 when faulted). */
    double achievedIpc = 0.0;

    /** Kernel iterations actually replayed (the truncated window). */
    std::int64_t iterationsSimulated = 0;

    /** Measured peak live values per cluster over the window. */
    std::vector<int> maxLive;

    /** First violation, when !simOk. */
    std::optional<SimFault> fault;
};

/**
 * Replays the schedule recorded in @p loop against @p machine at
 * @p ddg's trip count. List-scheduled loops (no kernel) are not
 * replayed: simOk=true with cycles recomputed from the flat length.
 */
SimResult simulate(const Ddg &ddg, const MachineConfig &machine,
                   const CompiledLoop &loop);

/** Replays a complete PartialSchedule (every node placed). */
SimResult simulate(const Ddg &ddg, const MachineConfig &machine,
                   const PartialSchedule &schedule);

} // namespace gpsched::sim

#endif // GPSCHED_SIM_SIM_HH
