#include "sim/sim.hh"

#include <algorithm>
#include <climits>
#include <sstream>

#include "core/gp_scheduler.hh"
#include "sched/schedule.hh"

namespace gpsched::sim
{

namespace
{

/** Recorded cycles beyond this magnitude are garbage, not schedules;
 *  refusing them bounds the replay timeline allocation. */
constexpr int kMaxCycleMagnitude = 1 << 20;

/** Hard cap on the replay timeline length (cycles). */
constexpr std::int64_t kMaxTimeline = std::int64_t{1} << 22;

/** Flat, source-agnostic image of a complete modulo schedule. */
struct Image
{
    int ii = 0;
    std::vector<OpPlacement> place;           ///< by node
    std::vector<std::vector<Transfer>> xfers; ///< by producer
    std::vector<SpillInfo> spill;             ///< by node
};

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/** Shape-checks and flattens a CompiledLoop's schedule record. */
std::optional<SimFault>
buildImage(const Ddg &ddg, const MachineConfig &machine,
           const CompiledLoop &loop, Image &out)
{
    const int n = ddg.numNodes();
    auto malformed = [](NodeId node, std::string detail) {
        return SimFault{SimFaultKind::MalformedSchedule, -1, node,
                        std::move(detail)};
    };
    out.ii = loop.ii;
    if (static_cast<int>(loop.placements.size()) != n) {
        return malformed(invalidNode,
                         concat("schedule records ",
                                loop.placements.size(),
                                " placements for ", n, " nodes"));
    }
    out.place = loop.placements;
    out.xfers.assign(n, {});
    out.spill.assign(n, {});
    for (const Transfer &t : loop.transfers) {
        if (t.producer < 0 || t.producer >= n) {
            return malformed(t.producer,
                             concat("transfer from unknown node ",
                                    t.producer));
        }
        if (!definesValue(ddg.node(t.producer).opcode)) {
            return malformed(t.producer,
                             concat("transfer from non-defining "
                                    "node ",
                                    t.producer));
        }
        if (t.destCluster < 0 ||
            t.destCluster >= machine.numClusters()) {
            return malformed(t.producer,
                             concat("transfer of ", t.producer,
                                    " to bad cluster ",
                                    t.destCluster));
        }
        for (const Transfer &prev : out.xfers[t.producer]) {
            if (prev.destCluster == t.destCluster) {
                return malformed(t.producer,
                                 concat("duplicate transfer of ",
                                        t.producer, " to cluster ",
                                        t.destCluster));
            }
        }
        out.xfers[t.producer].push_back(t);
    }
    for (const SpillRecord &s : loop.spills) {
        if (s.node < 0 || s.node >= n)
            return malformed(s.node, concat("spill of unknown node ",
                                            s.node));
        if (!definesValue(ddg.node(s.node).opcode)) {
            return malformed(s.node,
                             concat("spill of non-defining node ",
                                    s.node));
        }
        if (out.spill[s.node].spilled)
            return malformed(s.node, concat("duplicate spill of node ",
                                            s.node));
        out.spill[s.node] = {true, s.storeCycle, s.loadCycle};
    }
    return std::nullopt;
}

/** Flattens a complete PartialSchedule. */
std::optional<SimFault>
buildImage(const Ddg &ddg, const PartialSchedule &ps, Image &out)
{
    const int n = ddg.numNodes();
    out.ii = ps.ii();
    out.place.resize(n);
    out.xfers.assign(n, {});
    out.spill.assign(n, {});
    for (NodeId v = 0; v < n; ++v) {
        if (!ps.isScheduled(v)) {
            return SimFault{SimFaultKind::MalformedSchedule, -1, v,
                            concat("node ", v, " not scheduled")};
        }
        out.place[v] = {ps.clusterOf(v), ps.cycleOf(v)};
        for (const auto &[dest, t] : ps.transfersOf(v))
            out.xfers[v].push_back(t);
        out.spill[v] = ps.spillOf(v);
    }
    return std::nullopt;
}

/** The replay engine proper. */
struct Replayer
{
    const Ddg &ddg;
    const MachineConfig &machine;
    const LatencyTable &lat;
    const Image &img;
    const std::int64_t trip;
    const int n;
    const int ii;

    int lo = 0;         ///< earliest frame event (issue) cycle
    int hiMetric = 0;   ///< latest frame finish (scheduleLength end)
    int hiAlloc = 0;    ///< latest frame cycle any grid is touched
    int maxDist = 0;    ///< max dependence distance
    std::int64_t K = 1; ///< iterations replayed
    std::int64_t timeline = 0;

    std::vector<std::vector<int>> fuGrid;  ///< (cluster, class) major
    std::vector<std::vector<int>> busGrid; ///< per bus class
    std::vector<std::vector<int>> liveGrid; ///< per cluster

    SimResult res;

    Replayer(const Ddg &d, const MachineConfig &m, const Image &i,
             std::int64_t trip_count)
        : ddg(d), machine(m), lat(m.latencies()), img(i),
          trip(trip_count), n(d.numNodes()), ii(i.ii)
    {
    }

    bool
    fault(SimFaultKind kind, std::int64_t cycle, NodeId node,
          std::string detail)
    {
        if (!res.fault)
            res.fault = SimFault{kind, cycle, node, std::move(detail)};
        return false;
    }

    int clusterOf(NodeId v) const { return img.place[v].cluster; }
    int cycleOf(NodeId v) const { return img.place[v].cycle; }

    /** Result-availability cycle of @p v in its iteration frame. */
    int
    writeFrame(NodeId v) const
    {
        return cycleOf(v) + lat.latency(ddg.node(v).opcode);
    }

    /** Absolute replay cycle of frame cycle @p c in iteration @p j. */
    std::int64_t
    abs(std::int64_t j, int c) const
    {
        return j * ii + (c - lo);
    }

    /** True when a home read of @p v at frame cycle @p t is outside
     *  the spill gap. */
    bool
    homeReadOk(NodeId v, int t) const
    {
        const SpillInfo &s = img.spill[v];
        if (!s.spilled)
            return true;
        return t <= s.storeCycle ||
               t >= s.loadCycle + lat.latency(Opcode::SpillLd);
    }

    bool
    checkShape()
    {
        if (ii < 1 || ii > kMaxCycleMagnitude)
            return fault(SimFaultKind::MalformedSchedule, -1,
                         invalidNode, concat("bad II ", ii));
        auto inRange = [](int c) {
            return c >= -kMaxCycleMagnitude && c <= kMaxCycleMagnitude;
        };
        for (NodeId v = 0; v < n; ++v) {
            int c = clusterOf(v);
            if (c < 0 || c >= machine.numClusters()) {
                return fault(SimFaultKind::MalformedSchedule, -1, v,
                             concat("node ", v, " in bad cluster ",
                                    c));
            }
            if (!inRange(cycleOf(v))) {
                return fault(SimFaultKind::MalformedSchedule, -1, v,
                             concat("node ", v, " at absurd cycle ",
                                    cycleOf(v)));
            }
            for (const Transfer &t : img.xfers[v]) {
                if (t.viaBus && (t.busClass < 0 ||
                                 t.busClass >= machine.numBusClasses())) {
                    return fault(SimFaultKind::BadBusClass, -1, v,
                                 concat("transfer of ", v,
                                        " rides unknown bus class ",
                                        t.busClass));
                }
                if (!inRange(t.busCycle) || !inRange(t.stCycle) ||
                    !inRange(t.ldCycle) || !inRange(t.readCycle) ||
                    !inRange(t.arrivalCycle)) {
                    return fault(SimFaultKind::MalformedSchedule, -1,
                                 v,
                                 concat("transfer of ", v,
                                        " at absurd cycles"));
                }
            }
            const SpillInfo &s = img.spill[v];
            if (s.spilled &&
                (!inRange(s.storeCycle) || !inRange(s.loadCycle))) {
                return fault(SimFaultKind::MalformedSchedule, -1, v,
                             concat("spill of ", v,
                                    " at absurd cycles"));
            }
        }
        return true;
    }

    /** Frame extents: hiMetric mirrors scheduleLength()'s finish
     *  rule; hiAlloc additionally covers occupancy tails. */
    bool
    computeExtent()
    {
        lo = INT_MAX;
        hiMetric = INT_MIN;
        hiAlloc = INT_MIN;
        auto extend = [&](int issue, int finMetric, int finAlloc) {
            lo = std::min(lo, issue);
            hiMetric = std::max(hiMetric, finMetric);
            hiAlloc = std::max(hiAlloc, std::max(finMetric, finAlloc));
        };
        auto span = [&](Opcode op) {
            return std::max(lat.latency(op), lat.occupancy(op));
        };
        for (NodeId v = 0; v < n; ++v) {
            Opcode op = ddg.node(v).opcode;
            extend(cycleOf(v), cycleOf(v) + lat.latency(op),
                   cycleOf(v) + span(op));
            for (const Transfer &t : img.xfers[v]) {
                if (t.viaBus) {
                    extend(t.busCycle, t.arrivalCycle,
                           t.busCycle +
                               machine.busLatencyOf(t.busClass));
                } else {
                    extend(t.stCycle,
                           t.stCycle + lat.latency(Opcode::CommSt),
                           t.stCycle + span(Opcode::CommSt));
                    extend(t.ldCycle, t.arrivalCycle,
                           t.ldCycle + span(Opcode::CommLd));
                }
            }
            const SpillInfo &s = img.spill[v];
            if (s.spilled) {
                extend(s.storeCycle,
                       s.storeCycle + lat.latency(Opcode::SpillSt),
                       s.storeCycle + span(Opcode::SpillSt));
                extend(s.loadCycle,
                       s.loadCycle + lat.latency(Opcode::SpillLd),
                       s.loadCycle + span(Opcode::SpillLd));
            }
        }
        maxDist = 0;
        for (EdgeId e = 0; e < ddg.numEdges(); ++e)
            maxDist = std::max(maxDist, ddg.edge(e).distance);

        const int sl = hiMetric - lo;
        const std::int64_t depth = sl / ii + 1;
        K = std::min<std::int64_t>(trip, depth + maxDist + 2);
        timeline = (K - 1 + maxDist) * ii + (hiAlloc - lo) + ii + 1;
        if (timeline > kMaxTimeline) {
            return fault(SimFaultKind::MalformedSchedule, -1,
                         invalidNode,
                         concat("replay window of ", timeline,
                                " cycles exceeds the simulator cap"));
        }
        return true;
    }

    void
    occupy(std::vector<int> &grid, std::int64_t start, int len)
    {
        GPSCHED_ASSERT(start >= 0 &&
                           start + len <=
                               static_cast<std::int64_t>(grid.size()),
                       "replay grid out of range");
        for (int i = 0; i < len; ++i)
            grid[start + i] += 1;
    }

    /** Marks [from, to] (inclusive, absolute) live in @p grid. */
    void
    coverLive(std::vector<int> &grid, std::int64_t from,
              std::int64_t to)
    {
        if (to < from)
            return;
        GPSCHED_ASSERT(from >= 0 &&
                           to < static_cast<std::int64_t>(grid.size()),
                       "replay live range out of range");
        for (std::int64_t t = from; t <= to; ++t)
            grid[t] += 1;
    }

    std::vector<int> &
    fu(int cluster, FuClass cls)
    {
        return fuGrid[cluster * numFuClasses +
                      static_cast<int>(cls)];
    }

    /** Issues every op, transfer and spill of the replay window,
     *  checking each realized read against value availability. */
    bool
    replayIssues()
    {
        for (std::int64_t j = 0; j < K; ++j) {
            for (NodeId v = 0; v < n; ++v) {
                Opcode op = ddg.node(v).opcode;
                occupy(fu(clusterOf(v), fuClassOf(op)),
                       abs(j, cycleOf(v)), lat.occupancy(op));
            }
            for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
                const DdgEdge &edge = ddg.edge(e);
                const std::int64_t p = j - edge.distance;
                if (p < 0)
                    continue; // value from before the loop
                const std::int64_t consume = abs(j, cycleOf(edge.dst));
                const std::int64_t produce = abs(p, cycleOf(edge.src));
                if (consume < produce + edge.latency) {
                    return fault(
                        SimFaultKind::DependenceViolation, consume,
                        edge.dst,
                        concat("node ", edge.dst, " issues at ",
                               consume, " but node ", edge.src,
                               " (latency ", edge.latency,
                               ") issued at ", produce));
                }
                if (!edge.isFlow())
                    continue;
                if (clusterOf(edge.src) == clusterOf(edge.dst)) {
                    const std::int64_t write =
                        abs(p, writeFrame(edge.src));
                    if (consume < write) {
                        return fault(
                            SimFaultKind::ReadBeforeWrite, consume,
                            edge.dst,
                            concat("node ", edge.dst, " reads ",
                                   edge.src, " at ", consume,
                                   " before its write at ", write));
                    }
                    // Frame-relative read time under the spill split.
                    int read_frame =
                        cycleOf(edge.dst) + ii * edge.distance;
                    if (!homeReadOk(edge.src, read_frame)) {
                        return fault(
                            SimFaultKind::SpillGapRead, consume,
                            edge.src,
                            concat("node ", edge.dst,
                                   " reads inside the spill gap of ",
                                   edge.src));
                    }
                    continue;
                }
                const Transfer *t = nullptr;
                for (const Transfer &cand : img.xfers[edge.src]) {
                    if (cand.destCluster == clusterOf(edge.dst))
                        t = &cand;
                }
                if (!t) {
                    return fault(
                        SimFaultKind::MissingTransfer, consume,
                        edge.src,
                        concat("no transfer of ", edge.src,
                               " to cluster ",
                               clusterOf(edge.dst)));
                }
                const std::int64_t arrive = abs(p, t->arrivalCycle);
                if (consume < arrive) {
                    return fault(
                        SimFaultKind::ReadBeforeWrite, consume,
                        edge.dst,
                        concat("node ", edge.dst, " reads ",
                               edge.src, " in cluster ",
                               t->destCluster, " at ", consume,
                               " before the transfer arrives at ",
                               arrive));
                }
            }
            for (NodeId v = 0; v < n; ++v) {
                if (!replayTransfers(j, v) || !replaySpill(j, v))
                    return false;
            }
        }
        return true;
    }

    bool
    replayTransfers(std::int64_t j, NodeId v)
    {
        for (const Transfer &t : img.xfers[v]) {
            const std::int64_t read = abs(j, t.readCycle);
            const std::int64_t write = abs(j, writeFrame(v));
            if (read < write) {
                return fault(SimFaultKind::ReadBeforeWrite, read, v,
                             concat("transfer of ", v, " reads at ",
                                    read, " before its write at ",
                                    write));
            }
            if (!homeReadOk(v, t.readCycle)) {
                return fault(SimFaultKind::SpillGapRead, read, v,
                             concat("transfer of ", v,
                                    " reads inside its spill gap"));
            }
            if (t.viaBus) {
                const int bus_lat = machine.busLatencyOf(t.busClass);
                if (t.readCycle != t.busCycle ||
                    t.arrivalCycle != t.busCycle + bus_lat) {
                    return fault(
                        SimFaultKind::InconsistentTransfer, read, v,
                        concat("bus transfer of ", v,
                               " has inconsistent timing"));
                }
                occupy(busGrid[t.busClass], abs(j, t.busCycle),
                       bus_lat);
            } else {
                if (t.readCycle != t.stCycle ||
                    t.ldCycle <
                        t.stCycle + lat.latency(Opcode::CommSt) ||
                    t.arrivalCycle !=
                        t.ldCycle + lat.latency(Opcode::CommLd)) {
                    return fault(
                        SimFaultKind::InconsistentTransfer, read, v,
                        concat("memory transfer of ", v,
                               " has inconsistent timing"));
                }
                occupy(fu(clusterOf(v), FuClass::Mem),
                       abs(j, t.stCycle),
                       lat.occupancy(Opcode::CommSt));
                occupy(fu(t.destCluster, FuClass::Mem),
                       abs(j, t.ldCycle),
                       lat.occupancy(Opcode::CommLd));
            }
            if (j == 0) {
                bool consumed = false;
                for (EdgeId e : ddg.outEdges(v)) {
                    const DdgEdge &edge = ddg.edge(e);
                    if (edge.isFlow() &&
                        clusterOf(edge.dst) == t.destCluster)
                        consumed = true;
                }
                if (!consumed) {
                    return fault(
                        SimFaultKind::UnusedTransfer,
                        abs(j, t.arrivalCycle), v,
                        concat("transfer of ", v, " to cluster ",
                               t.destCluster, " has no consumer"));
                }
            }
        }
        return true;
    }

    bool
    replaySpill(std::int64_t j, NodeId v)
    {
        const SpillInfo &s = img.spill[v];
        if (!s.spilled)
            return true;
        if (s.storeCycle < writeFrame(v)) {
            return fault(SimFaultKind::BrokenSpill,
                         abs(j, s.storeCycle), v,
                         concat("spill store of ", v, " at frame ",
                                s.storeCycle, " before its write at ",
                                writeFrame(v)));
        }
        if (s.loadCycle + lat.latency(Opcode::SpillLd) <=
            s.storeCycle + lat.latency(Opcode::SpillSt)) {
            return fault(SimFaultKind::BrokenSpill,
                         abs(j, s.loadCycle), v,
                         concat("spill of ", v,
                                " reloads before the store "
                                "completes"));
        }
        occupy(fu(clusterOf(v), FuClass::Mem), abs(j, s.storeCycle),
               lat.occupancy(Opcode::SpillSt));
        occupy(fu(clusterOf(v), FuClass::Mem), abs(j, s.loadCycle),
               lat.occupancy(Opcode::SpillLd));
        return true;
    }

    /** Replays every value instance's register lifetime onto the
     *  timeline (home segment, spill split, destination segments). */
    void
    replayLifetimes()
    {
        for (std::int64_t j = 0; j < K; ++j) {
            for (NodeId v = 0; v < n; ++v) {
                if (!definesValue(ddg.node(v).opcode))
                    continue;
                const int home = clusterOf(v);
                const int write = writeFrame(v);

                int home_last = write;
                for (EdgeId e : ddg.outEdges(v)) {
                    const DdgEdge &edge = ddg.edge(e);
                    if (!edge.isFlow() ||
                        clusterOf(edge.dst) != home)
                        continue;
                    if (j + edge.distance >= trip)
                        continue; // consumer iteration never runs
                    home_last = std::max(
                        home_last,
                        cycleOf(edge.dst) + ii * edge.distance);
                }
                for (const Transfer &t : img.xfers[v])
                    home_last = std::max(home_last, t.readCycle);

                const SpillInfo &s = img.spill[v];
                if (!s.spilled) {
                    coverLive(liveGrid[home], abs(j, write),
                              abs(j, home_last));
                } else {
                    coverLive(liveGrid[home], abs(j, write),
                              abs(j, s.storeCycle));
                    int reload = s.loadCycle +
                                 lat.latency(Opcode::SpillLd);
                    if (home_last >= reload) {
                        coverLive(liveGrid[home], abs(j, reload),
                                  abs(j, home_last));
                    }
                }

                for (const Transfer &t : img.xfers[v]) {
                    int last = t.arrivalCycle;
                    for (EdgeId e : ddg.outEdges(v)) {
                        const DdgEdge &edge = ddg.edge(e);
                        if (!edge.isFlow() ||
                            clusterOf(edge.dst) != t.destCluster)
                            continue;
                        if (j + edge.distance >= trip)
                            continue;
                        last = std::max(last,
                                        cycleOf(edge.dst) +
                                            ii * edge.distance);
                    }
                    coverLive(liveGrid[t.destCluster],
                              abs(j, t.arrivalCycle), abs(j, last));
                }
            }
        }
    }

    /** Earliest-cycle scan of every grid against its capacity. */
    bool
    scanCapacities()
    {
        const int clusters = machine.numClusters();
        for (int c = 0; c < clusters; ++c) {
            for (std::int64_t t = 0; t < timeline; ++t) {
                res.maxLive[c] =
                    std::max(res.maxLive[c], liveGrid[c][t]);
            }
        }
        for (std::int64_t t = 0; t < timeline; ++t) {
            for (int c = 0; c < clusters; ++c) {
                for (int k = 0; k < numFuClasses; ++k) {
                    FuClass cls = static_cast<FuClass>(k);
                    int used = fu(c, cls)[t];
                    int units = machine.fuInCluster(c, cls);
                    if (used > units) {
                        return fault(
                            cls == FuClass::Mem
                                ? SimFaultKind::MemPortOverflow
                                : SimFaultKind::FuOverflow,
                            t, invalidNode,
                            concat("cluster ", c, " ",
                                   gpsched::toString(cls),
                                   " over capacity ", used, "/",
                                   units, " at cycle ", t));
                    }
                }
            }
            for (int bc = 0; bc < machine.numBusClasses(); ++bc) {
                int used = busGrid[bc][t];
                int count = machine.busClass(bc).count;
                if (used > count) {
                    return fault(SimFaultKind::BusOverflow, t,
                                 invalidNode,
                                 concat("bus class ", bc,
                                        " over capacity ", used, "/",
                                        count, " at cycle ", t));
                }
            }
            for (int c = 0; c < clusters; ++c) {
                int used = liveGrid[c][t];
                int regs = machine.regsInCluster(c);
                if (used > regs) {
                    return fault(SimFaultKind::RegisterOverflow, t,
                                 invalidNode,
                                 concat("cluster ", c, " holds ",
                                        used, " live values in ",
                                        regs, " registers at cycle ",
                                        t));
                }
            }
        }
        return true;
    }

    SimResult
    run()
    {
        res.maxLive.assign(machine.numClusters(), 0);
        if (!checkShape() || !computeExtent()) {
            return res;
        }
        res.iterationsSimulated = K;
        res.replayed = true;
        fuGrid.assign(machine.numClusters() * numFuClasses,
                      std::vector<int>(timeline, 0));
        busGrid.assign(machine.numBusClasses(),
                       std::vector<int>(timeline, 0));
        liveGrid.assign(machine.numClusters(),
                        std::vector<int>(timeline, 0));
        if (!replayIssues()) {
            res.replayed = true;
            return res;
        }
        replayLifetimes();
        if (!scanCapacities())
            return res;

        // Measured initiation interval: separation of the first
        // issues of consecutive iterations.
        int min_cycle = INT_MAX;
        for (NodeId v = 0; v < n; ++v)
            min_cycle = std::min(min_cycle, cycleOf(v));
        res.achievedII =
            K >= 2 ? static_cast<int>(abs(1, min_cycle) -
                                      abs(0, min_cycle))
                   : ii;

        const int sl = hiMetric - lo;
        res.simCycles = std::max<std::int64_t>(
            (trip - 1) * res.achievedII + sl, 1);
        res.achievedIpc =
            static_cast<double>(static_cast<std::int64_t>(n) * trip) /
            static_cast<double>(res.simCycles);
        res.simOk = true;
        return res;
    }
};

SimResult
faulted(const MachineConfig &machine, SimFault f)
{
    SimResult res;
    res.maxLive.assign(machine.numClusters(), 0);
    res.fault = std::move(f);
    return res;
}

} // namespace

const char *
toString(SimFaultKind kind)
{
    switch (kind) {
      case SimFaultKind::MalformedSchedule: return "MalformedSchedule";
      case SimFaultKind::DependenceViolation:
        return "DependenceViolation";
      case SimFaultKind::ReadBeforeWrite: return "ReadBeforeWrite";
      case SimFaultKind::SpillGapRead: return "SpillGapRead";
      case SimFaultKind::MissingTransfer: return "MissingTransfer";
      case SimFaultKind::UnusedTransfer: return "UnusedTransfer";
      case SimFaultKind::InconsistentTransfer:
        return "InconsistentTransfer";
      case SimFaultKind::BadBusClass: return "BadBusClass";
      case SimFaultKind::BrokenSpill: return "BrokenSpill";
      case SimFaultKind::FuOverflow: return "FuOverflow";
      case SimFaultKind::MemPortOverflow: return "MemPortOverflow";
      case SimFaultKind::BusOverflow: return "BusOverflow";
      case SimFaultKind::RegisterOverflow: return "RegisterOverflow";
    }
    return "UnknownFault";
}

std::string
SimFault::toString() const
{
    std::ostringstream oss;
    oss << sim::toString(kind);
    if (cycle >= 0)
        oss << " @" << cycle;
    if (node != invalidNode)
        oss << " node " << node;
    oss << ": " << detail;
    return oss.str();
}

SimResult
simulate(const Ddg &ddg, const MachineConfig &machine,
         const CompiledLoop &loop)
{
    const std::int64_t trip = ddg.tripCount();
    if (!loop.moduloScheduled) {
        // No kernel to replay: recompute the iterative execution's
        // cycle count from the flat schedule length.
        SimResult res;
        res.maxLive.assign(machine.numClusters(), 0);
        res.simOk = true;
        res.replayed = false;
        res.achievedII = 0;
        res.simCycles = std::max<std::int64_t>(
            static_cast<std::int64_t>(loop.scheduleLength) * trip, 1);
        res.achievedIpc =
            static_cast<double>(static_cast<std::int64_t>(
                ddg.numNodes()) * trip) /
            static_cast<double>(res.simCycles);
        return res;
    }
    if (loop.ii < 1) {
        return faulted(machine,
                       {SimFaultKind::MalformedSchedule, -1,
                        invalidNode, concat("bad II ", loop.ii)});
    }
    Image img;
    if (auto f = buildImage(ddg, machine, loop, img))
        return faulted(machine, std::move(*f));
    return Replayer(ddg, machine, img, trip).run();
}

SimResult
simulate(const Ddg &ddg, const MachineConfig &machine,
         const PartialSchedule &schedule)
{
    Image img;
    if (auto f = buildImage(ddg, schedule, img))
        return faulted(machine, std::move(*f));
    return Replayer(ddg, machine, img, ddg.tripCount()).run();
}

} // namespace gpsched::sim
