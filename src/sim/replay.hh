/**
 * @file
 * Suite-level replay gate: re-executes every successfully compiled
 * loop of a ProgramResult/SuiteResult through the cycle-accurate
 * simulator (sim/sim.hh) and cross-checks the execution against the
 * estimator's claims — achieved II must equal the scheduled II,
 * achieved IPC must equal the reported IPC exactly, and the replay
 * must finish without a SimFault. The benches run this behind
 * --replay; the nightly corpus sweep fails on any mismatch.
 */

#ifndef GPSCHED_SIM_REPLAY_HH
#define GPSCHED_SIM_REPLAY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "machine/machine.hh"

namespace gpsched::sim
{

/** One loop whose replay disagreed with its compile record. */
struct ReplayMismatch
{
    std::string program;
    std::string loop;
    std::string detail;
};

/** Outcome of replaying a program or suite. */
struct ReplayReport
{
    /** Loops replayed (list-scheduled loops count: their recomputed
     *  cycles are still cross-checked). */
    std::int64_t loopsChecked = 0;

    /** Loops that actually went through the kernel replay. */
    std::int64_t loopsReplayed = 0;

    std::vector<ReplayMismatch> mismatches;

    bool ok() const { return mismatches.empty(); }

    /** "replayed N loops, M mismatches" (+ first mismatch detail). */
    std::string summary() const;
};

/**
 * Replays every compiled loop of @p result against @p machine.
 * Loops are matched back to @p program's DDGs by name (failures
 * recorded in result.failures are skipped, like the aggregates
 * skip them).
 */
ReplayReport replayProgram(const Program &program,
                           const ProgramResult &result,
                           const MachineConfig &machine);

/** Replays every program of a suite; aggregates into one report. */
ReplayReport replaySuite(const std::vector<Program> &suite,
                         const SuiteResult &result,
                         const MachineConfig &machine);

} // namespace gpsched::sim

#endif // GPSCHED_SIM_REPLAY_HH
