#include "sim/replay.hh"

#include <sstream>

#include "sim/sim.hh"

namespace gpsched::sim
{

namespace
{

void
mismatch(ReplayReport &report, const std::string &program,
         const std::string &loop, std::string detail)
{
    report.mismatches.push_back({program, loop, std::move(detail)});
}

void
replayOne(ReplayReport &report, const std::string &program_name,
          const Ddg &ddg, const CompiledLoop &loop,
          const MachineConfig &machine)
{
    SimResult sim = simulate(ddg, machine, loop);
    ++report.loopsChecked;
    if (sim.replayed)
        ++report.loopsReplayed;
    if (!sim.simOk) {
        mismatch(report, program_name, loop.loopName,
                 sim.fault ? sim.fault->toString()
                           : std::string("replay failed"));
        return;
    }
    std::ostringstream oss;
    if (loop.moduloScheduled && sim.achievedII != loop.ii) {
        oss << "achieved II " << sim.achievedII
            << " != scheduled II " << loop.ii;
        mismatch(report, program_name, loop.loopName, oss.str());
        return;
    }
    if (sim.simCycles != loop.cycles) {
        oss << "simulated " << sim.simCycles
            << " cycles != estimated " << loop.cycles;
        mismatch(report, program_name, loop.loopName, oss.str());
        return;
    }
    if (sim.achievedIpc != loop.ipc) {
        oss << "achieved IPC " << sim.achievedIpc
            << " != reported IPC " << loop.ipc;
        mismatch(report, program_name, loop.loopName, oss.str());
    }
}

void
replayInto(ReplayReport &report, const Program &program,
           const ProgramResult &result, const MachineConfig &machine)
{
    // result.loops holds the successes in submission order; walk the
    // program's DDGs with a cursor so skipped failures stay aligned.
    std::size_t next = 0;
    for (const CompiledLoop &loop : result.loops) {
        while (next < program.loops.size() &&
               program.loops[next].name() != loop.loopName)
            ++next;
        if (next == program.loops.size()) {
            mismatch(report, program.name, loop.loopName,
                     "compiled loop not found in the program's DDGs");
            continue;
        }
        replayOne(report, program.name, program.loops[next], loop,
                  machine);
        ++next;
    }
}

} // namespace

std::string
ReplayReport::summary() const
{
    std::ostringstream oss;
    oss << "replayed " << loopsReplayed << "/" << loopsChecked
        << " loops, " << mismatches.size() << " mismatches";
    if (!mismatches.empty()) {
        const ReplayMismatch &m = mismatches.front();
        oss << " (first: " << m.program << "/" << m.loop << ": "
            << m.detail << ")";
    }
    return oss.str();
}

ReplayReport
replayProgram(const Program &program, const ProgramResult &result,
              const MachineConfig &machine)
{
    ReplayReport report;
    replayInto(report, program, result, machine);
    return report;
}

ReplayReport
replaySuite(const std::vector<Program> &suite,
            const SuiteResult &result, const MachineConfig &machine)
{
    ReplayReport report;
    for (const ProgramResult &pr : result.programs) {
        for (const Program &p : suite) {
            if (p.name == pr.name) {
                replayInto(report, p, pr, machine);
                break;
            }
        }
    }
    return report;
}

} // namespace gpsched::sim
