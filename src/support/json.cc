#include "support/json.hh"

#include <cmath>
#include <cstdio>

#include "support/logging.hh"

namespace gpsched
{

JsonWriter::JsonWriter(std::ostream &os, int indent)
    : os_(os), indent_(indent)
{
    GPSCHED_ASSERT(indent >= 0, "negative JSON indent");
}

void
JsonWriter::beginValue()
{
    GPSCHED_ASSERT(!done_, "write past the end of a JSON document");
    if (stack_.empty())
        return;
    Level &level = stack_.back();
    if (level.count > 0)
        os_ << ",";
    os_ << "\n"
        << std::string(static_cast<std::size_t>(indent_) *
                           stack_.size(),
                       ' ');
    ++level.count;
}

void
JsonWriter::writeKey(const std::string &key)
{
    GPSCHED_ASSERT(!stack_.empty() && stack_.back().isObject,
                   "JSON key '", key, "' outside an object");
    beginValue();
    os_ << quote(key) << ": ";
}

JsonWriter &
JsonWriter::beginObject()
{
    GPSCHED_ASSERT(stack_.empty() || !stack_.back().isObject,
                   "object element inside an object needs a key");
    beginValue();
    os_ << "{";
    stack_.push_back(Level{true, 0});
    return *this;
}

JsonWriter &
JsonWriter::beginObject(const std::string &key)
{
    writeKey(key);
    os_ << "{";
    stack_.push_back(Level{true, 0});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    GPSCHED_ASSERT(!stack_.empty() && stack_.back().isObject,
                   "endObject without a matching beginObject");
    bool empty = stack_.back().count == 0;
    stack_.pop_back();
    if (!empty) {
        os_ << "\n"
            << std::string(static_cast<std::size_t>(indent_) *
                               stack_.size(),
                           ' ');
    }
    os_ << "}";
    if (stack_.empty()) {
        os_ << "\n";
        done_ = true;
    }
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    GPSCHED_ASSERT(stack_.empty() || !stack_.back().isObject,
                   "array element inside an object needs a key");
    beginValue();
    os_ << "[";
    stack_.push_back(Level{false, 0});
    return *this;
}

JsonWriter &
JsonWriter::beginArray(const std::string &key)
{
    writeKey(key);
    os_ << "[";
    stack_.push_back(Level{false, 0});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    GPSCHED_ASSERT(!stack_.empty() && !stack_.back().isObject,
                   "endArray without a matching beginArray");
    bool empty = stack_.back().count == 0;
    stack_.pop_back();
    if (!empty) {
        os_ << "\n"
            << std::string(static_cast<std::size_t>(indent_) *
                               stack_.size(),
                           ' ');
    }
    os_ << "]";
    if (stack_.empty()) {
        os_ << "\n";
        done_ = true;
    }
    return *this;
}

JsonWriter &
JsonWriter::member(const std::string &key, const std::string &value)
{
    writeKey(key);
    os_ << quote(value);
    return *this;
}

JsonWriter &
JsonWriter::member(const std::string &key, const char *value)
{
    return member(key, std::string(value));
}

JsonWriter &
JsonWriter::member(const std::string &key, double value)
{
    writeKey(key);
    os_ << number(value);
    return *this;
}

JsonWriter &
JsonWriter::member(const std::string &key, std::int64_t value)
{
    writeKey(key);
    os_ << value;
    return *this;
}

JsonWriter &
JsonWriter::member(const std::string &key, std::uint64_t value)
{
    writeKey(key);
    os_ << value;
    return *this;
}

JsonWriter &
JsonWriter::member(const std::string &key, int value)
{
    return member(key, static_cast<std::int64_t>(value));
}

JsonWriter &
JsonWriter::member(const std::string &key, bool value)
{
    writeKey(key);
    os_ << (value ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::element(const std::string &value)
{
    GPSCHED_ASSERT(!stack_.empty() && !stack_.back().isObject,
                   "JSON element outside an array");
    beginValue();
    os_ << quote(value);
    return *this;
}

JsonWriter &
JsonWriter::element(double value)
{
    GPSCHED_ASSERT(!stack_.empty() && !stack_.back().isObject,
                   "JSON element outside an array");
    beginValue();
    os_ << number(value);
    return *this;
}

JsonWriter &
JsonWriter::element(std::int64_t value)
{
    GPSCHED_ASSERT(!stack_.empty() && !stack_.back().isObject,
                   "JSON element outside an array");
    beginValue();
    os_ << value;
    return *this;
}

JsonWriter &
JsonWriter::element(int value)
{
    return element(static_cast<std::int64_t>(value));
}

JsonWriter &
JsonWriter::element(bool value)
{
    GPSCHED_ASSERT(!stack_.empty() && !stack_.back().isObject,
                   "JSON element outside an array");
    beginValue();
    os_ << (value ? "true" : "false");
    return *this;
}

bool
JsonWriter::finished() const
{
    return done_ && stack_.empty();
}

std::string
JsonWriter::quote(const std::string &text)
{
    std::string out = "\"";
    for (unsigned char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
    return out;
}

std::string
JsonWriter::number(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[32];
    // %.17g round-trips every IEEE-754 double.
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

} // namespace gpsched
