#include "support/random.hh"

#include "support/logging.hh"

namespace gpsched
{

namespace
{

/** SplitMix64 step used for seeding. */
std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
    // xoshiro256** must not start from the all-zero state.
    if (!(s_[0] | s_[1] | s_[2] | s_[3]))
        s_[0] = 0x2545f4914f6cdd1dULL;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    GPSCHED_ASSERT(bound > 0, "nextBelow bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    GPSCHED_ASSERT(lo <= hi, "nextRange requires lo <= hi, got ", lo,
                   " > ", hi);
    std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits.
    return (next() >> 11) * (1.0 / 9007199254740992.0);
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::size_t
Rng::nextWeighted(const std::vector<double> &weights)
{
    GPSCHED_ASSERT(!weights.empty(), "nextWeighted needs weights");
    double total = 0.0;
    for (double w : weights) {
        GPSCHED_ASSERT(w >= 0.0, "weights must be non-negative");
        total += w;
    }
    if (total <= 0.0)
        return 0;
    double target = nextDouble() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (target < acc)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

} // namespace gpsched
