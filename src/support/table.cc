#include "support/table.hh"

#include <iomanip>
#include <sstream>

#include "support/logging.hh"

namespace gpsched
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    GPSCHED_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    GPSCHED_ASSERT(cells.size() == headers_.size(),
                   "row arity ", cells.size(), " != header arity ",
                   headers_.size());
    rows_.push_back(Row{std::move(cells), false});
}

void
TextTable::addSeparator()
{
    rows_.push_back(Row{{}, true});
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

void
TextTable::print(std::ostream &os, const std::string &title) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        if (row.separator)
            continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    auto print_line = [&](char fill) {
        os << '+';
        for (std::size_t w : widths)
            os << std::string(w + 2, fill) << '+';
        os << '\n';
    };
    auto print_cells = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
               << cells[c] << " |";
        }
        os << '\n';
    };

    if (!title.empty())
        os << title << '\n';
    print_line('-');
    print_cells(headers_);
    print_line('=');
    for (const auto &row : rows_) {
        if (row.separator)
            print_line('-');
        else
            print_cells(row.cells);
    }
    print_line('-');
}

} // namespace gpsched
