#include "support/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/logging.hh"

namespace gpsched
{

RunningStat::RunningStat(const RunningStat &other)
{
    std::lock_guard<std::mutex> lock(other.mutex_);
    count_ = other.count_;
    sum_ = other.sum_;
    sumSq_ = other.sumSq_;
    min_ = other.min_;
    max_ = other.max_;
}

RunningStat &
RunningStat::operator=(const RunningStat &other)
{
    if (this == &other)
        return *this;
    // Consistent order via std::lock avoids lock-order inversion.
    std::unique_lock<std::mutex> mine(mutex_, std::defer_lock);
    std::unique_lock<std::mutex> theirs(other.mutex_,
                                        std::defer_lock);
    std::lock(mine, theirs);
    count_ = other.count_;
    sum_ = other.sum_;
    sumSq_ = other.sumSq_;
    min_ = other.min_;
    max_ = other.max_;
    return *this;
}

void
RunningStat::add(double x)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    sumSq_ += x * x;
}

std::size_t
RunningStat::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

double
RunningStat::mean() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
RunningStat::variance() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ < 2)
        return 0.0;
    double n = static_cast<double>(count_);
    double m = sum_ / n;
    return std::max(0.0, sumSq_ / n - m * m);
}

double
RunningStat::min() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ ? min_ : 0.0;
}

double
RunningStat::max() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ ? max_ : 0.0;
}

double
RunningStat::sum() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sum_;
}

Histogram::Histogram(double lowest, double growth, std::size_t buckets)
{
    GPSCHED_ASSERT(lowest > 0.0, "Histogram needs lowest bound > 0");
    GPSCHED_ASSERT(growth > 1.0, "Histogram needs growth > 1");
    GPSCHED_ASSERT(buckets >= 1, "Histogram needs >= 1 bucket");
    bounds_.reserve(buckets);
    double bound = lowest;
    for (std::size_t i = 0; i < buckets; ++i) {
        bounds_.push_back(bound);
        bound *= growth;
    }
    counts_.assign(buckets + 1, 0);
}

Histogram::Histogram(const Histogram &other)
{
    std::lock_guard<std::mutex> lock(other.mutex_);
    bounds_ = other.bounds_;
    counts_ = other.counts_;
    count_ = other.count_;
    sum_ = other.sum_;
    min_ = other.min_;
    max_ = other.max_;
}

Histogram &
Histogram::operator=(const Histogram &other)
{
    if (this == &other)
        return *this;
    std::unique_lock<std::mutex> mine(mutex_, std::defer_lock);
    std::unique_lock<std::mutex> theirs(other.mutex_,
                                        std::defer_lock);
    std::lock(mine, theirs);
    bounds_ = other.bounds_;
    counts_ = other.counts_;
    count_ = other.count_;
    sum_ = other.sum_;
    min_ = other.min_;
    max_ = other.max_;
    return *this;
}

void
Histogram::add(double x)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
    counts_[static_cast<std::size_t>(it - bounds_.begin())]++;
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
}

std::size_t
Histogram::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

double
Histogram::sum() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sum_;
}

double
Histogram::mean() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::min() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ ? min_ : 0.0;
}

double
Histogram::max() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ ? max_ : 0.0;
}

double
Histogram::quantile(double q) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0)
        return 0.0;
    q = std::min(std::max(q, 0.0), 1.0);
    // Rank of the q-quantile sample, 1-based, ceil(q * n).
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(count_)));
    rank = std::max<std::size_t>(rank, 1);
    std::size_t cumulative = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        cumulative += counts_[i];
        if (cumulative >= rank) {
            double bound = i < bounds_.size()
                               ? bounds_[i]
                               : max_; // overflow bucket
            return std::min(std::max(bound, min_), max_);
        }
    }
    return max_;
}

std::vector<Histogram::Bucket>
Histogram::buckets() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Bucket> out;
    out.reserve(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        double bound = i < bounds_.size()
                           ? bounds_[i]
                           : std::numeric_limits<double>::infinity();
        out.push_back(Bucket{bound, counts_[i]});
    }
    return out;
}

double
arithmeticMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geometricMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0.0;
    for (double x : xs) {
        GPSCHED_ASSERT(x > 0.0, "geometricMean needs positive samples");
        logSum += std::log(x);
    }
    return std::exp(logSum / static_cast<double>(xs.size()));
}

double
harmonicMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double invSum = 0.0;
    for (double x : xs) {
        GPSCHED_ASSERT(x > 0.0, "harmonicMean needs positive samples");
        invSum += 1.0 / x;
    }
    return static_cast<double>(xs.size()) / invSum;
}

double
speedupPercent(double x, double baseline)
{
    GPSCHED_ASSERT(baseline > 0.0, "speedupPercent needs baseline > 0");
    return (x / baseline - 1.0) * 100.0;
}

} // namespace gpsched
