/**
 * @file
 * Compile-pipeline telemetry: per-phase spans, a unified metric
 * registry, and the ambient per-thread context that wires both into
 * the scheduler hot path without threading sink pointers through
 * every call signature.
 *
 * Layering:
 *  - CompilePhase / CompileTrace: the fixed phase taxonomy and the
 *    per-compile (and per-batch, via merge()) wall+CPU totals.
 *  - TelemetryContext: thread_local {trace, sink, pid} installed by
 *    the engine around each compile (ScopedTelemetryContext), read
 *    by PhaseScope at phase boundaries. A default-empty context
 *    makes every span a single TLS load + branch.
 *  - GPSCHED_PHASE_SPAN(Phase): the only thing pipeline code touches.
 *    Compiled out entirely when GPSCHED_NO_TELEMETRY is defined
 *    (CMake option GPSCHED_TELEMETRY=OFF), so the disabled build is
 *    bit-for-bit free of telemetry code in the hot path.
 *  - MetricRegistry: thread-safe named counters/gauges/histograms
 *    with a stable JSON dump; subsumes EngineStats and adds
 *    thread-pool visibility.
 *
 * Telemetry never influences scheduling decisions: all of this is
 * observation-only, and schedules are bit-identical with it on, off,
 * or compiled out (pinned by test_telemetry).
 */

#ifndef GPSCHED_SUPPORT_TELEMETRY_HH
#define GPSCHED_SUPPORT_TELEMETRY_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "support/stats.hh"
#include "support/trace.hh"

namespace gpsched
{

class JsonWriter;

/** The compile phases gpsched attributes time to. */
enum class CompilePhase : std::uint8_t
{
    Mii,              ///< computeMii + DDG analysis
    Coarsen,          ///< multilevel matching/contraction
    InitialPartition, ///< initial cluster assignment
    Refine,           ///< KL-style refinement rounds
    ModuloSchedule,   ///< per-II modulo scheduling attempts
    TransferPlanning, ///< bus transfer planning (inside ModuloSchedule)
    ListSchedule,     ///< acyclic list-scheduling fallback
    Validate,         ///< schedule validation oracle
    NumPhases
};

constexpr std::size_t kNumCompilePhases =
    static_cast<std::size_t>(CompilePhase::NumPhases);

/** Stable lowerCamel name used in every JSON schema ("coarsen"...). */
const char *compilePhaseName(CompilePhase phase);

/**
 * Whether the phase emits Chrome trace events. TransferPlanning is
 * totals-only: it runs nested inside ModuloSchedule thousands of
 * times per compile, so tracing it would bloat traces and break the
 * "top-level phase spans are disjoint" invariant the integrity test
 * checks.
 */
bool compilePhaseTraced(CompilePhase phase);

/** Accumulated wall/CPU time and entry count for one phase. */
struct PhaseTotals
{
    std::uint64_t wallNanos = 0;
    std::uint64_t cpuNanos = 0; ///< per-thread CPU clock
    std::uint64_t count = 0;

    void merge(const PhaseTotals &other)
    {
        wallNanos += other.wallNanos;
        cpuNanos += other.cpuNanos;
        count += other.count;
    }
};

/**
 * Per-compile phase breakdown, attached to CompileResult (never to
 * CompiledLoop — traces describe one compilation, not the cached
 * artifact) and merged per batch/program.
 */
struct CompileTrace
{
    std::array<PhaseTotals, kNumCompilePhases> phases{};
    std::uint64_t wallNanos = 0; ///< whole compile()
    std::uint64_t cpuNanos = 0;
    std::uint64_t compiles = 0;  ///< compiles merged in

    PhaseTotals &phase(CompilePhase p)
    {
        return phases[static_cast<std::size_t>(p)];
    }
    const PhaseTotals &phase(CompilePhase p) const
    {
        return phases[static_cast<std::size_t>(p)];
    }

    void merge(const CompileTrace &other);

    /** True when nothing was recorded. */
    bool empty() const;
};

/**
 * Ambient telemetry destinations for the calling thread. Installed
 * by the engine (or a bench driver) around compile work; empty by
 * default so un-instrumented callers pay one TLS read per span.
 */
struct TelemetryContext
{
    CompileTrace *trace = nullptr; ///< phase totals destination
    TraceSink *sink = nullptr;     ///< Chrome events destination
    std::uint32_t pid = 0;         ///< engine id for emitted events
};

/** The calling thread's current context (mutable). */
TelemetryContext &telemetryContext();

/** RAII: installs a context, restores the previous one on exit. */
class ScopedTelemetryContext
{
  public:
    explicit ScopedTelemetryContext(const TelemetryContext &ctx)
        : saved_(telemetryContext())
    {
        telemetryContext() = ctx;
    }
    ~ScopedTelemetryContext() { telemetryContext() = saved_; }

    ScopedTelemetryContext(const ScopedTelemetryContext &) = delete;
    ScopedTelemetryContext &
    operator=(const ScopedTelemetryContext &) = delete;

  private:
    TelemetryContext saved_;
};

/**
 * RAII phase span: on a thread with an active context, accumulates
 * wall+CPU into the trace and (for traced phases) emits a Chrome 'X'
 * event; otherwise a no-op costing one TLS load and a branch.
 */
class PhaseScope
{
  public:
    explicit PhaseScope(CompilePhase phase);
    ~PhaseScope();

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

  private:
    CompilePhase phase_;
    bool active_ = false;
    std::uint64_t startWall_ = 0;
    std::uint64_t startCpu_ = 0;
};

/**
 * Thread-safe registry of named metrics. Handles returned by
 * counter()/gauge()/histogram() are stable for the registry's
 * lifetime; dumps are sorted by name so the JSON schema is stable.
 *
 * Naming scheme: `<subsystem>.<metric>` — e.g. engine.cacheHits,
 * disk.hits, pool.taskWaitMicros, phase.coarsen.wallMicros.
 */
class MetricRegistry
{
  public:
    /** Monotonic counter (atomic). */
    class Counter
    {
      public:
        void add(std::uint64_t delta = 1)
        {
            value_.fetch_add(delta, std::memory_order_relaxed);
        }
        void set(std::uint64_t v)
        {
            value_.store(v, std::memory_order_relaxed);
        }
        std::uint64_t value() const
        {
            return value_.load(std::memory_order_relaxed);
        }

      private:
        std::atomic<std::uint64_t> value_{0};
    };

    /** Point-in-time signed value (atomic), e.g. queue depth. */
    class Gauge
    {
      public:
        void set(std::int64_t v)
        {
            value_.store(v, std::memory_order_relaxed);
        }
        void add(std::int64_t delta)
        {
            value_.fetch_add(delta, std::memory_order_relaxed);
        }
        std::int64_t value() const
        {
            return value_.load(std::memory_order_relaxed);
        }

      private:
        std::atomic<std::int64_t> value_{0};
    };

    /** Finds or creates; the reference stays valid for our lifetime. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** Bucket shape is fixed by the first caller for a given name. */
    Histogram &histogram(const std::string &name, double lowest = 1.0,
                         double growth = 2.0,
                         std::size_t buckets = 32);

    /**
     * Dumps `{"counters": {...}, "gauges": {...},
     * "histograms": {name: {count,sum,mean,min,max,p50,p95,
     * buckets:[{le,count}...]}}}`, names sorted, zero-count
     * histogram buckets omitted.
     */
    void writeJson(std::ostream &os) const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/**
 * Writes one CompileTrace as a JSON array of per-phase objects
 * (`[{"phase": "coarsen", "count": n, "wallMs": w, "cpuMs": c},...]`,
 * zero-count phases omitted) under @p key of the current object.
 * Shared by the CLI, the bench emitters, and Engine stats export.
 */
void writeCompileTracePhases(JsonWriter &json, const std::string &key,
                             const CompileTrace &trace);

} // namespace gpsched

// The span macro pipeline code uses. GPSCHED_NO_TELEMETRY (CMake
// -DGPSCHED_TELEMETRY=OFF) compiles spans out entirely.
#ifdef GPSCHED_NO_TELEMETRY
#define GPSCHED_PHASE_SPAN(phase)                                      \
    do {                                                               \
    } while (false)
#else
#define GPSCHED_PHASE_SPAN_CONCAT2(a, b) a##b
#define GPSCHED_PHASE_SPAN_CONCAT(a, b) GPSCHED_PHASE_SPAN_CONCAT2(a, b)
#define GPSCHED_PHASE_SPAN(phase)                                      \
    ::gpsched::PhaseScope GPSCHED_PHASE_SPAN_CONCAT(                   \
        gpschedPhaseSpan_, __LINE__)(::gpsched::CompilePhase::phase)
#endif

#endif // GPSCHED_SUPPORT_TELEMETRY_HH
