/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in gpsched (workload generation, tie
 * shuffling in ablation benches) flows through Rng so that every run
 * of every binary is bit-reproducible. The generator is SplitMix64
 * seeded xoshiro256**, which is small, fast and has no global state.
 */

#ifndef GPSCHED_SUPPORT_RANDOM_HH
#define GPSCHED_SUPPORT_RANDOM_HH

#include <cstdint>
#include <vector>

namespace gpsched
{

/** Deterministic xoshiro256** generator with convenience helpers. */
class Rng
{
  public:
    /** Seeds the state via SplitMix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Returns the next raw 64-bit value. */
    std::uint64_t next();

    /** Returns a uniform integer in [0, bound), bound > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Returns a uniform integer in [lo, hi] (inclusive). */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Returns a uniform double in [0, 1). */
    double nextDouble();

    /** Returns true with probability @p p (clamped to [0,1]). */
    bool nextBool(double p);

    /**
     * Samples an index according to non-negative weights. An all-zero
     * weight vector yields index 0.
     */
    std::size_t nextWeighted(const std::vector<double> &weights);

    /** Fisher-Yates shuffles @p values in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &values)
    {
        for (std::size_t i = values.size(); i > 1; --i) {
            std::size_t j = nextBelow(i);
            std::swap(values[i - 1], values[j]);
        }
    }

    /**
     * Derives an independent child generator; used to give each
     * synthetic loop its own stream so adding loops never perturbs
     * the others.
     */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

} // namespace gpsched

#endif // GPSCHED_SUPPORT_RANDOM_HH
