/**
 * @file
 * The per-loop failure channel of the compilation engine.
 *
 * The logging contract (support/logging.hh) distinguishes gpsched
 * bugs (panic -> abort) from user errors (fatal -> exit). Batch
 * compilation needs a third category: a *recoverable, per-loop*
 * input rejection. One malformed loop in a million-loop batch must
 * surface as a diagnostic row in the report, not kill the process —
 * per-instance failure is a first-class outcome of combinatorial
 * compilation, not an event.
 *
 * CompileError is that category: a typed exception carrying the
 * error kind, the offending loop's name, and a gem5-style file:line
 * diagnostic. Layers between the rejection point (e.g. the
 * computeMii edge-latency guard) and the engine let it propagate;
 * Engine::runJob converts it into a CompileResult diagnostic, so it
 * never crosses a thread-pool boundary as an exception.
 */

#ifndef GPSCHED_SUPPORT_COMPILE_ERROR_HH
#define GPSCHED_SUPPORT_COMPILE_ERROR_HH

#include <stdexcept>
#include <string>

#include "support/logging.hh"

namespace gpsched
{

/** What stage of loop compilation rejected the input. */
enum class CompileErrorKind
{
    /** Text-format DDG failed to parse or validate. */
    Parse,

    /** A well-formed DDG was rejected by a semantic guard (e.g. a
     *  flow edge promising less latency than the machine's opcode
     *  table provides). */
    InvalidInput,

    /** An unexpected failure was contained at the per-loop boundary
     *  instead of propagating (reserved for wrap-and-continue
     *  paths; gpsched invariant violations still panic). */
    Internal,
};

/** Stable lower-case tag ("parse", "invalid-input", "internal"). */
const char *toString(CompileErrorKind kind);

/** Recoverable per-loop compilation failure. */
class CompileError : public std::runtime_error
{
  public:
    /** @p message is the bare diagnostic text; @p file / @p line
     *  locate the rejecting guard (pass __FILE__ / __LINE__, or use
     *  GPSCHED_COMPILE_ERROR). */
    CompileError(CompileErrorKind kind, std::string loopName,
                 const char *file, int line, const std::string &message);

    CompileErrorKind kind() const { return kind_; }

    /** Name of the loop that failed; may be empty when the failure
     *  struck before a name was known (e.g. a parse error in the
     *  header line). */
    const std::string &loopName() const { return loopName_; }

    /** Re-labels the failure for a requester whose structurally
     *  identical loop coalesced onto the failing owner's compile. */
    void setLoopName(std::string name) { loopName_ = std::move(name); }

    /** "path/to/file.cc:123" of the rejecting guard. */
    const std::string &location() const { return location_; }

    /** what() plus the "\n  at file:line" trailer, matching the
     *  fatal() diagnostic shape front-ends print on exit. */
    std::string diagnostic() const;

  private:
    CompileErrorKind kind_;
    std::string loopName_;
    std::string location_;
};

} // namespace gpsched

/** Throws a CompileError located at the expansion site. */
#define GPSCHED_COMPILE_ERROR(kind, loopName, ...)                         \
    throw ::gpsched::CompileError(kind, loopName, __FILE__, __LINE__,      \
                                  ::gpsched::buildMessage(__VA_ARGS__))

#endif // GPSCHED_SUPPORT_COMPILE_ERROR_HH
