/**
 * @file
 * Plain-text table rendering for the benchmark harnesses. Each bench
 * binary prints the rows/series of the paper table or figure it
 * regenerates; TextTable keeps that output aligned and consistent.
 */

#ifndef GPSCHED_SUPPORT_TABLE_HH
#define GPSCHED_SUPPORT_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace gpsched
{

/** Column-aligned text table with optional title and separator rows. */
class TextTable
{
  public:
    /** Creates a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Appends a data row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Appends a horizontal separator row. */
    void addSeparator();

    /** Formats a double with @p precision decimals. */
    static std::string num(double value, int precision = 2);

    /** Renders the table to @p os. */
    void print(std::ostream &os, const std::string &title = "") const;

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool separator = false;
    };

    std::vector<std::string> headers_;
    std::vector<Row> rows_;
};

} // namespace gpsched

#endif // GPSCHED_SUPPORT_TABLE_HH
