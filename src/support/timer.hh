/**
 * @file
 * CPU-time measurement for the Table-2 experiment (average scheduling
 * time per algorithm). Uses the per-process CPU clock so measurements
 * exclude time the process spends descheduled.
 */

#ifndef GPSCHED_SUPPORT_TIMER_HH
#define GPSCHED_SUPPORT_TIMER_HH

namespace gpsched
{

/** Measures elapsed per-process CPU time in seconds. */
class CpuTimer
{
  public:
    /** Starts (or restarts) the timer. */
    void start();

    /** Returns CPU seconds elapsed since start(). */
    double elapsedSeconds() const;

  private:
    double startSeconds_ = 0.0;

    static double nowSeconds();
};

} // namespace gpsched

#endif // GPSCHED_SUPPORT_TIMER_HH
