/**
 * @file
 * Time measurement for the Table-2 experiment and the telemetry
 * subsystem. CpuTimer uses the per-process CPU clock so measurements
 * exclude time the process spends descheduled; WallTimer uses the
 * monotonic clock so queue-wait and I/O intervals — invisible to the
 * CPU clock — are measurable too.
 */

#ifndef GPSCHED_SUPPORT_TIMER_HH
#define GPSCHED_SUPPORT_TIMER_HH

#include <cstdint>

namespace gpsched
{

/** Measures elapsed per-process CPU time in seconds. */
class CpuTimer
{
  public:
    /** Starts (or restarts) the timer. */
    void start();

    /** Returns CPU seconds elapsed since start(). */
    double elapsedSeconds() const;

  private:
    double startSeconds_ = 0.0;

    static double nowSeconds();
};

/**
 * Measures elapsed wall-clock time on the monotonic clock. Unlike
 * CpuTimer this advances while the thread sleeps or waits, which is
 * exactly what queue-wait / disk-I/O spans need.
 */
class WallTimer
{
  public:
    /** Starts (or restarts) the timer. */
    void start();

    /** Returns wall seconds elapsed since start(). */
    double elapsedSeconds() const;

    /** Returns wall nanoseconds elapsed since start(). */
    std::uint64_t elapsedNanos() const;

  private:
    std::uint64_t startNanos_ = 0;
};

/** Monotonic (CLOCK_MONOTONIC) timestamp in nanoseconds. */
std::uint64_t monotonicNanos();

/**
 * Per-thread CPU time (CLOCK_THREAD_CPUTIME_ID) in nanoseconds.
 * Phase spans use this rather than the process clock so concurrent
 * compiles on other workers don't inflate a phase's CPU cost.
 */
std::uint64_t threadCpuNanos();

} // namespace gpsched

#endif // GPSCHED_SUPPORT_TIMER_HH
