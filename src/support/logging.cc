#include "support/logging.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace gpsched
{

namespace
{

/**
 * Serializes every log write so messages from concurrent engine
 * workers never interleave mid-line. Each message is also built into
 * one string and written with a single stream insertion, so even a
 * non-gpsched writer to stderr can at worst split between messages.
 */
std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

void
writeLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::cerr << line << std::endl;
}

} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    writeLine(buildMessage("panic: ", msg, "\n  at ", file, ":",
                           line));
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    writeLine(buildMessage("fatal: ", msg, "\n  at ", file, ":",
                           line));
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    writeLine(buildMessage("warn: ", msg, " (", file, ":", line,
                           ")"));
}

void
informImpl(const std::string &msg)
{
    writeLine(buildMessage("info: ", msg));
}

} // namespace gpsched
