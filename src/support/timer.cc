#include "support/timer.hh"

#include <ctime>

namespace gpsched
{

namespace
{

std::uint64_t
clockNanos(clockid_t id)
{
    timespec ts{};
    clock_gettime(id, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

} // namespace

double
CpuTimer::nowSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

void
CpuTimer::start()
{
    startSeconds_ = nowSeconds();
}

double
CpuTimer::elapsedSeconds() const
{
    return nowSeconds() - startSeconds_;
}

std::uint64_t
monotonicNanos()
{
    return clockNanos(CLOCK_MONOTONIC);
}

std::uint64_t
threadCpuNanos()
{
    return clockNanos(CLOCK_THREAD_CPUTIME_ID);
}

void
WallTimer::start()
{
    startNanos_ = monotonicNanos();
}

double
WallTimer::elapsedSeconds() const
{
    return static_cast<double>(elapsedNanos()) * 1e-9;
}

std::uint64_t
WallTimer::elapsedNanos() const
{
    return monotonicNanos() - startNanos_;
}

} // namespace gpsched
