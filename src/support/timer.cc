#include "support/timer.hh"

#include <ctime>

namespace gpsched
{

double
CpuTimer::nowSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

void
CpuTimer::start()
{
    startSeconds_ = nowSeconds();
}

double
CpuTimer::elapsedSeconds() const
{
    return nowSeconds() - startSeconds_;
}

} // namespace gpsched
