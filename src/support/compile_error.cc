#include "support/compile_error.hh"

namespace gpsched
{

const char *
toString(CompileErrorKind kind)
{
    switch (kind) {
      case CompileErrorKind::Parse:        return "parse";
      case CompileErrorKind::InvalidInput: return "invalid-input";
      case CompileErrorKind::Internal:     return "internal";
    }
    return "unknown";
}

CompileError::CompileError(CompileErrorKind kind, std::string loopName,
                           const char *file, int line,
                           const std::string &message)
    : std::runtime_error(message), kind_(kind),
      loopName_(std::move(loopName)),
      location_(buildMessage(file, ":", line))
{
}

std::string
CompileError::diagnostic() const
{
    return buildMessage(what(), "\n  at ", location_);
}

} // namespace gpsched
