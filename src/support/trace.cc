#include "support/trace.hh"

#include <algorithm>
#include <atomic>

#include "support/json.hh"
#include "support/timer.hh"

namespace gpsched
{

void
TraceSink::complete(TraceEvent event)
{
    event.ph = 'X';
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

void
TraceSink::asyncSpan(const std::string &name, const std::string &cat,
                     std::uint32_t pid, std::uint32_t tid,
                     std::uint64_t pairId, std::uint64_t startNanos,
                     std::uint64_t endNanos)
{
    TraceEvent begin;
    begin.name = name;
    begin.cat = cat;
    begin.ph = 'b';
    begin.pid = pid;
    begin.tid = tid;
    begin.tsNanos = startNanos;
    begin.id = pairId;
    TraceEvent end = begin;
    end.ph = 'e';
    end.tsNanos = std::max(endNanos, startNanos);
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(begin));
    events_.push_back(std::move(end));
}

void
TraceSink::metadata(const std::string &name, std::uint32_t pid,
                    std::uint32_t tid, const std::string &value)
{
    TraceEvent event;
    event.name = name;
    event.ph = 'M';
    event.pid = pid;
    event.tid = tid;
    event.args.emplace_back("name", value);
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

std::vector<TraceEvent>
TraceSink::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

std::size_t
TraceSink::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

void
TraceSink::writeJson(std::ostream &os) const
{
    std::vector<TraceEvent> events = snapshot();
    // Metadata first, then by timestamp: keeps ts monotonic over the
    // non-metadata events, which the validator asserts.
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         bool metaA = a.ph == 'M';
                         bool metaB = b.ph == 'M';
                         if (metaA != metaB)
                             return metaA;
                         return a.tsNanos < b.tsNanos;
                     });
    JsonWriter json(os);
    json.beginObject();
    json.beginArray("traceEvents");
    for (const TraceEvent &event : events) {
        json.beginObject();
        json.member("name", event.name);
        if (!event.cat.empty())
            json.member("cat", event.cat);
        json.member("ph", std::string(1, event.ph));
        json.member("pid", static_cast<std::uint64_t>(event.pid));
        json.member("tid", static_cast<std::uint64_t>(event.tid));
        json.member("ts",
                    static_cast<double>(event.tsNanos) * 1e-3);
        if (event.ph == 'X')
            json.member("dur",
                        static_cast<double>(event.durNanos) * 1e-3);
        if (event.ph == 'b' || event.ph == 'e') {
            json.member("id", event.id);
            // The async scope: pair 'b'/'e' by (cat, id, scope).
            json.member("scope", "gpsched");
        }
        if (!event.args.empty()) {
            json.beginObject("args");
            for (const auto &kv : event.args)
                json.member(kv.first, kv.second);
            json.endObject();
        }
        json.endObject();
    }
    json.endArray();
    json.endObject();
    os << "\n";
}

std::uint64_t
traceNowNanos()
{
    // First caller pins the anchor; relaxed is fine because the value
    // is idempotent (ties broken by compare_exchange).
    static std::atomic<std::uint64_t> anchor{0};
    std::uint64_t now = monotonicNanos();
    std::uint64_t seen = anchor.load(std::memory_order_relaxed);
    if (seen == 0) {
        anchor.compare_exchange_strong(seen, now,
                                       std::memory_order_relaxed);
        seen = anchor.load(std::memory_order_relaxed);
    }
    // Two racing first callers can pin an anchor a hair after this
    // thread's read; saturate instead of wrapping.
    return now >= seen ? now - seen : 0;
}

std::uint32_t
traceThreadId()
{
    static std::atomic<std::uint32_t> next{1};
    thread_local std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

std::uint64_t
traceNextPairId()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace gpsched
