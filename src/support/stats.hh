/**
 * @file
 * Small summary-statistics helpers used by the benches and metrics
 * aggregation (arithmetic/geometric/harmonic means, running stats).
 *
 * RunningStat is safe to share between engine worker threads: add()
 * and every accessor take an internal mutex. Accumulation is a
 * handful of arithmetic operations, so a mutex (rather than
 * per-thread partials) keeps the type copyable and the totals exact
 * without measurable contention at gpsched's job granularity.
 */

#ifndef GPSCHED_SUPPORT_STATS_HH
#define GPSCHED_SUPPORT_STATS_HH

#include <cstddef>
#include <mutex>
#include <vector>

namespace gpsched
{

/** Thread-safe streaming accumulator for count/mean/min/max/variance. */
class RunningStat
{
  public:
    RunningStat() = default;
    RunningStat(const RunningStat &other);
    RunningStat &operator=(const RunningStat &other);

    /** Adds one sample. */
    void add(double x);

    /** Number of samples added. */
    std::size_t count() const;

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /** Population variance (0 when fewer than 2 samples). */
    double variance() const;

    /** Smallest sample (0 when empty). */
    double min() const;

    /** Largest sample (0 when empty). */
    double max() const;

    /** Sum of all samples. */
    double sum() const;

  private:
    mutable std::mutex mutex_;
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Thread-safe fixed-bucket histogram with log-spaced bucket bounds.
 *
 * Companion to RunningStat for when a mean hides the story (task wait
 * times, compile latencies): tracks count/sum/min/max exactly and
 * approximates percentiles from the bucket counts. Bucket bounds are
 * fixed at construction — bucket i covers values <= lowest*growth^i,
 * with a final catch-all bucket — so concurrent add() never
 * reallocates and the type stays copyable like RunningStat.
 *
 * Percentile queries return the upper bound of the first bucket whose
 * cumulative count reaches the rank, clamped to the observed
 * [min, max]; with growth 2 the estimate is within 2x of the true
 * value, which is plenty for p50/p95 dashboards.
 */
class Histogram
{
  public:
    /**
     * @param lowest Upper bound of the first bucket (must be > 0).
     * @param growth Bound multiplier between buckets (must be > 1).
     * @param buckets Number of bounded buckets (>= 1); one unbounded
     *        overflow bucket is added on top.
     */
    explicit Histogram(double lowest = 1e-6, double growth = 2.0,
                       std::size_t buckets = 48);
    Histogram(const Histogram &other);
    Histogram &operator=(const Histogram &other);

    /** Adds one sample (negative samples clamp into bucket 0). */
    void add(double x);

    /** Number of samples added. */
    std::size_t count() const;

    /** Sum of all samples. */
    double sum() const;

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /** Smallest sample (0 when empty). */
    double min() const;

    /** Largest sample (0 when empty). */
    double max() const;

    /** Approximate q-quantile, q in [0,1] (0 when empty). */
    double quantile(double q) const;

    /** Approximate median. */
    double p50() const { return quantile(0.50); }

    /** Approximate 95th percentile. */
    double p95() const { return quantile(0.95); }

    /** One bucket's inclusive upper bound and its sample count. */
    struct Bucket
    {
        double upperBound; // +inf for the overflow bucket
        std::size_t count;
    };

    /** Snapshot of all buckets (including the overflow bucket). */
    std::vector<Bucket> buckets() const;

  private:
    mutable std::mutex mutex_;
    std::vector<double> bounds_; // inclusive upper bounds, ascending
    std::vector<std::size_t> counts_; // bounds_.size() + 1 entries
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Arithmetic mean of @p xs; 0 for empty input. */
double arithmeticMean(const std::vector<double> &xs);

/** Geometric mean of positive @p xs; 0 for empty input. */
double geometricMean(const std::vector<double> &xs);

/** Harmonic mean of positive @p xs; 0 for empty input. */
double harmonicMean(const std::vector<double> &xs);

/** Relative speedup of @p x over @p baseline in percent. */
double speedupPercent(double x, double baseline);

} // namespace gpsched

#endif // GPSCHED_SUPPORT_STATS_HH
