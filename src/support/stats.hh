/**
 * @file
 * Small summary-statistics helpers used by the benches and metrics
 * aggregation (arithmetic/geometric/harmonic means, running stats).
 *
 * RunningStat is safe to share between engine worker threads: add()
 * and every accessor take an internal mutex. Accumulation is a
 * handful of arithmetic operations, so a mutex (rather than
 * per-thread partials) keeps the type copyable and the totals exact
 * without measurable contention at gpsched's job granularity.
 */

#ifndef GPSCHED_SUPPORT_STATS_HH
#define GPSCHED_SUPPORT_STATS_HH

#include <cstddef>
#include <mutex>
#include <vector>

namespace gpsched
{

/** Thread-safe streaming accumulator for count/mean/min/max/variance. */
class RunningStat
{
  public:
    RunningStat() = default;
    RunningStat(const RunningStat &other);
    RunningStat &operator=(const RunningStat &other);

    /** Adds one sample. */
    void add(double x);

    /** Number of samples added. */
    std::size_t count() const;

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /** Population variance (0 when fewer than 2 samples). */
    double variance() const;

    /** Smallest sample (0 when empty). */
    double min() const;

    /** Largest sample (0 when empty). */
    double max() const;

    /** Sum of all samples. */
    double sum() const;

  private:
    mutable std::mutex mutex_;
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Arithmetic mean of @p xs; 0 for empty input. */
double arithmeticMean(const std::vector<double> &xs);

/** Geometric mean of positive @p xs; 0 for empty input. */
double geometricMean(const std::vector<double> &xs);

/** Harmonic mean of positive @p xs; 0 for empty input. */
double harmonicMean(const std::vector<double> &xs);

/** Relative speedup of @p x over @p baseline in percent. */
double speedupPercent(double x, double baseline);

} // namespace gpsched

#endif // GPSCHED_SUPPORT_STATS_HH
