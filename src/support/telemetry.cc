#include "support/telemetry.hh"

#include <cmath>

#include "support/json.hh"
#include "support/logging.hh"
#include "support/timer.hh"

namespace gpsched
{

const char *
compilePhaseName(CompilePhase phase)
{
    switch (phase) {
      case CompilePhase::Mii:
        return "mii";
      case CompilePhase::Coarsen:
        return "coarsen";
      case CompilePhase::InitialPartition:
        return "initialPartition";
      case CompilePhase::Refine:
        return "refine";
      case CompilePhase::ModuloSchedule:
        return "moduloSchedule";
      case CompilePhase::TransferPlanning:
        return "transferPlanning";
      case CompilePhase::ListSchedule:
        return "listSchedule";
      case CompilePhase::Validate:
        return "validate";
      case CompilePhase::NumPhases:
        break;
    }
    GPSCHED_PANIC("invalid CompilePhase ", static_cast<int>(phase));
}

bool
compilePhaseTraced(CompilePhase phase)
{
    return phase != CompilePhase::TransferPlanning;
}

void
CompileTrace::merge(const CompileTrace &other)
{
    for (std::size_t i = 0; i < kNumCompilePhases; ++i)
        phases[i].merge(other.phases[i]);
    wallNanos += other.wallNanos;
    cpuNanos += other.cpuNanos;
    compiles += other.compiles;
}

bool
CompileTrace::empty() const
{
    if (compiles != 0 || wallNanos != 0 || cpuNanos != 0)
        return false;
    for (const PhaseTotals &totals : phases)
        if (totals.count != 0)
            return false;
    return true;
}

TelemetryContext &
telemetryContext()
{
    thread_local TelemetryContext ctx;
    return ctx;
}

PhaseScope::PhaseScope(CompilePhase phase) : phase_(phase)
{
    const TelemetryContext &ctx = telemetryContext();
    if (ctx.trace == nullptr && ctx.sink == nullptr)
        return;
    active_ = true;
    startWall_ = traceNowNanos();
    startCpu_ = threadCpuNanos();
}

PhaseScope::~PhaseScope()
{
    if (!active_)
        return;
    const TelemetryContext &ctx = telemetryContext();
    std::uint64_t endWall = traceNowNanos();
    std::uint64_t wall = endWall - startWall_;
    std::uint64_t cpu = threadCpuNanos() - startCpu_;
    if (ctx.trace != nullptr) {
        PhaseTotals &totals = ctx.trace->phase(phase_);
        totals.wallNanos += wall;
        totals.cpuNanos += cpu;
        totals.count += 1;
    }
    if (ctx.sink != nullptr && compilePhaseTraced(phase_)) {
        TraceEvent event;
        event.name = compilePhaseName(phase_);
        event.cat = "phase";
        event.pid = ctx.pid;
        event.tid = traceThreadId();
        event.tsNanos = startWall_;
        event.durNanos = wall;
        ctx.sink->complete(std::move(event));
    }
}

MetricRegistry::Counter &
MetricRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

MetricRegistry::Gauge &
MetricRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricRegistry::histogram(const std::string &name, double lowest,
                          double growth, std::size_t buckets)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(lowest, growth, buckets);
    return *slot;
}

void
MetricRegistry::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    JsonWriter json(os);
    json.beginObject();
    json.beginObject("counters");
    for (const auto &kv : counters_)
        json.member(kv.first, kv.second->value());
    json.endObject();
    json.beginObject("gauges");
    for (const auto &kv : gauges_)
        json.member(kv.first,
                    static_cast<std::int64_t>(kv.second->value()));
    json.endObject();
    json.beginObject("histograms");
    for (const auto &kv : histograms_) {
        const Histogram &h = *kv.second;
        json.beginObject(kv.first);
        json.member("count", static_cast<std::uint64_t>(h.count()));
        json.member("sum", h.sum());
        json.member("mean", h.mean());
        json.member("min", h.min());
        json.member("max", h.max());
        json.member("p50", h.p50());
        json.member("p95", h.p95());
        json.beginArray("buckets");
        for (const Histogram::Bucket &bucket : h.buckets()) {
            if (bucket.count == 0)
                continue;
            json.beginObject();
            // Prometheus-style bound; the overflow bucket is "+Inf"
            // (JsonWriter renders a bare inf as null).
            if (std::isinf(bucket.upperBound))
                json.member("le", "+Inf");
            else
                json.member("le", bucket.upperBound);
            json.member("count",
                        static_cast<std::uint64_t>(bucket.count));
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endObject();
    json.endObject();
    os << "\n";
}

void
writeCompileTracePhases(JsonWriter &json, const std::string &key,
                        const CompileTrace &trace)
{
    json.beginArray(key);
    for (std::size_t i = 0; i < kNumCompilePhases; ++i) {
        const PhaseTotals &totals = trace.phases[i];
        if (totals.count == 0)
            continue;
        json.beginObject();
        json.member("phase",
                    compilePhaseName(static_cast<CompilePhase>(i)));
        json.member("count", totals.count);
        json.member("wallMs",
                    static_cast<double>(totals.wallNanos) * 1e-6);
        json.member("cpuMs",
                    static_cast<double>(totals.cpuNanos) * 1e-6);
        json.endObject();
    }
    json.endArray();
}

} // namespace gpsched
