/**
 * @file
 * Error and status reporting helpers in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  -- an internal invariant was violated (a gpsched bug);
 *             aborts so a debugger/core dump can capture state.
 * fatal()  -- the simulation cannot continue because of a user error
 *             (bad configuration, inconsistent parameters); exits
 *             with a non-zero status.
 * warn()   -- something is questionable but execution continues.
 * inform() -- plain status output.
 */

#ifndef GPSCHED_SUPPORT_LOGGING_HH
#define GPSCHED_SUPPORT_LOGGING_HH

#include <sstream>
#include <string>

namespace gpsched
{

/** Terminates with an abort after printing an internal-bug message. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Terminates with exit(1) after printing a user-error message. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Prints a warning to stderr; execution continues. */
void warnImpl(const char *file, int line, const std::string &msg);

/** Prints an informational message to stderr. */
void informImpl(const std::string &msg);

/** Builds a message from stream-style arguments. */
template <typename... Args>
std::string
buildMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace gpsched

#define GPSCHED_PANIC(...)                                                 \
    ::gpsched::panicImpl(__FILE__, __LINE__,                               \
                         ::gpsched::buildMessage(__VA_ARGS__))

#define GPSCHED_FATAL(...)                                                 \
    ::gpsched::fatalImpl(__FILE__, __LINE__,                               \
                         ::gpsched::buildMessage(__VA_ARGS__))

#define GPSCHED_WARN(...)                                                  \
    ::gpsched::warnImpl(__FILE__, __LINE__,                                \
                        ::gpsched::buildMessage(__VA_ARGS__))

#define GPSCHED_INFORM(...)                                                \
    ::gpsched::informImpl(::gpsched::buildMessage(__VA_ARGS__))

/**
 * Invariant check that stays active in release builds. Use for
 * conditions that indicate a gpsched bug rather than a user error.
 */
#define GPSCHED_ASSERT(cond, ...)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            GPSCHED_PANIC("assertion '" #cond "' failed: ",                \
                          ::gpsched::buildMessage(__VA_ARGS__));           \
        }                                                                  \
    } while (0)

#endif // GPSCHED_SUPPORT_LOGGING_HH
