#include "support/arena.hh"

#include "support/logging.hh"

namespace gpsched
{

void *
CompileArena::allocate(std::size_t bytes, std::size_t align)
{
    GPSCHED_ASSERT(align != 0 && (align & (align - 1)) == 0,
                   "alignment must be a power of two");
    if (bytes == 0)
        bytes = 1;
    while (true) {
        if (cur_ < chunks_.size()) {
            Chunk &chunk = chunks_[cur_];
            // Align the absolute address, not the offset: chunk
            // bases only carry new[]'s fundamental alignment.
            const auto base =
                reinterpret_cast<std::uintptr_t>(chunk.data.get());
            std::size_t aligned =
                (((base + offset_) + align - 1) & ~(align - 1)) -
                base;
            if (aligned + bytes <= chunk.size) {
                offset_ = aligned + bytes;
                return chunk.data.get() + aligned;
            }
            // Current chunk exhausted: advance into an already-grown
            // chunk when one exists (post-reset reuse), else grow.
            if (cur_ + 1 < chunks_.size()) {
                ++cur_;
                offset_ = 0;
                continue;
            }
        }
        grow(bytes + align);
    }
}

void
CompileArena::grow(std::size_t bytes)
{
    std::size_t size = nextSize_;
    if (size < bytes)
        size = bytes;
    nextSize_ *= 2;
    Chunk chunk;
    chunk.data = std::make_unique<unsigned char[]>(size);
    chunk.size = size;
    chunks_.push_back(std::move(chunk));
    cur_ = chunks_.size() - 1;
    offset_ = 0;
}

void
CompileArena::reset()
{
    cur_ = 0;
    offset_ = 0;
}

std::size_t
CompileArena::capacityBytes() const
{
    std::size_t total = 0;
    for (const Chunk &chunk : chunks_)
        total += chunk.size;
    return total;
}

} // namespace gpsched
