/**
 * @file
 * Minimal streaming JSON writer used by the gpsched CLI and the
 * bench drivers' machine-readable reports. Handles nesting, comma
 * placement, string escaping and round-trip-exact doubles; no
 * external dependency. Misuse (a value without a key inside an
 * object, unbalanced end calls) panics — report emitters are code we
 * control, so structural errors are gpsched bugs.
 */

#ifndef GPSCHED_SUPPORT_JSON_HH
#define GPSCHED_SUPPORT_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace gpsched
{

/** Streaming writer producing pretty-printed JSON. */
class JsonWriter
{
  public:
    /** Writes to @p os with @p indent spaces per nesting level. */
    explicit JsonWriter(std::ostream &os, int indent = 2);

    /** Opens an object; at top level or as an array element. */
    JsonWriter &beginObject();

    /** Opens an object as @p key's value (inside an object). */
    JsonWriter &beginObject(const std::string &key);

    JsonWriter &endObject();

    /** Opens an array; at top level or as an array element. */
    JsonWriter &beginArray();

    /** Opens an array as @p key's value (inside an object). */
    JsonWriter &beginArray(const std::string &key);

    JsonWriter &endArray();

    /** Writes one key/value member of the current object. */
    JsonWriter &member(const std::string &key, const std::string &value);
    JsonWriter &member(const std::string &key, const char *value);
    JsonWriter &member(const std::string &key, double value);
    JsonWriter &member(const std::string &key, std::int64_t value);
    JsonWriter &member(const std::string &key, std::uint64_t value);
    JsonWriter &member(const std::string &key, int value);
    JsonWriter &member(const std::string &key, bool value);

    /** Writes one element of the current array. */
    JsonWriter &element(const std::string &value);
    JsonWriter &element(double value);
    JsonWriter &element(std::int64_t value);
    JsonWriter &element(int value);
    JsonWriter &element(bool value);

    /** True once the top-level value is complete and balanced. */
    bool finished() const;

    /** JSON string literal (quoted, escaped) for @p text. */
    static std::string quote(const std::string &text);

    /** Round-trip-exact rendering; nan/inf render as null. */
    static std::string number(double value);

  private:
    struct Level
    {
        bool isObject = false;
        int count = 0;
    };

    void beginValue(); ///< comma/newline/indent before a value
    void writeKey(const std::string &key);

    std::ostream &os_;
    int indent_;
    std::vector<Level> stack_;
    bool done_ = false;
};

} // namespace gpsched

#endif // GPSCHED_SUPPORT_JSON_HH
