/**
 * @file
 * Chrome trace-event collection: a thread-safe TraceSink accumulates
 * timestamped spans and exports the Trace Event Format JSON that
 * chrome://tracing and Perfetto load directly.
 *
 * Conventions (enforced by tools/check_trace.py and the trace
 * integrity tests):
 *  - "X" (complete) events carry ts+dur and must nest properly per
 *    (pid, tid) — engine spans (compile, cache-probe, disk) and the
 *    phase spans inside them obey this by construction because each
 *    worker thread records them strictly bracketed.
 *  - queue-wait intervals are "b"/"e" async pairs, NOT "X": a task's
 *    wait overlaps whatever its worker thread is running, so a
 *    complete event would violate per-tid nesting.
 *  - timestamps are microseconds (double) since a process-wide
 *    monotonic anchor, so events from all engines and threads share
 *    one timeline.
 */

#ifndef GPSCHED_SUPPORT_TRACE_HH
#define GPSCHED_SUPPORT_TRACE_HH

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace gpsched
{

/** One Chrome trace event (subset of the spec gpsched emits). */
struct TraceEvent
{
    std::string name;
    std::string cat;
    char ph = 'X'; ///< 'X' complete, 'b'/'e' async, 'M' metadata
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    std::uint64_t tsNanos = 0;  ///< since the process trace anchor
    std::uint64_t durNanos = 0; ///< 'X' only
    std::uint64_t id = 0;       ///< 'b'/'e' pairing id
    /** String key/value args rendered into the event's "args". */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * Thread-safe collector of TraceEvents. A null TraceSink* means
 * tracing is off; all emit helpers are cheap enough that callers
 * just branch on the pointer.
 */
class TraceSink
{
  public:
    /** Records an 'X' complete event. */
    void complete(TraceEvent event);

    /** Records a 'b'/'e' async pair for [startNanos, endNanos). */
    void asyncSpan(const std::string &name, const std::string &cat,
                   std::uint32_t pid, std::uint32_t tid,
                   std::uint64_t pairId, std::uint64_t startNanos,
                   std::uint64_t endNanos);

    /** Records an 'M' metadata event (process_name / thread_name). */
    void metadata(const std::string &name, std::uint32_t pid,
                  std::uint32_t tid, const std::string &value);

    /** Copy of everything recorded so far. */
    std::vector<TraceEvent> snapshot() const;

    /** Number of events recorded so far. */
    std::size_t size() const;

    /**
     * Writes `{"traceEvents": [...]}` with events sorted by
     * timestamp (ts in fractional microseconds), so a validator can
     * require monotonic ts.
     */
    void writeJson(std::ostream &os) const;

  private:
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
};

/**
 * Nanoseconds since the process-wide trace anchor (the first call's
 * monotonic timestamp). All trace events use this timebase.
 */
std::uint64_t traceNowNanos();

/** Small dense id for the calling thread, stable for its lifetime. */
std::uint32_t traceThreadId();

/** Fresh id for an async 'b'/'e' pair. */
std::uint64_t traceNextPairId();

} // namespace gpsched

#endif // GPSCHED_SUPPORT_TRACE_HH
