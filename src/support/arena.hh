/**
 * @file
 * Per-compile bump allocation.
 *
 * A CompileArena owns a chain of geometrically-growing chunks and
 * hands out pointers by bumping an offset — no per-object headers,
 * no frees. reset() rewinds to the first chunk while *retaining*
 * every chunk already grown, so the steady state of a compile loop
 * (one reset per II attempt) performs zero heap allocations: the
 * first attempt sizes the arena and every later attempt reuses it.
 *
 * Ownership contract (see docs/ARCHITECTURE.md, "Allocation &
 * occupancy model"): one arena per LoopCompiler::compile call,
 * reset only at the top of an II attempt when no arena-backed
 * object from the previous attempt is alive. Arena-backed objects
 * must be trivially destructible — nothing runs destructors for
 * them — which make<T>/makeArray<T> enforce at compile time.
 * Arenas are single-threaded by construction: they live on one
 * compile's stack and are never shared across threads (pinned by
 * the nightly TSan sweep over the engine suites).
 *
 * ArenaVector<T> is the std::vector-shaped adapter for hot-path
 * scratch. With a null arena it falls back to plain heap storage,
 * so default-constructed call sites (tests, benches, URACAM) keep
 * working unchanged; with an arena it allocates from it and never
 * frees (growth abandons the old block — reset reclaims it).
 */

#ifndef GPSCHED_SUPPORT_ARENA_HH
#define GPSCHED_SUPPORT_ARENA_HH

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace gpsched
{

/** Chunked bump allocator scoped to one loop compilation. */
class CompileArena
{
  public:
    CompileArena() = default;
    CompileArena(const CompileArena &) = delete;
    CompileArena &operator=(const CompileArena &) = delete;

    /** Bump-allocates @p bytes aligned to @p align. */
    void *allocate(std::size_t bytes, std::size_t align);

    /**
     * Rewinds to empty while retaining every chunk. Every pointer
     * previously handed out becomes invalid.
     */
    void reset();

    /** Uninitialized array of @p n trivially-destructible Ts. */
    template <typename T>
    T *
    makeArray(std::size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena never runs destructors");
        return static_cast<T *>(allocate(n * sizeof(T), alignof(T)));
    }

    /** Constructs one trivially-destructible T in the arena. */
    template <typename T, typename... Args>
    T *
    make(Args &&...args)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena never runs destructors");
        return ::new (allocate(sizeof(T), alignof(T)))
            T(std::forward<Args>(args)...);
    }

    /** Number of chunks grown so far. */
    std::size_t chunkCount() const { return chunks_.size(); }

    /** Total bytes of chunk capacity held. */
    std::size_t capacityBytes() const;

  private:
    struct Chunk
    {
        std::unique_ptr<unsigned char[]> data;
        std::size_t size = 0;
    };

    /** Grows a chunk that fits @p bytes and makes it current. */
    void grow(std::size_t bytes);

    std::vector<Chunk> chunks_;
    std::size_t cur_ = 0;      ///< index of the chunk being bumped
    std::size_t offset_ = 0;   ///< bump offset within chunks_[cur_]
    std::size_t nextSize_ = 4096;
};

/**
 * Minimal vector over trivially-copyable elements with optional
 * arena backing. Deliberately not a drop-in std::vector: no
 * iterators-stay-valid guarantees beyond std::vector's, no
 * allocator propagation, elements must be trivially copyable and
 * destructible.
 */
template <typename T>
class ArenaVector
{
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "ArenaVector requires trivial elements");

  public:
    ArenaVector() = default;
    explicit ArenaVector(CompileArena *arena) : arena_(arena) {}
    ArenaVector(CompileArena *arena, std::size_t n, const T &value)
        : arena_(arena)
    {
        assign(n, value);
    }

    ArenaVector(const ArenaVector &other) : arena_(other.arena_)
    {
        assignRange(other.data_, other.size_);
    }

    ArenaVector(ArenaVector &&other) noexcept
        : arena_(other.arena_), data_(other.data_),
          size_(other.size_), cap_(other.cap_)
    {
        other.data_ = nullptr;
        other.size_ = other.cap_ = 0;
    }

    ArenaVector &
    operator=(const ArenaVector &other)
    {
        if (this != &other)
            assignRange(other.data_, other.size_);
        return *this;
    }

    ArenaVector &
    operator=(ArenaVector &&other) noexcept
    {
        if (this != &other) {
            freeHeap();
            arena_ = other.arena_;
            data_ = other.data_;
            size_ = other.size_;
            cap_ = other.cap_;
            other.data_ = nullptr;
            other.size_ = other.cap_ = 0;
        }
        return *this;
    }

    ~ArenaVector() { freeHeap(); }

    /** Replaces the contents with a copy of [src, src+n). */
    void
    assign(const T *src, std::size_t n)
    {
        assignRange(src, n);
    }

    void
    assign(std::size_t n, const T &value)
    {
        reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            data_[i] = value;
        size_ = n;
    }

    void
    resize(std::size_t n)
    {
        reserve(n);
        for (std::size_t i = size_; i < n; ++i)
            data_[i] = T{};
        size_ = n;
    }

    void
    reserve(std::size_t n)
    {
        if (n > cap_)
            grow(n);
    }

    void
    push_back(const T &value)
    {
        if (size_ == cap_)
            grow(size_ + 1);
        data_[size_++] = value;
    }

    void clear() { size_ = 0; }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    T *data() { return data_; }
    const T *data() const { return data_; }
    T *begin() { return data_; }
    T *end() { return data_ + size_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }
    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }
    T &back() { return data_[size_ - 1]; }
    const T &back() const { return data_[size_ - 1]; }
    std::size_t capacity() const { return cap_; }

  private:
    void
    assignRange(const T *src, std::size_t n)
    {
        reserve(n);
        if (n > 0)
            std::memcpy(data_, src, n * sizeof(T));
        size_ = n;
    }

    void
    grow(std::size_t need)
    {
        std::size_t cap = cap_ == 0 ? 8 : cap_ * 2;
        if (cap < need)
            cap = need;
        T *fresh;
        if (arena_ != nullptr) {
            fresh = arena_->makeArray<T>(cap);
        } else {
            fresh = static_cast<T *>(
                ::operator new(cap * sizeof(T), std::align_val_t(
                                                    alignof(T))));
        }
        if (size_ > 0)
            std::memcpy(fresh, data_, size_ * sizeof(T));
        freeHeap();
        data_ = fresh;
        cap_ = cap;
    }

    void
    freeHeap()
    {
        if (arena_ == nullptr && data_ != nullptr) {
            ::operator delete(data_, std::align_val_t(alignof(T)));
        }
        data_ = nullptr;
        cap_ = 0;
    }

    CompileArena *arena_ = nullptr;
    T *data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t cap_ = 0;
};

} // namespace gpsched

#endif // GPSCHED_SUPPORT_ARENA_HH
