#include "graph/unroll.hh"

#include <string>

#include "support/logging.hh"

namespace gpsched
{

Ddg
unrollLoop(const Ddg &ddg, int factor)
{
    GPSCHED_ASSERT(factor >= 1, "unroll factor must be >= 1");
    const int n = ddg.numNodes();

    Ddg out(ddg.name() +
            (factor > 1 ? "_u" + std::to_string(factor) : ""));
    for (int k = 0; k < factor; ++k) {
        for (NodeId v = 0; v < n; ++v) {
            const DdgNode &node = ddg.node(v);
            std::string label = node.label;
            if (factor > 1)
                label += "#" + std::to_string(k);
            NodeId id = out.addNode(node.opcode, label);
            GPSCHED_ASSERT(id == v + k * n, "unroll id scheme broken");
        }
    }
    for (int k = 0; k < factor; ++k) {
        for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
            const DdgEdge &edge = ddg.edge(e);
            int target = k + edge.distance;
            out.addEdge(edge.src + k * n,
                        edge.dst + (target % factor) * n,
                        edge.latency, target / factor, edge.kind);
        }
    }

    // One unrolled iteration covers `factor` original ones; round up
    // so the remainder is charged rather than dropped.
    out.setTripCount(
        std::max<std::int64_t>(1, (ddg.tripCount() + factor - 1) /
                                      factor));
    return out;
}

} // namespace gpsched
