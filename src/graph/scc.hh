/**
 * @file
 * Strongly connected components of a DDG (Tarjan's algorithm).
 * Recurrences of the loop are exactly the SCCs with more than one
 * node or with a loop-carried self edge; SMS set ordering and RecMII
 * both start from them.
 */

#ifndef GPSCHED_GRAPH_SCC_HH
#define GPSCHED_GRAPH_SCC_HH

#include <vector>

#include "graph/ddg.hh"

namespace gpsched
{

/** Result of an SCC decomposition. */
struct SccDecomposition
{
    /** Component index of each node. */
    std::vector<int> componentOf;

    /** Nodes of each component, in discovery order. */
    std::vector<std::vector<NodeId>> components;

    /** True if the component forms a recurrence (has an internal cycle). */
    std::vector<bool> isRecurrence;

    /** Number of components. */
    int numComponents() const
    {
        return static_cast<int>(components.size());
    }
};

/** Computes the SCCs of @p ddg. */
SccDecomposition computeSccs(const Ddg &ddg);

} // namespace gpsched

#endif // GPSCHED_GRAPH_SCC_HH
