/**
 * @file
 * Loop unrolling as a DDG transformation.
 *
 * The authors' companion study (Sánchez & González, ICPP 2000)
 * shows unrolling helps modulo scheduling on clustered VLIWs: it
 * reduces the impact of ResMII rounding (ceil of fractional resource
 * bounds) and gives the partitioner U independent copies of the body
 * to spread across clusters. Unrolling by U replicates every node U
 * times; a dependence (src -> dst, latency, distance d) becomes, for
 * each copy i, an edge from src#i to dst#((i+d) mod U) with distance
 * floor((i+d) / U). The trip count drops to ceil(niter / U) — the
 * epilogue remainder is folded into the last unrolled iteration,
 * which slightly overestimates work for niter not divisible by U
 * (documented, conservative).
 */

#ifndef GPSCHED_GRAPH_UNROLL_HH
#define GPSCHED_GRAPH_UNROLL_HH

#include "graph/ddg.hh"

namespace gpsched
{

/**
 * Unrolls @p ddg by @p factor (>= 1; 1 returns a plain copy).
 * Node copy k of original node v has id v + k * ddg.numNodes() and
 * label "<orig>#k".
 */
Ddg unrollLoop(const Ddg &ddg, int factor);

} // namespace gpsched

#endif // GPSCHED_GRAPH_UNROLL_HH
