#include "graph/ddg_analysis.hh"

#include <algorithm>

#include "support/logging.hh"

namespace gpsched
{

DdgAnalysis::DdgAnalysis(const Ddg &ddg, const LatencyTable &latencies,
                         int ii,
                         const std::vector<int> *extra_edge_latency,
                         const SccDecomposition *sccs)
    : ddg_(ddg), latencies_(latencies), ii_(ii),
      extra_(extra_edge_latency), sccs_(sccs)
{
    GPSCHED_ASSERT(ii >= 1, "II must be >= 1, got ", ii);
    GPSCHED_ASSERT(!extra_ ||
                       static_cast<int>(extra_->size()) ==
                           ddg.numEdges(),
                   "extra latency vector size mismatch");
    if (sccs_) {
        compute(*sccs_);
    } else {
        SccDecomposition own = computeSccs(ddg_);
        compute(own);
    }
}

void
DdgAnalysis::compute(const SccDecomposition &sccs)
{
    const int n = ddg_.numNodes();
    asap_.assign(n, 0);
    alap_.assign(n, 0);
    if (n == 0)
        return;

    // Tarjan emits components in reverse topological order of the
    // condensation; iterate them backwards for a topological sweep.
    const int nc = sccs.numComponents();

    // The relaxation loops below fetch each edge record once and
    // compute its effective latency in place (effectiveLatency(e)
    // would re-load the record): these are the innermost loops of
    // every estimator evaluation.

    // --- forward pass: ASAP ------------------------------------------
    for (int c = nc - 1; c >= 0; --c) {
        const auto &comp = sccs.components[c];
        // Pull in finalized values over cross-component in-edges.
        for (NodeId v : comp) {
            for (EdgeId e : ddg_.inEdges(v)) {
                const auto &edge = ddg_.edge(e);
                NodeId u = edge.src;
                if (sccs.componentOf[u] != c) {
                    int lat = edge.latency +
                              (extra_ ? (*extra_)[e] : 0) -
                              ii_ * edge.distance;
                    asap_[v] = std::max(asap_[v], asap_[u] + lat);
                }
            }
        }
        // Iterate internal edges to a fixpoint. A positive cycle
        // keeps relaxing past |comp| passes.
        std::size_t passes = 0;
        bool changed = true;
        while (changed) {
            changed = false;
            for (NodeId v : comp) {
                for (EdgeId e : ddg_.outEdges(v)) {
                    const auto &edge = ddg_.edge(e);
                    NodeId w = edge.dst;
                    if (sccs.componentOf[w] != c)
                        continue;
                    int lat = edge.latency +
                              (extra_ ? (*extra_)[e] : 0) -
                              ii_ * edge.distance;
                    int cand = asap_[v] + lat;
                    if (cand > asap_[w]) {
                        asap_[w] = cand;
                        changed = true;
                    }
                }
            }
            if (changed && ++passes > comp.size()) {
                feasible_ = false;
                return;
            }
        }
    }

    scheduleLength_ = 0;
    for (NodeId v = 0; v < n; ++v) {
        int finish = asap_[v] + latencies_.latency(ddg_.node(v).opcode);
        scheduleLength_ = std::max(scheduleLength_, finish);
    }

    // --- backward pass: ALAP -----------------------------------------
    for (NodeId v = 0; v < n; ++v) {
        alap_[v] =
            scheduleLength_ - latencies_.latency(ddg_.node(v).opcode);
    }
    for (int c = 0; c < nc; ++c) {
        const auto &comp = sccs.components[c];
        for (NodeId v : comp) {
            for (EdgeId e : ddg_.outEdges(v)) {
                const auto &edge = ddg_.edge(e);
                NodeId w = edge.dst;
                if (sccs.componentOf[w] != c) {
                    int lat = edge.latency +
                              (extra_ ? (*extra_)[e] : 0) -
                              ii_ * edge.distance;
                    alap_[v] = std::min(alap_[v], alap_[w] - lat);
                }
            }
        }
        bool changed = true;
        std::size_t passes = 0;
        while (changed) {
            changed = false;
            for (NodeId v : comp) {
                for (EdgeId e : ddg_.inEdges(v)) {
                    const auto &edge = ddg_.edge(e);
                    NodeId u = edge.src;
                    if (sccs.componentOf[u] != c)
                        continue;
                    int lat = edge.latency +
                              (extra_ ? (*extra_)[e] : 0) -
                              ii_ * edge.distance;
                    int cand = alap_[v] - lat;
                    if (cand < alap_[u]) {
                        alap_[u] = cand;
                        changed = true;
                    }
                }
            }
            // Feasibility was already established by the forward
            // pass; the bound here is a safety net.
            if (changed && ++passes > comp.size() + 1) {
                feasible_ = false;
                return;
            }
        }
    }
}

int
DdgAnalysis::maxSlack() const
{
    int best = 0;
    for (EdgeId e = 0; e < ddg_.numEdges(); ++e)
        best = std::max(best, slack(e));
    return best;
}

namespace
{

/** Cheap feasibility probe at a given II. */
bool
feasibleAt(const Ddg &ddg, const LatencyTable &latencies, int ii,
           const std::vector<int> *extra, const SccDecomposition &sccs)
{
    return DdgAnalysis(ddg, latencies, ii, extra, &sccs).feasible();
}

} // namespace

int
recMii(const Ddg &ddg, const std::vector<int> *extra_edge_latency)
{
    // Upper bound: any cycle's latency sum is at most the sum of all
    // edge latencies and its distance sum is >= 1.
    LatencyTable latencies; // node latencies do not affect feasibility
    SccDecomposition sccs = computeSccs(ddg);
    long total = 1;
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        total += ddg.edge(e).latency;
        if (extra_edge_latency)
            total += (*extra_edge_latency)[e];
    }
    int lo = 1;
    int hi = static_cast<int>(std::min<long>(total, 1 << 24));
    GPSCHED_ASSERT(
        feasibleAt(ddg, latencies, hi, extra_edge_latency, sccs),
        "no feasible II below upper bound");
    while (lo < hi) {
        int mid = lo + (hi - lo) / 2;
        if (feasibleAt(ddg, latencies, mid, extra_edge_latency, sccs))
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

int
recMiiWithEdgeDelay(const Ddg &ddg, EdgeId e, int delta, int base_mii)
{
    GPSCHED_ASSERT(e >= 0 && e < ddg.numEdges(), "bad edge ", e);
    GPSCHED_ASSERT(delta >= 0, "negative delay");
    LatencyTable latencies;
    SccDecomposition sccs = computeSccs(ddg);
    std::vector<int> extra(ddg.numEdges(), 0);
    extra[e] = delta;
    // Adding delta to one edge can raise RecMII by at most delta
    // (every cycle's distance sum is >= 1).
    for (int ii = base_mii; ii <= base_mii + delta; ++ii) {
        if (feasibleAt(ddg, latencies, ii, &extra, sccs))
            return ii;
    }
    GPSCHED_PANIC("recMiiWithEdgeDelay: no feasible II in bound");
}

} // namespace gpsched
