/**
 * @file
 * Data dependence graph (DDG) of one innermost loop.
 *
 * Nodes are operations; edges are data dependences annotated with a
 * latency (cycles the consumer must wait after the producer issues)
 * and a distance (iteration difference: 0 for intra-iteration
 * dependences, >= 1 for loop-carried ones). A modulo schedule must
 * satisfy  start(dst) >= start(src) + latency - II * distance  for
 * every edge.
 */

#ifndef GPSCHED_GRAPH_DDG_HH
#define GPSCHED_GRAPH_DDG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "machine/op.hh"
#include "support/logging.hh"

namespace gpsched
{

/** Index of a node within its Ddg. */
using NodeId = std::int32_t;

/** Index of an edge within its Ddg. */
using EdgeId = std::int32_t;

/** Sentinel for "no node". */
constexpr NodeId invalidNode = -1;

/** One operation of the loop body. */
struct DdgNode
{
    Opcode opcode = Opcode::IAlu;
    std::string label;
};

/**
 * Dependence kind. Flow edges carry a register value from producer
 * to consumer: when the two end up in different clusters the value
 * must cross the inter-cluster interconnect (bus copy or
 * communication through memory) and it occupies a register while
 * live. Order edges (memory ordering, anti/output dependences) only
 * constrain issue times.
 */
enum class DepKind : std::uint8_t
{
    Flow,
    Order,
};

/** One data dependence. */
struct DdgEdge
{
    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    int latency = 1;
    int distance = 0;
    DepKind kind = DepKind::Flow;

    /** True for loop-carried dependences. */
    bool loopCarried() const { return distance > 0; }

    /** True for value-carrying dependences. */
    bool isFlow() const { return kind == DepKind::Flow; }
};

/**
 * Immutable-after-construction dependence graph of one loop,
 * together with its profiled trip count.
 */
class Ddg
{
  public:
    /** Creates an empty graph named @p name. */
    explicit Ddg(std::string name = "loop");

    /** Adds a node; returns its id. */
    NodeId addNode(Opcode opcode, std::string label = "");

    /**
     * Adds a dependence edge. @p latency must be >= 0 and
     * @p distance >= 0; self-edges require distance >= 1. Flow edges
     * must leave a value-defining opcode.
     */
    EdgeId addEdge(NodeId src, NodeId dst, int latency,
                   int distance = 0, DepKind kind = DepKind::Flow);

    /** Loop name (for reports). */
    const std::string &name() const { return name_; }

    /** Profiled iteration count (>= 1). */
    std::int64_t tripCount() const { return tripCount_; }

    /** Sets the profiled iteration count. */
    void setTripCount(std::int64_t niter);

    /** Number of nodes. */
    int numNodes() const { return static_cast<int>(nodes_.size()); }

    /** Number of edges. */
    int numEdges() const { return static_cast<int>(edges_.size()); }

    // The four per-node/per-edge accessors below are the innermost
    // reads of every analysis and refinement loop (tens of millions
    // of calls per compile); they are defined inline so those loops
    // see plain indexed loads instead of opaque calls. The bounds
    // asserts stay — they fold into the surrounding loop bounds.

    /** Node accessor. */
    const DdgNode &
    node(NodeId id) const
    {
        GPSCHED_ASSERT(id >= 0 && id < numNodes(), "bad node id ", id);
        return nodes_[id];
    }

    /** Edge accessor. */
    const DdgEdge &
    edge(EdgeId id) const
    {
        GPSCHED_ASSERT(id >= 0 && id < numEdges(), "bad edge id ", id);
        return edges_[id];
    }

    /** Ids of edges leaving @p id. */
    const std::vector<EdgeId> &
    outEdges(NodeId id) const
    {
        GPSCHED_ASSERT(id >= 0 && id < numNodes(), "bad node id ", id);
        return outEdges_[id];
    }

    /** Ids of edges entering @p id. */
    const std::vector<EdgeId> &
    inEdges(NodeId id) const
    {
        GPSCHED_ASSERT(id >= 0 && id < numNodes(), "bad node id ", id);
        return inEdges_[id];
    }

    /** Number of nodes executing on functional-unit class @p cls. */
    int numOps(FuClass cls) const;

    /** Number of loads + stores. */
    int numMemOps() const { return numOps(FuClass::Mem); }

    /** Sum of FU occupancy of ops of @p cls under @p latencies. */
    int totalOccupancy(FuClass cls, const LatencyTable &latencies) const;

    /** True when any edge is loop-carried. */
    bool hasRecurrence() const;

  private:
    std::string name_;
    std::int64_t tripCount_ = 100;
    std::vector<DdgNode> nodes_;
    std::vector<DdgEdge> edges_;
    std::vector<std::vector<EdgeId>> outEdges_;
    std::vector<std::vector<EdgeId>> inEdges_;
};

} // namespace gpsched

#endif // GPSCHED_GRAPH_DDG_HH
