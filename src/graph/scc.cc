#include "graph/scc.hh"

#include <algorithm>

#include "support/logging.hh"

namespace gpsched
{

namespace
{

/** Iterative Tarjan state for one node. */
struct Frame
{
    NodeId node;
    std::size_t edgeIdx;
};

} // namespace

SccDecomposition
computeSccs(const Ddg &ddg)
{
    const int n = ddg.numNodes();
    SccDecomposition out;
    out.componentOf.assign(n, -1);

    std::vector<int> index(n, -1);
    std::vector<int> lowlink(n, 0);
    std::vector<bool> onStack(n, false);
    std::vector<NodeId> stack;
    int nextIndex = 0;

    std::vector<Frame> callStack;
    for (NodeId root = 0; root < n; ++root) {
        if (index[root] != -1)
            continue;
        callStack.push_back(Frame{root, 0});
        index[root] = lowlink[root] = nextIndex++;
        stack.push_back(root);
        onStack[root] = true;

        while (!callStack.empty()) {
            Frame &frame = callStack.back();
            NodeId v = frame.node;
            const auto &outs = ddg.outEdges(v);
            if (frame.edgeIdx < outs.size()) {
                NodeId w = ddg.edge(outs[frame.edgeIdx]).dst;
                ++frame.edgeIdx;
                if (index[w] == -1) {
                    index[w] = lowlink[w] = nextIndex++;
                    stack.push_back(w);
                    onStack[w] = true;
                    callStack.push_back(Frame{w, 0});
                } else if (onStack[w]) {
                    lowlink[v] = std::min(lowlink[v], index[w]);
                }
            } else {
                callStack.pop_back();
                if (!callStack.empty()) {
                    NodeId parent = callStack.back().node;
                    lowlink[parent] =
                        std::min(lowlink[parent], lowlink[v]);
                }
                if (lowlink[v] == index[v]) {
                    std::vector<NodeId> comp;
                    for (;;) {
                        NodeId w = stack.back();
                        stack.pop_back();
                        onStack[w] = false;
                        comp.push_back(w);
                        if (w == v)
                            break;
                    }
                    int cid = out.numComponents();
                    for (NodeId w : comp)
                        out.componentOf[w] = cid;
                    out.components.push_back(std::move(comp));
                }
            }
        }
    }

    // A component is a recurrence iff it has an edge internal to it.
    out.isRecurrence.assign(out.numComponents(), false);
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        const auto &edge = ddg.edge(e);
        int cs = out.componentOf[edge.src];
        if (cs == out.componentOf[edge.dst] &&
            (edge.src != edge.dst || edge.loopCarried())) {
            if (out.components[cs].size() > 1 || edge.src == edge.dst)
                out.isRecurrence[cs] = true;
        }
    }
    return out;
}

} // namespace gpsched
