/**
 * @file
 * Fluent construction helper for DDGs. Flow edges take their latency
 * from a LatencyTable (the producer's result latency), which is what
 * workload generators and tests almost always want; explicit-latency
 * edges remain available for anti/output/memory dependences.
 */

#ifndef GPSCHED_GRAPH_DDG_BUILDER_HH
#define GPSCHED_GRAPH_DDG_BUILDER_HH

#include <string>

#include "graph/ddg.hh"
#include "machine/op.hh"

namespace gpsched
{

/** Builds a Ddg with latencies supplied by a LatencyTable. */
class DdgBuilder
{
  public:
    /** @param name loop name; @p latencies must outlive the builder. */
    DdgBuilder(std::string name, const LatencyTable &latencies);

    /** Adds an operation node. */
    NodeId op(Opcode opcode, std::string label = "");

    /**
     * Adds an intra-iteration flow dependence src -> dst with the
     * producer's result latency.
     */
    EdgeId flow(NodeId src, NodeId dst);

    /**
     * Adds a loop-carried flow dependence with the producer's result
     * latency and iteration distance @p distance (>= 1).
     */
    EdgeId carried(NodeId src, NodeId dst, int distance = 1);

    /**
     * Adds a precedence-only (Order) edge with an explicit latency
     * and distance; used for memory-ordering and anti/output
     * dependences, which carry no register value.
     */
    EdgeId order(NodeId src, NodeId dst, int latency, int distance = 0);

    /** Sets the profiled trip count. */
    DdgBuilder &tripCount(std::int64_t niter);

    /** Finishes construction (moves the graph out). */
    Ddg build();

    /** In-progress graph (for incremental generators). */
    const Ddg &graph() const { return ddg_; }

  private:
    Ddg ddg_;
    const LatencyTable &latencies_;
};

} // namespace gpsched

#endif // GPSCHED_GRAPH_DDG_BUILDER_HH
