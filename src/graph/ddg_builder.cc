#include "graph/ddg_builder.hh"

#include "support/logging.hh"

namespace gpsched
{

DdgBuilder::DdgBuilder(std::string name, const LatencyTable &latencies)
    : ddg_(std::move(name)), latencies_(latencies)
{
}

NodeId
DdgBuilder::op(Opcode opcode, std::string label)
{
    GPSCHED_ASSERT(isProgramOpcode(opcode),
                   "workload DDGs may only contain program opcodes, "
                   "got ", toString(opcode));
    return ddg_.addNode(opcode, std::move(label));
}

EdgeId
DdgBuilder::flow(NodeId src, NodeId dst)
{
    return ddg_.addEdge(src, dst,
                        latencies_.latency(ddg_.node(src).opcode), 0);
}

EdgeId
DdgBuilder::carried(NodeId src, NodeId dst, int distance)
{
    GPSCHED_ASSERT(distance >= 1, "carried edge needs distance >= 1");
    return ddg_.addEdge(src, dst,
                        latencies_.latency(ddg_.node(src).opcode),
                        distance);
}

EdgeId
DdgBuilder::order(NodeId src, NodeId dst, int latency, int distance)
{
    return ddg_.addEdge(src, dst, latency, distance, DepKind::Order);
}

DdgBuilder &
DdgBuilder::tripCount(std::int64_t niter)
{
    ddg_.setTripCount(niter);
    return *this;
}

Ddg
DdgBuilder::build()
{
    return std::move(ddg_);
}

} // namespace gpsched
