/**
 * @file
 * Graphviz export of DDGs, optionally colored by a cluster
 * assignment. Used by the partition_viz example and by humans
 * debugging partitions.
 */

#ifndef GPSCHED_GRAPH_DOT_HH
#define GPSCHED_GRAPH_DOT_HH

#include <ostream>
#include <vector>

#include "graph/ddg.hh"

namespace gpsched
{

/**
 * Writes @p ddg in Graphviz dot syntax. When @p cluster_of is
 * non-null it must map every node to a cluster index; nodes are then
 * grouped and colored per cluster and cut edges drawn dashed.
 */
void writeDot(std::ostream &os, const Ddg &ddg,
              const std::vector<int> *cluster_of = nullptr);

} // namespace gpsched

#endif // GPSCHED_GRAPH_DOT_HH
