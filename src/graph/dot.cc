#include "graph/dot.hh"

#include "support/logging.hh"

namespace gpsched
{

void
writeDot(std::ostream &os, const Ddg &ddg,
         const std::vector<int> *cluster_of)
{
    static const char *palette[] = {
        "lightblue", "lightsalmon", "palegreen", "plum",
        "khaki", "lightcyan", "mistyrose", "honeydew",
    };
    constexpr int paletteSize = 8;

    GPSCHED_ASSERT(!cluster_of ||
                       static_cast<int>(cluster_of->size()) ==
                           ddg.numNodes(),
                   "cluster map size mismatch");

    os << "digraph \"" << ddg.name() << "\" {\n";
    os << "  rankdir=TB;\n";
    for (NodeId v = 0; v < ddg.numNodes(); ++v) {
        os << "  n" << v << " [label=\"" << ddg.node(v).label
           << "\\n" << toString(ddg.node(v).opcode) << "\"";
        if (cluster_of && (*cluster_of)[v] >= 0) {
            // Negative entries mean "unassigned": leave uncolored.
            int cl = (*cluster_of)[v];
            os << ", style=filled, fillcolor="
               << palette[cl % paletteSize];
        }
        os << "];\n";
    }
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        const auto &edge = ddg.edge(e);
        os << "  n" << edge.src << " -> n" << edge.dst << " [label=\""
           << edge.latency;
        if (edge.distance > 0)
            os << "," << edge.distance;
        os << "\"";
        if (edge.distance > 0)
            os << ", constraint=false, color=gray";
        if (!edge.isFlow())
            os << ", arrowhead=empty";
        // Only draw a cut edge when both endpoints are assigned;
        // negative entries mean "unassigned", not a real cluster.
        if (cluster_of && (*cluster_of)[edge.src] >= 0 &&
            (*cluster_of)[edge.dst] >= 0 &&
            (*cluster_of)[edge.src] != (*cluster_of)[edge.dst]) {
            os << ", style=dashed, penwidth=2";
        }
        os << "];\n";
    }
    os << "}\n";
}

} // namespace gpsched
