#include "graph/ddg.hh"

#include "support/logging.hh"

namespace gpsched
{

Ddg::Ddg(std::string name) : name_(std::move(name))
{
}

NodeId
Ddg::addNode(Opcode opcode, std::string label)
{
    NodeId id = static_cast<NodeId>(nodes_.size());
    if (label.empty())
        label = toString(opcode) + std::to_string(id);
    nodes_.push_back(DdgNode{opcode, std::move(label)});
    outEdges_.emplace_back();
    inEdges_.emplace_back();
    return id;
}

EdgeId
Ddg::addEdge(NodeId src, NodeId dst, int latency, int distance,
             DepKind kind)
{
    GPSCHED_ASSERT(src >= 0 && src < numNodes(), "bad src node ", src);
    GPSCHED_ASSERT(dst >= 0 && dst < numNodes(), "bad dst node ", dst);
    GPSCHED_ASSERT(latency >= 0, "negative edge latency");
    GPSCHED_ASSERT(distance >= 0, "negative edge distance");
    GPSCHED_ASSERT(src != dst || distance >= 1,
                   "self edge must be loop-carried");
    GPSCHED_ASSERT(kind == DepKind::Order ||
                       definesValue(nodes_[src].opcode),
                   "flow edge from non-defining op ",
                   toString(nodes_[src].opcode));

    EdgeId id = static_cast<EdgeId>(edges_.size());
    edges_.push_back(DdgEdge{src, dst, latency, distance, kind});
    outEdges_[src].push_back(id);
    inEdges_[dst].push_back(id);
    return id;
}

void
Ddg::setTripCount(std::int64_t niter)
{
    GPSCHED_ASSERT(niter >= 1, "trip count must be >= 1");
    tripCount_ = niter;
}

int
Ddg::numOps(FuClass cls) const
{
    int count = 0;
    for (const auto &n : nodes_) {
        if (fuClassOf(n.opcode) == cls)
            ++count;
    }
    return count;
}

int
Ddg::totalOccupancy(FuClass cls, const LatencyTable &latencies) const
{
    int total = 0;
    for (const auto &n : nodes_) {
        if (fuClassOf(n.opcode) == cls)
            total += latencies.occupancy(n.opcode);
    }
    return total;
}

bool
Ddg::hasRecurrence() const
{
    for (const auto &e : edges_) {
        if (e.loopCarried())
            return true;
    }
    return false;
}

} // namespace gpsched
