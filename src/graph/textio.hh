/**
 * @file
 * Line-oriented text serialization of DDGs so loops can be dumped,
 * versioned and re-loaded (e.g. to reproduce a single interesting
 * loop outside the workload generator).
 *
 * Format:
 *   ddg <name> <trip-count>
 *   node <opcode> [label]
 *   edge <src> <dst> <latency> <distance> [flow|order]
 *   end
 * '#' starts a comment; blank lines are ignored.
 */

#ifndef GPSCHED_GRAPH_TEXTIO_HH
#define GPSCHED_GRAPH_TEXTIO_HH

#include <istream>
#include <ostream>

#include "graph/ddg.hh"

namespace gpsched
{

/** Writes @p ddg in the text format. */
void writeDdgText(std::ostream &os, const Ddg &ddg);

/**
 * Parses one DDG. Malformed input throws CompileError (kind Parse,
 * support/compile_error.hh) so a batch front-end can report the bad
 * block and keep going; the loop name is attached once the `ddg`
 * header line has been seen.
 */
Ddg readDdgText(std::istream &is);

} // namespace gpsched

#endif // GPSCHED_GRAPH_TEXTIO_HH
