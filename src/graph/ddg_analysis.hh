/**
 * @file
 * Modulo-scheduling analyses over a DDG at a candidate initiation
 * interval II.
 *
 * Every dependence edge imposes
 *     start(dst) >= start(src) + latency(e) - II * distance(e),
 * so analyses use the *effective* latency  lat - II*dist.  A value of
 * II is feasible iff no cycle has positive total effective latency
 * (equivalently II >= RecMII). ASAP/ALAP longest-path fixpoints are
 * computed per strongly-connected component in topological order,
 * which keeps full recomputation cheap enough that the partitioner
 * can afford one analysis per candidate edge delay.
 *
 * An optional per-edge extra-latency vector models the bus delay a
 * partition adds to cut edges without mutating the graph.
 */

#ifndef GPSCHED_GRAPH_DDG_ANALYSIS_HH
#define GPSCHED_GRAPH_DDG_ANALYSIS_HH

#include <vector>

#include "graph/ddg.hh"
#include "graph/scc.hh"
#include "machine/op.hh"
#include "support/logging.hh"

namespace gpsched
{

/** Longest-path analysis of one DDG at a fixed II. */
class DdgAnalysis
{
  public:
    /**
     * Runs the analysis.
     *
     * @param ddg graph to analyze
     * @param latencies node latency table (for finish times)
     * @param ii candidate initiation interval (>= 1)
     * @param extra_edge_latency optional per-edge additive latency
     *        (size must equal ddg.numEdges() when provided)
     * @param sccs optional precomputed SCC decomposition of @p ddg;
     *        callers that analyze the same graph repeatedly (the
     *        partition estimator, RecMII searches) pass it to skip
     *        recomputation
     */
    DdgAnalysis(const Ddg &ddg, const LatencyTable &latencies, int ii,
                const std::vector<int> *extra_edge_latency = nullptr,
                const SccDecomposition *sccs = nullptr);

    /** False when a positive-latency cycle exists at this II. */
    bool feasible() const { return feasible_; }

    /** Analyzed initiation interval. */
    int ii() const { return ii_; }

    // The per-node/per-edge queries below are defined inline: the
    // analysis itself and every consumer (estimator slack sums,
    // scheduler priority functions) read them in tight loops.

    /**
     * Length of the flat (one-iteration) schedule: the largest
     * finish time over all nodes when every node starts at ASAP.
     * This is the paper's max_path. Only valid when feasible().
     */
    int
    scheduleLength() const
    {
        GPSCHED_ASSERT(feasible_, "infeasible analysis queried");
        return scheduleLength_;
    }

    /** Earliest start of @p v. Only valid when feasible(). */
    int
    asap(NodeId v) const
    {
        GPSCHED_ASSERT(feasible_, "infeasible analysis queried");
        GPSCHED_ASSERT(v >= 0 && v < ddg_.numNodes(), "bad node ", v);
        return asap_[v];
    }

    /** Latest start of @p v preserving scheduleLength(). */
    int
    alap(NodeId v) const
    {
        GPSCHED_ASSERT(feasible_, "infeasible analysis queried");
        GPSCHED_ASSERT(v >= 0 && v < ddg_.numNodes(), "bad node ", v);
        return alap_[v];
    }

    /** Scheduling freedom alap(v) - asap(v). */
    int mobility(NodeId v) const { return alap(v) - asap(v); }

    /** Longest path from any source to the start of @p v (= asap). */
    int depth(NodeId v) const { return asap(v); }

    /** Longest path from the start of @p v to the schedule end. */
    int height(NodeId v) const { return scheduleLength() - alap(v); }

    /** Effective latency of @p e at this II (incl. extra latency). */
    int
    effectiveLatency(EdgeId e) const
    {
        const auto &edge = ddg_.edge(e);
        int lat = edge.latency + (extra_ ? (*extra_)[e] : 0);
        return lat - ii_ * edge.distance;
    }

    /**
     * Delay cycles that could be added to @p e without growing the
     * schedule length: alap(dst) - asap(src) - efflat(e).
     */
    int
    slack(EdgeId e) const
    {
        GPSCHED_ASSERT(feasible_, "infeasible analysis queried");
        const auto &edge = ddg_.edge(e);
        return alap_[edge.dst] - asap_[edge.src] - effectiveLatency(e);
    }

    /** Maximum slack over all edges (paper's maxsl); 0 if no edges. */
    int maxSlack() const;

  private:
    const Ddg &ddg_;
    const LatencyTable &latencies_;
    int ii_;
    const std::vector<int> *extra_;
    const SccDecomposition *sccs_;
    bool feasible_ = true;
    int scheduleLength_ = 0;
    std::vector<int> asap_;
    std::vector<int> alap_;

    void compute(const SccDecomposition &sccs);
};

/**
 * Minimum II such that no cycle has positive effective latency
 * (RecMII). Returns 1 for acyclic graphs. @p extra_edge_latency as
 * in DdgAnalysis.
 */
int recMii(const Ddg &ddg,
           const std::vector<int> *extra_edge_latency = nullptr);

/**
 * RecMII recomputed after adding @p delta latency to a single edge,
 * scanning upward from @p base_mii (cheap: the answer lies in
 * [base_mii, base_mii + delta]).
 */
int recMiiWithEdgeDelay(const Ddg &ddg, EdgeId e, int delta,
                        int base_mii);

} // namespace gpsched

#endif // GPSCHED_GRAPH_DDG_ANALYSIS_HH
