#include "graph/textio.hh"

#include <sstream>
#include <string>

#include "support/compile_error.hh"
#include "support/logging.hh"

namespace gpsched
{

void
writeDdgText(std::ostream &os, const Ddg &ddg)
{
    os << "ddg " << ddg.name() << " " << ddg.tripCount() << "\n";
    for (NodeId v = 0; v < ddg.numNodes(); ++v) {
        const auto &n = ddg.node(v);
        os << "node " << toString(n.opcode) << " " << n.label << "\n";
    }
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        const auto &edge = ddg.edge(e);
        os << "edge " << edge.src << " " << edge.dst << " "
           << edge.latency << " " << edge.distance << " "
           << (edge.isFlow() ? "flow" : "order") << "\n";
    }
    os << "end\n";
}

Ddg
readDdgText(std::istream &is)
{
    std::string line;
    bool headerSeen = false;
    Ddg ddg;

    // Parse rejections are per-loop CompileErrors, carrying the
    // block's name once the header has been seen so batch front-ends
    // can attribute the diagnostic to the right loop and move on.
    auto fail = [&](const std::string &message) {
        GPSCHED_COMPILE_ERROR(CompileErrorKind::Parse,
                              headerSeen ? ddg.name() : "", message);
    };

    while (std::getline(is, line)) {
        // Strip comments.
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string keyword;
        if (!(ls >> keyword))
            continue;

        if (keyword == "ddg") {
            std::string name;
            std::int64_t trips = 0;
            if (!(ls >> name >> trips) || trips < 1)
                fail(buildMessage("malformed ddg header: '", line,
                                  "'"));
            ddg = Ddg(name);
            ddg.setTripCount(trips);
            headerSeen = true;
        } else if (keyword == "node") {
            if (!headerSeen)
                fail("node before ddg header");
            std::string mnemonic, label;
            if (!(ls >> mnemonic))
                fail(buildMessage("malformed node line: '", line,
                                  "'"));
            ls >> label; // optional
            Opcode opcode;
            if (!opcodeFromString(mnemonic, opcode))
                fail(buildMessage("unknown opcode mnemonic '",
                                  mnemonic, "'"));
            ddg.addNode(opcode, label);
        } else if (keyword == "edge") {
            if (!headerSeen)
                fail("edge before ddg header");
            int src, dst, lat, dist;
            if (!(ls >> src >> dst >> lat >> dist))
                fail(buildMessage("malformed edge line: '", line,
                                  "'"));
            // Validate here what Ddg::addEdge asserts: its asserts
            // guard against gpsched bugs (panic), but this data is
            // user input and must reject with a recoverable
            // diagnostic instead.
            if (src < 0 || src >= ddg.numNodes() || dst < 0 ||
                dst >= ddg.numNodes())
                fail(buildMessage("edge references unknown node: '",
                                  line, "'"));
            if (lat < 0 || dist < 0)
                fail(buildMessage(
                    "negative edge latency/distance: '", line, "'"));
            if (src == dst && dist < 1)
                fail(buildMessage(
                    "self edge must be loop-carried: '", line, "'"));
            std::string kindText = "flow";
            ls >> kindText; // optional, defaults to flow
            DepKind kind;
            if (kindText == "flow")
                kind = DepKind::Flow;
            else if (kindText == "order")
                kind = DepKind::Order;
            else
                fail(buildMessage("unknown edge kind '", kindText,
                                  "'"));
            if (kind == DepKind::Flow &&
                !definesValue(ddg.node(src).opcode))
                fail(buildMessage("flow edge from non-defining op ",
                                  toString(ddg.node(src).opcode),
                                  ": '", line, "'"));
            ddg.addEdge(src, dst, lat, dist, kind);
        } else if (keyword == "end") {
            if (!headerSeen)
                fail("end before ddg header");
            return ddg;
        } else {
            fail(buildMessage("unknown keyword '", keyword, "'"));
        }
    }
    fail("unexpected end of input while reading ddg");
    GPSCHED_PANIC("unreachable"); // fail() always throws
}

} // namespace gpsched
