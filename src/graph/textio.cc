#include "graph/textio.hh"

#include <sstream>
#include <string>

#include "support/logging.hh"

namespace gpsched
{

void
writeDdgText(std::ostream &os, const Ddg &ddg)
{
    os << "ddg " << ddg.name() << " " << ddg.tripCount() << "\n";
    for (NodeId v = 0; v < ddg.numNodes(); ++v) {
        const auto &n = ddg.node(v);
        os << "node " << toString(n.opcode) << " " << n.label << "\n";
    }
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        const auto &edge = ddg.edge(e);
        os << "edge " << edge.src << " " << edge.dst << " "
           << edge.latency << " " << edge.distance << " "
           << (edge.isFlow() ? "flow" : "order") << "\n";
    }
    os << "end\n";
}

Ddg
readDdgText(std::istream &is)
{
    std::string line;
    bool headerSeen = false;
    Ddg ddg;

    while (std::getline(is, line)) {
        // Strip comments.
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string keyword;
        if (!(ls >> keyword))
            continue;

        if (keyword == "ddg") {
            std::string name;
            std::int64_t trips = 0;
            if (!(ls >> name >> trips) || trips < 1)
                GPSCHED_FATAL("malformed ddg header: '", line, "'");
            ddg = Ddg(name);
            ddg.setTripCount(trips);
            headerSeen = true;
        } else if (keyword == "node") {
            if (!headerSeen)
                GPSCHED_FATAL("node before ddg header");
            std::string mnemonic, label;
            if (!(ls >> mnemonic))
                GPSCHED_FATAL("malformed node line: '", line, "'");
            ls >> label; // optional
            ddg.addNode(opcodeFromString(mnemonic), label);
        } else if (keyword == "edge") {
            if (!headerSeen)
                GPSCHED_FATAL("edge before ddg header");
            int src, dst, lat, dist;
            if (!(ls >> src >> dst >> lat >> dist))
                GPSCHED_FATAL("malformed edge line: '", line, "'");
            if (src < 0 || src >= ddg.numNodes() || dst < 0 ||
                dst >= ddg.numNodes()) {
                GPSCHED_FATAL("edge references unknown node: '", line,
                              "'");
            }
            std::string kindText = "flow";
            ls >> kindText; // optional, defaults to flow
            DepKind kind;
            if (kindText == "flow")
                kind = DepKind::Flow;
            else if (kindText == "order")
                kind = DepKind::Order;
            else
                GPSCHED_FATAL("unknown edge kind '", kindText, "'");
            ddg.addEdge(src, dst, lat, dist, kind);
        } else if (keyword == "end") {
            if (!headerSeen)
                GPSCHED_FATAL("end before ddg header");
            return ddg;
        } else {
            GPSCHED_FATAL("unknown keyword '", keyword, "'");
        }
    }
    GPSCHED_FATAL("unexpected end of input while reading ddg");
}

} // namespace gpsched
