/**
 * @file
 * Clustered VLIW machine description.
 *
 * A machine is a set of clusters — each with its own functional
 * units and register file — connected by one or more classes of
 * non-pipelined buses. The paper's Table-1 presets are the
 * homogeneous special case (every cluster identical, one bus class);
 * the general form also models heterogeneous machines: clusters of
 * different widths or register-file sizes, clusters missing a
 * functional-unit class entirely, and mixed bus fabrics (e.g. one
 * fast bus plus a slower broadcast bus). The memory hierarchy is
 * shared and perfect (every access hits), as in the paper's
 * evaluation.
 *
 * Machines can be built programmatically (the constructors below),
 * parsed from `.machine` description files (machine/machine_desc.hh)
 * or served by name from the registry (machine/registry.hh).
 */

#ifndef GPSCHED_MACHINE_MACHINE_HH
#define GPSCHED_MACHINE_MACHINE_HH

#include <string>
#include <vector>

#include "machine/op.hh"

namespace gpsched
{

/** Resources of one cluster. */
struct ClusterDesc
{
    /** Display name ("c0", "wide", ...); auto-filled when empty. */
    std::string name;

    /** Functional units per class (indexed by FuClass); 0 allowed as
     *  long as the machine keeps at least one unit of each class. */
    int fu[numFuClasses] = {1, 1, 1};

    /** Registers in this cluster's register file (>= 1). */
    int regs = 1;

    /** Issue slots of this cluster (sum of its FUs). */
    int issueWidth() const;

    /** Equal resources (names are display-only and ignored). */
    bool sameResources(const ClusterDesc &other) const;
};

/** One class of inter-cluster buses: @c count identical buses whose
 *  transfers take (and occupy the bus for) @c latency cycles. */
struct BusDesc
{
    int count = 1;
    int latency = 1;
};

/** Describes one clustered VLIW configuration. */
class MachineConfig
{
  public:
    /**
     * General (possibly heterogeneous) form.
     *
     * @param name display name
     * @param clusters per-cluster resources (>= 1 cluster; every FU
     *        class must have at least one unit machine-wide)
     * @param buses bus classes; canonically re-ordered by ascending
     *        latency. A multi-cluster machine needs at least one bus.
     */
    MachineConfig(std::string name, std::vector<ClusterDesc> clusters,
                  std::vector<BusDesc> buses);

    /**
     * Homogeneous convenience form (the paper's Table-1 shape): every
     * cluster gets the same FU counts and an even share of
     * @p total_regs; all buses form a single class.
     *
     * @param name display name ("unified", "2-cluster", ...)
     * @param num_clusters number of clusters (>= 1)
     * @param int_units integer units per cluster
     * @param fp_units FP units per cluster
     * @param mem_units memory ports per cluster
     * @param total_regs registers summed over all clusters (must
     *        divide evenly)
     * @param num_buses inter-cluster buses (0 allowed only when
     *        num_clusters == 1)
     * @param bus_latency cycles a value spends on the bus; the bus is
     *        non-pipelined, so a transfer also occupies the bus for
     *        this many cycles
     */
    MachineConfig(std::string name, int num_clusters, int int_units,
                  int fp_units, int mem_units, int total_regs,
                  int num_buses, int bus_latency);

    /** Display name. */
    const std::string &name() const { return name_; }

    /** Number of clusters. */
    int numClusters() const
    {
        return static_cast<int>(clusters_.size());
    }

    /** True for the single-cluster (unified) configuration. */
    bool unified() const { return clusters_.size() == 1; }

    /** True when every cluster has identical resources. */
    bool homogeneous() const;

    /** Resources of cluster @p c. Inline: read per (cluster, class)
     *  inside the refinement feasibility loops. */
    const ClusterDesc &
    cluster(int c) const
    {
        GPSCHED_ASSERT(c >= 0 && c < numClusters(), "bad cluster ", c);
        return clusters_[c];
    }

    /** Functional units of @p cls in cluster @p c. */
    int
    fuInCluster(int c, FuClass cls) const
    {
        int idx = static_cast<int>(cls);
        GPSCHED_ASSERT(idx >= 0 && idx < numFuClasses, "bad FuClass");
        return cluster(c).fu[idx];
    }

    /** Registers in cluster @p c's register file. */
    int regsInCluster(int c) const { return cluster(c).regs; }

    /** Issue slots of cluster @p c. */
    int issueWidthOfCluster(int c) const
    {
        return cluster(c).issueWidth();
    }

    /** Functional units of @p cls summed over clusters. */
    int totalFu(FuClass cls) const;

    /** Issue slots of the whole machine. */
    int totalIssueWidth() const;

    /** Registers summed over all clusters. */
    int totalRegs() const;

    // --- homogeneous-only conveniences (fatal on heterogeneous
    //     machines; per-cluster code must use the accessors above) ---

    /** Functional units of @p cls in one (any) cluster. */
    int fuPerCluster(FuClass cls) const;

    /** Registers in one (any) cluster's register file. */
    int regsPerCluster() const;

    /** Issue slots of one (any) cluster. */
    int issueWidthPerCluster() const;

    // --- buses ---------------------------------------------------------

    /** Number of bus classes (0 only on unified machines). */
    int numBusClasses() const
    {
        return static_cast<int>(buses_.size());
    }

    /** Bus class @p i (sorted by ascending latency). */
    const BusDesc &busClass(int i) const;

    /** Buses summed over all classes. */
    int numBuses() const;

    /** Latency (and occupancy) of a transfer on bus class @p i. */
    int busLatencyOf(int i) const { return busClass(i).latency; }

    /**
     * Latency of the single bus class (fatal when several classes
     * exist; 1 on bus-less unified machines, matching the historical
     * default).
     */
    int busLatency() const;

    /** Fastest bus latency (1 on bus-less machines; heuristics). */
    int minBusLatency() const;

    /** Slowest bus latency (1 on bus-less machines; heuristics). */
    int maxBusLatency() const;

    /**
     * Capacity-weighted mean transfer latency over every bus class
     * (1 on bus-less machines), the bus-class cost-model input the
     * partitioner's edge weights and estimator use: a class of
     * @c count non-pipelined buses of latency @c lat sustains
     * count/lat transfers per cycle, so the expectation is
     * numBuses() / sum_i(count_i / lat_i), rounded to the nearest
     * cycle. Equals the class latency on single-class fabrics, so
     * every homogeneous Table-1 preset is unaffected.
     */
    int expectedBusLatency() const;

    /** Operation latency/occupancy table. */
    const LatencyTable &latencies() const { return latencies_; }

    /** Mutable access for configuration tweaks. */
    LatencyTable &latencies() { return latencies_; }

    /**
     * Returns a copy renamed to @p name with @p regs total registers
     * (homogeneous machines only; regs must divide evenly).
     */
    MachineConfig withTotalRegs(int regs, const std::string &name) const;

    /** Returns a copy with @p latency bus latency (single class only). */
    MachineConfig withBusLatency(int latency) const;

    /** Returns a copy with @p buses replacing the bus classes. */
    MachineConfig withBusClasses(std::vector<BusDesc> buses,
                                 const std::string &name) const;

    /** One-line human-readable summary. */
    std::string summary() const;

    /** Full structural equality (name, clusters, buses, latencies). */
    bool operator==(const MachineConfig &other) const;
    bool operator!=(const MachineConfig &other) const
    {
        return !(*this == other);
    }

  private:
    std::string name_;
    std::vector<ClusterDesc> clusters_;
    std::vector<BusDesc> buses_; ///< sorted by ascending latency
    LatencyTable latencies_;

    /** Shared constructor validation; fatal on invalid shapes. */
    void validate() const;
};

} // namespace gpsched

#endif // GPSCHED_MACHINE_MACHINE_HH
