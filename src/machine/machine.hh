/**
 * @file
 * Clustered VLIW machine description (paper Table 1).
 *
 * A machine is a set of identical clusters, each with its own
 * functional units and register file, connected by one or more
 * non-pipelined buses of a given latency. The memory hierarchy is
 * shared and perfect (every access hits), as in the paper's
 * evaluation.
 */

#ifndef GPSCHED_MACHINE_MACHINE_HH
#define GPSCHED_MACHINE_MACHINE_HH

#include <string>

#include "machine/op.hh"

namespace gpsched
{

/**
 * Describes one clustered VLIW configuration. All clusters are
 * homogeneous, as in the paper ("total resources ... divided
 * homogeneously among the different clusters").
 */
class MachineConfig
{
  public:
    /**
     * @param name display name ("unified", "2-cluster", ...)
     * @param num_clusters number of clusters (>= 1)
     * @param int_units integer units per cluster
     * @param fp_units FP units per cluster
     * @param mem_units memory ports per cluster
     * @param total_regs registers summed over all clusters
     * @param num_buses inter-cluster buses (0 allowed only when
     *        num_clusters == 1)
     * @param bus_latency cycles a value spends on the bus; the bus is
     *        non-pipelined, so a transfer also occupies the bus for
     *        this many cycles
     */
    MachineConfig(std::string name, int num_clusters, int int_units,
                  int fp_units, int mem_units, int total_regs,
                  int num_buses, int bus_latency);

    /** Display name. */
    const std::string &name() const { return name_; }

    /** Number of clusters. */
    int numClusters() const { return numClusters_; }

    /** True for the single-cluster (unified) configuration. */
    bool unified() const { return numClusters_ == 1; }

    /** Functional units of @p cls in one cluster. */
    int fuPerCluster(FuClass cls) const;

    /** Functional units of @p cls summed over clusters. */
    int totalFu(FuClass cls) const;

    /** Issue slots of one cluster (sum of its FUs). */
    int issueWidthPerCluster() const;

    /** Issue slots of the whole machine. */
    int totalIssueWidth() const;

    /** Registers in one cluster's register file. */
    int regsPerCluster() const;

    /** Registers summed over all clusters. */
    int totalRegs() const { return totalRegs_; }

    /** Number of inter-cluster buses. */
    int numBuses() const { return numBuses_; }

    /** Latency (and occupancy) of one bus transfer. */
    int busLatency() const { return busLatency_; }

    /** Operation latency/occupancy table. */
    const LatencyTable &latencies() const { return latencies_; }

    /** Mutable access for configuration tweaks. */
    LatencyTable &latencies() { return latencies_; }

    /** Returns a copy renamed to @p name with @p regs total registers. */
    MachineConfig withTotalRegs(int regs, const std::string &name) const;

    /** Returns a copy with @p latency bus latency. */
    MachineConfig withBusLatency(int latency) const;

    /** One-line human-readable summary. */
    std::string summary() const;

  private:
    std::string name_;
    int numClusters_;
    int fuPerCluster_[numFuClasses];
    int totalRegs_;
    int numBuses_;
    int busLatency_;
    LatencyTable latencies_;
};

} // namespace gpsched

#endif // GPSCHED_MACHINE_MACHINE_HH
