#include "machine/machine_desc.hh"

#include <fstream>
#include <sstream>

#include "support/logging.hh"

namespace gpsched
{

namespace
{

/** Upper bound on any count in a description; keeps downstream
 *  capacity arithmetic far from overflow. */
constexpr int maxDescValue = 1 << 16;

/** Splits a line into whitespace-separated tokens, '#' starts a
 *  comment. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::string current;
    for (char ch : line) {
        if (ch == '#')
            break;
        if (ch == ' ' || ch == '\t' || ch == '\r') {
            if (!current.empty()) {
                tokens.push_back(current);
                current.clear();
            }
            continue;
        }
        current += ch;
    }
    if (!current.empty())
        tokens.push_back(current);
    return tokens;
}

/** Non-fatal opcode lookup over the op.hh mnemonics. */
std::optional<Opcode>
tryOpcodeFromString(const std::string &text)
{
    for (int i = 0; i < numOpcodes; ++i) {
        Opcode op = static_cast<Opcode>(i);
        if (toString(op) == text)
            return op;
    }
    return std::nullopt;
}

/** Parser state threading the input position into diagnostics. */
class DescParser
{
  public:
    DescParser(std::istream &in, std::string filename)
        : in_(in), filename_(std::move(filename))
    {
    }

    std::optional<MachineConfig>
    run(MachineParseError *error)
    {
        std::optional<MachineConfig> machine = parse();
        if (!machine && error)
            *error = error_;
        return machine;
    }

  private:
    std::istream &in_;
    std::string filename_;
    int line_ = 0;
    MachineParseError error_;

    bool
    fail(int line, const std::string &message)
    {
        error_.file = filename_;
        error_.line = line;
        error_.message = message;
        return false;
    }

    /** Strict bounded integer parse. */
    bool
    parseInt(const std::string &text, const std::string &what,
             int min_value, int &out)
    {
        std::size_t used = 0;
        long value = 0;
        try {
            value = std::stol(text, &used, 10);
        } catch (...) {
            return fail(line_, what + " needs an integer, got '" +
                                    text + "'");
        }
        if (used != text.size())
            return fail(line_, what + " needs an integer, got '" +
                                    text + "'");
        if (value < min_value)
            return fail(line_, what + " must be >= " +
                                    std::to_string(min_value) +
                                    ", got " + text);
        if (value > maxDescValue)
            return fail(line_, what + " is out of range (max " +
                                    std::to_string(maxDescValue) +
                                    ")");
        out = static_cast<int>(value);
        return true;
    }

    bool
    parseCluster(const std::vector<std::string> &tokens,
                 ClusterDesc &cluster)
    {
        if (tokens.size() != 10) {
            return fail(line_,
                        "cluster needs 'cluster NAME int N fp N mem "
                        "N regs N'");
        }
        cluster.name = tokens[1];
        bool seen[4] = {false, false, false, false};
        for (std::size_t i = 2; i + 1 < tokens.size(); i += 2) {
            const std::string &key = tokens[i];
            const std::string &value = tokens[i + 1];
            int slot;
            int *target;
            int min_value = 0;
            if (key == "int") {
                slot = 0;
                target = &cluster.fu[static_cast<int>(FuClass::Int)];
            } else if (key == "fp") {
                slot = 1;
                target = &cluster.fu[static_cast<int>(FuClass::Fp)];
            } else if (key == "mem") {
                slot = 2;
                target = &cluster.fu[static_cast<int>(FuClass::Mem)];
            } else if (key == "regs") {
                slot = 3;
                target = &cluster.regs;
                min_value = 1;
            } else {
                return fail(line_, "unknown cluster keyword '" + key +
                                       "' (int|fp|mem|regs)");
            }
            if (seen[slot])
                return fail(line_, "duplicate cluster keyword '" +
                                       key + "'");
            seen[slot] = true;
            if (!parseInt(value, "cluster " + key, min_value, *target))
                return false;
        }
        for (int s = 0; s < 4; ++s) {
            if (!seen[s]) {
                static const char *names[4] = {"int", "fp", "mem",
                                               "regs"};
                return fail(line_,
                            std::string("cluster is missing '") +
                                names[s] + "'");
            }
        }
        return true;
    }

    bool
    parseBuses(const std::vector<std::string> &tokens, BusDesc &bus)
    {
        if (tokens.size() != 4 || tokens[2] != "latency") {
            return fail(line_,
                        "buses needs 'buses COUNT latency N'");
        }
        return parseInt(tokens[1], "bus count", 1, bus.count) &&
               parseInt(tokens[3], "bus latency", 1, bus.latency);
    }

    bool
    parseLatency(const std::vector<std::string> &tokens,
                 LatencyTable &lat)
    {
        if (tokens.size() != 3 &&
            (tokens.size() != 5 || tokens[3] != "occupancy")) {
            return fail(line_, "latency needs 'latency OPCODE N "
                               "[occupancy N]'");
        }
        std::optional<Opcode> op = tryOpcodeFromString(tokens[1]);
        if (!op) {
            return fail(line_,
                        "unknown opcode mnemonic '" + tokens[1] + "'");
        }
        OpTiming timing = lat.timing(*op);
        if (!parseInt(tokens[2], "latency", 1, timing.latency))
            return false;
        if (tokens.size() == 5 &&
            !parseInt(tokens[4], "occupancy", 1, timing.occupancy))
            return false;
        lat.setTiming(*op, timing);
        return true;
    }

    std::optional<MachineConfig>
    parse()
    {
        std::string name;
        std::vector<ClusterDesc> clusters;
        std::vector<BusDesc> buses;
        LatencyTable latencies;
        bool sawMachine = false;
        bool sawEnd = false;
        int endLine = 0;

        std::string text;
        while (std::getline(in_, text)) {
            ++line_;
            std::vector<std::string> tokens = tokenize(text);
            if (tokens.empty())
                continue;
            if (sawEnd) {
                fail(line_, "unexpected '" + tokens[0] +
                                "' after 'end'");
                return std::nullopt;
            }
            const std::string &directive = tokens[0];
            if (!sawMachine) {
                if (directive != "machine" || tokens.size() != 2) {
                    fail(line_,
                         "a description starts with 'machine NAME'");
                    return std::nullopt;
                }
                name = tokens[1];
                sawMachine = true;
                continue;
            }
            if (directive == "machine") {
                fail(line_, "duplicate 'machine' directive");
                return std::nullopt;
            } else if (directive == "cluster") {
                ClusterDesc cluster;
                if (!parseCluster(tokens, cluster))
                    return std::nullopt;
                for (const ClusterDesc &existing : clusters) {
                    if (existing.name == cluster.name) {
                        fail(line_, "duplicate cluster name '" +
                                        cluster.name + "'");
                        return std::nullopt;
                    }
                }
                clusters.push_back(cluster);
            } else if (directive == "buses") {
                BusDesc bus;
                if (!parseBuses(tokens, bus))
                    return std::nullopt;
                buses.push_back(bus);
            } else if (directive == "latency") {
                if (!parseLatency(tokens, latencies))
                    return std::nullopt;
            } else if (directive == "end") {
                if (tokens.size() != 1) {
                    fail(line_, "'end' takes no arguments");
                    return std::nullopt;
                }
                sawEnd = true;
                endLine = line_;
            } else {
                fail(line_,
                     "unknown directive '" + directive +
                         "' (cluster|buses|latency|end)");
                return std::nullopt;
            }
        }
        if (!sawMachine) {
            fail(0, "empty description: expected 'machine NAME'");
            return std::nullopt;
        }
        if (!sawEnd) {
            fail(line_, "missing 'end' directive");
            return std::nullopt;
        }

        // Whole-machine validation, anchored to the 'end' line. The
        // same invariants MachineConfig enforces fatally are reported
        // as diagnostics here.
        if (clusters.empty()) {
            fail(endLine, "machine needs at least one cluster");
            return std::nullopt;
        }
        for (const ClusterDesc &cluster : clusters) {
            if (cluster.issueWidth() < 1) {
                fail(endLine, "cluster '" + cluster.name +
                                  "' has no functional units");
                return std::nullopt;
            }
        }
        for (int k = 0; k < numFuClasses; ++k) {
            int total = 0;
            for (const ClusterDesc &cluster : clusters)
                total += cluster.fu[k];
            if (total < 1) {
                fail(endLine,
                     "machine has no " +
                         toString(static_cast<FuClass>(k)) +
                         " unit in any cluster");
                return std::nullopt;
            }
        }
        if (clusters.size() > 1 && buses.empty()) {
            fail(endLine, "clustered machines need at least one bus");
            return std::nullopt;
        }
        if (clusters.size() == 1 && !buses.empty()) {
            fail(endLine,
                 "a unified machine must not declare buses");
            return std::nullopt;
        }

        MachineConfig machine(name, std::move(clusters),
                              std::move(buses));
        machine.latencies() = latencies;
        return machine;
    }
};

} // namespace

std::string
MachineParseError::toString() const
{
    std::ostringstream oss;
    oss << (file.empty() ? "<machine>" : file) << ":" << line << ": "
        << message;
    return oss.str();
}

std::optional<MachineConfig>
parseMachineDesc(std::istream &in, const std::string &filename,
                 MachineParseError *error)
{
    DescParser parser(in, filename);
    return parser.run(error);
}

std::optional<MachineConfig>
parseMachineDescText(const std::string &text, MachineParseError *error)
{
    std::istringstream in(text);
    return parseMachineDesc(in, "<string>", error);
}

std::optional<MachineConfig>
parseMachineDescFile(const std::string &path, MachineParseError *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error) {
            error->file = path;
            error->line = 0;
            error->message = "cannot open machine description file";
        }
        return std::nullopt;
    }
    return parseMachineDesc(in, path, error);
}

MachineConfig
loadMachineFile(const std::string &path)
{
    MachineParseError error;
    std::optional<MachineConfig> machine =
        parseMachineDescFile(path, &error);
    if (!machine)
        GPSCHED_FATAL(error.toString());
    return *machine;
}

void
writeMachineDesc(std::ostream &os, const MachineConfig &machine)
{
    os << "machine " << machine.name() << "\n";
    for (int c = 0; c < machine.numClusters(); ++c) {
        const ClusterDesc &cluster = machine.cluster(c);
        os << "cluster " << cluster.name << " int "
           << cluster.fu[static_cast<int>(FuClass::Int)] << " fp "
           << cluster.fu[static_cast<int>(FuClass::Fp)] << " mem "
           << cluster.fu[static_cast<int>(FuClass::Mem)] << " regs "
           << cluster.regs << "\n";
    }
    for (int i = 0; i < machine.numBusClasses(); ++i) {
        const BusDesc &bus = machine.busClass(i);
        os << "buses " << bus.count << " latency " << bus.latency
           << "\n";
    }
    // Only timings differing from the defaults, so preset files stay
    // minimal and a default-built table round-trips to nothing.
    LatencyTable defaults;
    for (int i = 0; i < numOpcodes; ++i) {
        Opcode op = static_cast<Opcode>(i);
        const OpTiming &timing = machine.latencies().timing(op);
        if (timing == defaults.timing(op))
            continue;
        os << "latency " << toString(op) << " " << timing.latency
           << " occupancy " << timing.occupancy << "\n";
    }
    os << "end\n";
}

std::string
machineDescText(const MachineConfig &machine)
{
    std::ostringstream oss;
    writeMachineDesc(oss, machine);
    return oss.str();
}

} // namespace gpsched
