/**
 * @file
 * `.machine` files: a validating, line-oriented text format for
 * clustered-machine descriptions, so a new processor scenario is a
 * ten-line file instead of a code change.
 *
 * Grammar (one directive per line; '#' starts a comment; blank lines
 * are ignored):
 *
 *   machine NAME                             # first directive
 *   cluster NAME int N fp N mem N regs N     # one per cluster
 *   buses COUNT latency N                    # one per bus class
 *   latency OPCODE N [occupancy N]           # timing override
 *   end                                      # last directive
 *
 * The four cluster resource keywords may appear in any order but each
 * exactly once. A cluster may declare 0 units of a class as long as
 * the machine keeps at least one unit of that class somewhere; a
 * multi-cluster machine needs at least one bus. OPCODE uses the
 * mnemonics of machine/op.hh ("ialu", "fmul", "load", ...).
 *
 * Parsing never aborts the process: malformed input yields a
 * MachineParseError with the offending file and line. The writer
 * emits a canonical form that parses back to an identical
 * MachineConfig (round-trip exactness is unit-tested).
 */

#ifndef GPSCHED_MACHINE_MACHINE_DESC_HH
#define GPSCHED_MACHINE_MACHINE_DESC_HH

#include <iosfwd>
#include <optional>
#include <string>

#include "machine/machine.hh"

namespace gpsched
{

/** One line-anchored parse diagnostic. */
struct MachineParseError
{
    std::string file; ///< display name of the input
    int line = 0;     ///< 1-based; 0 when the input ended early
    std::string message;

    /** "file:line: message" (the classic compiler diagnostic shape). */
    std::string toString() const;
};

/**
 * Parses one `.machine` description from @p in. @p filename is used
 * in diagnostics only. Returns std::nullopt and fills @p error (when
 * non-null) on malformed input.
 */
std::optional<MachineConfig>
parseMachineDesc(std::istream &in, const std::string &filename,
                 MachineParseError *error = nullptr);

/** Parses @p text (diagnostics name it "<string>"). */
std::optional<MachineConfig>
parseMachineDescText(const std::string &text,
                     MachineParseError *error = nullptr);

/** Opens and parses @p path; unreadable files are a parse error. */
std::optional<MachineConfig>
parseMachineDescFile(const std::string &path,
                     MachineParseError *error = nullptr);

/** File parse for tools: fatal with the full diagnostic on failure. */
MachineConfig loadMachineFile(const std::string &path);

/** Writes @p machine in canonical `.machine` form. */
void writeMachineDesc(std::ostream &os, const MachineConfig &machine);

/** writeMachineDesc into a string. */
std::string machineDescText(const MachineConfig &machine);

} // namespace gpsched

#endif // GPSCHED_MACHINE_MACHINE_DESC_HH
