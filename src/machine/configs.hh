/**
 * @file
 * Preset machine configurations reproducing paper Table 1. All
 * presets are 12-issue with total resources divided homogeneously:
 *
 *   unified    1 cluster  x (4 INT, 4 FP, 4 MEM)
 *   2-cluster  2 clusters x (2 INT, 2 FP, 2 MEM)
 *   4-cluster  4 clusters x (1 INT, 1 FP, 1 MEM)
 *
 * The evaluation varies total registers (32 / 64) and bus latency
 * (1 / 2) with a single bus, exactly as Figures 2 and 3 do.
 */

#ifndef GPSCHED_MACHINE_CONFIGS_HH
#define GPSCHED_MACHINE_CONFIGS_HH

#include <vector>

#include "machine/machine.hh"

namespace gpsched
{

/** Unified 12-issue machine (paper baseline). */
MachineConfig unifiedConfig(int total_regs);

/** 2-cluster machine, 1 bus of @p bus_latency cycles. */
MachineConfig twoClusterConfig(int total_regs, int bus_latency = 1,
                               int num_buses = 1);

/** 4-cluster machine, 1 bus of @p bus_latency cycles. */
MachineConfig fourClusterConfig(int total_regs, int bus_latency = 1,
                                int num_buses = 1);

/** Every configuration Table 1 / Figures 2-3 evaluate. */
std::vector<MachineConfig> table1Configs();

} // namespace gpsched

#endif // GPSCHED_MACHINE_CONFIGS_HH
