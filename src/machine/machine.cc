#include "machine/machine.hh"

#include <sstream>

#include "support/logging.hh"

namespace gpsched
{

MachineConfig::MachineConfig(std::string name, int num_clusters,
                             int int_units, int fp_units, int mem_units,
                             int total_regs, int num_buses,
                             int bus_latency)
    : name_(std::move(name)), numClusters_(num_clusters),
      totalRegs_(total_regs), numBuses_(num_buses),
      busLatency_(bus_latency)
{
    if (num_clusters < 1)
        GPSCHED_FATAL("machine needs at least one cluster");
    if (int_units < 1 || fp_units < 1 || mem_units < 1)
        GPSCHED_FATAL("each cluster needs at least one FU per class");
    if (total_regs < num_clusters)
        GPSCHED_FATAL("need at least one register per cluster");
    if (total_regs % num_clusters != 0)
        GPSCHED_FATAL("total registers (", total_regs,
                      ") must divide evenly among ", num_clusters,
                      " clusters");
    if (num_clusters > 1 && num_buses < 1)
        GPSCHED_FATAL("clustered machines need at least one bus");
    if (num_buses > 0 && bus_latency < 1)
        GPSCHED_FATAL("bus latency must be >= 1");

    fuPerCluster_[static_cast<int>(FuClass::Int)] = int_units;
    fuPerCluster_[static_cast<int>(FuClass::Fp)] = fp_units;
    fuPerCluster_[static_cast<int>(FuClass::Mem)] = mem_units;
}

int
MachineConfig::fuPerCluster(FuClass cls) const
{
    int idx = static_cast<int>(cls);
    GPSCHED_ASSERT(idx >= 0 && idx < numFuClasses, "bad FuClass");
    return fuPerCluster_[idx];
}

int
MachineConfig::totalFu(FuClass cls) const
{
    return fuPerCluster(cls) * numClusters_;
}

int
MachineConfig::issueWidthPerCluster() const
{
    int width = 0;
    for (int i = 0; i < numFuClasses; ++i)
        width += fuPerCluster_[i];
    return width;
}

int
MachineConfig::totalIssueWidth() const
{
    return issueWidthPerCluster() * numClusters_;
}

int
MachineConfig::regsPerCluster() const
{
    return totalRegs_ / numClusters_;
}

MachineConfig
MachineConfig::withTotalRegs(int regs, const std::string &name) const
{
    MachineConfig copy(name, numClusters_,
                       fuPerCluster(FuClass::Int),
                       fuPerCluster(FuClass::Fp),
                       fuPerCluster(FuClass::Mem),
                       regs, numBuses_, busLatency_);
    copy.latencies_ = latencies_;
    return copy;
}

MachineConfig
MachineConfig::withBusLatency(int latency) const
{
    MachineConfig copy(name_, numClusters_,
                       fuPerCluster(FuClass::Int),
                       fuPerCluster(FuClass::Fp),
                       fuPerCluster(FuClass::Mem),
                       totalRegs_, numBuses_, latency);
    copy.latencies_ = latencies_;
    return copy;
}

std::string
MachineConfig::summary() const
{
    std::ostringstream oss;
    oss << name_ << ": " << numClusters_ << " cluster(s) x ["
        << fuPerCluster(FuClass::Int) << " INT, "
        << fuPerCluster(FuClass::Fp) << " FP, "
        << fuPerCluster(FuClass::Mem) << " MEM, "
        << regsPerCluster() << " regs]";
    if (numClusters_ > 1) {
        oss << ", " << numBuses_ << " bus(es) lat " << busLatency_;
    }
    return oss.str();
}

} // namespace gpsched
