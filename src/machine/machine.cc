#include "machine/machine.hh"

#include <algorithm>
#include <sstream>

#include "support/logging.hh"

namespace gpsched
{

int
ClusterDesc::issueWidth() const
{
    int width = 0;
    for (int i = 0; i < numFuClasses; ++i)
        width += fu[i];
    return width;
}

bool
ClusterDesc::sameResources(const ClusterDesc &other) const
{
    for (int i = 0; i < numFuClasses; ++i) {
        if (fu[i] != other.fu[i])
            return false;
    }
    return regs == other.regs;
}

MachineConfig::MachineConfig(std::string name,
                             std::vector<ClusterDesc> clusters,
                             std::vector<BusDesc> buses)
    : name_(std::move(name)), clusters_(std::move(clusters)),
      buses_(std::move(buses))
{
    for (std::size_t c = 0; c < clusters_.size(); ++c) {
        if (clusters_[c].name.empty())
            clusters_[c].name = "c" + std::to_string(c);
    }
    // Canonical bus-class order: fastest first (the transfer planner
    // tries classes in order), count as tie-break. Equal machines
    // thus encode identically regardless of declaration order.
    std::stable_sort(buses_.begin(), buses_.end(),
                     [](const BusDesc &a, const BusDesc &b) {
                         if (a.latency != b.latency)
                             return a.latency < b.latency;
                         return a.count < b.count;
                     });
    validate();
}

MachineConfig::MachineConfig(std::string name, int num_clusters,
                             int int_units, int fp_units, int mem_units,
                             int total_regs, int num_buses,
                             int bus_latency)
    : name_(std::move(name))
{
    if (num_clusters < 1)
        GPSCHED_FATAL("machine needs at least one cluster");
    if (int_units < 1 || fp_units < 1 || mem_units < 1)
        GPSCHED_FATAL("each cluster needs at least one FU per class");
    if (total_regs < num_clusters)
        GPSCHED_FATAL("need at least one register per cluster");
    if (total_regs % num_clusters != 0)
        GPSCHED_FATAL("total registers (", total_regs,
                      ") must divide evenly among ", num_clusters,
                      " clusters");
    if (num_buses > 0 && bus_latency < 1)
        GPSCHED_FATAL("bus latency must be >= 1");

    clusters_.resize(num_clusters);
    for (int c = 0; c < num_clusters; ++c) {
        ClusterDesc &cl = clusters_[c];
        cl.name = "c" + std::to_string(c);
        cl.fu[static_cast<int>(FuClass::Int)] = int_units;
        cl.fu[static_cast<int>(FuClass::Fp)] = fp_units;
        cl.fu[static_cast<int>(FuClass::Mem)] = mem_units;
        cl.regs = total_regs / num_clusters;
    }
    if (num_buses > 0)
        buses_.push_back(BusDesc{num_buses, bus_latency});
    validate();
}

void
MachineConfig::validate() const
{
    if (clusters_.empty())
        GPSCHED_FATAL("machine needs at least one cluster");
    for (const ClusterDesc &cl : clusters_) {
        for (int k = 0; k < numFuClasses; ++k) {
            if (cl.fu[k] < 0)
                GPSCHED_FATAL("cluster '", cl.name,
                              "' has a negative ",
                              toString(static_cast<FuClass>(k)),
                              " unit count");
        }
        if (cl.issueWidth() < 1)
            GPSCHED_FATAL("cluster '", cl.name,
                          "' has no functional units");
        if (cl.regs < 1)
            GPSCHED_FATAL("cluster '", cl.name,
                          "' needs at least one register");
    }
    for (int k = 0; k < numFuClasses; ++k) {
        if (totalFu(static_cast<FuClass>(k)) < 1)
            GPSCHED_FATAL("machine has no ",
                          toString(static_cast<FuClass>(k)),
                          " unit in any cluster");
    }
    if (clusters_.size() > 1 && numBuses() < 1)
        GPSCHED_FATAL("clustered machines need at least one bus");
    for (const BusDesc &bus : buses_) {
        if (bus.count < 1)
            GPSCHED_FATAL("bus class needs a positive count");
        if (bus.latency < 1)
            GPSCHED_FATAL("bus latency must be >= 1");
    }
}

bool
MachineConfig::homogeneous() const
{
    for (std::size_t c = 1; c < clusters_.size(); ++c) {
        if (!clusters_[c].sameResources(clusters_[0]))
            return false;
    }
    return true;
}

int
MachineConfig::totalFu(FuClass cls) const
{
    int idx = static_cast<int>(cls);
    GPSCHED_ASSERT(idx >= 0 && idx < numFuClasses, "bad FuClass");
    int total = 0;
    for (const ClusterDesc &cl : clusters_)
        total += cl.fu[idx];
    return total;
}

int
MachineConfig::totalIssueWidth() const
{
    int width = 0;
    for (const ClusterDesc &cl : clusters_)
        width += cl.issueWidth();
    return width;
}

int
MachineConfig::totalRegs() const
{
    int total = 0;
    for (const ClusterDesc &cl : clusters_)
        total += cl.regs;
    return total;
}

int
MachineConfig::fuPerCluster(FuClass cls) const
{
    GPSCHED_ASSERT(homogeneous(),
                   "fuPerCluster on heterogeneous machine '", name_,
                   "'; use fuInCluster(c, cls)");
    return fuInCluster(0, cls);
}

int
MachineConfig::regsPerCluster() const
{
    GPSCHED_ASSERT(homogeneous(),
                   "regsPerCluster on heterogeneous machine '", name_,
                   "'; use regsInCluster(c)");
    return clusters_[0].regs;
}

int
MachineConfig::issueWidthPerCluster() const
{
    GPSCHED_ASSERT(homogeneous(),
                   "issueWidthPerCluster on heterogeneous machine '",
                   name_, "'; use issueWidthOfCluster(c)");
    return clusters_[0].issueWidth();
}

const BusDesc &
MachineConfig::busClass(int i) const
{
    GPSCHED_ASSERT(i >= 0 && i < numBusClasses(), "bad bus class ", i);
    return buses_[i];
}

int
MachineConfig::numBuses() const
{
    int total = 0;
    for (const BusDesc &bus : buses_)
        total += bus.count;
    return total;
}

int
MachineConfig::busLatency() const
{
    GPSCHED_ASSERT(buses_.size() <= 1,
                   "busLatency on multi-bus-class machine '", name_,
                   "'; use busLatencyOf(i)");
    return buses_.empty() ? 1 : buses_[0].latency;
}

int
MachineConfig::minBusLatency() const
{
    // Classes are sorted by ascending latency.
    return buses_.empty() ? 1 : buses_.front().latency;
}

int
MachineConfig::maxBusLatency() const
{
    return buses_.empty() ? 1 : buses_.back().latency;
}

int
MachineConfig::expectedBusLatency() const
{
    if (buses_.empty())
        return 1;
    // A non-pipelined bus of latency L sustains count/L transfers per
    // cycle. If the fabric's traffic spreads in proportion to that
    // capacity, the mean latency a transfer observes is
    //
    //   sum_i cap_i * lat_i / sum_i cap_i  =  numBuses / sum_i cap_i.
    //
    // Exactly the class latency when one class exists, so homogeneous
    // fabrics (every Table-1 machine) are unaffected by heuristics
    // switching from minBusLatency() to this model.
    double capacity = 0.0;
    for (const BusDesc &bus : buses_)
        capacity += static_cast<double>(bus.count) / bus.latency;
    double expected = static_cast<double>(numBuses()) / capacity;
    int rounded = static_cast<int>(expected + 0.5);
    return std::max(1, rounded);
}

MachineConfig
MachineConfig::withTotalRegs(int regs, const std::string &name) const
{
    GPSCHED_ASSERT(homogeneous(),
                   "withTotalRegs on heterogeneous machine '", name_,
                   "'");
    const int num_clusters = numClusters();
    if (regs < num_clusters || regs % num_clusters != 0)
        GPSCHED_FATAL("total registers (", regs,
                      ") must divide evenly among ", num_clusters,
                      " clusters");
    std::vector<ClusterDesc> clusters = clusters_;
    for (ClusterDesc &cl : clusters)
        cl.regs = regs / num_clusters;
    MachineConfig copy(name, std::move(clusters), buses_);
    copy.latencies_ = latencies_;
    return copy;
}

MachineConfig
MachineConfig::withBusLatency(int latency) const
{
    GPSCHED_ASSERT(buses_.size() == 1,
                   "withBusLatency needs exactly one bus class");
    std::vector<BusDesc> buses = buses_;
    buses[0].latency = latency;
    MachineConfig copy(name_, clusters_, std::move(buses));
    copy.latencies_ = latencies_;
    return copy;
}

MachineConfig
MachineConfig::withBusClasses(std::vector<BusDesc> buses,
                              const std::string &name) const
{
    MachineConfig copy(name, clusters_, std::move(buses));
    copy.latencies_ = latencies_;
    return copy;
}

std::string
MachineConfig::summary() const
{
    std::ostringstream oss;
    oss << name_ << ": ";
    if (homogeneous()) {
        oss << numClusters() << " cluster(s) x ["
            << fuInCluster(0, FuClass::Int) << " INT, "
            << fuInCluster(0, FuClass::Fp) << " FP, "
            << fuInCluster(0, FuClass::Mem) << " MEM, "
            << clusters_[0].regs << " regs]";
    } else {
        for (int c = 0; c < numClusters(); ++c) {
            const ClusterDesc &cl = clusters_[c];
            if (c > 0)
                oss << " + ";
            oss << cl.name << "[" << cl.fu[0] << " INT, " << cl.fu[1]
                << " FP, " << cl.fu[2] << " MEM, " << cl.regs
                << " regs]";
        }
    }
    for (const BusDesc &bus : buses_)
        oss << ", " << bus.count << " bus(es) lat " << bus.latency;
    return oss.str();
}

bool
MachineConfig::operator==(const MachineConfig &other) const
{
    if (name_ != other.name_ ||
        clusters_.size() != other.clusters_.size() ||
        buses_.size() != other.buses_.size())
        return false;
    for (std::size_t c = 0; c < clusters_.size(); ++c) {
        if (clusters_[c].name != other.clusters_[c].name ||
            !clusters_[c].sameResources(other.clusters_[c]))
            return false;
    }
    for (std::size_t i = 0; i < buses_.size(); ++i) {
        if (buses_[i].count != other.buses_[i].count ||
            buses_[i].latency != other.buses_[i].latency)
            return false;
    }
    return latencies_ == other.latencies_;
}

} // namespace gpsched
