#include "machine/op.hh"

#include "support/logging.hh"

namespace gpsched
{

std::string
toString(FuClass cls)
{
    switch (cls) {
      case FuClass::Int: return "INT";
      case FuClass::Fp:  return "FP";
      case FuClass::Mem: return "MEM";
      default: GPSCHED_PANIC("bad FuClass ", static_cast<int>(cls));
    }
}

std::string
toString(Opcode op)
{
    switch (op) {
      case Opcode::IAlu:    return "ialu";
      case Opcode::IMul:    return "imul";
      case Opcode::IDiv:    return "idiv";
      case Opcode::FAdd:    return "fadd";
      case Opcode::FMul:    return "fmul";
      case Opcode::FDiv:    return "fdiv";
      case Opcode::Load:    return "load";
      case Opcode::Store:   return "store";
      case Opcode::BusCopy: return "buscopy";
      case Opcode::SpillSt: return "spillst";
      case Opcode::SpillLd: return "spillld";
      case Opcode::CommSt:  return "commst";
      case Opcode::CommLd:  return "commld";
      default: GPSCHED_PANIC("bad Opcode ", static_cast<int>(op));
    }
}

Opcode
opcodeFromString(const std::string &text)
{
    Opcode op;
    if (!opcodeFromString(text, op))
        GPSCHED_FATAL("unknown opcode mnemonic '", text, "'");
    return op;
}

bool
opcodeFromString(const std::string &text, Opcode &op)
{
    for (int i = 0; i < numOpcodes; ++i) {
        Opcode candidate = static_cast<Opcode>(i);
        if (toString(candidate) == text) {
            op = candidate;
            return true;
        }
    }
    return false;
}

bool
isProgramOpcode(Opcode op)
{
    switch (op) {
      case Opcode::IAlu:
      case Opcode::IMul:
      case Opcode::IDiv:
      case Opcode::FAdd:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::Load:
      case Opcode::Store:
        return true;
      default:
        return false;
    }
}

bool
isMemoryOpcode(Opcode op)
{
    switch (op) {
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::SpillSt:
      case Opcode::SpillLd:
      case Opcode::CommSt:
      case Opcode::CommLd:
        return true;
      default:
        return false;
    }
}

bool
definesValue(Opcode op)
{
    switch (op) {
      case Opcode::Store:
      case Opcode::SpillSt:
      case Opcode::CommSt:
        return false;
      default:
        return true;
    }
}

LatencyTable::LatencyTable()
{
    auto set = [this](Opcode op, int lat, int occ) {
        timings_[static_cast<int>(op)] = OpTiming{lat, occ};
    };
    set(Opcode::IAlu, 1, 1);
    set(Opcode::IMul, 2, 1);
    set(Opcode::IDiv, 6, 6);   // non-pipelined
    set(Opcode::FAdd, 3, 1);
    set(Opcode::FMul, 4, 1);
    set(Opcode::FDiv, 12, 12); // non-pipelined
    set(Opcode::Load, 2, 1);
    set(Opcode::Store, 1, 1);
    // BusCopy latency is the bus latency; occupancy handled by the
    // bus reservation table. The entry here is a placeholder.
    set(Opcode::BusCopy, 1, 1);
    set(Opcode::SpillSt, 1, 1);
    set(Opcode::SpillLd, 2, 1);
    set(Opcode::CommSt, 1, 1);
    set(Opcode::CommLd, 2, 1);
}

void
LatencyTable::setTiming(Opcode op, OpTiming timing)
{
    GPSCHED_ASSERT(timing.latency >= 0 && timing.occupancy >= 1,
                   "invalid timing for ", toString(op));
    timings_[static_cast<int>(op)] = timing;
}

} // namespace gpsched
