#include "machine/configs.hh"

#include <sstream>

namespace gpsched
{

namespace
{

std::string
configName(const char *base, int regs, int bus_latency)
{
    std::ostringstream oss;
    oss << base << "-r" << regs;
    if (bus_latency > 0)
        oss << "-b" << bus_latency;
    return oss.str();
}

} // namespace

MachineConfig
unifiedConfig(int total_regs)
{
    return MachineConfig(configName("unified", total_regs, 0), 1, 4, 4,
                         4, total_regs, 0, 1);
}

MachineConfig
twoClusterConfig(int total_regs, int bus_latency, int num_buses)
{
    return MachineConfig(configName("2c", total_regs, bus_latency), 2,
                         2, 2, 2, total_regs, num_buses, bus_latency);
}

MachineConfig
fourClusterConfig(int total_regs, int bus_latency, int num_buses)
{
    return MachineConfig(configName("4c", total_regs, bus_latency), 4,
                         1, 1, 1, total_regs, num_buses, bus_latency);
}

std::vector<MachineConfig>
table1Configs()
{
    std::vector<MachineConfig> configs;
    for (int regs : {32, 64}) {
        configs.push_back(unifiedConfig(regs));
        for (int lat : {1, 2}) {
            configs.push_back(twoClusterConfig(regs, lat));
            configs.push_back(fourClusterConfig(regs, lat));
        }
    }
    return configs;
}

} // namespace gpsched
