/**
 * @file
 * Named machine registry: serves the paper's Table-1 presets — each
 * routed through the `.machine` description layer, so the text format
 * is exercised on every lookup path — and resolves user-supplied
 * names or `.machine` file paths for the CLI and bench drivers.
 */

#ifndef GPSCHED_MACHINE_REGISTRY_HH
#define GPSCHED_MACHINE_REGISTRY_HH

#include <string>
#include <vector>

#include "machine/machine.hh"

namespace gpsched
{

/** Ordered collection of named machine configurations. */
class MachineRegistry
{
  public:
    /**
     * Builds a registry holding every Table-1 preset
     * (machine/configs.hh), each one serialized to `.machine` text
     * and parsed back — the registry fails fast if the description
     * layer ever stops round-tripping the presets exactly.
     */
    MachineRegistry();

    /** Shared read-only instance with the built-in presets. */
    static const MachineRegistry &builtin();

    /** Registered names, in registration order. */
    std::vector<std::string> names() const;

    /** Registered names joined for diagnostics ("a|b|c"). */
    std::string namesSummary() const;

    /** Looks @p name up; nullptr when absent. */
    const MachineConfig *find(const std::string &name) const;

    /** Looks @p name up; fatal (listing known names) when absent. */
    MachineConfig get(const std::string &name) const;

    /** Registers @p config under its name; fatal on duplicates. */
    void add(MachineConfig config);

    /**
     * Resolves a user-supplied machine spec: a registered name, or a
     * path to a `.machine` file (recognized by a '/' or a ".machine"
     * suffix). Fatal with a helpful message when neither works.
     */
    MachineConfig resolve(const std::string &name_or_path) const;

    /**
     * Resolves every `.machine` file directly under @p dir, sorted
     * by filename so results are stable across filesystems — the
     * shared discovery path of the bench_corpus sweep and the
     * property tests' corpus coverage, so the two can never drift.
     * Fatal when @p dir cannot be read or a file fails to parse;
     * returns an empty vector for a directory without `.machine`
     * files.
     */
    std::vector<MachineConfig>
    resolveDirectory(const std::string &dir) const;

    /** Number of registered machines. */
    int size() const { return static_cast<int>(configs_.size()); }

    /** Registered machine @p i in registration order. */
    const MachineConfig &at(int i) const;

  private:
    std::vector<MachineConfig> configs_;
};

} // namespace gpsched

#endif // GPSCHED_MACHINE_REGISTRY_HH
