/**
 * @file
 * Operation model: opcodes, functional-unit classes, latencies and
 * occupancies for the clustered VLIW target.
 *
 * Opcodes split into two groups. Program opcodes appear in the input
 * DDG; overhead opcodes (spill stores/loads, communication stores/
 * loads and bus copies) are introduced by the schedulers and never by
 * workloads. IPC accounting counts program ops only (see DESIGN.md,
 * substitution 4).
 */

#ifndef GPSCHED_MACHINE_OP_HH
#define GPSCHED_MACHINE_OP_HH

#include <cstdint>
#include <string>

#include "support/logging.hh"

namespace gpsched
{

/** Functional-unit classes of the clustered VLIW (Table 1). */
enum class FuClass : std::uint8_t
{
    Int,    ///< integer ALU / multiply / divide
    Fp,     ///< floating-point add / multiply / divide
    Mem,    ///< memory port (loads, stores, spill, mem-comms)
    NumClasses
};

/** Number of distinct functional-unit classes. */
constexpr int numFuClasses =
    static_cast<int>(FuClass::NumClasses);

/** Returns a short printable name ("INT", "FP", "MEM"). */
std::string toString(FuClass cls);

/** Opcodes recognized by the machine model. */
enum class Opcode : std::uint8_t
{
    // --- program opcodes (may appear in workload DDGs) ---
    IAlu,      ///< integer add/sub/logic/compare
    IMul,      ///< integer multiply
    IDiv,      ///< integer divide (non-pipelined)
    FAdd,      ///< FP add/subtract
    FMul,      ///< FP multiply
    FDiv,      ///< FP divide (non-pipelined)
    Load,      ///< memory load
    Store,     ///< memory store
    // --- overhead opcodes (inserted by schedulers only) ---
    BusCopy,   ///< inter-cluster register copy over a bus
    SpillSt,   ///< spill store (register -> memory)
    SpillLd,   ///< spill load  (memory -> register)
    CommSt,    ///< communication-through-memory store
    CommLd,    ///< communication-through-memory load
    NumOpcodes
};

/** Number of distinct opcodes. */
constexpr int numOpcodes = static_cast<int>(Opcode::NumOpcodes);

/** Returns a short printable mnemonic. */
std::string toString(Opcode op);

/** Parses a mnemonic produced by toString(); fatal on unknown text. */
Opcode opcodeFromString(const std::string &text);

/** Non-fatal parse: sets @p op and returns true iff @p text is a
 *  known mnemonic (for user-input paths that reject recoverably). */
bool opcodeFromString(const std::string &text, Opcode &op);

/** True for opcodes that may appear in an input (workload) DDG. */
bool isProgramOpcode(Opcode op);

/** True for opcodes executed on a memory port. */
bool isMemoryOpcode(Opcode op);

/** True for opcodes that write a register (define a value). */
bool definesValue(Opcode op);

/**
 * Functional-unit class executing @p op. BusCopy is special: it
 * consumes a bus slot, not a functional unit, and must not be passed
 * here. Inline: called per node inside every occupancy and
 * scheduling loop; the switch compiles to a table lookup.
 */
inline FuClass
fuClassOf(Opcode op)
{
    switch (op) {
      case Opcode::IAlu:
      case Opcode::IMul:
      case Opcode::IDiv:
        return FuClass::Int;
      case Opcode::FAdd:
      case Opcode::FMul:
      case Opcode::FDiv:
        return FuClass::Fp;
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::SpillSt:
      case Opcode::SpillLd:
      case Opcode::CommSt:
      case Opcode::CommLd:
        return FuClass::Mem;
      case Opcode::BusCopy:
        GPSCHED_PANIC("BusCopy executes on a bus, not a FU");
      default:
        GPSCHED_PANIC("bad Opcode ", static_cast<int>(op));
    }
}

/**
 * Per-opcode timing: @c latency is cycles from issue to result
 * availability; @c occupancy is cycles the functional unit stays busy
 * (>1 models non-pipelined units).
 */
struct OpTiming
{
    int latency = 1;
    int occupancy = 1;

    bool operator==(const OpTiming &other) const
    {
        return latency == other.latency &&
               occupancy == other.occupancy;
    }
    bool operator!=(const OpTiming &other) const
    {
        return !(*this == other);
    }
};

/**
 * Latency/occupancy table for every opcode. Defaults follow the
 * authors' companion papers (see DESIGN.md, substitution 3); bus-copy
 * latency lives in MachineConfig because it is a bus property.
 */
class LatencyTable
{
  public:
    /** Builds the default table. */
    LatencyTable();

    /** Returns timing of @p op. Inline: read per node per analysis
     *  pass on the compile hot path. */
    const OpTiming &
    timing(Opcode op) const
    {
        int idx = static_cast<int>(op);
        GPSCHED_ASSERT(idx >= 0 && idx < numOpcodes, "bad opcode ",
                       idx);
        return timings_[idx];
    }

    /** Overrides timing of @p op. */
    void setTiming(Opcode op, OpTiming timing);

    /** Shorthand for timing(op).latency. */
    int latency(Opcode op) const { return timing(op).latency; }

    /** Shorthand for timing(op).occupancy. */
    int occupancy(Opcode op) const { return timing(op).occupancy; }

    bool operator==(const LatencyTable &other) const
    {
        for (int i = 0; i < numOpcodes; ++i) {
            if (timings_[i] != other.timings_[i])
                return false;
        }
        return true;
    }
    bool operator!=(const LatencyTable &other) const
    {
        return !(*this == other);
    }

  private:
    OpTiming timings_[numOpcodes];
};

} // namespace gpsched

#endif // GPSCHED_MACHINE_OP_HH
