#include "machine/registry.hh"

#include <algorithm>
#include <filesystem>

#include "machine/configs.hh"
#include "machine/machine_desc.hh"
#include "support/logging.hh"

namespace gpsched
{

MachineRegistry::MachineRegistry()
{
    for (const MachineConfig &preset : table1Configs()) {
        // Route every preset through the description layer: write,
        // parse back, and insist on exact equality. Registry users
        // therefore always exercise the same code path as user
        // `.machine` files, and a writer/parser regression cannot
        // silently skew the paper reproduction.
        MachineParseError error;
        std::optional<MachineConfig> parsed =
            parseMachineDescText(machineDescText(preset), &error);
        GPSCHED_ASSERT(parsed.has_value(),
                       "preset '", preset.name(),
                       "' failed to round-trip: ", error.toString());
        GPSCHED_ASSERT(*parsed == preset, "preset '", preset.name(),
                       "' changed across a description round-trip");
        add(std::move(*parsed));
    }
}

const MachineRegistry &
MachineRegistry::builtin()
{
    static const MachineRegistry registry;
    return registry;
}

std::vector<std::string>
MachineRegistry::names() const
{
    std::vector<std::string> names;
    names.reserve(configs_.size());
    for (const MachineConfig &config : configs_)
        names.push_back(config.name());
    return names;
}

std::string
MachineRegistry::namesSummary() const
{
    std::string summary;
    for (const MachineConfig &config : configs_) {
        if (!summary.empty())
            summary += "|";
        summary += config.name();
    }
    return summary;
}

const MachineConfig *
MachineRegistry::find(const std::string &name) const
{
    for (const MachineConfig &config : configs_) {
        if (config.name() == name)
            return &config;
    }
    return nullptr;
}

MachineConfig
MachineRegistry::get(const std::string &name) const
{
    const MachineConfig *config = find(name);
    if (!config)
        GPSCHED_FATAL("unknown machine '", name, "' (known: ",
                      namesSummary(), ")");
    return *config;
}

void
MachineRegistry::add(MachineConfig config)
{
    if (find(config.name()))
        GPSCHED_FATAL("duplicate machine name '", config.name(), "'");
    configs_.push_back(std::move(config));
}

MachineConfig
MachineRegistry::resolve(const std::string &name_or_path) const
{
    if (const MachineConfig *config = find(name_or_path))
        return *config;
    bool looks_like_path =
        name_or_path.find('/') != std::string::npos ||
        (name_or_path.size() > 8 &&
         name_or_path.compare(name_or_path.size() - 8, 8,
                              ".machine") == 0);
    if (looks_like_path)
        return loadMachineFile(name_or_path);
    GPSCHED_FATAL("unknown machine '", name_or_path,
                  "': not a registered name (known: ", namesSummary(),
                  ") and not a .machine file path");
}

const MachineConfig &
MachineRegistry::at(int i) const
{
    GPSCHED_ASSERT(i >= 0 && i < size(), "bad registry index ", i);
    return configs_[i];
}

std::vector<MachineConfig>
MachineRegistry::resolveDirectory(const std::string &dir) const
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) {
        GPSCHED_FATAL("cannot read machine directory '", dir,
                      "': ", ec.message());
    }
    std::vector<fs::path> files;
    for (const auto &entry : it) {
        if (entry.path().extension() == ".machine")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    std::vector<MachineConfig> machines;
    machines.reserve(files.size());
    for (const fs::path &file : files)
        machines.push_back(resolve(file.string()));
    return machines;
}

} // namespace gpsched
