/**
 * @file
 * Ablation C (DESIGN.md): the coarsening matching policy. The paper
 * coarsens with maximum-weight matchings (LEDA); our default is
 * greedy heavy-edge matching with local augmentation. This harness
 * compares it against a random maximal matching to show the weight
 * guidance matters.
 */

#include <iostream>

#include "common.hh"

#include "core/pipeline.hh"
#include "machine/configs.hh"
#include "support/table.hh"
#include "workload/specfp.hh"

using namespace gpsched;
using namespace gpsched::bench;

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchArgs(argc, argv);
    LatencyTable lat;
    auto suite = benchSuite(lat, options);
    Engine engine(options.engineOptions());

    TextTable table({"configuration", "greedy heavy-edge",
                     "random maximal"});
    struct Case
    {
        const char *name;
        MachineConfig m;
    };
    std::vector<Case> cases = {
        {"2-cluster, 32 regs, lat 1", twoClusterConfig(32, 1)},
        {"4-cluster, 32 regs, lat 1", fourClusterConfig(32, 1)},
        {"4-cluster, 32 regs, lat 2", fourClusterConfig(32, 2)},
    };
    for (const Case &c : cases) {
        LoopCompilerOptions greedy;
        greedy.partitioner.matching = MatchingPolicy::GreedyHeavy;
        LoopCompilerOptions random;
        random.partitioner.matching = MatchingPolicy::RandomMaximal;
        double g =
            compileSuite(engine, suite, c.m, SchedulerKind::Gp, greedy)
                .meanIpc;
        double r =
            compileSuite(engine, suite, c.m, SchedulerKind::Gp, random)
                .meanIpc;
        table.addRow(
            {c.name, TextTable::num(g), TextTable::num(r)});
    }
    table.print(std::cout,
                "Ablation C: GP mean IPC vs coarsening matching "
                "policy");
    return 0;
}
