/**
 * @file
 * Ablation C (DESIGN.md): the coarsening matching policy. The paper
 * coarsens with maximum-weight matchings (LEDA); our default is
 * greedy heavy-edge matching with local augmentation. This harness
 * compares it against a random maximal matching to show the weight
 * guidance matters.
 */

#include <iostream>

#include "common.hh"

#include "core/pipeline.hh"
#include "machine/configs.hh"
#include "support/table.hh"
#include "workload/specfp.hh"

using namespace gpsched;
using namespace gpsched::bench;

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchArgs(argc, argv);
    LatencyTable lat;
    auto suite = benchSuite(lat, options);
    Engine engine(options.engineOptions());

    TextTable table({"configuration", "greedy heavy-edge",
                     "random maximal"});
    MetricTable metrics;
    metrics.title = "Ablation C: GP mean IPC vs matching policy";
    metrics.labelColumns = {"configuration"};
    metrics.valueColumns = {"greedyHeavyIpc", "randomMaximalIpc"};
    std::vector<MachineConfig> machines = benchMachines(
        options, {twoClusterConfig(32, 1), fourClusterConfig(32, 1),
                  fourClusterConfig(32, 2)});
    for (const MachineConfig &m : machines) {
        LoopCompilerOptions greedy;
        greedy.partitioner.matching = MatchingPolicy::GreedyHeavy;
        LoopCompilerOptions random;
        random.partitioner.matching = MatchingPolicy::RandomMaximal;
        double g =
            compileSuite(engine, suite, m, SchedulerKind::Gp, greedy)
                .meanIpc;
        double r =
            compileSuite(engine, suite, m, SchedulerKind::Gp, random)
                .meanIpc;
        table.addRow(
            {m.name(), TextTable::num(g), TextTable::num(r)});
        metrics.addRow({m.name()}, {g, r});
    }
    table.print(std::cout,
                "Ablation C: GP mean IPC vs coarsening matching "
                "policy");
    emitMetricTablesJson(options, "ablation_matching", {metrics},
                         &engine);
    return 0;
}
