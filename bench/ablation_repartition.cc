/**
 * @file
 * Ablation B (DESIGN.md): the Figure-1 re-partition decision. The
 * paper concludes that selectively recomputing the partition (only
 * when IIbus > II) is the most effective scheme; this harness
 * compares Never / Selective / Always on suite IPC and scheduling
 * time.
 */

#include <iostream>

#include "common.hh"

#include "core/pipeline.hh"
#include "machine/configs.hh"
#include "support/table.hh"
#include "workload/specfp.hh"

using namespace gpsched;
using namespace gpsched::bench;

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchArgs(argc, argv);
    LatencyTable lat;
    auto suite = benchSuite(lat, options);
    Engine engine(options.engineOptions());

    TextTable table({"configuration", "policy", "mean IPC",
                     "sched (s)"});
    struct Case
    {
        const char *name;
        MachineConfig m;
    };
    std::vector<Case> cases = {
        {"2-cluster, 32 regs, lat 1", twoClusterConfig(32, 1)},
        {"4-cluster, 32 regs, lat 1", fourClusterConfig(32, 1)},
        {"4-cluster, 32 regs, lat 2", fourClusterConfig(32, 2)},
    };
    struct Policy
    {
        const char *name;
        RepartitionPolicy policy;
    };
    std::vector<Policy> policies = {
        {"never", RepartitionPolicy::Never},
        {"selective", RepartitionPolicy::Selective},
        {"always", RepartitionPolicy::Always},
    };
    bool first = true;
    for (const Case &c : cases) {
        if (!first)
            table.addSeparator();
        first = false;
        for (const Policy &p : policies) {
            LoopCompilerOptions compilerOptions;
            compilerOptions.repartition = p.policy;
            SuiteResult r = compileSuite(engine, suite, c.m, SchedulerKind::Gp,
                                         compilerOptions);
            table.addRow({c.name, p.name,
                          TextTable::num(r.meanIpc),
                          TextTable::num(r.schedSeconds, 3)});
        }
    }
    table.print(std::cout,
                "Ablation B: GP re-partition policy (paper: "
                "selective wins)");
    return 0;
}
