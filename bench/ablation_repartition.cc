/**
 * @file
 * Ablation B (DESIGN.md): the Figure-1 re-partition decision. The
 * paper concludes that selectively recomputing the partition (only
 * when IIbus > II) is the most effective scheme; this harness
 * compares Never / Selective / Always on suite IPC and scheduling
 * time.
 */

#include <iostream>

#include "common.hh"

#include "core/pipeline.hh"
#include "machine/configs.hh"
#include "support/table.hh"
#include "workload/specfp.hh"

using namespace gpsched;
using namespace gpsched::bench;

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchArgs(argc, argv);
    LatencyTable lat;
    auto suite = benchSuite(lat, options);
    Engine engine(options.engineOptions());

    TextTable table({"configuration", "policy", "mean IPC",
                     "sched (s)"});
    MetricTable metrics;
    metrics.title = "Ablation B: GP re-partition policy";
    metrics.labelColumns = {"configuration", "policy"};
    metrics.valueColumns = {"meanIpc", "schedSeconds"};
    std::vector<MachineConfig> machines = benchMachines(
        options, {twoClusterConfig(32, 1), fourClusterConfig(32, 1),
                  fourClusterConfig(32, 2)});
    struct Policy
    {
        const char *name;
        RepartitionPolicy policy;
    };
    std::vector<Policy> policies = {
        {"never", RepartitionPolicy::Never},
        {"selective", RepartitionPolicy::Selective},
        {"always", RepartitionPolicy::Always},
    };
    bool first = true;
    for (const MachineConfig &m : machines) {
        if (!first)
            table.addSeparator();
        first = false;
        for (const Policy &p : policies) {
            LoopCompilerOptions compilerOptions;
            compilerOptions.repartition = p.policy;
            SuiteResult r = compileSuite(engine, suite, m,
                                         SchedulerKind::Gp,
                                         compilerOptions);
            table.addRow({m.name(), p.name,
                          TextTable::num(r.meanIpc),
                          TextTable::num(r.schedSeconds, 3)});
            metrics.addRow({m.name(), p.name},
                           {r.meanIpc, r.schedSeconds});
        }
    }
    table.print(std::cout,
                "Ablation B: GP re-partition policy (paper: "
                "selective wins)");
    emitMetricTablesJson(options, "ablation_repartition", {metrics},
                         &engine);
    return 0;
}
