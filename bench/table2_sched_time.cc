/**
 * @file
 * Regenerates paper Table 2: average CPU time required to compute
 * the schedule of the whole benchmark suite, per algorithm and
 * machine configuration. Times are averaged over several repetitions
 * because a single suite pass is fast on modern hardware.
 */

#include <iostream>

#include "common.hh"

#include "core/pipeline.hh"
#include "machine/configs.hh"
#include "support/table.hh"
#include "support/timer.hh"
#include "workload/specfp.hh"

using namespace gpsched;
using namespace gpsched::bench;

namespace
{

/**
 * CPU seconds for one full-suite compilation, measured around the
 * whole run: per-loop timer reads quantize to scheduler ticks on
 * some kernels, so summing them would be mostly noise.
 */
double
averageSeconds(const std::vector<Program> &suite,
               const MachineConfig &m, SchedulerKind kind, int reps)
{
    CpuTimer timer;
    timer.start();
    for (int r = 0; r < reps; ++r) {
        SuiteResult result = compileSuite(suite, m, kind);
        if (result.programs.empty())
            std::cerr << "";
    }
    return timer.elapsedSeconds() / reps;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchArgs(argc, argv);
    LatencyTable lat;
    auto suite = benchSuite(lat, options);
    const int reps = options.reps(10);

    TextTable table({"configuration", "URACAM (s)", "Fixed (s)",
                     "GP (s)", "URACAM/GP"});
    struct Case
    {
        const char *name;
        MachineConfig m;
    };
    std::vector<Case> cases = {
        {"2-cluster, 32 regs, bus lat 1", twoClusterConfig(32, 1)},
        {"2-cluster, 64 regs, bus lat 1", twoClusterConfig(64, 1)},
        {"4-cluster, 32 regs, bus lat 1", fourClusterConfig(32, 1)},
        {"4-cluster, 64 regs, bus lat 1", fourClusterConfig(64, 1)},
        {"4-cluster, 32 regs, bus lat 2", fourClusterConfig(32, 2)},
        {"4-cluster, 64 regs, bus lat 2", fourClusterConfig(64, 2)},
    };
    for (const Case &c : cases) {
        double ur =
            averageSeconds(suite, c.m, SchedulerKind::Uracam, reps);
        double fx = averageSeconds(suite, c.m,
                                   SchedulerKind::FixedPartition,
                                   reps);
        double gp = averageSeconds(suite, c.m, SchedulerKind::Gp,
                                   reps);
        table.addRow({c.name, TextTable::num(ur, 3),
                      TextTable::num(fx, 3), TextTable::num(gp, 3),
                      TextTable::num(gp > 0 ? ur / gp : 0.0, 2)});
    }
    table.print(std::cout,
                "Table 2: average CPU seconds to schedule the suite "
                "(mean of " +
                    std::to_string(reps) + " runs)");
    std::cout
        << "  Paper: URACAM is 2-7x slower than GP/Fixed. See\n"
           "  EXPERIMENTS.md for the measured ratio and the\n"
           "  discussion of where our implementation differs.\n";
    return 0;
}
