/**
 * @file
 * Regenerates paper Table 2: average CPU time required to compute
 * the schedule of the whole benchmark suite, per algorithm and
 * machine configuration. Times are averaged over several repetitions
 * because a single suite pass is fast on modern hardware.
 */

#include <fstream>
#include <iostream>

#include "common.hh"

#include "core/pipeline.hh"
#include "machine/configs.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "support/telemetry.hh"
#include "support/timer.hh"
#include "workload/specfp.hh"

using namespace gpsched;
using namespace gpsched::bench;

namespace
{

/**
 * CPU seconds for one full-suite compilation, measured around the
 * whole run: per-loop timer reads quantize to scheduler ticks on
 * some kernels, so summing them would be mostly noise.
 *
 * Phase spans are collected via the ambient telemetry context: the
 * serial pipeline compiles inline on this thread, so installing a
 * trace here attributes every GPSCHED_PHASE_SPAN of the run into
 * @p phases (summed over all reps).
 */
double
averageSeconds(const std::vector<Program> &suite,
               const MachineConfig &m, SchedulerKind kind, int reps,
               CompileTrace &phases)
{
    TelemetryContext ctx;
    ctx.trace = &phases;
    ScopedTelemetryContext scoped(ctx);
    CpuTimer timer;
    timer.start();
    for (int r = 0; r < reps; ++r) {
        SuiteResult result = compileSuite(suite, m, kind);
        if (result.programs.empty())
            std::cerr << "";
    }
    return timer.elapsedSeconds() / reps;
}

struct MeasuredCase
{
    std::string name;
    double uracamSeconds = 0.0;
    double fixedSeconds = 0.0;
    double gpSeconds = 0.0;
    CompileTrace uracamPhases;
    CompileTrace fixedPhases;
    CompileTrace gpPhases;
};

void
writeJson(std::ostream &os, const std::vector<MeasuredCase> &rows,
          int reps)
{
    JsonWriter json(os);
    json.beginObject();
    json.member("schemaVersion", 1);
    json.member("bench", "table2_sched_time");
    json.member("reps", reps);
    json.beginArray("rows");
    for (const MeasuredCase &row : rows) {
        json.beginObject();
        json.member("configuration", row.name);
        json.member("uracamSeconds", row.uracamSeconds);
        json.member("fixedSeconds", row.fixedSeconds);
        json.member("gpSeconds", row.gpSeconds);
        json.member("uracamOverGp", row.gpSeconds > 0
                                        ? row.uracamSeconds /
                                              row.gpSeconds
                                        : 0.0);
        // Per-scheme phase breakdowns (summed over all reps), the
        // per-phase resolution behind the whole-suite seconds above.
        writeCompileTracePhases(json, "uracamPhases",
                                row.uracamPhases);
        writeCompileTracePhases(json, "fixedPhases", row.fixedPhases);
        writeCompileTracePhases(json, "gpPhases", row.gpPhases);
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchArgs(argc, argv);
    LatencyTable lat;
    auto suite = benchSuite(lat, options);
    const int reps = options.reps(10);

    // Measurements stay serial regardless of --jobs: the Table-2
    // metric is scheduling CPU time of one compiler instance, which
    // concurrency and caching would only distort.
    TextTable table({"configuration", "URACAM (s)", "Fixed (s)",
                     "GP (s)", "URACAM/GP"});
    std::vector<MachineConfig> machines = benchMachines(
        options,
        {twoClusterConfig(32, 1), twoClusterConfig(64, 1),
         fourClusterConfig(32, 1), fourClusterConfig(64, 1),
         fourClusterConfig(32, 2), fourClusterConfig(64, 2)});
    std::vector<MeasuredCase> measured;
    for (const MachineConfig &m : machines) {
        MeasuredCase row;
        row.name = m.name();
        row.uracamSeconds =
            averageSeconds(suite, m, SchedulerKind::Uracam, reps,
                           row.uracamPhases);
        row.fixedSeconds = averageSeconds(
            suite, m, SchedulerKind::FixedPartition, reps,
            row.fixedPhases);
        row.gpSeconds = averageSeconds(suite, m, SchedulerKind::Gp,
                                       reps, row.gpPhases);
        table.addRow({row.name, TextTable::num(row.uracamSeconds, 3),
                      TextTable::num(row.fixedSeconds, 3),
                      TextTable::num(row.gpSeconds, 3),
                      TextTable::num(row.gpSeconds > 0
                                         ? row.uracamSeconds /
                                               row.gpSeconds
                                         : 0.0,
                                     2)});
        measured.push_back(row);
    }
    withJsonStream(options, [&](std::ostream &os) {
        writeJson(os, measured, reps);
    });
    table.print(std::cout,
                "Table 2: average CPU seconds to schedule the suite "
                "(mean of " +
                    std::to_string(reps) + " runs)");
    std::cout
        << "  Paper: URACAM is 2-7x slower than GP/Fixed. See\n"
           "  EXPERIMENTS.md for the measured ratio and the\n"
           "  discussion of where our implementation differs.\n";
    return 0;
}
