/**
 * @file
 * Ablation D: register-aware partitioning. The paper observes that
 * its partitioner "ignores register pressure, and then it tends to
 * schedule operations in the fewest number of clusters, which may
 * increase the register pressure" (Section 4.2) and names
 * pressure-aware partitioning as future work. This harness
 * implements that suggestion (PartitionEstimator's register-aware
 * term) and measures what it buys on the register-starved
 * configurations.
 */

#include <iostream>

#include "common.hh"

#include "core/pipeline.hh"
#include "machine/configs.hh"
#include "support/table.hh"
#include "workload/specfp.hh"

using namespace gpsched;
using namespace gpsched::bench;

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchArgs(argc, argv);
    LatencyTable lat;
    auto suite = benchSuite(lat, options);
    Engine engine(options.engineOptions());

    TextTable table({"configuration", "GP (paper)",
                     "GP register-aware", "gain"});
    MetricTable metrics;
    metrics.title = "Ablation D: register-aware partitioning";
    metrics.labelColumns = {"configuration"};
    metrics.valueColumns = {"gpIpc", "gpRegisterAwareIpc",
                            "gainPct"};
    std::vector<MachineConfig> machines = benchMachines(
        options, {twoClusterConfig(32, 1), fourClusterConfig(32, 1),
                  fourClusterConfig(64, 1), fourClusterConfig(32, 2)});
    for (const MachineConfig &m : machines) {
        LoopCompilerOptions plain;
        LoopCompilerOptions aware;
        aware.partitioner.registerAware = true;
        double p =
            compileSuite(engine, suite, m, SchedulerKind::Gp, plain)
                .meanIpc;
        double a =
            compileSuite(engine, suite, m, SchedulerKind::Gp, aware)
                .meanIpc;
        double gain = 100.0 * (a / p - 1.0);
        table.addRow({m.name(), TextTable::num(p), TextTable::num(a),
                      TextTable::num(gain, 1) + "%"});
        metrics.addRow({m.name()}, {p, a, gain});
    }
    table.print(std::cout,
                "Ablation D: register-aware partitioning (the "
                "paper's Section-4.2 future work)");
    emitMetricTablesJson(options, "ablation_regpressure", {metrics},
                         &engine);
    return 0;
}
