/**
 * @file
 * Ablation D: register-aware partitioning. The paper observes that
 * its partitioner "ignores register pressure, and then it tends to
 * schedule operations in the fewest number of clusters, which may
 * increase the register pressure" (Section 4.2) and names
 * pressure-aware partitioning as future work. This harness
 * implements that suggestion (PartitionEstimator's register-aware
 * term) and measures what it buys on the register-starved
 * configurations.
 */

#include <iostream>

#include "common.hh"

#include "core/pipeline.hh"
#include "machine/configs.hh"
#include "support/table.hh"
#include "workload/specfp.hh"

using namespace gpsched;
using namespace gpsched::bench;

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchArgs(argc, argv);
    LatencyTable lat;
    auto suite = benchSuite(lat, options);
    Engine engine(options.engineOptions());

    TextTable table({"configuration", "GP (paper)",
                     "GP register-aware", "gain"});
    struct Case
    {
        const char *name;
        MachineConfig m;
    };
    std::vector<Case> cases = {
        {"2-cluster, 32 regs, lat 1", twoClusterConfig(32, 1)},
        {"4-cluster, 32 regs, lat 1", fourClusterConfig(32, 1)},
        {"4-cluster, 64 regs, lat 1", fourClusterConfig(64, 1)},
        {"4-cluster, 32 regs, lat 2", fourClusterConfig(32, 2)},
    };
    for (const Case &c : cases) {
        LoopCompilerOptions plain;
        LoopCompilerOptions aware;
        aware.partitioner.registerAware = true;
        double p =
            compileSuite(engine, suite, c.m, SchedulerKind::Gp, plain)
                .meanIpc;
        double a =
            compileSuite(engine, suite, c.m, SchedulerKind::Gp, aware)
                .meanIpc;
        table.addRow({c.name, TextTable::num(p), TextTable::num(a),
                      TextTable::num(100.0 * (a / p - 1.0), 1) +
                          "%"});
    }
    table.print(std::cout,
                "Ablation D: register-aware partitioning (the "
                "paper's Section-4.2 future work)");
    return 0;
}
