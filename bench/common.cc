#include "common.hh"

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/metrics.hh"
#include "machine/configs.hh"
#include "machine/registry.hh"
#include "sim/replay.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "workload/fuzz.hh"
#include "workload/specfp.hh"

namespace gpsched::bench
{

EngineOptions
BenchOptions::engineOptions() const
{
    EngineOptions options;
    options.jobs = jobs;
    options.cacheDir = cacheDir;
    // Every bench report carries a phase-breakdown block, giving the
    // nightly trajectory per-phase resolution. Observation-only:
    // schedules are unaffected (pinned by test_telemetry).
    options.collectPhases = true;
    return options;
}

namespace
{

/** Strict non-negative integer parse; exits 2 on any other text. */
int
parseCount(const char *argv0, const std::string &flag,
           const std::string &text)
{
    char *end = nullptr;
    errno = 0;
    long value = std::strtol(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0' ||
        value < 0 || value > 1 << 20) {
        std::cerr << argv0 << ": " << flag
                  << " needs a non-negative integer, got '" << text
                  << "'\n";
        std::exit(2);
    }
    return static_cast<int>(value);
}

} // namespace

BenchOptions
parseBenchArgs(int argc, char **argv)
{
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke") {
            options.smoke = true;
        } else if (arg == "--jobs") {
            if (i + 1 >= argc) {
                std::cerr << argv[0] << ": --jobs needs a count\n";
                std::exit(2);
            }
            options.jobs = parseCount(argv[0], "--jobs", argv[++i]);
        } else if (arg == "--json") {
            if (i + 1 >= argc) {
                std::cerr << argv[0] << ": --json needs a path\n";
                std::exit(2);
            }
            options.jsonPath = argv[++i];
        } else if (arg == "--machines") {
            if (i + 1 >= argc) {
                std::cerr << argv[0]
                          << ": --machines needs a comma-separated "
                             "list of names or .machine paths\n";
                std::exit(2);
            }
            std::string list = argv[++i];
            std::string entry;
            for (char ch : list) {
                if (ch == ',') {
                    if (!entry.empty())
                        options.machines.push_back(entry);
                    entry.clear();
                } else {
                    entry += ch;
                }
            }
            if (!entry.empty())
                options.machines.push_back(entry);
            if (options.machines.empty()) {
                std::cerr << argv[0] << ": --machines got an empty "
                                        "list\n";
                std::exit(2);
            }
        } else if (arg == "--cache-dir") {
            if (i + 1 >= argc) {
                std::cerr << argv[0]
                          << ": --cache-dir needs a path\n";
                std::exit(2);
            }
            options.cacheDir = argv[++i];
        } else if (arg == "--replay") {
            options.replay = true;
        } else if (arg == "--fuzz") {
            if (i + 1 >= argc) {
                std::cerr << argv[0] << ": --fuzz needs a count\n";
                std::exit(2);
            }
            options.fuzzLoops =
                parseCount(argv[0], "--fuzz", argv[++i]);
        } else if (arg == "--fuzz-seed") {
            if (i + 1 >= argc) {
                std::cerr << argv[0] << ": --fuzz-seed needs a "
                                        "seed\n";
                std::exit(2);
            }
            std::string text = argv[++i];
            char *end = nullptr;
            errno = 0;
            options.fuzzSeed = std::strtoull(text.c_str(), &end, 0);
            if (errno != 0 || end == text.c_str() || *end != '\0') {
                std::cerr << argv[0]
                          << ": --fuzz-seed needs an integer, got '"
                          << text << "'\n";
                std::exit(2);
            }
        } else {
            std::cerr << argv[0] << ": unknown argument '" << arg
                      << "' (--smoke, --jobs N, --json PATH, "
                         "--machines LIST, --cache-dir PATH, "
                         "--replay, --fuzz N, --fuzz-seed S)\n";
            std::exit(2);
        }
    }
    return options;
}

std::vector<MachineConfig>
benchMachines(const BenchOptions &options,
              const std::vector<MachineConfig> &fallback)
{
    if (options.machines.empty())
        return fallback;
    std::vector<MachineConfig> machines;
    machines.reserve(options.machines.size());
    const MachineRegistry &registry = MachineRegistry::builtin();
    for (const std::string &spec : options.machines)
        machines.push_back(registry.resolve(spec));
    return machines;
}

void
withJsonStream(const BenchOptions &options,
               const std::function<void(std::ostream &)> &emit)
{
    if (options.jsonPath.empty())
        return;
    if (options.jsonPath == "-") {
        emit(std::cout);
        return;
    }
    std::ofstream out(options.jsonPath);
    if (!out)
        GPSCHED_FATAL("cannot open JSON report path '",
                      options.jsonPath, "'");
    emit(out);
}

std::vector<Program>
benchSuite(const LatencyTable &lat, const BenchOptions &options)
{
    std::vector<Program> suite = specFp95Suite(lat);
    if (!options.smoke)
        return suite;
    // Keep the first two programs with at most two loops each: still
    // end-to-end through partitioner and scheduler, but milliseconds.
    constexpr std::size_t maxPrograms = 2;
    constexpr std::size_t maxLoops = 2;
    if (suite.size() > maxPrograms)
        suite.resize(maxPrograms);
    for (Program &prog : suite) {
        if (prog.loops.size() > maxLoops)
            prog.loops.resize(maxLoops);
    }
    return suite;
}

std::vector<Program>
benchSuiteWithFuzz(const LatencyTable &lat,
                   const BenchOptions &options)
{
    std::vector<Program> suite = benchSuite(lat, options);
    if (options.fuzzLoops <= 0)
        return suite;
    // Smoke mode shrinks the rider like it shrinks the suite.
    int count = options.smoke ? std::min(options.fuzzLoops, 2)
                              : options.fuzzLoops;
    Program prog;
    prog.name = "fuzz";
    prog.loops.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        prog.loops.push_back(
            fuzz::corpusCase(options.fuzzSeed, i, lat).ddg);
    suite.push_back(std::move(prog));
    return suite;
}

namespace
{

/** The engine/cache statistics block shared by both JSON schemas
 *  (cold/warm disk traffic included so the nightly trajectory can
 *  gate on warm-run hit rates). */
void
writeEngineStatsJson(JsonWriter &json, const Engine &engine)
{
    EngineStats stats = engine.stats();
    json.beginObject("engine");
    json.member("jobs", engine.jobs());
    json.member("jobsSubmitted", stats.jobsSubmitted);
    json.member("cacheHits", stats.cacheHits);
    json.member("cacheMisses", stats.cacheMisses);
    json.member("coalesced", stats.coalesced);
    json.member("failed", stats.failed);
    json.member("hitRate", stats.hitRate());
    json.member("cacheDir", engine.diskCache()
                                ? engine.diskCache()->dir()
                                : std::string());
    json.member("diskHits", stats.diskHits);
    json.member("diskMisses", stats.diskMisses);
    json.member("diskStores", stats.diskStores);
    json.member("corruptEvicted", stats.corruptEvicted);
    json.member("diskHitRate", stats.diskHitRate());
    // Additive phase breakdown (empty when the engine did not
    // collect phases, e.g. pre-telemetry consumers' replays).
    CompileTrace phases = engine.phaseTotals();
    if (!phases.empty())
        writeCompileTracePhases(json, "phases", phases);
    json.endObject();
}

} // namespace

void
replaySuiteOrDie(bool enabled, const std::vector<Program> &suite,
                 const SuiteResult &result,
                 const MachineConfig &machine,
                 const std::string &what)
{
    if (!enabled)
        return;
    sim::ReplayReport report =
        sim::replaySuite(suite, result, machine);
    std::cout << "  replay [" << what << "]: " << report.summary()
              << "\n";
    if (!report.ok()) {
        const sim::ReplayMismatch &m = report.mismatches.front();
        GPSCHED_FATAL("replay gate failed on '", what, "': ",
                      report.mismatches.size(), " mismatches; first ",
                      m.program, "/", m.loop, ": ", m.detail);
    }
}

FigurePanel
runPanel(Engine &engine, const std::vector<Program> &suite,
         const MachineConfig &clustered, const std::string &title,
         const LoopCompilerOptions &options, bool replay)
{
    FigurePanel panel;
    panel.title = title;

    MachineConfig unified = unifiedConfig(clustered.totalRegs());
    SuiteResult u = compileSuite(engine, suite, unified,
                                 SchedulerKind::Uracam, options);
    SuiteResult ur = compileSuite(engine, suite, clustered,
                                  SchedulerKind::Uracam, options);
    SuiteResult fx = compileSuite(engine, suite, clustered,
                                  SchedulerKind::FixedPartition,
                                  options);
    SuiteResult gp = compileSuite(engine, suite, clustered,
                                  SchedulerKind::Gp, options);
    replaySuiteOrDie(replay, suite, u, unified, title + " unified");
    replaySuiteOrDie(replay, suite, ur, clustered, title + " URACAM");
    replaySuiteOrDie(replay, suite, fx, clustered, title + " Fixed");
    replaySuiteOrDie(replay, suite, gp, clustered, title + " GP");

    for (std::size_t i = 0; i < suite.size(); ++i) {
        FigureRow row;
        row.program = suite[i].name;
        row.unified = u.programs[i].ipc;
        row.uracam = ur.programs[i].ipc;
        row.fixed = fx.programs[i].ipc;
        row.gp = gp.programs[i].ipc;
        panel.rows.push_back(row);
    }
    FigureRow avg;
    avg.program = "average";
    avg.unified = u.meanIpc;
    avg.uracam = ur.meanIpc;
    avg.fixed = fx.meanIpc;
    avg.gp = gp.meanIpc;
    panel.rows.push_back(avg);

    panel.unifiedSeconds = u.schedSeconds;
    panel.uracamSeconds = ur.schedSeconds;
    panel.fixedSeconds = fx.schedSeconds;
    panel.gpSeconds = gp.schedSeconds;

    std::uint64_t skipped = u.failedLoops + ur.failedLoops +
                            fx.failedLoops + gp.failedLoops;
    if (skipped > 0) {
        GPSCHED_WARN("panel '", title, "': ", skipped,
                     " loop compiles failed and were skipped; "
                     "figures cover the surviving loops only");
    }
    return panel;
}

void
printPanel(const FigurePanel &panel)
{
    TextTable table({"program", "unified", "URACAM", "Fixed", "GP"});
    for (const FigureRow &row : panel.rows) {
        if (row.program == "average")
            table.addSeparator();
        table.addRow({row.program, TextTable::num(row.unified),
                      TextTable::num(row.uracam),
                      TextTable::num(row.fixed),
                      TextTable::num(row.gp)});
    }
    table.print(std::cout, panel.title);

    const FigureRow &avg = panel.rows.back();
    std::cout << "  GP vs URACAM: "
              << TextTable::num(ipcGainPercent(avg.gp, avg.uracam), 1)
              << "%   GP vs Fixed: "
              << TextTable::num(ipcGainPercent(avg.gp, avg.fixed), 1)
              << "%   GP vs unified: "
              << TextTable::num(ipcGainPercent(avg.gp, avg.unified),
                                1)
              << "%\n\n";
}

void
writePanelsJson(std::ostream &os, const std::string &benchName,
                const std::vector<FigurePanel> &panels,
                const Engine &engine)
{
    JsonWriter json(os);
    json.beginObject();
    json.member("schemaVersion", 1);
    json.member("bench", benchName);
    json.beginArray("panels");
    for (const FigurePanel &panel : panels) {
        json.beginObject();
        json.member("title", panel.title);
        json.beginArray("rows");
        for (const FigureRow &row : panel.rows) {
            json.beginObject();
            json.member("program", row.program);
            json.member("unified", row.unified);
            json.member("uracam", row.uracam);
            json.member("fixed", row.fixed);
            json.member("gp", row.gp);
            json.endObject();
        }
        json.endArray();
        json.beginObject("schedSeconds");
        json.member("unified", panel.unifiedSeconds);
        json.member("uracam", panel.uracamSeconds);
        json.member("fixed", panel.fixedSeconds);
        json.member("gp", panel.gpSeconds);
        json.endObject();
        json.endObject();
    }
    json.endArray();
    writeEngineStatsJson(json, engine);
    json.endObject();
}

void
emitPanelsJson(const BenchOptions &options,
               const std::string &benchName,
               const std::vector<FigurePanel> &panels,
               const Engine &engine)
{
    withJsonStream(options, [&](std::ostream &os) {
        writePanelsJson(os, benchName, panels, engine);
    });
}

void
MetricTable::addRow(std::vector<std::string> row_labels,
                    std::vector<double> row_values)
{
    GPSCHED_ASSERT(row_labels.size() == labelColumns.size() &&
                       row_values.size() == valueColumns.size(),
                   "metric row arity mismatch in table '", title,
                   "'");
    rows.push_back(
        MetricRow{std::move(row_labels), std::move(row_values)});
}

void
writeMetricTablesJson(std::ostream &os, const std::string &benchName,
                      const std::vector<MetricTable> &tables,
                      const Engine *engine)
{
    JsonWriter json(os);
    json.beginObject();
    json.member("schemaVersion", 1);
    json.member("bench", benchName);
    json.beginArray("tables");
    for (const MetricTable &table : tables) {
        json.beginObject();
        json.member("title", table.title);
        json.beginArray("labelColumns");
        for (const std::string &column : table.labelColumns)
            json.element(column);
        json.endArray();
        json.beginArray("valueColumns");
        for (const std::string &column : table.valueColumns)
            json.element(column);
        json.endArray();
        json.beginArray("rows");
        for (const MetricRow &row : table.rows) {
            json.beginObject();
            json.beginArray("labels");
            for (const std::string &label : row.labels)
                json.element(label);
            json.endArray();
            json.beginArray("values");
            for (double value : row.values)
                json.element(value);
            json.endArray();
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    if (engine)
        writeEngineStatsJson(json, *engine);
    json.endObject();
}

void
emitMetricTablesJson(const BenchOptions &options,
                     const std::string &benchName,
                     const std::vector<MetricTable> &tables,
                     const Engine *engine)
{
    withJsonStream(options, [&](std::ostream &os) {
        writeMetricTablesJson(os, benchName, tables, engine);
    });
}

} // namespace gpsched::bench
