#include "common.hh"

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/metrics.hh"
#include "machine/configs.hh"
#include "support/table.hh"
#include "workload/specfp.hh"

namespace gpsched::bench
{

BenchOptions
parseBenchArgs(int argc, char **argv)
{
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke") {
            options.smoke = true;
        } else {
            std::cerr << argv[0] << ": unknown argument '" << arg
                      << "' (only --smoke is recognized)\n";
            std::exit(2);
        }
    }
    return options;
}

std::vector<Program>
benchSuite(const LatencyTable &lat, const BenchOptions &options)
{
    std::vector<Program> suite = specFp95Suite(lat);
    if (!options.smoke)
        return suite;
    // Keep the first two programs with at most two loops each: still
    // end-to-end through partitioner and scheduler, but milliseconds.
    constexpr std::size_t maxPrograms = 2;
    constexpr std::size_t maxLoops = 2;
    if (suite.size() > maxPrograms)
        suite.resize(maxPrograms);
    for (Program &prog : suite) {
        if (prog.loops.size() > maxLoops)
            prog.loops.resize(maxLoops);
    }
    return suite;
}

FigurePanel
runPanel(const std::vector<Program> &suite,
         const MachineConfig &clustered, const std::string &title,
         const LoopCompilerOptions &options)
{
    FigurePanel panel;
    panel.title = title;

    MachineConfig unified = unifiedConfig(clustered.totalRegs());
    SuiteResult u =
        compileSuite(suite, unified, SchedulerKind::Uracam, options);
    SuiteResult ur =
        compileSuite(suite, clustered, SchedulerKind::Uracam, options);
    SuiteResult fx = compileSuite(suite, clustered,
                                  SchedulerKind::FixedPartition,
                                  options);
    SuiteResult gp =
        compileSuite(suite, clustered, SchedulerKind::Gp, options);

    for (std::size_t i = 0; i < suite.size(); ++i) {
        FigureRow row;
        row.program = suite[i].name;
        row.unified = u.programs[i].ipc;
        row.uracam = ur.programs[i].ipc;
        row.fixed = fx.programs[i].ipc;
        row.gp = gp.programs[i].ipc;
        panel.rows.push_back(row);
    }
    FigureRow avg;
    avg.program = "average";
    avg.unified = u.meanIpc;
    avg.uracam = ur.meanIpc;
    avg.fixed = fx.meanIpc;
    avg.gp = gp.meanIpc;
    panel.rows.push_back(avg);

    panel.unifiedSeconds = u.schedSeconds;
    panel.uracamSeconds = ur.schedSeconds;
    panel.fixedSeconds = fx.schedSeconds;
    panel.gpSeconds = gp.schedSeconds;
    return panel;
}

void
printPanel(const FigurePanel &panel)
{
    TextTable table({"program", "unified", "URACAM", "Fixed", "GP"});
    for (const FigureRow &row : panel.rows) {
        if (row.program == "average")
            table.addSeparator();
        table.addRow({row.program, TextTable::num(row.unified),
                      TextTable::num(row.uracam),
                      TextTable::num(row.fixed),
                      TextTable::num(row.gp)});
    }
    table.print(std::cout, panel.title);

    const FigureRow &avg = panel.rows.back();
    std::cout << "  GP vs URACAM: "
              << TextTable::num(ipcGainPercent(avg.gp, avg.uracam), 1)
              << "%   GP vs Fixed: "
              << TextTable::num(ipcGainPercent(avg.gp, avg.fixed), 1)
              << "%   GP vs unified: "
              << TextTable::num(ipcGainPercent(avg.gp, avg.unified),
                                1)
              << "%\n\n";
}

} // namespace gpsched::bench
