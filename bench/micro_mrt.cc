/**
 * @file
 * Microbenchmarks of the modulo reservation table (google-benchmark):
 * canReserve probes, reserve/release round-trips and firstFit window
 * scans at representative IIs, for unit pools (a bus class) and
 * multi-unit pools (a cluster's FU group).
 *
 * The table is the innermost data structure of every scheduling
 * probe, so these benches pin the cost of the word-packed plane
 * representation in isolation; regressions here show up magnified in
 * BM_FullPartition and the fig2/fig3 drivers.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "sched/mrt.hh"

using namespace gpsched;

namespace
{

/**
 * Half-fills the kernel deterministically (every other slot busy on
 * one unit) so probes exercise both hit and miss paths.
 */
ModuloReservationTable
halfFull(int units, int ii)
{
    ModuloReservationTable mrt(units, ii);
    for (int s = 0; s < ii; s += 2)
        mrt.reserve(s, 1);
    return mrt;
}

} // namespace

static void
BM_MrtCanReserve(benchmark::State &state)
{
    const int ii = static_cast<int>(state.range(0));
    const int units = static_cast<int>(state.range(1));
    ModuloReservationTable mrt = halfFull(units, ii);
    int cycle = 0;
    for (auto _ : state) {
        bool ok = mrt.canReserve(cycle, 2);
        benchmark::DoNotOptimize(ok);
        cycle = (cycle + 1) % ii;
    }
    state.SetLabel(std::to_string(units) + " unit(s), II " +
                   std::to_string(ii));
}
BENCHMARK(BM_MrtCanReserve)
    ->Args({4, 1})
    ->Args({16, 1})
    ->Args({64, 1})
    ->Args({4, 4})
    ->Args({16, 4})
    ->Args({64, 4});

static void
BM_MrtReserveRelease(benchmark::State &state)
{
    const int ii = static_cast<int>(state.range(0));
    const int units = static_cast<int>(state.range(1));
    ModuloReservationTable mrt = halfFull(units, ii);
    int cycle = 1; // odd slots are free in the half-full pattern
    for (auto _ : state) {
        mrt.reserve(cycle, 1);
        mrt.release(cycle, 1);
        benchmark::DoNotOptimize(mrt.usedSlots());
        cycle = wrapSlot(cycle + 2, ii) | 1;
    }
    state.SetLabel(std::to_string(units) + " unit(s), II " +
                   std::to_string(ii));
}
BENCHMARK(BM_MrtReserveRelease)
    ->Args({4, 1})
    ->Args({16, 1})
    ->Args({64, 1})
    ->Args({4, 4})
    ->Args({16, 4})
    ->Args({64, 4});

static void
BM_MrtFirstFit(benchmark::State &state)
{
    const int ii = static_cast<int>(state.range(0));
    const int units = static_cast<int>(state.range(1));
    // Nearly-full table: firstFit must walk busy words before the
    // single free slot, the worst case the window scans hit.
    ModuloReservationTable mrt(units, ii);
    for (int u = 0; u < units; ++u) {
        for (int s = 0; s < ii - 1; ++s)
            mrt.reserve(s, 1);
    }
    for (auto _ : state) {
        int c = mrt.firstFit(0, ii - 1, 1);
        benchmark::DoNotOptimize(c);
    }
    state.SetLabel(std::to_string(units) + " unit(s), II " +
                   std::to_string(ii));
}
BENCHMARK(BM_MrtFirstFit)
    ->Args({4, 1})
    ->Args({16, 1})
    ->Args({64, 1})
    ->Args({4, 4})
    ->Args({16, 4})
    ->Args({64, 4});

/**
 * Probe copy + claim + scan, the findSlot pattern of the scheduler's
 * transformations: measures that a table copy stays a small memcpy.
 */
static void
BM_MrtProbeCopy(benchmark::State &state)
{
    const int ii = static_cast<int>(state.range(0));
    const int units = static_cast<int>(state.range(1));
    ModuloReservationTable mrt = halfFull(units, ii);
    for (auto _ : state) {
        ModuloReservationTable probe = mrt;
        probe.reserve(1, 1);
        int c = probe.firstFit(0, ii - 1, 1);
        benchmark::DoNotOptimize(c);
    }
    state.SetLabel(std::to_string(units) + " unit(s), II " +
                   std::to_string(ii));
}
BENCHMARK(BM_MrtProbeCopy)
    ->Args({4, 1})
    ->Args({16, 1})
    ->Args({64, 1})
    ->Args({4, 4})
    ->Args({16, 4})
    ->Args({64, 4});

/**
 * Custom entry point mirroring micro_partition: --smoke maps to a
 * tiny --benchmark_min_time for the CTest registration, and --json
 * maps to google-benchmark's JSON reporter so callers can scrape the
 * numbers the same way they scrape the paper-figure drivers.
 */
int
main(int argc, char **argv)
{
    std::vector<char *> args;
    bool smoke = false;
    bool json = false;
    for (int i = 0; i < argc; ++i) {
        std::string a(argv[i]);
        if (a == "--smoke")
            smoke = true;
        else if (a == "--json")
            json = true;
        else
            args.push_back(argv[i]);
    }
#ifdef GPSCHED_BENCHMARK_MIN_TIME_SUFFIX
    static char minTime[] = "--benchmark_min_time=1x";
#else
    static char minTime[] = "--benchmark_min_time=0.001";
#endif
    static char jsonFmt[] = "--benchmark_format=json";
    if (smoke)
        args.push_back(minTime);
    if (json)
        args.push_back(jsonFmt);
    int count = static_cast<int>(args.size());
    benchmark::Initialize(&count, args.data());
    if (benchmark::ReportUnrecognizedArguments(count, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
