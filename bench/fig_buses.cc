/**
 * @file
 * Checks the paper's side claim that "results for two buses follow a
 * similar trend" (Section 4.1): repeats the Figure 2/3 averages with
 * the bus count doubled (every bus class, for machines declaring
 * several) and prints both series side by side. --machines sweeps
 * arbitrary registry entries or .machine files instead of the
 * default Table-1 trio; --json emits the machine-readable report.
 */

#include <iostream>

#include "common.hh"

#include "core/pipeline.hh"
#include "machine/configs.hh"
#include "support/table.hh"
#include "workload/specfp.hh"

using namespace gpsched;
using namespace gpsched::bench;

namespace
{

struct Row
{
    double uracam = 0.0;
    double fixed = 0.0;
    double gp = 0.0;
};

Row
averages(Engine &engine, const std::vector<Program> &suite,
         const MachineConfig &m, bool replay)
{
    Row row;
    SuiteResult ur =
        compileSuite(engine, suite, m, SchedulerKind::Uracam);
    SuiteResult fx =
        compileSuite(engine, suite, m, SchedulerKind::FixedPartition);
    SuiteResult gp =
        compileSuite(engine, suite, m, SchedulerKind::Gp);
    replaySuiteOrDie(replay, suite, ur, m, m.name() + " URACAM");
    replaySuiteOrDie(replay, suite, fx, m, m.name() + " Fixed");
    replaySuiteOrDie(replay, suite, gp, m, m.name() + " GP");
    row.uracam = ur.meanIpc;
    row.fixed = fx.meanIpc;
    row.gp = gp.meanIpc;
    return row;
}

/** @p m with every bus class's count multiplied by @p factor. */
MachineConfig
withScaledBuses(const MachineConfig &m, int factor)
{
    std::vector<BusDesc> buses;
    for (int i = 0; i < m.numBusClasses(); ++i) {
        BusDesc bus = m.busClass(i);
        bus.count *= factor;
        buses.push_back(bus);
    }
    return m.withBusClasses(std::move(buses),
                            m.name() + "-x" + std::to_string(factor));
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchArgs(argc, argv);
    LatencyTable lat;
    auto suite = benchSuite(lat, options);
    Engine engine(options.engineOptions());

    std::vector<MachineConfig> machines = benchMachines(
        options, {twoClusterConfig(32, 1), fourClusterConfig(32, 1),
                  fourClusterConfig(32, 2)});

    TextTable table({"configuration", "buses", "URACAM", "Fixed",
                     "GP", "GP/URACAM"});
    MetricTable metrics;
    metrics.title = "Two-bus check";
    metrics.labelColumns = {"configuration"};
    metrics.valueColumns = {"buses", "uracamIpc", "fixedIpc",
                            "gpIpc", "gpOverUracamPct"};

    bool first = true;
    for (const MachineConfig &base : machines) {
        if (base.unified()) {
            std::cerr << "skipping unified machine '" << base.name()
                      << "': no buses to double\n";
            continue;
        }
        if (!first)
            table.addSeparator();
        first = false;
        for (int factor : {1, 2}) {
            MachineConfig m =
                factor == 1 ? base : withScaledBuses(base, factor);
            Row row = averages(engine, suite, m, options.replay);
            double gain = 100.0 * (row.gp / row.uracam - 1.0);
            table.addRow({base.name(),
                          std::to_string(m.numBuses()),
                          TextTable::num(row.uracam),
                          TextTable::num(row.fixed),
                          TextTable::num(row.gp),
                          TextTable::num(gain, 1) + "%"});
            metrics.addRow({m.name()},
                           {static_cast<double>(m.numBuses()),
                            row.uracam, row.fixed, row.gp, gain});
        }
    }
    table.print(std::cout,
                "Two-bus check (paper: \"results for two buses "
                "follow a similar trend\")");
    emitMetricTablesJson(options, "fig_buses", {metrics}, &engine);
    return 0;
}
