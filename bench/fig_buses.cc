/**
 * @file
 * Checks the paper's side claim that "results for two buses follow a
 * similar trend" (Section 4.1): repeats the Figure 2/3 averages with
 * a second inter-cluster bus and prints both series side by side.
 */

#include <iostream>

#include "common.hh"

#include "core/pipeline.hh"
#include "machine/configs.hh"
#include "support/table.hh"
#include "workload/specfp.hh"

using namespace gpsched;
using namespace gpsched::bench;

namespace
{

struct Row
{
    double uracam = 0.0;
    double fixed = 0.0;
    double gp = 0.0;
};

Row
averages(Engine &engine, const std::vector<Program> &suite,
         const MachineConfig &m)
{
    Row row;
    row.uracam =
        compileSuite(engine, suite, m, SchedulerKind::Uracam).meanIpc;
    row.fixed = compileSuite(engine, suite, m,
                             SchedulerKind::FixedPartition)
                    .meanIpc;
    row.gp = compileSuite(engine, suite, m, SchedulerKind::Gp).meanIpc;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchArgs(argc, argv);
    LatencyTable lat;
    auto suite = benchSuite(lat, options);
    Engine engine(options.engineOptions());

    TextTable table({"configuration", "buses", "URACAM", "Fixed",
                     "GP", "GP/URACAM"});
    struct Case
    {
        const char *name;
        int clusters;
        int regs;
        int bus_lat;
    };
    std::vector<Case> cases = {
        {"2-cluster, 32 regs, lat 1", 2, 32, 1},
        {"4-cluster, 32 regs, lat 1", 4, 32, 1},
        {"4-cluster, 32 regs, lat 2", 4, 32, 2},
    };
    bool first = true;
    for (const Case &c : cases) {
        if (!first)
            table.addSeparator();
        first = false;
        for (int buses : {1, 2}) {
            MachineConfig m =
                c.clusters == 2
                    ? twoClusterConfig(c.regs, c.bus_lat, buses)
                    : fourClusterConfig(c.regs, c.bus_lat, buses);
            Row row = averages(engine, suite, m);
            table.addRow({c.name, std::to_string(buses),
                          TextTable::num(row.uracam),
                          TextTable::num(row.fixed),
                          TextTable::num(row.gp),
                          TextTable::num(
                              100.0 * (row.gp / row.uracam - 1.0),
                              1) +
                              "%"});
        }
    }
    table.print(std::cout,
                "Two-bus check (paper: \"results for two buses "
                "follow a similar trend\")");
    return 0;
}
