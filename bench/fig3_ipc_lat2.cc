/**
 * @file
 * Regenerates paper Figure 3: IPC of unified / URACAM / Fixed
 * Partition / GP on the 4-cluster machine with one 2-cycle bus, at
 * 32 and 64 total registers.
 */

#include "common.hh"
#include "machine/configs.hh"
#include "workload/specfp.hh"

using namespace gpsched;
using namespace gpsched::bench;

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchArgs(argc, argv);
    LatencyTable lat;
    auto suite = benchSuite(lat, options);
    for (int regs : {32, 64}) {
        printPanel(runPanel(
            suite, fourClusterConfig(regs, 2),
            "Figure 3: IPC, 4-cluster, 1 bus (latency 2), " +
                std::to_string(regs) + " registers"));
    }
    return 0;
}
