/**
 * @file
 * Regenerates paper Figure 3: IPC of unified / URACAM / Fixed
 * Partition / GP on the 4-cluster machine with one 2-cycle bus, at
 * 32 and 64 total registers. Runs on the batch engine (--jobs N);
 * --json PATH emits the machine-readable report.
 */

#include "common.hh"
#include "machine/configs.hh"
#include "workload/specfp.hh"

using namespace gpsched;
using namespace gpsched::bench;

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchArgs(argc, argv);
    LatencyTable lat;
    auto suite = benchSuite(lat, options);
    Engine engine(options.engineOptions());

    std::vector<FigurePanel> panels;
    if (options.machines.empty()) {
        for (int regs : {32, 64}) {
            panels.push_back(runPanel(
                engine, suite, fourClusterConfig(regs, 2),
                "Figure 3: IPC, 4-cluster, 1 bus (latency 2), " +
                    std::to_string(regs) + " registers",
                {}, options.replay));
        }
    } else {
        for (const MachineConfig &m : benchMachines(options, {}))
            panels.push_back(runPanel(engine, suite, m,
                                      "IPC on " + m.summary(), {},
                                      options.replay));
    }
    for (const FigurePanel &panel : panels)
        printPanel(panel);
    emitPanelsJson(options, "fig3_ipc_lat2", panels, engine);
    return 0;
}
