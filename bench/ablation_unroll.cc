/**
 * @file
 * Ablation E: loop unrolling before GP scheduling. The authors'
 * companion study (Sánchez & González, ICPP 2000) found unrolling
 * effective for modulo scheduling on clustered VLIWs: it amortizes
 * ResMII rounding and hands the partitioner independent body copies
 * to spread across clusters. This harness unrolls every suite loop
 * by 1/2/3 and reports GP mean IPC (useful operations per cycle are
 * unchanged by unrolling, so IPC is directly comparable).
 */

#include <iostream>

#include "common.hh"

#include "core/pipeline.hh"
#include "graph/unroll.hh"
#include "machine/configs.hh"
#include "support/table.hh"
#include "workload/specfp.hh"

using namespace gpsched;
using namespace gpsched::bench;

namespace
{

std::vector<Program>
unrollSuite(const std::vector<Program> &suite, int factor)
{
    std::vector<Program> out;
    out.reserve(suite.size());
    for (const Program &prog : suite) {
        Program copy;
        copy.name = prog.name;
        for (const Ddg &loop : prog.loops)
            copy.loops.push_back(unrollLoop(loop, factor));
        out.push_back(std::move(copy));
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchArgs(argc, argv);
    LatencyTable lat;
    auto suite = benchSuite(lat, options);
    Engine engine(options.engineOptions());

    TextTable table({"configuration", "unroll 1", "unroll 2",
                     "unroll 3"});
    MetricTable metrics;
    metrics.title = "Ablation E: GP mean IPC vs unroll factor";
    metrics.labelColumns = {"configuration"};
    metrics.valueColumns = {"unroll1Ipc", "unroll2Ipc",
                            "unroll3Ipc"};
    std::vector<MachineConfig> machines = benchMachines(
        options, {twoClusterConfig(32, 1), fourClusterConfig(32, 1),
                  fourClusterConfig(64, 1)});
    for (const MachineConfig &m : machines) {
        std::vector<std::string> row = {m.name()};
        std::vector<double> values;
        for (int factor : {1, 2, 3}) {
            auto unrolled = unrollSuite(suite, factor);
            double ipc =
                compileSuite(engine, unrolled, m, SchedulerKind::Gp)
                    .meanIpc;
            row.push_back(TextTable::num(ipc));
            values.push_back(ipc);
        }
        table.addRow(row);
        metrics.addRow({m.name()}, std::move(values));
    }
    table.print(std::cout,
                "Ablation E: GP mean IPC vs unroll factor "
                "(Sánchez & González, ICPP 2000)");
    emitMetricTablesJson(options, "ablation_unroll", {metrics},
                         &engine);
    return 0;
}
