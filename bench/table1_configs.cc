/**
 * @file
 * Regenerates paper Table 1: the clustered VLIW configurations and
 * the operation latencies used throughout the evaluation. Rows come
 * from the machine registry (which routes every preset through the
 * `.machine` description layer); --machines prints arbitrary
 * registry entries or .machine files instead, and --json emits the
 * machine-readable report.
 */

#include <iostream>

#include "common.hh"
#include "machine/registry.hh"
#include "support/table.hh"

using namespace gpsched;
using namespace gpsched::bench;

namespace
{

/** Per-cluster FU counts as one cell: "2" when uniform, "3,1,..."
 *  when clusters differ. */
std::string
fuCell(const MachineConfig &m, FuClass cls)
{
    if (m.homogeneous())
        return std::to_string(m.fuPerCluster(cls));
    std::string cell;
    for (int c = 0; c < m.numClusters(); ++c) {
        if (c > 0)
            cell += ",";
        cell += std::to_string(m.fuInCluster(c, cls));
    }
    return cell;
}

/** Bus classes as one cell: "1@1" (count@latency) per class. */
std::string
busCell(const MachineConfig &m)
{
    if (m.numBusClasses() == 0)
        return "-";
    std::string cell;
    for (int i = 0; i < m.numBusClasses(); ++i) {
        if (i > 0)
            cell += "+";
        cell += std::to_string(m.busClass(i).count) + "@" +
                std::to_string(m.busClass(i).latency);
    }
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchArgs(argc, argv);

    std::vector<MachineConfig> machines;
    if (options.machines.empty()) {
        const MachineRegistry &registry = MachineRegistry::builtin();
        for (int i = 0; i < registry.size(); ++i)
            machines.push_back(registry.at(i));
    } else {
        machines = benchMachines(options, {});
    }

    TextTable configs({"configuration", "clusters", "INT/cl", "FP/cl",
                       "MEM/cl", "issue", "regs",
                       "buses (count@lat)"});
    MetricTable configMetrics;
    configMetrics.title = "Table 1: clustered VLIW configurations";
    configMetrics.labelColumns = {"configuration", "fuMix", "buses"};
    configMetrics.valueColumns = {"clusters", "issue", "regs",
                                  "busCount"};
    for (const MachineConfig &m : machines) {
        configs.addRow({m.name(), std::to_string(m.numClusters()),
                        fuCell(m, FuClass::Int), fuCell(m, FuClass::Fp),
                        fuCell(m, FuClass::Mem),
                        std::to_string(m.totalIssueWidth()),
                        std::to_string(m.totalRegs()), busCell(m)});
        configMetrics.addRow(
            {m.name(),
             fuCell(m, FuClass::Int) + "/" + fuCell(m, FuClass::Fp) +
                 "/" + fuCell(m, FuClass::Mem),
             busCell(m)},
            {static_cast<double>(m.numClusters()),
             static_cast<double>(m.totalIssueWidth()),
             static_cast<double>(m.totalRegs()),
             static_cast<double>(m.numBuses())});
    }
    configs.print(std::cout,
                  "Table 1: clustered VLIW configurations (12-issue)");

    LatencyTable lat;
    TextTable lats({"operation", "latency", "occupancy"});
    MetricTable latMetrics;
    latMetrics.title = "Table 1 (cont.): operation latencies";
    latMetrics.labelColumns = {"operation"};
    latMetrics.valueColumns = {"latency", "occupancy"};
    for (Opcode op :
         {Opcode::IAlu, Opcode::IMul, Opcode::IDiv, Opcode::FAdd,
          Opcode::FMul, Opcode::FDiv, Opcode::Load, Opcode::Store}) {
        lats.addRow({toString(op), std::to_string(lat.latency(op)),
                     std::to_string(lat.occupancy(op))});
        latMetrics.addRow(
            {toString(op)},
            {static_cast<double>(lat.latency(op)),
             static_cast<double>(lat.occupancy(op))});
    }
    lats.print(std::cout,
               "Table 1 (cont.): operation latencies "
               "(companion-paper values; DESIGN.md subst. 3)");
    emitMetricTablesJson(options, "table1_configs",
                         {configMetrics, latMetrics}, nullptr);
    return 0;
}
