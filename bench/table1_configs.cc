/**
 * @file
 * Regenerates paper Table 1: the clustered VLIW configurations and
 * the operation latencies used throughout the evaluation.
 */

#include <iostream>

#include "common.hh"
#include "machine/configs.hh"
#include "support/table.hh"

using namespace gpsched;

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv); // accepts --smoke; this bench is already tiny
    TextTable configs({"configuration", "clusters", "INT/cl", "FP/cl",
                       "MEM/cl", "issue", "regs", "buses",
                       "bus lat"});
    for (const MachineConfig &m : table1Configs()) {
        configs.addRow({m.name(), std::to_string(m.numClusters()),
                        std::to_string(m.fuPerCluster(FuClass::Int)),
                        std::to_string(m.fuPerCluster(FuClass::Fp)),
                        std::to_string(m.fuPerCluster(FuClass::Mem)),
                        std::to_string(m.totalIssueWidth()),
                        std::to_string(m.totalRegs()),
                        std::to_string(m.numBuses()),
                        std::to_string(m.busLatency())});
    }
    configs.print(std::cout,
                  "Table 1: clustered VLIW configurations (12-issue)");

    LatencyTable lat;
    TextTable lats({"operation", "latency", "occupancy"});
    for (Opcode op :
         {Opcode::IAlu, Opcode::IMul, Opcode::IDiv, Opcode::FAdd,
          Opcode::FMul, Opcode::FDiv, Opcode::Load, Opcode::Store}) {
        lats.addRow({toString(op), std::to_string(lat.latency(op)),
                     std::to_string(lat.occupancy(op))});
    }
    lats.print(std::cout,
               "Table 1 (cont.): operation latencies "
               "(companion-paper values; DESIGN.md subst. 3)");
    return 0;
}
