/**
 * @file
 * Microbenchmarks of the partitioner components (google-benchmark):
 * edge weights, coarsening, estimator evaluation and the full
 * multilevel run, over generated loop bodies of growing size.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "graph/ddg_analysis.hh"
#include "machine/configs.hh"
#include "partition/coarsen.hh"
#include "partition/edge_weights.hh"
#include "partition/estimator.hh"
#include "partition/multilevel.hh"
#include "sched/mii.hh"
#include "sched/uracam.hh"
#include "support/random.hh"
#include "support/telemetry.hh"
#include "workload/loop_shapes.hh"

using namespace gpsched;

namespace
{

Ddg
loopOfSize(int chains)
{
    LatencyTable lat;
    return wideBlockKernel("bench", lat, chains, 4, 100);
}

} // namespace

static void
BM_EdgeWeights(benchmark::State &state)
{
    LatencyTable lat;
    Ddg g = loopOfSize(static_cast<int>(state.range(0)));
    MachineConfig m = fourClusterConfig(32, 1);
    int mii = computeMii(g, m);
    for (auto _ : state) {
        auto w = computeEdgeWeights(g, lat, mii, m.busLatency());
        benchmark::DoNotOptimize(w);
    }
    state.SetLabel(std::to_string(g.numNodes()) + " nodes");
}
BENCHMARK(BM_EdgeWeights)->Arg(4)->Arg(8)->Arg(16);

static void
BM_Coarsen(benchmark::State &state)
{
    LatencyTable lat;
    Ddg g = loopOfSize(static_cast<int>(state.range(0)));
    MachineConfig m = fourClusterConfig(32, 1);
    int mii = computeMii(g, m);
    auto weights = computeEdgeWeights(g, lat, mii, m.busLatency());
    for (auto _ : state) {
        Rng rng(7);
        CoarseningHierarchy h(g, weights, 4,
                              MatchingPolicy::GreedyHeavy, rng);
        benchmark::DoNotOptimize(h.levels().size());
    }
}
BENCHMARK(BM_Coarsen)->Arg(4)->Arg(8)->Arg(16);

static void
BM_EstimatorEvaluate(benchmark::State &state)
{
    Ddg g = loopOfSize(static_cast<int>(state.range(0)));
    MachineConfig m = fourClusterConfig(32, 1);
    int mii = computeMii(g, m);
    PartitionEstimator est(g, m, mii);
    Partition p(g.numNodes(), 4, 0);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        p.assign(v, v % 4);
    for (auto _ : state) {
        PartitionEstimate e = est.evaluate(p);
        benchmark::DoNotOptimize(e.execTime);
    }
}
BENCHMARK(BM_EstimatorEvaluate)->Arg(4)->Arg(8)->Arg(16);

static void
BM_FullPartition(benchmark::State &state)
{
    Ddg g = loopOfSize(static_cast<int>(state.range(0)));
    MachineConfig m = fourClusterConfig(32, 1);
    int mii = computeMii(g, m);
    GpPartitioner part(m);
    for (auto _ : state) {
        GpPartitionResult r = part.run(g, mii);
        benchmark::DoNotOptimize(r.iiBus);
    }
}
BENCHMARK(BM_FullPartition)->Arg(4)->Arg(8)->Arg(16);

/**
 * BM_FullPartition with phase collection active: an ambient
 * CompileTrace makes every GPSCHED_PHASE_SPAN take its clock reads.
 * Compare against BM_FullPartition (idle spans: one TLS load and a
 * branch each) to see the telemetry overhead contract — the idle
 * delta vs. pre-telemetry builds must stay under 1%.
 */
static void
BM_FullPartitionPhaseSpans(benchmark::State &state)
{
    Ddg g = loopOfSize(static_cast<int>(state.range(0)));
    MachineConfig m = fourClusterConfig(32, 1);
    int mii = computeMii(g, m);
    GpPartitioner part(m);
    CompileTrace phases;
    TelemetryContext ctx;
    ctx.trace = &phases;
    ScopedTelemetryContext scoped(ctx);
    for (auto _ : state) {
        GpPartitionResult r = part.run(g, mii);
        benchmark::DoNotOptimize(r.iiBus);
    }
    state.SetLabel(std::to_string(phases.phase(CompilePhase::Coarsen)
                                      .count) +
                   " coarsen spans");
}
BENCHMARK(BM_FullPartitionPhaseSpans)->Arg(4)->Arg(8)->Arg(16);

static void
BM_ModuloScheduleGp(benchmark::State &state)
{
    Ddg g = loopOfSize(static_cast<int>(state.range(0)));
    MachineConfig m = fourClusterConfig(32, 1);
    int mii = computeMii(g, m);
    GpPartitioner part(m);
    GpPartitionResult pr = part.run(g, mii);
    ModuloScheduler sched(g, m);
    for (auto _ : state) {
        for (int ii = mii;; ++ii) {
            PartialSchedule ps(g, m, ii);
            if (sched.schedule(ps, ClusterPolicy::PreferAssigned,
                               &pr.partition)) {
                benchmark::DoNotOptimize(ps.scheduleLength());
                break;
            }
        }
    }
}
BENCHMARK(BM_ModuloScheduleGp)->Arg(4)->Arg(8)->Arg(16);

static void
BM_ModuloScheduleUracam(benchmark::State &state)
{
    Ddg g = loopOfSize(static_cast<int>(state.range(0)));
    MachineConfig m = fourClusterConfig(32, 1);
    int mii = computeMii(g, m);
    ModuloScheduler sched(g, m);
    for (auto _ : state) {
        for (int ii = mii;; ++ii) {
            PartialSchedule ps(g, m, ii);
            if (sched.schedule(ps, ClusterPolicy::FreeChoice,
                               nullptr)) {
                benchmark::DoNotOptimize(ps.scheduleLength());
                break;
            }
        }
    }
}
BENCHMARK(BM_ModuloScheduleUracam)->Arg(4)->Arg(8)->Arg(16);

/**
 * Custom entry point so the CTest smoke registration can pass the
 * same --smoke flag every other bench accepts: it is translated to a
 * tiny --benchmark_min_time before handing off to google-benchmark.
 */
int
main(int argc, char **argv)
{
    std::vector<char *> args;
    bool smoke = false;
    for (int i = 0; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke")
            smoke = true;
        else
            args.push_back(argv[i]);
    }
#ifdef GPSCHED_BENCHMARK_MIN_TIME_SUFFIX
    static char minTime[] = "--benchmark_min_time=1x";
#else
    static char minTime[] = "--benchmark_min_time=0.001";
#endif
    if (smoke)
        args.push_back(minTime);
    int count = static_cast<int>(args.size());
    benchmark::Initialize(&count, args.data());
    if (benchmark::ReportUnrecognizedArguments(count, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
