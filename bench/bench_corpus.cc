/**
 * @file
 * Heterogeneous-scenario corpus sweep: every `.machine` file under
 * examples/machines/ (or an explicit --machines list) is compiled
 * with the synthetic SPECfp95 suite under all three schemes, twice —
 * once with the legacy fastest-first bus selection and once with the
 * slack-aware transfer cost model — so the nightly trajectory and
 * tools/bench_delta.py gate cover heterogeneous machines per machine,
 * not just the Table-1 presets.
 *
 * Tables emitted (text and, with --json, MetricTable records):
 *
 *  - "Corpus sweep": one row per (machine, transfer policy) with the
 *    mean IPC of URACAM / Fixed / GP and the GP-over-Fixed gain;
 *  - "Transfer policy delta": one row per machine comparing GP's
 *    mean IPC under both policies (slackGainPct > 0 means the
 *    slack-aware cost model won) plus a trailing corpus-mean row.
 *    Per-machine rows come first so a regression on one machine can
 *    never hide inside the corpus mean.
 *
 * --gate-policy exits non-zero unless, over the swept machines with
 * more than one bus class, slack-aware GP matches-or-beats
 * fastest-first GP on at least two machine-means and strictly beats
 * it on at least one (the acceptance gate of the cost model; also
 * asserted machine-by-machine in tests/test_transfer_policy.cc).
 * Note the contract precisely: this gate bounds nothing on the
 * remaining machines — the policy is a heuristic and may lose there
 * (empirically well under 0.1% on the shipped corpus). Per-machine
 * losses are instead caught by the nightly bench_delta.py run,
 * which gates every per-machine row of the JSON report against the
 * previous trajectory.
 */

#include <iostream>
#include <string>
#include <vector>

#include "common.hh"

#include "core/pipeline.hh"
#include "machine/registry.hh"
#include "support/table.hh"
#include "workload/specfp.hh"

using namespace gpsched;
using namespace gpsched::bench;

namespace
{

/** Corpus = every .machine file under the shipped directory, sorted
 *  by filename so rows and JSON are stable across filesystems (the
 *  same discovery the property tests use). */
std::vector<MachineConfig>
corpusMachines()
{
    return MachineRegistry::builtin().resolveDirectory(
        GPSCHED_CORPUS_DIR);
}

struct SchemeMeans
{
    double uracam = 0.0;
    double fixed = 0.0;
    double gp = 0.0;
};

const char *
policyName(TransferCostPolicy policy)
{
    return policy == TransferCostPolicy::FastestFirst ? "fastest"
                                                      : "slack";
}

SchemeMeans
sweep(Engine &engine, const std::vector<Program> &suite,
      const MachineConfig &m, TransferCostPolicy policy, bool replay)
{
    LoopCompilerOptions options;
    options.transfer.costModel = policy;
    SchemeMeans means;
    SuiteResult ur = compileSuite(engine, suite, m,
                                  SchedulerKind::Uracam, options);
    SuiteResult fx = compileSuite(
        engine, suite, m, SchedulerKind::FixedPartition, options);
    SuiteResult gp =
        compileSuite(engine, suite, m, SchedulerKind::Gp, options);
    const std::string tag =
        m.name() + "/" + policyName(policy) + " ";
    replaySuiteOrDie(replay, suite, ur, m, tag + "URACAM");
    replaySuiteOrDie(replay, suite, fx, m, tag + "Fixed");
    replaySuiteOrDie(replay, suite, gp, m, tag + "GP");
    means.uracam = ur.meanIpc;
    means.fixed = fx.meanIpc;
    means.gp = gp.meanIpc;
    return means;
}

} // namespace

int
main(int argc, char **argv)
{
    bool gate_policy = false;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::string(argv[i]) == "--gate-policy")
            gate_policy = true;
        else
            args.push_back(argv[i]);
    }
    BenchOptions options =
        parseBenchArgs(static_cast<int>(args.size()), args.data());
    LatencyTable lat;
    auto suite = benchSuiteWithFuzz(lat, options);
    Engine engine(options.engineOptions());

    std::vector<MachineConfig> machines =
        benchMachines(options, corpusMachines());

    TextTable sweep_table({"machine", "policy", "URACAM", "Fixed",
                           "GP", "GP/Fixed"});
    MetricTable sweep_metrics;
    sweep_metrics.title = "Corpus sweep";
    sweep_metrics.labelColumns = {"machine", "transferPolicy"};
    sweep_metrics.valueColumns = {"uracamIpc", "fixedIpc", "gpIpc",
                                  "gpOverFixedPct"};

    TextTable delta_table({"machine", "busClasses", "GP fastest",
                           "GP slack", "slack gain"});
    MetricTable delta_metrics;
    delta_metrics.title = "Transfer policy delta";
    delta_metrics.labelColumns = {"machine"};
    delta_metrics.valueColumns = {"busClasses", "gpFastestIpc",
                                  "gpSlackIpc", "slackGainPct"};

    int multi_class_machines = 0;
    int slack_no_worse = 0;
    int slack_strictly_better = 0;
    double fastest_sum = 0.0, slack_sum = 0.0;

    bool first = true;
    for (const MachineConfig &m : machines) {
        if (!first) {
            sweep_table.addSeparator();
        }
        first = false;
        double gp_by_policy[2] = {0.0, 0.0};
        for (TransferCostPolicy policy :
             {TransferCostPolicy::FastestFirst,
              TransferCostPolicy::SlackAware}) {
            SchemeMeans means =
                sweep(engine, suite, m, policy, options.replay);
            double gain =
                means.fixed > 0.0
                    ? 100.0 * (means.gp / means.fixed - 1.0)
                    : 0.0;
            sweep_table.addRow(
                {m.name(), policyName(policy),
                 TextTable::num(means.uracam),
                 TextTable::num(means.fixed),
                 TextTable::num(means.gp),
                 TextTable::num(gain, 1) + "%"});
            sweep_metrics.addRow({m.name(), policyName(policy)},
                                 {means.uracam, means.fixed, means.gp,
                                  gain});
            gp_by_policy[policy == TransferCostPolicy::SlackAware] =
                means.gp;
        }

        double fastest = gp_by_policy[0], slack = gp_by_policy[1];
        double slack_gain =
            fastest > 0.0 ? 100.0 * (slack / fastest - 1.0) : 0.0;
        delta_table.addRow(
            {m.name(), std::to_string(m.numBusClasses()),
             TextTable::num(fastest), TextTable::num(slack),
             TextTable::num(slack_gain, 2) + "%"});
        delta_metrics.addRow(
            {m.name()},
            {static_cast<double>(m.numBusClasses()), fastest, slack,
             slack_gain});
        fastest_sum += fastest;
        slack_sum += slack;
        if (m.numBusClasses() > 1) {
            ++multi_class_machines;
            if (slack >= fastest)
                ++slack_no_worse;
            if (slack > fastest)
                ++slack_strictly_better;
        }
    }

    if (!machines.empty()) {
        const double n = static_cast<double>(machines.size());
        double fastest_mean = fastest_sum / n;
        double slack_mean = slack_sum / n;
        double gain = fastest_mean > 0.0
                          ? 100.0 * (slack_mean / fastest_mean - 1.0)
                          : 0.0;
        delta_table.addSeparator();
        delta_table.addRow({"corpus-mean", "-",
                            TextTable::num(fastest_mean),
                            TextTable::num(slack_mean),
                            TextTable::num(gain, 2) + "%"});
        delta_metrics.addRow({"corpus-mean"},
                             {0.0, fastest_mean, slack_mean, gain});
    }

    sweep_table.print(std::cout,
                      "Corpus sweep (schemes x transfer policies)");
    delta_table.print(
        std::cout,
        "Transfer policy delta (GP, slack-aware vs fastest-first)");
    emitMetricTablesJson(options, "bench_corpus",
                         {sweep_metrics, delta_metrics}, &engine);

    if (gate_policy) {
        if (multi_class_machines == 0) {
            std::cerr << "--gate-policy: no multi-bus-class machine "
                         "in the sweep\n";
            return 1;
        }
        if (slack_no_worse < 2 || slack_strictly_better == 0) {
            std::cerr << "--gate-policy: slack-aware GP must be >= "
                         "fastest-first on at least two multi-class "
                         "machines (got "
                      << slack_no_worse << "/" << multi_class_machines
                      << ") and strictly better on at least one ("
                      << slack_strictly_better << ")\n";
            return 1;
        }
        std::cout << "--gate-policy OK: " << slack_no_worse << "/"
                  << multi_class_machines
                  << " machines no worse, "
                  << slack_strictly_better << " strictly better\n";
    }
    return 0;
}
