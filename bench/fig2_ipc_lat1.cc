/**
 * @file
 * Regenerates paper Figure 2: IPC of unified / URACAM / Fixed
 * Partition / GP per SPECfp95 program on the 2-cluster (top) and
 * 4-cluster (bottom) machines with one 1-cycle bus, at 32 and 64
 * total registers. All panels run through one batch engine
 * (--jobs N) whose fingerprint cache dedupes repeated loop shapes;
 * --json PATH emits the machine-readable report.
 */

#include "common.hh"
#include "machine/configs.hh"
#include "workload/specfp.hh"

using namespace gpsched;
using namespace gpsched::bench;

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchArgs(argc, argv);
    LatencyTable lat;
    auto suite = benchSuite(lat, options);
    Engine engine(options.engineOptions());

    std::vector<FigurePanel> panels;
    if (options.machines.empty()) {
        for (int regs : {32, 64}) {
            panels.push_back(runPanel(
                engine, suite, twoClusterConfig(regs, 1),
                "Figure 2(a): IPC, 2-cluster, 1 bus (latency 1), " +
                    std::to_string(regs) + " registers",
                {}, options.replay));
        }
        for (int regs : {32, 64}) {
            panels.push_back(runPanel(
                engine, suite, fourClusterConfig(regs, 1),
                "Figure 2(b): IPC, 4-cluster, 1 bus (latency 1), " +
                    std::to_string(regs) + " registers",
                {}, options.replay));
        }
    } else {
        for (const MachineConfig &m : benchMachines(options, {}))
            panels.push_back(runPanel(engine, suite, m,
                                      "IPC on " + m.summary(), {},
                                      options.replay));
    }
    for (const FigurePanel &panel : panels)
        printPanel(panel);
    emitPanelsJson(options, "fig2_ipc_lat1", panels, engine);
    return 0;
}
