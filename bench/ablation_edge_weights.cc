/**
 * @file
 * Ablation A (DESIGN.md): the Section-3.2.1 edge-weight terms. The
 * paper's weight combines an execution-time delay term with a slack
 * term; this harness disables each in turn and reports suite IPC of
 * the GP scheme, showing both contribute.
 */

#include <iostream>

#include "common.hh"

#include "core/pipeline.hh"
#include "machine/configs.hh"
#include "support/table.hh"
#include "workload/specfp.hh"

using namespace gpsched;
using namespace gpsched::bench;

namespace
{

double
gpIpc(Engine &engine, const std::vector<Program> &suite,
      const MachineConfig &m, bool delay_term, bool slack_term)
{
    LoopCompilerOptions options;
    options.partitioner.edgeWeights.useDelayTerm = delay_term;
    options.partitioner.edgeWeights.useSlackTerm = slack_term;
    return compileSuite(engine, suite, m, SchedulerKind::Gp, options)
        .meanIpc;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchArgs(argc, argv);
    LatencyTable lat;
    auto suite = benchSuite(lat, options);
    Engine engine(options.engineOptions());

    TextTable table({"configuration", "delay+slack", "delay only",
                     "slack only", "neither"});
    MetricTable metrics;
    metrics.title = "Ablation A: GP mean IPC vs edge-weight terms";
    metrics.labelColumns = {"configuration"};
    metrics.valueColumns = {"delaySlackIpc", "delayOnlyIpc",
                            "slackOnlyIpc", "neitherIpc"};
    std::vector<MachineConfig> machines = benchMachines(
        options, {twoClusterConfig(32, 1), fourClusterConfig(32, 1),
                  fourClusterConfig(32, 2)});
    for (const MachineConfig &m : machines) {
        double both = gpIpc(engine, suite, m, true, true);
        double delay_only = gpIpc(engine, suite, m, true, false);
        double slack_only = gpIpc(engine, suite, m, false, true);
        double neither = gpIpc(engine, suite, m, false, false);
        table.addRow({m.name(), TextTable::num(both),
                      TextTable::num(delay_only),
                      TextTable::num(slack_only),
                      TextTable::num(neither)});
        metrics.addRow({m.name()},
                       {both, delay_only, slack_only, neither});
    }
    table.print(std::cout,
                "Ablation A: GP mean IPC vs edge-weight terms "
                "(weight = delay*(maxsl+1) + maxsl - slack + 1)");
    emitMetricTablesJson(options, "ablation_edge_weights", {metrics},
                         &engine);
    return 0;
}
