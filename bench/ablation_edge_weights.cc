/**
 * @file
 * Ablation A (DESIGN.md): the Section-3.2.1 edge-weight terms. The
 * paper's weight combines an execution-time delay term with a slack
 * term; this harness disables each in turn and reports suite IPC of
 * the GP scheme, showing both contribute.
 */

#include <iostream>

#include "common.hh"

#include "core/pipeline.hh"
#include "machine/configs.hh"
#include "support/table.hh"
#include "workload/specfp.hh"

using namespace gpsched;
using namespace gpsched::bench;

namespace
{

double
gpIpc(Engine &engine, const std::vector<Program> &suite,
      const MachineConfig &m, bool delay_term, bool slack_term)
{
    LoopCompilerOptions options;
    options.partitioner.edgeWeights.useDelayTerm = delay_term;
    options.partitioner.edgeWeights.useSlackTerm = slack_term;
    return compileSuite(engine, suite, m, SchedulerKind::Gp, options)
        .meanIpc;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchArgs(argc, argv);
    LatencyTable lat;
    auto suite = benchSuite(lat, options);
    Engine engine(options.engineOptions());

    TextTable table({"configuration", "delay+slack", "delay only",
                     "slack only", "neither"});
    struct Case
    {
        const char *name;
        MachineConfig m;
    };
    std::vector<Case> cases = {
        {"2-cluster, 32 regs, lat 1", twoClusterConfig(32, 1)},
        {"4-cluster, 32 regs, lat 1", fourClusterConfig(32, 1)},
        {"4-cluster, 32 regs, lat 2", fourClusterConfig(32, 2)},
    };
    for (const Case &c : cases) {
        table.addRow(
            {c.name,
             TextTable::num(gpIpc(engine, suite, c.m, true, true)),
             TextTable::num(gpIpc(engine, suite, c.m, true, false)),
             TextTable::num(gpIpc(engine, suite, c.m, false, true)),
             TextTable::num(gpIpc(engine, suite, c.m, false,
                                  false))});
    }
    table.print(std::cout,
                "Ablation A: GP mean IPC vs edge-weight terms "
                "(weight = delay*(maxsl+1) + maxsl - slack + 1)");
    return 0;
}
