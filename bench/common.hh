/**
 * @file
 * Shared plumbing for the paper-reproduction bench harnesses: run
 * the synthetic SPECfp95 suite under every scheme on one machine and
 * print per-program IPC rows the way Figures 2/3 report them.
 */

#ifndef GPSCHED_BENCH_COMMON_HH
#define GPSCHED_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "machine/machine.hh"

namespace gpsched::bench
{

/** Command-line options shared by every bench driver. */
struct BenchOptions
{
    /**
     * Smoke mode (--smoke): shrink the workload to a couple of
     * loops so CTest can exercise the whole driver in well under a
     * second. Numbers printed in this mode are meaningless; the mode
     * exists so perf drivers cannot silently bit-rot.
     */
    bool smoke = false;

    /** Iteration counts for repeated-measurement benches. */
    int
    reps(int full) const
    {
        return smoke ? 1 : full;
    }
};

/** Parses argv; recognizes --smoke, fatal on anything else. */
BenchOptions parseBenchArgs(int argc, char **argv);

/**
 * The bench workload: the full synthetic SPECfp95 suite, or a small
 * deterministic subset of it (first programs, first loops) in smoke
 * mode.
 */
std::vector<Program> benchSuite(const LatencyTable &lat,
                                const BenchOptions &options);

/** Per-program IPC of the four evaluated bars. */
struct FigureRow
{
    std::string program;
    double unified = 0.0;
    double uracam = 0.0;
    double fixed = 0.0;
    double gp = 0.0;
};

/** One figure panel: a clustered machine and its four bars. */
struct FigurePanel
{
    std::string title;
    std::vector<FigureRow> rows; ///< per program + trailing average
    double uracamSeconds = 0.0;  ///< scheduling CPU time totals
    double fixedSeconds = 0.0;
    double gpSeconds = 0.0;
    double unifiedSeconds = 0.0;
};

/**
 * Compiles @p suite with the unified baseline (same total registers)
 * and with URACAM / Fixed / GP on @p clustered, producing the rows
 * of one Figure-2/3 panel.
 */
FigurePanel runPanel(const std::vector<Program> &suite,
                     const MachineConfig &clustered,
                     const std::string &title,
                     const LoopCompilerOptions &options = {});

/** Prints @p panel as an aligned table with a gain summary. */
void printPanel(const FigurePanel &panel);

} // namespace gpsched::bench

#endif // GPSCHED_BENCH_COMMON_HH
