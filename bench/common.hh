/**
 * @file
 * Shared plumbing for the paper-reproduction bench harnesses: run
 * the synthetic SPECfp95 suite under every scheme on one machine and
 * print per-program IPC rows the way Figures 2/3 report them.
 *
 * Every driver accepts --smoke (tiny workload for CTest), --jobs N
 * (worker threads of the batch engine; 0 = hardware concurrency),
 * --json PATH (machine-readable report; "-" for stdout),
 * --machines LIST (comma-separated registry names or .machine file
 * paths replacing the driver's default machine sweep, so every
 * figure and ablation runs on arbitrary configurations) and
 * --cache-dir PATH (the persistent compile cache, so repeated bench
 * runs are served from disk; cold/warm disk stats land in the JSON
 * report). Panels run through one shared Engine so the fingerprint
 * cache dedupes identical loop shapes across panels and schemes.
 */

#ifndef GPSCHED_BENCH_COMMON_HH
#define GPSCHED_BENCH_COMMON_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "engine/engine.hh"
#include "machine/machine.hh"

namespace gpsched::bench
{

/** Command-line options shared by every bench driver. */
struct BenchOptions
{
    /**
     * Smoke mode (--smoke): shrink the workload to a couple of
     * loops so CTest can exercise the whole driver in well under a
     * second. Numbers printed in this mode are meaningless; the mode
     * exists so perf drivers cannot silently bit-rot.
     */
    bool smoke = false;

    /**
     * Engine worker threads (--jobs N). 1 keeps the historical
     * serial behaviour; 0 asks for hardware concurrency.
     */
    int jobs = 1;

    /** Machine-readable report path (--json PATH; "-" = stdout). */
    std::string jsonPath;

    /**
     * Machine sweep override (--machines a,b,...): registry names or
     * `.machine` file paths. Empty = the driver's default sweep.
     */
    std::vector<std::string> machines;

    /**
     * Persistent compile cache directory (--cache-dir PATH); empty
     * disables the disk layer.
     */
    std::string cacheDir;

    /**
     * Replay gate (--replay): every compiled loop of every suite run
     * is re-executed through the cycle-accurate simulator
     * (sim/replay.hh) and the run dies if any execution disagrees
     * with the estimator's claimed II/cycles/IPC. The nightly corpus
     * sweep runs with this on, so the published figures are backed
     * by simulated executions, not just the estimator's arithmetic.
     */
    bool replay = false;

    /**
     * Fuzz-corpus rider (--fuzz N): append one extra "fuzz" program
     * of N generated loops (workload/fuzz.hh, seeded by --fuzz-seed)
     * to the suite. Off by default so the published figures and the
     * nightly bench_delta gates keep their hand-built workload; with
     * --replay this turns any figure driver into a corpus sweep
     * whose every compiled loop is backed by a simulated execution.
     */
    int fuzzLoops = 0;

    /** Corpus seed for --fuzz (--fuzz-seed S, decimal or 0x-hex). */
    std::uint64_t fuzzSeed = 0xf022c0de5eedULL;

    /** Iteration counts for repeated-measurement benches. */
    int
    reps(int full) const
    {
        return smoke ? 1 : full;
    }

    /** Engine configuration honouring --jobs. */
    EngineOptions engineOptions() const;
};

/**
 * Parses argv; recognizes --smoke/--jobs/--json/--machines/
 * --cache-dir/--replay; exits with status 2 on anything else.
 */
BenchOptions parseBenchArgs(int argc, char **argv);

/**
 * The --replay gate on one suite result: replays every compiled
 * loop of @p result on @p machine (sim/replay.hh), prints the
 * replay summary tagged @p what, and dies on any mismatch between
 * the simulated execution and the estimator's claims. No-op when
 * @p enabled is false, so call sites can pass options.replay
 * straight through.
 */
void replaySuiteOrDie(bool enabled,
                      const std::vector<Program> &suite,
                      const SuiteResult &result,
                      const MachineConfig &machine,
                      const std::string &what);

/**
 * The driver's machine sweep: every --machines entry resolved
 * through the registry (names or `.machine` paths), or @p fallback
 * when the flag was absent.
 */
std::vector<MachineConfig>
benchMachines(const BenchOptions &options,
              const std::vector<MachineConfig> &fallback);

/**
 * Runs @p emit against the --json destination: a file stream for a
 * path, std::cout for "-", not at all when --json was absent. Fatal
 * when the file cannot be opened.
 */
void withJsonStream(const BenchOptions &options,
                    const std::function<void(std::ostream &)> &emit);

/**
 * The bench workload: the full synthetic SPECfp95 suite, or a small
 * deterministic subset of it (first programs, first loops) in smoke
 * mode.
 */
std::vector<Program> benchSuite(const LatencyTable &lat,
                                const BenchOptions &options);

/**
 * benchSuite plus the --fuzz rider: when options.fuzzLoops > 0, one
 * extra "fuzz" program of generated corpus loops (workload/fuzz.hh)
 * joins the suite, so a figure driver can be pointed at workloads
 * nobody hand-tuned for. A no-op (the plain suite) by default.
 */
std::vector<Program>
benchSuiteWithFuzz(const LatencyTable &lat,
                   const BenchOptions &options);

/** Per-program IPC of the four evaluated bars. */
struct FigureRow
{
    std::string program;
    double unified = 0.0;
    double uracam = 0.0;
    double fixed = 0.0;
    double gp = 0.0;
};

/** One figure panel: a clustered machine and its four bars. */
struct FigurePanel
{
    std::string title;
    std::vector<FigureRow> rows; ///< per program + trailing average
    double uracamSeconds = 0.0;  ///< scheduling CPU time totals
    double fixedSeconds = 0.0;
    double gpSeconds = 0.0;
    double unifiedSeconds = 0.0;
};

/**
 * Compiles @p suite with the unified baseline (same total registers)
 * and with URACAM / Fixed / GP on @p clustered, producing the rows
 * of one Figure-2/3 panel. All four compilations run as batches on
 * @p engine. With @p replay, every compiled loop of all four runs is
 * re-executed through the simulator (fatal on any mismatch).
 */
FigurePanel runPanel(Engine &engine,
                     const std::vector<Program> &suite,
                     const MachineConfig &clustered,
                     const std::string &title,
                     const LoopCompilerOptions &options = {},
                     bool replay = false);

/** Prints @p panel as an aligned table with a gain summary. */
void printPanel(const FigurePanel &panel);

/**
 * Writes @p panels as a JSON report (schemaVersion, per-panel rows,
 * engine/cache statistics) to @p os.
 */
void writePanelsJson(std::ostream &os, const std::string &benchName,
                     const std::vector<FigurePanel> &panels,
                     const Engine &engine);

/**
 * Honors --json: writes the report to options.jsonPath ("-" =
 * stdout, empty = no-op). Fatal when the file cannot be opened.
 */
void emitPanelsJson(const BenchOptions &options,
                    const std::string &benchName,
                    const std::vector<FigurePanel> &panels,
                    const Engine &engine);

/**
 * Generic machine-readable mirror of a bench's printed table: rows
 * of string labels plus numeric values, so every driver (figures and
 * ablations alike) can join the nightly JSON trajectory and
 * tools/bench_delta.py can diff runs without per-bench schemas.
 * The emitted JSON shape — and the engine/cache statistics block
 * appended to every report — is documented field by field in
 * docs/ARCHITECTURE.md ("Benches and the JSON report schemas");
 * value columns whose name contains "ipc" are regression-gated
 * per row by the nightly bench_delta.py run.
 */
struct MetricRow
{
    std::vector<std::string> labels;
    std::vector<double> values;
};

/** One labeled table of a bench report. */
struct MetricTable
{
    std::string title;
    std::vector<std::string> labelColumns;
    std::vector<std::string> valueColumns;
    std::vector<MetricRow> rows;

    /** Appends a row (label/value arities must match the columns). */
    void addRow(std::vector<std::string> labels,
                std::vector<double> values);
};

/**
 * Writes @p tables as a JSON report (schemaVersion, per-table rows,
 * engine/cache statistics when @p engine is non-null) to @p os.
 */
void writeMetricTablesJson(std::ostream &os,
                           const std::string &benchName,
                           const std::vector<MetricTable> &tables,
                           const Engine *engine);

/** Honors --json for MetricTable reports (see emitPanelsJson). */
void emitMetricTablesJson(const BenchOptions &options,
                          const std::string &benchName,
                          const std::vector<MetricTable> &tables,
                          const Engine *engine);

} // namespace gpsched::bench

#endif // GPSCHED_BENCH_COMMON_HH
