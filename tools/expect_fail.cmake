# Runs a command that must fail: nonzero exit status (a clean
# diagnostic exit, not a crash) and a gem5-style file:line diagnostic
# on stderr. Used by the gpsched_cli error-path CTest entries.
#
# Variables:
#   CMD      semicolon-separated command line to run
#   PATTERN  extra regex stderr must match (the diagnostic's content)

if(NOT DEFINED CMD)
  message(FATAL_ERROR "expect_fail.cmake needs -DCMD=...")
endif()

execute_process(
  COMMAND ${CMD}
  RESULT_VARIABLE status
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)

if(status STREQUAL "0")
  message(FATAL_ERROR "command unexpectedly succeeded: ${CMD}")
endif()

# Crashes surface as signal names ("Segmentation fault", "Aborted")
# in RESULT_VARIABLE instead of a small integer exit code.
if(NOT status MATCHES "^[0-9]+$")
  message(FATAL_ERROR
    "command died abnormally (${status}) instead of exiting with a "
    "diagnostic: ${CMD}\nstderr: ${err}")
endif()

# Every fatal diagnostic ends with "  at <file>:<line>".
if(NOT err MATCHES "at .*\\.(cc|hh):[0-9]+")
  message(FATAL_ERROR
    "stderr lacks a file:line diagnostic\nstderr: ${err}")
endif()

if(DEFINED PATTERN AND NOT err MATCHES "${PATTERN}")
  message(FATAL_ERROR
    "stderr does not match '${PATTERN}'\nstderr: ${err}")
endif()
