# The import pipeline, end to end:
#   (a) a healthy JSON dump converts to .ddg text and the result
#       compiles through gpsched_cli;
#   (b) a malformed dump (NaN latency) dies with a diagnostic whose
#       message carries the *input* file:line;
#   (c) --keep-going over bad+good files exits 1 but still emits the
#       good loops.
#
# Variables:
#   IMPORT  path to the ddg_import binary
#   CLI     path to the gpsched_cli binary
#   GOOD    healthy fixture (sample_import.json)
#   BAD     malformed fixture (bad_import.json)
#   OUT     scratch path prefix

foreach(var IMPORT CLI GOOD BAD OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_import.cmake needs -D${var}=...")
  endif()
endforeach()

# --- (a) good dump: convert, then compile --------------------------
execute_process(
  COMMAND ${IMPORT} --out ${OUT}.ddg ${GOOD}
  RESULT_VARIABLE status
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT status STREQUAL "0")
  message(FATAL_ERROR
    "import of healthy dump failed ('${status}')\nstderr: ${err}")
endif()
file(STRINGS ${OUT}.ddg headers REGEX "^ddg ")
list(LENGTH headers nloops)
if(NOT nloops EQUAL 2)
  message(FATAL_ERROR "expected 2 imported loops, got ${nloops}")
endif()

execute_process(
  COMMAND ${CLI} --scheme all --json - ${OUT}.ddg
  RESULT_VARIABLE status
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT status STREQUAL "0")
  message(FATAL_ERROR
    "imported loops failed to compile ('${status}')\nstderr: ${err}")
endif()
if(NOT out MATCHES "\"name\": \"imported_daxpy\"")
  message(FATAL_ERROR "imported loop missing from report:\n${out}")
endif()

# --- (b) bad dump: input file:line diagnostic ----------------------
execute_process(
  COMMAND ${IMPORT} ${BAD}
  RESULT_VARIABLE status
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(status STREQUAL "0")
  message(FATAL_ERROR "import of NaN-latency dump succeeded")
endif()
if(NOT status MATCHES "^[0-9]+$")
  message(FATAL_ERROR
    "ddg_import died abnormally (${status})\nstderr: ${err}")
endif()
if(NOT err MATCHES "bad_import\\.json:[0-9]+.*NaN")
  message(FATAL_ERROR
    "diagnostic lacks input file:line + NaN cause:\n${err}")
endif()

# --- (c) keep-going: bad file skipped, good loops emitted ----------
execute_process(
  COMMAND ${IMPORT} --keep-going --out ${OUT}.keep.ddg ${BAD} ${GOOD}
  RESULT_VARIABLE status
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT status STREQUAL "1")
  message(FATAL_ERROR
    "--keep-going over bad+good must exit 1, got '${status}'")
endif()
file(STRINGS ${OUT}.keep.ddg headers REGEX "^ddg ")
list(LENGTH headers nloops)
if(NOT nloops EQUAL 2)
  message(FATAL_ERROR
    "--keep-going emitted ${nloops} loops, want the 2 good ones")
endif()
