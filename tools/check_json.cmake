# CTest helper: run gpsched_cli on a DDG file, then strictly parse
# the JSON report and assert the fields the bench trajectory and
# downstream tooling rely on. Variables: CLI, DDG, PYTHON, OUT.
execute_process(
  COMMAND ${CLI} --scheme all --jobs 2 --repeat 2 --json ${OUT} ${DDG}
  RESULT_VARIABLE cli_result)
if(NOT cli_result EQUAL 0)
  message(FATAL_ERROR "gpsched_cli failed with status ${cli_result}")
endif()

execute_process(
  COMMAND ${PYTHON} -c "
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report['schemaVersion'] == 1
assert report['machine']['clusters'] >= 1
loops = report['loops']
assert loops, 'no loops in report'
for loop in loops:
    assert loop['ii'] >= 0 and loop['cycles'] > 0 and loop['ops'] > 0
    assert 0.0 < loop['ipc'] <= 16.0
engine = report['engine']
assert engine['jobsSubmitted'] == len(loops) * 2  # --repeat 2
# The second repeat is deterministically all hits. First-pass
# dedupe of stencil_b against stencil_a is timing-dependent under
# --jobs 2 (identical in-flight jobs are not coalesced), so only
# the repeat's hits are guaranteed.
assert engine['cacheHits'] >= len(loops)
print('cli JSON ok:', len(loops), 'loops, hitRate',
      engine['hitRate'])
" ${OUT}
  RESULT_VARIABLE py_result)
if(NOT py_result EQUAL 0)
  message(FATAL_ERROR "JSON validation failed")
endif()
