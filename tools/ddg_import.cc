/**
 * @file
 * JSON -> .ddg importer front-end over workload/import.hh.
 *
 *   ddg_import [--out PATH] [--keep-going] input.json...
 *
 * Each input file's loops are validated (NaN/negative latencies,
 * dangling edge indices, unknown opcodes, ... — every rejection a
 * CompileError whose message carries the input file:line) and
 * emitted as `ddg ... end` text blocks ready for gpsched_cli /
 * ddg_fuzz. Default output is stdout. A malformed file aborts the
 * run with its diagnostic unless --keep-going, which reports it on
 * stderr, skips it, and exits 1 after processing the rest — the
 * same per-item isolation contract as gpsched_cli.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "graph/textio.hh"
#include "support/compile_error.hh"
#include "support/logging.hh"
#include "workload/import.hh"

namespace
{

void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--out PATH] [--keep-going] input.json...\n"
              << "  converts JSON loop dumps (see docs/fuzzing.md)\n"
              << "  to .ddg text; '-' or no --out writes stdout\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gpsched;

    std::string out = "-";
    bool keepGoing = false;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--out") {
            if (i + 1 >= argc)
                usage(argv[0]);
            out = argv[++i];
        } else if (arg == "--keep-going") {
            keepGoing = true;
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            usage(argv[0]);
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty())
        usage(argv[0]);

    std::ofstream fileOut;
    if (out != "-") {
        fileOut.open(out);
        if (!fileOut)
            GPSCHED_FATAL("cannot write '", out, "'");
    }
    std::ostream &os = out == "-" ? std::cout : fileOut;

    LatencyTable lat;
    int imported = 0;
    int failed = 0;
    for (const std::string &path : files) {
        std::ifstream in(path);
        if (!in)
            GPSCHED_FATAL("cannot open '", path, "'");
        try {
            std::vector<Ddg> loops = importDdgJson(in, path, lat);
            for (const Ddg &g : loops) {
                os << "# imported from " << path << "\n";
                writeDdgText(os, g);
                ++imported;
            }
        } catch (const CompileError &error) {
            ++failed;
            if (!keepGoing) {
                std::cerr << argv[0] << ": " << error.diagnostic()
                          << "\n";
                return 1;
            }
            std::cerr << argv[0] << ": skipping '" << path
                      << "': " << error.diagnostic() << "\n";
        }
    }
    std::cerr << argv[0] << ": imported " << imported << " loop(s), "
              << failed << " file(s) failed\n";
    return failed > 0 ? 1 : 0;
}
