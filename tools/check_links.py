#!/usr/bin/env python3
"""Check intra-repository markdown links.

Scans every tracked-looking *.md file under the repository root
(skipping build*/ and hidden directories), extracts inline links
[text](target), and verifies that every *relative* target resolves to
an existing file or directory. Targets with a #fragment additionally
have the fragment checked against the destination file's headings
(GitHub-style slugs). External links (http/https/mailto) and pure
in-page anchors are checked against the current file's headings.

Exit status: 0 when every link resolves, 1 otherwise (each broken
link printed as file:line: message). Run by the docs CI job and
registered as a CTest entry, so broken links fail locally too.

Usage:
  check_links.py [ROOT]     # default: the repository root
  check_links.py --self-test
"""

from __future__ import annotations

import os
import re
import sys

SKIP_DIRS = {"build", ".git", ".github"}

# Inline markdown link: [text](target). Images ![alt](target) match
# too (the leading char is irrelevant to the target check). Targets
# with spaces are not used in this repo and are flagged as broken.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def github_slug(heading):
    """GitHub's anchor slug for a heading line (close enough: the
    repo's headings use letters, digits, spaces, backticks, dots,
    parentheses and dashes)."""
    text = heading.strip().lower().replace("`", "")
    out = []
    for ch in text:
        if ch.isalnum():
            out.append(ch)
        elif ch in (" ", "-"):
            out.append("-")
    return "".join(out)


def heading_slugs(path):
    slugs = set()
    try:
        with open(path, encoding="utf-8") as handle:
            in_code = False
            for line in handle:
                if line.lstrip().startswith("```"):
                    in_code = not in_code
                    continue
                if in_code:
                    continue
                match = HEADING_RE.match(line)
                if match:
                    slugs.add(github_slug(match.group(1)))
    except OSError:
        pass
    return slugs


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith(".")
            and not d.startswith("build")
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    """Returns a list of 'file:line: message' problem strings."""
    problems = []
    with open(path, encoding="utf-8") as handle:
        lines = handle.readlines()
    in_code = False
    for lineno, line in enumerate(lines, 1):
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                if github_slug(target[1:]) not in heading_slugs(path):
                    problems.append(
                        f"{path}:{lineno}: broken anchor "
                        f"'{target}'")
                continue
            dest, _, fragment = target.partition("#")
            dest_path = os.path.normpath(
                os.path.join(os.path.dirname(path), dest))
            if not os.path.exists(dest_path):
                problems.append(
                    f"{path}:{lineno}: broken link '{target}' "
                    f"(no such file '{os.path.relpath(dest_path, root)}')")
                continue
            if fragment and dest_path.endswith(".md"):
                if github_slug(fragment) not in heading_slugs(
                        dest_path):
                    problems.append(
                        f"{path}:{lineno}: broken anchor "
                        f"'#{fragment}' in '{dest}'")
    return problems


def self_test():
    assert github_slug("Subsystem map") == "subsystem-map"
    assert (github_slug("`latency OPCODE N [occupancy N]`")
            == "latency-opcode-n-occupancy-n")
    assert (github_slug("Benches and the JSON report schemas")
            == "benches-and-the-json-report-schemas")
    assert LINK_RE.findall("see [x](a.md) and [y](b.md#c)") == [
        "a.md", "b.md#c"]
    assert LINK_RE.findall("![img](pic.png)") == ["pic.png"]
    assert LINK_RE.findall("code `[i](j)` is still a link") == ["j"]
    print("check_links self-test OK")
    return 0


def main(argv):
    if argv and argv[0] == "--self-test":
        return self_test()
    root = os.path.abspath(argv[0]) if argv else os.path.abspath(
        os.path.join(os.path.dirname(__file__), os.pardir))
    problems = []
    count = 0
    for path in sorted(markdown_files(root)):
        count += 1
        problems.extend(check_file(path, root))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {count} markdown files: "
          f"{len(problems)} broken link(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
