# The --keep-going contract, end to end: over a file mixing healthy
# blocks with a parse-broken block and an engine-rejected block, the
# CLI must (a) exit 1 — nonzero iff any loop failed — without dying,
# (b) emit a report whose bad loops carry typed error objects
# ({kind, message, location}) while the good loops carry schedules,
# (c) count the engine-stage failure in the stats block, and
# (d) still exit 0 in --keep-going mode when every loop is healthy.
# Without --keep-going the same file must die on the first error
# with the historical fatal file:line diagnostic.
#
# A fourth case pins the resync edge condition: when the *last*
# block of a multi-DDG file is malformed (truncated before its
# `end`), resyncToNextBlock runs off the end of the file — the good
# blocks before it must still compile, the truncated block must get
# its parse error object, and the exit status must be 1.
#
# Variables:
#   CLI     path to the gpsched_cli binary
#   MIXED   the mixed good/bad fixture (mixed_loops.ddg)
#   CLEAN   an all-good fixture (sample_loop.ddg)
#   TRUNC   fixture whose last block is truncated (truncated_last.ddg)
#   OUT     scratch path for the JSON report

foreach(var CLI MIXED CLEAN TRUNC OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_keep_going.cmake needs -D${var}=...")
  endif()
endforeach()

# --- keep-going over the mixed file: exit 1, full report ----------
execute_process(
  COMMAND ${CLI} --keep-going --jobs 2 --json ${OUT} ${MIXED}
  RESULT_VARIABLE status
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT status STREQUAL "1")
  message(FATAL_ERROR
    "--keep-going over a mixed batch must exit 1, got '${status}'\n"
    "stderr: ${err}")
endif()

file(READ ${OUT} report)

# The parse failure and the engine rejection each surface as a typed
# error object attributed to the right loop...
if(NOT report MATCHES "\"kind\": \"parse\"")
  message(FATAL_ERROR "no parse-kind error object:\n${report}")
endif()
if(NOT report MATCHES "\"kind\": \"invalid-input\"")
  message(FATAL_ERROR "no invalid-input error object:\n${report}")
endif()
if(NOT report MATCHES "\"name\": \"stale_latency\"")
  message(FATAL_ERROR "rejected loop not named:\n${report}")
endif()
if(NOT report MATCHES "\"location\": \"[^\"]*\\.(cc|hh):[0-9]+\"")
  message(FATAL_ERROR "error object lacks file:line:\n${report}")
endif()

# ...the healthy loops still compiled (schedule metrics present)...
if(NOT report MATCHES "\"name\": \"good_one\"")
  message(FATAL_ERROR "good_one missing from report:\n${report}")
endif()
if(NOT report MATCHES "\"name\": \"good_two\"")
  message(FATAL_ERROR "good_two missing from report:\n${report}")
endif()
if(NOT report MATCHES "\"ipc\"")
  message(FATAL_ERROR "no compiled loop metrics:\n${report}")
endif()

# ...and the stats block counts exactly the engine-stage failure
# (the parse failure never reached the engine).
if(NOT report MATCHES "\"failed\": 1")
  message(FATAL_ERROR "engine failed-counter wrong:\n${report}")
endif()
if(NOT report MATCHES "\"keepGoing\": true")
  message(FATAL_ERROR "keepGoing flag not recorded:\n${report}")
endif()

# --- keep-going over a clean file: exit 0 --------------------------
execute_process(
  COMMAND ${CLI} --keep-going --json ${OUT}.clean ${CLEAN}
  RESULT_VARIABLE status
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT status STREQUAL "0")
  message(FATAL_ERROR
    "--keep-going over a clean batch must exit 0, got '${status}'\n"
    "stderr: ${err}")
endif()

# --- keep-going with a truncated *last* block ----------------------
execute_process(
  COMMAND ${CLI} --keep-going --json ${OUT}.trunc ${TRUNC}
  RESULT_VARIABLE status
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT status STREQUAL "1")
  message(FATAL_ERROR
    "truncated-last-block batch must exit 1, got '${status}'\n"
    "stderr: ${err}")
endif()

file(READ ${OUT}.trunc report)
if(NOT report MATCHES "\"name\": \"trunc_good_one\"")
  message(FATAL_ERROR "trunc_good_one missing:\n${report}")
endif()
if(NOT report MATCHES "\"name\": \"trunc_good_two\"")
  message(FATAL_ERROR "trunc_good_two missing:\n${report}")
endif()
if(NOT report MATCHES "\"kind\": \"parse\"")
  message(FATAL_ERROR
    "truncated block produced no parse error object:\n${report}")
endif()
if(NOT report MATCHES "end of input")
  message(FATAL_ERROR
    "truncated block's diagnostic missing:\n${report}")
endif()

# --- without --keep-going: first error is fatal --------------------
execute_process(
  COMMAND ${CLI} ${MIXED}
  RESULT_VARIABLE status
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(status STREQUAL "0")
  message(FATAL_ERROR "mixed batch without --keep-going succeeded")
endif()
if(NOT status MATCHES "^[0-9]+$")
  message(FATAL_ERROR
    "CLI died abnormally (${status}) instead of a diagnostic exit\n"
    "stderr: ${err}")
endif()
if(NOT err MATCHES "fatal: ")
  message(FATAL_ERROR "no fatal diagnostic on stderr:\n${err}")
endif()
if(NOT err MATCHES "at .*\\.(cc|hh):[0-9]+")
  message(FATAL_ERROR "diagnostic lacks file:line:\n${err}")
endif()
