/**
 * @file
 * gpsched command-line front-end: read text-format DDGs (see
 * graph/textio.hh; a file may hold several `ddg ... end` blocks),
 * schedule them through the batch engine for one machine under one
 * or all schemes, and emit a JSON report with per-loop schedule
 * metrics and engine/cache statistics.
 *
 * Usage:
 *   gpsched_cli [options] <ddg-file>...
 *     --machine SPEC    legacy preset (unified|2cluster|4cluster,
 *                       shaped by --regs/--buses/--bus-latency), a
 *                       registry name (e.g. 4c-r64-b1), or a path to
 *                       a .machine description file (default
 *                       4cluster)
 *     --list-machines   print the registry names and exit
 *     --regs N          total registers (default 64; legacy presets)
 *     --buses N         inter-cluster buses (default 1; legacy)
 *     --bus-latency N   bus transfer latency (default 1; legacy)
 *     --scheme uracam|fixed|gp|all          scheme (default gp)
 *     --jobs N          engine workers; 0 = hardware (default 0)
 *     --repeat N        compile the batch N times (cache demo)
 *     --cache-dir PATH  persistent compile cache directory; results
 *                       are reused across runs (default: disabled)
 *     --keep-going      per-loop fault isolation: a malformed or
 *                       rejected loop becomes an error object in the
 *                       report instead of aborting the run; exit
 *                       status is nonzero iff any loop failed
 *     --simulate        replay every compiled loop through the
 *                       cycle-accurate simulator (src/sim/) and add
 *                       replayed/simOk/achievedII/achievedIpc to each
 *                       loop row (simFault on a rejected replay);
 *                       exit status is nonzero iff a replay fails
 *     --json PATH       report path; '-' = stdout (default '-')
 *     --stats-json PATH unified metric-registry dump (engine/cache/
 *                       disk/pool/phase counters; see
 *                       docs/ARCHITECTURE.md "Telemetry")
 *     --trace PATH      Chrome trace-event file (one pid per engine,
 *                       one tid per worker; load in Perfetto or
 *                       chrome://tracing)
 *
 * Without --keep-going the first failing loop ends the run with a
 * fatal file:line diagnostic (the historical behavior).
 */

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "engine/engine.hh"
#include "graph/textio.hh"
#include "machine/configs.hh"
#include "machine/registry.hh"
#include "sim/sim.hh"
#include "support/compile_error.hh"
#include "support/json.hh"
#include "support/logging.hh"

using namespace gpsched;

namespace
{

struct CliOptions
{
    std::string machine = "4cluster";
    int regs = 64;
    int buses = 1;
    int busLatency = 1;
    bool legacyShapeFlags = false; ///< --regs/--buses/--bus-latency
    std::string scheme = "gp";
    int jobs = 0;
    int repeat = 1;
    std::string cacheDir;
    bool keepGoing = false;
    bool simulate = false;
    std::string jsonPath = "-";
    std::string statsJsonPath; ///< metric-registry dump; empty = off
    std::string tracePath;     ///< Chrome trace file; empty = off
    std::vector<std::string> files;
};

[[noreturn]] void
usage(const char *argv0, int status)
{
    std::ostream &os = status == 0 ? std::cout : std::cerr;
    os << "usage: " << argv0 << " [options] <ddg-file>...\n"
       << "  --machine SPEC   unified|2cluster|4cluster preset, a\n"
       << "                   registry name (see --list-machines) or\n"
       << "                   a .machine file path (default 4cluster)\n"
       << "  --list-machines  print registry machine names and exit\n"
       << "  --regs N         total registers (default 64; legacy\n"
       << "                   presets only)\n"
       << "  --buses N        inter-cluster buses (default 1; legacy)\n"
       << "  --bus-latency N  bus latency cycles (default 1; legacy)\n"
       << "  --scheme uracam|fixed|gp|all (default gp)\n"
       << "  --jobs N         engine workers, 0 = hardware (default 0)\n"
       << "  --repeat N       compile the batch N times (default 1)\n"
       << "  --cache-dir PATH persistent compile cache directory\n"
       << "                   (reused across runs; default off)\n"
       << "  --keep-going     report per-loop failures as JSON error\n"
       << "                   objects instead of aborting; exit 1\n"
       << "                   iff any loop failed\n"
       << "  --simulate       replay compiled loops through the\n"
       << "                   cycle-accurate simulator; adds simOk/\n"
       << "                   achievedII/achievedIpc per loop, exit 1\n"
       << "                   iff a replay fails\n"
       << "  --json PATH      JSON report path, '-' = stdout\n"
       << "  --stats-json PATH  write the unified metric registry\n"
       << "                   (engine/disk/pool/phase) as JSON\n"
       << "  --trace PATH     write a Chrome trace-event file\n"
       << "                   (Perfetto-loadable)\n";
    std::exit(status);
}

/** Strict non-negative integer parse; exits 2 on any other text. */
int
parseCount(const char *argv0, const std::string &flag,
           const std::string &text)
{
    char *end = nullptr;
    errno = 0;
    long value = std::strtol(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0' ||
        value < 0 || value > 1 << 20) {
        std::cerr << argv0 << ": " << flag
                  << " needs a non-negative integer, got '" << text
                  << "'\n";
        std::exit(2);
    }
    return static_cast<int>(value);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions options;
    auto needValue = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << argv[0] << ": " << argv[i]
                      << " needs a value\n";
            usage(argv[0], 2);
        }
        return argv[++i];
    };
    auto countValue = [&](int &i) {
        std::string flag = argv[i];
        return parseCount(argv[0], flag, needValue(i));
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--machine") {
            options.machine = needValue(i);
        } else if (arg == "--list-machines") {
            for (const std::string &name :
                 MachineRegistry::builtin().names())
                std::cout << name << "\n";
            std::exit(0);
        } else if (arg == "--regs") {
            options.regs = countValue(i);
            options.legacyShapeFlags = true;
        } else if (arg == "--buses") {
            options.buses = countValue(i);
            options.legacyShapeFlags = true;
        } else if (arg == "--bus-latency") {
            options.busLatency = countValue(i);
            options.legacyShapeFlags = true;
        } else if (arg == "--scheme")
            options.scheme = needValue(i);
        else if (arg == "--jobs")
            options.jobs = countValue(i);
        else if (arg == "--repeat")
            options.repeat = countValue(i);
        else if (arg == "--cache-dir")
            options.cacheDir = needValue(i);
        else if (arg == "--keep-going")
            options.keepGoing = true;
        else if (arg == "--simulate")
            options.simulate = true;
        else if (arg == "--json")
            options.jsonPath = needValue(i);
        else if (arg == "--stats-json")
            options.statsJsonPath = needValue(i);
        else if (arg == "--trace")
            options.tracePath = needValue(i);
        else if (arg == "--help" || arg == "-h")
            usage(argv[0], 0);
        else if (!arg.empty() && arg[0] == '-') {
            std::cerr << argv[0] << ": unknown option '" << arg
                      << "'\n";
            usage(argv[0], 2);
        } else {
            options.files.push_back(arg);
        }
    }
    if (options.files.empty()) {
        std::cerr << argv[0] << ": no input files\n";
        usage(argv[0], 2);
    }
    if (options.jobs < 0 || options.repeat < 1)
        GPSCHED_FATAL("--jobs must be >= 0 and --repeat >= 1");
    return options;
}

MachineConfig
machineFor(const CliOptions &options)
{
    // Legacy presets keep their shape flags.
    if (options.machine == "unified")
        return unifiedConfig(options.regs);
    if (options.machine == "2cluster")
        return twoClusterConfig(options.regs, options.busLatency,
                                options.buses);
    if (options.machine == "4cluster")
        return fourClusterConfig(options.regs, options.busLatency,
                                 options.buses);
    // Anything else is a registry name or a .machine file, whose
    // shape is fully self-described.
    if (options.legacyShapeFlags)
        GPSCHED_FATAL("--regs/--buses/--bus-latency only apply to "
                      "the unified|2cluster|4cluster presets, not "
                      "to '",
                      options.machine, "'");
    return MachineRegistry::builtin().resolve(options.machine);
}

std::vector<SchedulerKind>
schemesFor(const CliOptions &options)
{
    if (options.scheme == "uracam")
        return {SchedulerKind::Uracam};
    if (options.scheme == "fixed")
        return {SchedulerKind::FixedPartition};
    if (options.scheme == "gp")
        return {SchedulerKind::Gp};
    if (options.scheme == "all")
        return {SchedulerKind::Uracam, SchedulerKind::FixedPartition,
                SchedulerKind::Gp};
    GPSCHED_FATAL("unknown scheme '", options.scheme,
                  "' (uracam|fixed|gp|all)");
}

/** One input block and where it came from; either a parsed DDG or a
 *  parse diagnostic (--keep-going records the latter and goes on). */
struct InputLoop
{
    std::string file;
    Ddg ddg;
    std::optional<CompileError> parseError;

    bool parsed() const { return !parseError.has_value(); }
};

/**
 * Skips forward to the next top-level `ddg` line so one malformed
 * block cannot swallow the rest of its file in --keep-going mode.
 */
void
resyncToNextBlock(std::ifstream &in)
{
    std::string line;
    std::streampos before = in.tellg();
    while (std::getline(in, line)) {
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string keyword;
        if ((ls >> keyword) && keyword == "ddg") {
            in.seekg(before);
            return;
        }
        before = in.tellg();
    }
}

/**
 * Reads every `ddg ... end` block of every input file. A block that
 * fails to parse throws its CompileError unless @p keepGoing, in
 * which case it is recorded as a failed InputLoop and parsing
 * resumes at the next block.
 */
std::vector<InputLoop>
readInputs(const std::vector<std::string> &files, bool keepGoing)
{
    std::vector<InputLoop> loops;
    for (const std::string &path : files) {
        std::ifstream in(path);
        if (!in)
            GPSCHED_FATAL("cannot open DDG file '", path, "'");
        // Peek for content before each parse so trailing blank lines
        // and comments don't read as a truncated DDG.
        for (;;) {
            std::string line;
            std::streampos before = in.tellg();
            bool content = false;
            while (std::getline(in, line)) {
                auto hash = line.find('#');
                if (hash != std::string::npos)
                    line.erase(hash);
                if (line.find_first_not_of(" \t\r") !=
                    std::string::npos) {
                    content = true;
                    break;
                }
                before = in.tellg();
            }
            if (!content)
                break;
            in.seekg(before);
            try {
                InputLoop input;
                input.file = path;
                input.ddg = readDdgText(in);
                loops.push_back(std::move(input));
            } catch (const CompileError &error) {
                if (!keepGoing)
                    throw;
                GPSCHED_WARN("skipping malformed DDG block in '",
                             path, "': ", error.what());
                InputLoop bad;
                bad.file = path;
                bad.parseError = error;
                loops.push_back(std::move(bad));
                in.clear();
                resyncToNextBlock(in);
            }
        }
        if (loops.empty() || loops.back().file != path)
            GPSCHED_FATAL("no DDGs found in '", path, "'");
    }
    return loops;
}

/** The report's error-object schema: kind, message, location. */
void
writeErrorObject(JsonWriter &json, const CompileError &error)
{
    json.beginObject("error");
    json.member("kind", toString(error.kind()));
    json.member("message", error.what());
    json.member("location", error.location());
    json.endObject();
}

void
writeReport(std::ostream &os, const CliOptions &options,
            const MachineConfig &machine,
            const std::vector<SchedulerKind> &schemes,
            const std::vector<InputLoop> &inputs,
            const std::vector<CompileResult> &results,
            const std::vector<std::optional<sim::SimResult>> &sims,
            const Engine &engine)
{
    EngineStats stats = engine.stats();
    JsonWriter json(os);
    json.beginObject();
    json.member("schemaVersion", 1);
    json.member("tool", "gpsched_cli");
    json.beginObject("machine");
    json.member("name", machine.name());
    json.member("clusters", machine.numClusters());
    json.member("homogeneous", machine.homogeneous());
    json.member("totalIssueWidth", machine.totalIssueWidth());
    json.member("totalRegs", machine.totalRegs());
    json.member("buses", machine.numBuses());
    json.beginArray("clusterConfigs");
    for (int c = 0; c < machine.numClusters(); ++c) {
        const ClusterDesc &cluster = machine.cluster(c);
        json.beginObject();
        json.member("name", cluster.name);
        json.member("int",
                    machine.fuInCluster(c, FuClass::Int));
        json.member("fp", machine.fuInCluster(c, FuClass::Fp));
        json.member("mem",
                    machine.fuInCluster(c, FuClass::Mem));
        json.member("regs", cluster.regs);
        json.endObject();
    }
    json.endArray();
    json.beginArray("busClasses");
    for (int i = 0; i < machine.numBusClasses(); ++i) {
        json.beginObject();
        json.member("count", machine.busClass(i).count);
        json.member("latency", machine.busClass(i).latency);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    json.beginArray("loops");
    // Engine results cover the parsed inputs only, scheme-major in
    // the same order the batch was built.
    std::size_t next = 0;
    for (const SchedulerKind kind : schemes) {
        for (const InputLoop &input : inputs) {
            json.beginObject();
            json.member("file", input.file);
            if (!input.parsed()) {
                json.member("name", input.parseError->loopName());
                json.member("scheme", toString(kind));
                writeErrorObject(json, *input.parseError);
                json.endObject();
                continue;
            }
            const CompileResult &result = results[next++];
            json.member("name", result.ok()
                                    ? result.loop.loopName
                                    : result.error->loopName());
            json.member("scheme", toString(kind));
            json.member("nodes", input.ddg.numNodes());
            json.member("edges", input.ddg.numEdges());
            json.member("tripCount", input.ddg.tripCount());
            // Per-row warm/cold inspectability: how this row was
            // obtained and how long the engine spent on it.
            json.member("source", compileSourceName(result.source));
            json.member("compileMs", result.compileMs);
            if (!result.ok()) {
                writeErrorObject(json, *result.error);
                json.endObject();
                continue;
            }
            const CompiledLoop &loop = result.loop;
            json.member("moduloScheduled", loop.moduloScheduled);
            json.member("mii", loop.mii);
            json.member("ii", loop.ii);
            json.member("scheduleLength", loop.scheduleLength);
            json.member("cycles", loop.cycles);
            json.member("ops", loop.ops);
            json.member("ipc", loop.ipc);
            json.member("busTransfers", loop.stats.busTransfers);
            json.member("memTransfers", loop.stats.memTransfers);
            json.member("spills", loop.stats.spills);
            json.member("partitionRuns", loop.partitionRuns);
            json.member("scheduleAttempts", loop.scheduleAttempts);
            json.member("schedSeconds", loop.schedSeconds);
            // --simulate: the replay verdict rides on the row. next
            // was already advanced past this result.
            if (sims[next - 1].has_value()) {
                const sim::SimResult &s = *sims[next - 1];
                json.member("replayed", s.replayed);
                json.member("simOk", s.simOk);
                json.member("achievedII", s.achievedII);
                json.member("simCycles", s.simCycles);
                json.member("achievedIpc", s.achievedIpc);
                if (s.fault.has_value()) {
                    json.beginObject("simFault");
                    json.member("kind",
                                sim::toString(s.fault->kind));
                    json.member("cycle", s.fault->cycle);
                    json.member("node",
                                static_cast<int>(s.fault->node));
                    json.member("detail", s.fault->detail);
                    json.endObject();
                }
            }
            json.endObject();
        }
    }
    json.endArray();
    json.beginObject("engine");
    json.member("jobs", engine.jobs());
    json.member("repeat", options.repeat);
    json.member("keepGoing", options.keepGoing);
    json.member("simulate", options.simulate);
    json.member("jobsSubmitted", stats.jobsSubmitted);
    json.member("cacheHits", stats.cacheHits);
    json.member("cacheMisses", stats.cacheMisses);
    json.member("coalesced", stats.coalesced);
    json.member("failed", stats.failed);
    json.member("hitRate", stats.hitRate());
    json.member("cacheDir", options.cacheDir);
    json.member("diskHits", stats.diskHits);
    json.member("diskMisses", stats.diskMisses);
    json.member("diskStores", stats.diskStores);
    json.member("corruptEvicted", stats.corruptEvicted);
    json.member("diskHitRate", stats.diskHitRate());
    // Additive: phase breakdown only when the engine collected one,
    // so pre-telemetry consumers of this block are unaffected.
    CompileTrace phases = engine.phaseTotals();
    if (!phases.empty())
        writeCompileTracePhases(json, "phases", phases);
    json.endObject();
    json.endObject();
}

int
run(int argc, char **argv)
{
    CliOptions options = parseArgs(argc, argv);
    MachineConfig machine = machineFor(options);
    std::vector<SchedulerKind> schemes = schemesFor(options);
    std::vector<InputLoop> inputs =
        readInputs(options.files, options.keepGoing);

    // Telemetry destinations outlive the engine (required: worker
    // threads write into them until the engine is destroyed).
    MetricRegistry registry;
    TraceSink trace;
    EngineOptions engineOptions;
    engineOptions.jobs = options.jobs;
    engineOptions.cacheDir = options.cacheDir;
    if (!options.statsJsonPath.empty()) {
        engineOptions.metrics = &registry;
        engineOptions.collectPhases = true;
    }
    if (!options.tracePath.empty()) {
        engineOptions.trace = &trace;
        engineOptions.collectPhases = true;
    }
    Engine engine(engineOptions);

    std::vector<EngineJob> batch;
    batch.reserve(schemes.size() * inputs.size());
    for (const SchedulerKind kind : schemes) {
        for (const InputLoop &input : inputs) {
            if (!input.parsed())
                continue;
            EngineJob job;
            job.loop = &input.ddg;
            job.machine = &machine;
            job.kind = kind;
            batch.push_back(job);
        }
    }

    std::vector<CompileResult> results;
    for (int r = 0; r < options.repeat; ++r)
        results = engine.compileBatch(batch);

    // --simulate: replay every successfully compiled loop; the
    // verdicts ride on the report rows (parallel to results, error
    // rows keep their error object untouched).
    std::vector<std::optional<sim::SimResult>> sims(results.size());
    bool simFailed = false;
    if (options.simulate) {
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (!results[i].ok())
                continue;
            sims[i] = sim::simulate(*batch[i].loop, machine,
                                    results[i].loop);
            if (!sims[i]->simOk) {
                simFailed = true;
                GPSCHED_WARN("replay of loop '",
                             results[i].loop.loopName, "' failed: ",
                             sims[i]->fault
                                 ? sims[i]->fault->toString()
                                 : std::string("unknown fault"));
            }
        }
    }

    bool anyFailed = simFailed;
    for (const InputLoop &input : inputs)
        anyFailed |= !input.parsed();
    for (const CompileResult &result : results) {
        if (!result.ok()) {
            anyFailed = true;
            // Without --keep-going the first compile failure ends
            // the run exactly like the historical fatal did.
            if (!options.keepGoing)
                throw *result.error;
        }
    }

    if (options.jsonPath == "-") {
        writeReport(std::cout, options, machine, schemes, inputs,
                    results, sims, engine);
    } else {
        std::ofstream out(options.jsonPath);
        if (!out)
            GPSCHED_FATAL("cannot open JSON report path '",
                          options.jsonPath, "'");
        writeReport(out, options, machine, schemes, inputs, results,
                    sims, engine);
    }

    if (!options.statsJsonPath.empty()) {
        engine.exportStats(registry);
        std::ofstream out(options.statsJsonPath);
        if (!out)
            GPSCHED_FATAL("cannot open stats path '",
                          options.statsJsonPath, "'");
        registry.writeJson(out);
    }
    if (!options.tracePath.empty()) {
        std::ofstream out(options.tracePath);
        if (!out)
            GPSCHED_FATAL("cannot open trace path '",
                          options.tracePath, "'");
        trace.writeJson(out);
    }
    return anyFailed ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Per-loop failures that escape this far (a parse error without
    // --keep-going, or a compile rejection of a non-keep-going run)
    // end the process with the same diagnostic shape fatal() prints.
    try {
        return run(argc, argv);
    } catch (const CompileError &error) {
        std::cerr << "fatal: " << error.diagnostic() << "\n";
        return 1;
    }
}
