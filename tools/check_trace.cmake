# Drive gpsched_cli with --trace and validate the emitted Chrome
# trace-event files with check_trace.py (after running the validator's
# own self-test, so a broken checker cannot vacuously pass). Uses
# --jobs 4 to get genuinely concurrent compile spans across worker
# tids, plus a --cache-dir so cache-probe/disk-IO spans appear too.
#
# Variables: CLI (gpsched_cli path), DDG (input file), PYTHON
# (interpreter), CHECK (check_trace.py path), OUT (trace output path
# prefix), CACHE (scratch cache dir), PHASES (the GPSCHED_TELEMETRY
# option — phase spans only exist when they are compiled in).

if(NOT DEFINED CLI OR NOT DEFINED DDG OR NOT DEFINED PYTHON OR
   NOT DEFINED CHECK OR NOT DEFINED OUT OR NOT DEFINED CACHE)
  message(FATAL_ERROR
    "need -DCLI=... -DDDG=... -DPYTHON=... -DCHECK=... -DOUT=... "
    "-DCACHE=...")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECK} --self-test
  RESULT_VARIABLE status
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT status EQUAL 0)
  message(FATAL_ERROR
    "check_trace.py self-test failed (${status}):\n${out}${err}")
endif()

file(REMOVE_RECURSE "${CACHE}")

# Two runs over the same cache dir: the cold one traces compile +
# phase + disk-store spans, the warm one disk-lookup hits.
foreach(run cold warm)
  set(trace_file "${OUT}.${run}.json")
  file(REMOVE "${trace_file}")
  execute_process(
    COMMAND ${CLI} --scheme all --jobs 4 --repeat 2
            --cache-dir ${CACHE} --trace ${trace_file} --json -
            ${DDG}
    RESULT_VARIABLE status
    OUTPUT_VARIABLE ignored
    ERROR_VARIABLE err
  )
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "${run} --trace run failed (${status}): "
                        "${err}")
  endif()

  execute_process(
    COMMAND ${PYTHON} ${CHECK} ${trace_file}
    RESULT_VARIABLE status
    OUTPUT_VARIABLE out_text
    ERROR_VARIABLE err
  )
  if(NOT status EQUAL 0)
    message(FATAL_ERROR
      "${run} trace failed validation (${status}):\n${out_text}"
      "${err}")
  endif()
endforeach()

# Well-formed is not enough: each trace must contain its expected
# slice of the span taxonomy. Cold compiles (compile + phase spans +
# disk stores); warm is served from the persistent cache (disk
# lookups, no compiles).
set(needles
    "\"name\": \"compile\"" "\"name\": \"cache-probe\""
    "\"name\": \"disk-store\"" "\"name\": \"process_name\"")
if(PHASES)
  list(APPEND needles "\"cat\": \"phase\"")
endif()
file(READ "${OUT}.cold.json" cold_trace)
foreach(needle IN LISTS needles)
  if(NOT cold_trace MATCHES "${needle}")
    message(FATAL_ERROR
      "cold trace is missing ${needle}:\n${cold_trace}")
  endif()
endforeach()

file(READ "${OUT}.warm.json" warm_trace)
if(NOT warm_trace MATCHES "\"name\": \"disk-lookup\"")
  message(FATAL_ERROR
    "warm trace has no disk-lookup span:\n${warm_trace}")
endif()
if(warm_trace MATCHES "\"cat\": \"phase\"")
  message(FATAL_ERROR
    "warm trace recompiled (phase spans present):\n${warm_trace}")
endif()

file(REMOVE_RECURSE "${CACHE}")
