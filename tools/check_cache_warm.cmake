# Cold-then-warm gpsched_cli run over one --cache-dir: the warm run
# uses a fresh engine (fresh process, fresh in-memory cache), so
# every unique loop shape must be served by the persistent layer —
# diskHits > 0 and cacheMisses (compilations) == 0 — and the per-loop
# metrics must be identical to the cold run's.
#
# Variables: CLI (gpsched_cli path), DDG (input file), CACHE (dir).

if(NOT DEFINED CLI OR NOT DEFINED DDG OR NOT DEFINED CACHE)
  message(FATAL_ERROR "need -DCLI=... -DDDG=... -DCACHE=...")
endif()

file(REMOVE_RECURSE "${CACHE}")

foreach(run cold warm)
  execute_process(
    COMMAND ${CLI} --scheme all --jobs 2 --cache-dir ${CACHE}
            --json - ${DDG}
    RESULT_VARIABLE status
    OUTPUT_VARIABLE ${run}_out
    ERROR_VARIABLE err
  )
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "${run} run failed (${status}): ${err}")
  endif()
endforeach()

if(NOT cold_out MATCHES "\"diskStores\": [1-9]")
  message(FATAL_ERROR "cold run stored nothing:\n${cold_out}")
endif()
if(NOT warm_out MATCHES "\"diskHits\": [1-9]")
  message(FATAL_ERROR "warm run hit nothing:\n${warm_out}")
endif()
if(NOT warm_out MATCHES "\"cacheMisses\": 0")
  message(FATAL_ERROR "warm run recompiled:\n${warm_out}")
endif()

# Every warm loop must come off the persistent layer, and the cold
# run must have compiled at least one loop from scratch (duplicates
# may coalesce or hit the in-memory cache under --jobs 2).
if(warm_out MATCHES "\"source\": \"compiled\"")
  message(FATAL_ERROR "warm run compiled a loop:\n${warm_out}")
endif()
if(NOT warm_out MATCHES "\"source\": \"disk\"")
  message(FATAL_ERROR "warm run has no disk-sourced loop:\n${warm_out}")
endif()
if(NOT cold_out MATCHES "\"source\": \"compiled\"")
  message(FATAL_ERROR "cold run compiled nothing:\n${cold_out}")
endif()

# The per-loop reports must agree metric for metric. Strip the
# engine-stats block and the per-run wall-clock / provenance fields
# (schedSeconds, compileMs, source) before comparing. The engine
# block is flat here: its nested phases array only appears under
# --stats-json / --trace, which this test does not pass.
foreach(run cold warm)
  string(REGEX REPLACE "\"engine\": {[^}]*}" "" ${run}_trim
         "${${run}_out}")
  string(REGEX REPLACE "\"schedSeconds\": [^,}\n]*" "" ${run}_trim
         "${${run}_trim}")
  string(REGEX REPLACE "\"compileMs\": [^,}\n]*" "" ${run}_trim
         "${${run}_trim}")
  string(REGEX REPLACE "\"source\": \"[a-z]*\"" "" ${run}_trim
         "${${run}_trim}")
endforeach()
if(NOT cold_trim STREQUAL warm_trim)
  message(FATAL_ERROR
    "warm report differs from cold report\n--- cold ---\n${cold_out}"
    "\n--- warm ---\n${warm_out}")
endif()

file(REMOVE_RECURSE "${CACHE}")
