/**
 * @file
 * Differential fuzzing front-end over workload/fuzz.hh.
 *
 *   ddg_fuzz gen    — emit a seeded corpus as multi-DDG text
 *   ddg_fuzz sweep  — generate + compile every loop across all
 *                     schemes x the machine corpus, hold every record
 *                     to the two-oracle contract, auto-minimize any
 *                     failure and write reduced .ddg + reproducer
 *                     command lines to a failures directory
 *   ddg_fuzz repro  — re-run one emitted reproducer; exit 0 iff the
 *                     recorded failure still fires
 *
 * Exit status of `sweep` is 0 iff the whole corpus passed — which is
 * exactly what the nightly gate and the smoke CTest entry assert,
 * and what the --corrupt canary inverts to prove the harness can
 * actually fail.
 */

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "engine/thread_pool.hh"
#include "graph/textio.hh"
#include "machine/registry.hh"
#include "support/compile_error.hh"
#include "support/logging.hh"
#include "workload/fuzz.hh"

#ifndef GPSCHED_FUZZ_MACHINES_DIR
#define GPSCHED_FUZZ_MACHINES_DIR ""
#endif

namespace
{

using namespace gpsched;
using namespace gpsched::fuzz;

void
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0 << " <command> [options]\n"
        << "commands:\n"
        << "  gen    --seed S --count N [--out PATH]\n"
        << "         emit the corpus as multi-DDG text ('-' = stdout)\n"
        << "  sweep  [--seed S] [--count N | --smoke] [--jobs J]\n"
        << "         [--machines DIR] [--failures DIR] [--out PATH]\n"
        << "         [--corrupt none|cluster|cycles]\n"
        << "         compile the corpus across all schemes and the\n"
        << "         machine list, check both oracles + exact metrics\n"
        << "         on every record, minimize and record failures;\n"
        << "         exit 1 iff any case failed\n"
        << "  repro  --ddg FILE --machine SPEC --scheme SCHEME\n"
        << "         [--corrupt C] [--expect VERDICT]\n"
        << "         re-run one reproducer; exit 0 iff it still fails\n"
        << "defaults: --count " << "$GPSCHED_FUZZ_LOOPS or 100"
        << ", --smoke = 50 loops,\n"
        << "          --machines " << GPSCHED_FUZZ_MACHINES_DIR << "\n";
    std::exit(2);
}

const char *gArgv0 = "ddg_fuzz";

std::string
needValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::cerr << gArgv0 << ": option " << argv[i]
                  << " needs a value\n";
        usage(gArgv0);
    }
    return argv[++i];
}

std::uint64_t
parseU64(const std::string &text, const char *what)
{
    try {
        std::size_t end = 0;
        std::uint64_t v = std::stoull(text, &end, 0);
        if (end == text.size())
            return v;
    } catch (const std::exception &) {
    }
    GPSCHED_FATAL("bad ", what, " '", text, "'");
}

int
parseCount(const std::string &text, const char *what)
{
    auto v = parseU64(text, what);
    if (v < 1 || v > (1u << 30))
        GPSCHED_FATAL(what, " out of range: ", v);
    return static_cast<int>(v);
}

/** GPSCHED_FUZZ_LOOPS env override, else @p fallback. */
int
envLoops(int fallback)
{
    const char *env = std::getenv("GPSCHED_FUZZ_LOOPS");
    if (!env || !*env)
        return fallback;
    return parseCount(env, "GPSCHED_FUZZ_LOOPS");
}

SchedulerKind
parseScheme(const std::string &text)
{
    if (text == "uracam")
        return SchedulerKind::Uracam;
    if (text == "fixed")
        return SchedulerKind::FixedPartition;
    if (text == "gp")
        return SchedulerKind::Gp;
    GPSCHED_FATAL("bad scheme '", text, "' (want uracam|fixed|gp)");
}

const char *
schemeFlag(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Uracam:
        return "uracam";
      case SchedulerKind::FixedPartition:
        return "fixed";
      case SchedulerKind::Gp:
        return "gp";
      default:
        GPSCHED_PANIC("bad SchedulerKind");
    }
}

ScheduleCorruption
parseCorrupt(const std::string &text)
{
    if (text == "none")
        return ScheduleCorruption::None;
    if (text == "cluster")
        return ScheduleCorruption::ClusterOutOfRange;
    if (text == "cycles")
        return ScheduleCorruption::CyclesOffByOne;
    GPSCHED_FATAL("bad corruption '", text,
                  "' (want none|cluster|cycles)");
}

const char *
corruptFlag(ScheduleCorruption corruption)
{
    switch (corruption) {
      case ScheduleCorruption::None:
        return "none";
      case ScheduleCorruption::ClusterOutOfRange:
        return "cluster";
      case ScheduleCorruption::CyclesOffByOne:
        return "cycles";
      default:
        GPSCHED_PANIC("bad ScheduleCorruption");
    }
}

FuzzVerdict
parseVerdict(const std::string &text)
{
    for (FuzzVerdict v :
         {FuzzVerdict::Pass, FuzzVerdict::CompileRejected,
          FuzzVerdict::OracleDisagree, FuzzVerdict::ScheduleRejected,
          FuzzVerdict::MetricMismatch}) {
        if (text == toString(v))
            return v;
    }
    GPSCHED_FATAL("bad verdict '", text, "'");
}

// ---------------------------------------------------------------
// gen
// ---------------------------------------------------------------

int
runGen(int argc, char **argv)
{
    std::uint64_t seed = 0xf022c0de5eedULL;
    int count = envLoops(100);
    std::string out = "-";
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--seed")
            seed = parseU64(needValue(argc, argv, i), "--seed");
        else if (arg == "--count")
            count = parseCount(needValue(argc, argv, i), "--count");
        else if (arg == "--out")
            out = needValue(argc, argv, i);
        else
            usage(gArgv0);
    }
    LatencyTable lat;
    if (out == "-") {
        writeCorpus(std::cout, seed, count, lat);
        return 0;
    }
    std::ofstream os(out);
    if (!os)
        GPSCHED_FATAL("cannot write corpus to '", out, "'");
    writeCorpus(os, seed, count, lat);
    std::cerr << "wrote " << count << " loops (seed " << seed
              << ") to " << out << "\n";
    return 0;
}

// ---------------------------------------------------------------
// sweep
// ---------------------------------------------------------------

/** One failing case carried from the parallel sweep to the
 *  sequential minimization pass. */
struct SweepFailure
{
    FuzzCase fuzzCase;
    FuzzFailure first;
    std::size_t totalFailures = 0;
};

/** Case-insensitive-filesystem-safe artifact stem. */
std::string
artifactStem(const SweepFailure &f)
{
    std::string stem = f.fuzzCase.ddg.name() + "__" +
                       f.first.machine + "__" +
                       schemeFlag(f.first.scheme);
    for (char &c : stem) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) ||
              c == '_' || c == '-'))
            c = '_';
    }
    return stem;
}

int
runSweep(int argc, char **argv)
{
    std::uint64_t seed = 0xf022c0de5eedULL;
    int count = envLoops(100);
    int jobs = ThreadPool::hardwareConcurrency();
    std::string machinesDir = GPSCHED_FUZZ_MACHINES_DIR;
    std::string failuresDir = "fuzz-failures";
    std::string corpusOut;
    ScheduleCorruption corruption = ScheduleCorruption::None;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--seed")
            seed = parseU64(needValue(argc, argv, i), "--seed");
        else if (arg == "--count")
            count = parseCount(needValue(argc, argv, i), "--count");
        else if (arg == "--smoke")
            count = 50;
        else if (arg == "--jobs")
            jobs = parseCount(needValue(argc, argv, i), "--jobs");
        else if (arg == "--machines")
            machinesDir = needValue(argc, argv, i);
        else if (arg == "--failures")
            failuresDir = needValue(argc, argv, i);
        else if (arg == "--out")
            corpusOut = needValue(argc, argv, i);
        else if (arg == "--corrupt")
            corruption =
                parseCorrupt(needValue(argc, argv, i));
        else
            usage(gArgv0);
    }

    LatencyTable lat;
    std::vector<FuzzMachine> machines = fuzzMachines(machinesDir);
    std::vector<MachineConfig> configs = fuzzConfigs(machines);

    if (!corpusOut.empty()) {
        std::ofstream os(corpusOut);
        if (!os)
            GPSCHED_FATAL("cannot write corpus to '", corpusOut, "'");
        writeCorpus(os, seed, count, lat);
    }

    std::mutex mu;
    long pairsCompiled = 0;
    long moduloScheduled = 0;
    std::vector<SweepFailure> failing;
    {
        ThreadPool pool(jobs);
        for (int i = 0; i < count; ++i) {
            pool.submit([&, i] {
                FuzzCase c = corpusCase(seed, i, lat);
                FuzzCaseResult r =
                    runFuzzCase(c.ddg, configs, corruption);
                std::lock_guard<std::mutex> lock(mu);
                pairsCompiled += r.pairsCompiled;
                moduloScheduled += r.moduloScheduled;
                if (!r.ok()) {
                    failing.push_back({std::move(c),
                                       r.failures.front(),
                                       r.failures.size()});
                }
            });
        }
        pool.wait();
    }
    std::sort(failing.begin(), failing.end(),
              [](const SweepFailure &a, const SweepFailure &b) {
                  return a.fuzzCase.index < b.fuzzCase.index;
              });

    std::cout << "ddg_fuzz sweep: seed " << seed << ", " << count
              << " loops x " << machines.size() << " machines x 3 "
              << "schemes (corruption " << corruptFlag(corruption)
              << ")\n"
              << "  pairs compiled: " << pairsCompiled << " ("
              << moduloScheduled << " modulo-scheduled)\n"
              << "  failing cases:  " << failing.size() << "\n";
    if (failing.empty())
        return 0;

    // Minimize and record. Cap the minimized set so one systemic
    // failure cannot turn the nightly sweep into an hours-long
    // minimization marathon; the cap is logged, never silent.
    const std::size_t maxMinimized = 10;
    namespace fs = std::filesystem;
    fs::create_directories(failuresDir);
    std::string tool = fs::absolute(gArgv0).string();
    std::size_t minimized = 0;
    for (const SweepFailure &f : failing) {
        if (minimized >= maxMinimized) {
            std::cout << "  (minimization capped at " << maxMinimized
                      << " cases; " << failing.size() - minimized
                      << " more recorded unminimized)\n";
            break;
        }
        ++minimized;
        const FuzzMachine *fm = nullptr;
        for (const FuzzMachine &m : machines) {
            if (m.config.name() == f.first.machine)
                fm = &m;
        }
        GPSCHED_ASSERT(fm, "failure names unknown machine ",
                       f.first.machine);
        auto stillFails = [&](const Ddg &g) {
            FuzzCaseResult r =
                runFuzzCase(g, {fm->config}, corruption);
            for (const FuzzFailure &rf : r.failures) {
                if (rf.scheme == f.first.scheme &&
                    rf.kind == f.first.kind)
                    return true;
            }
            return false;
        };
        MinimizeStats stats;
        Ddg reduced =
            minimizeDdg(f.fuzzCase.ddg, stillFails, &stats, 4000);

        std::string stem = artifactStem(f);
        fs::path minPath = fs::path(failuresDir) / (stem + ".min.ddg");
        fs::path origPath =
            fs::path(failuresDir) / (stem + ".orig.ddg");
        fs::path reproPath = fs::path(failuresDir) / (stem + ".repro");
        auto header = [&](std::ostream &os) {
            os << "# " << f.first.toString() << "\n"
               << "# case " << f.fuzzCase.index << " seed "
               << f.fuzzCase.seed << " shape "
               << toString(f.fuzzCase.shape) << " corruption "
               << corruptFlag(corruption) << "\n";
        };
        {
            std::ofstream os(origPath);
            header(os);
            writeDdgText(os, f.fuzzCase.ddg);
        }
        {
            std::ofstream os(minPath);
            header(os);
            os << "# minimized " << stats.nodesBefore << " -> "
               << stats.nodesAfter << " nodes, " << stats.edgesBefore
               << " -> " << stats.edgesAfter << " edges in "
               << stats.probes << " probes\n";
            writeDdgText(os, reduced);
        }
        {
            std::ofstream os(reproPath);
            os << tool << " repro --ddg "
               << fs::absolute(minPath).string() << " --machine "
               << fm->spec << " --scheme "
               << schemeFlag(f.first.scheme) << " --corrupt "
               << corruptFlag(corruption) << " --expect "
               << toString(f.first.kind) << "\n";
        }
        std::cout << "  FAIL " << f.first.toString() << "\n"
                  << "       (" << f.totalFailures
                  << " failing pair(s); minimized "
                  << stats.nodesBefore << " -> " << stats.nodesAfter
                  << " nodes; artifacts: " << minPath.string()
                  << ", " << reproPath.string() << ")\n";
    }
    return 1;
}

// ---------------------------------------------------------------
// repro
// ---------------------------------------------------------------

int
runRepro(int argc, char **argv)
{
    std::string ddgPath;
    std::string machineSpec;
    std::string schemeText;
    ScheduleCorruption corruption = ScheduleCorruption::None;
    bool haveExpect = false;
    FuzzVerdict expect = FuzzVerdict::Pass;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--ddg")
            ddgPath = needValue(argc, argv, i);
        else if (arg == "--machine")
            machineSpec = needValue(argc, argv, i);
        else if (arg == "--scheme")
            schemeText = needValue(argc, argv, i);
        else if (arg == "--corrupt")
            corruption = parseCorrupt(needValue(argc, argv, i));
        else if (arg == "--expect") {
            expect = parseVerdict(needValue(argc, argv, i));
            haveExpect = true;
        } else
            usage(gArgv0);
    }
    if (ddgPath.empty() || machineSpec.empty() || schemeText.empty())
        usage(gArgv0);
    SchedulerKind scheme = parseScheme(schemeText);
    MachineConfig machine =
        MachineRegistry::builtin().resolve(machineSpec);

    std::ifstream in(ddgPath);
    if (!in)
        GPSCHED_FATAL("cannot open DDG file '", ddgPath, "'");
    std::vector<Ddg> loops;
    for (;;) {
        // Peek for content so trailing blanks/comments don't read
        // as a truncated block (same loop as gpsched_cli).
        std::string line;
        std::streampos before = in.tellg();
        bool content = false;
        while (std::getline(in, line)) {
            auto hash = line.find('#');
            if (hash != std::string::npos)
                line.erase(hash);
            if (line.find_first_not_of(" \t\r") != std::string::npos) {
                content = true;
                break;
            }
            before = in.tellg();
        }
        if (!content)
            break;
        in.seekg(before);
        loops.push_back(readDdgText(in));
    }
    if (loops.empty())
        GPSCHED_FATAL("no DDGs found in '", ddgPath, "'");

    bool reproduced = false;
    for (const Ddg &g : loops) {
        FuzzCaseResult r = runFuzzCase(g, {machine}, corruption);
        for (const FuzzFailure &f : r.failures) {
            if (f.scheme != scheme)
                continue;
            if (haveExpect && f.kind != expect)
                continue;
            std::cout << "reproduced: " << f.toString() << "\n";
            reproduced = true;
        }
    }
    if (!reproduced) {
        std::cout << "not reproduced: " << ddgPath << " @ "
                  << machineSpec << "/" << schemeText
                  << " compiles clean\n";
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    gArgv0 = argv[0];
    if (argc < 2)
        usage(argv[0]);
    std::string cmd = argv[1];
    if (cmd == "gen")
        return runGen(argc, argv);
    if (cmd == "sweep")
        return runSweep(argc, argv);
    if (cmd == "repro")
        return runRepro(argc, argv);
    usage(argv[0]);
}
