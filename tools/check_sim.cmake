# The --simulate contract, end to end: (a) over a healthy batch the
# CLI exits 0 and every loop row carries a sim verdict that agrees
# with the compile record (simOk true, achievedII == ii for
# modulo-scheduled loops, achievedIpc == ipc exactly); (b) over a
# mixed good/bad batch with --keep-going the failed loops keep their
# typed error objects untouched (no sim fields) while the good loops
# still carry agreeing verdicts, and the run exits 1 because loops
# failed to compile — not because any replay failed.
#
# Variables:
#   CLI     path to the gpsched_cli binary
#   CLEAN   an all-good fixture (sample_loop.ddg)
#   MIXED   the mixed good/bad fixture (mixed_loops.ddg)
#   PYTHON  python3 interpreter for the strict JSON checks
#   OUT     scratch path prefix for the JSON reports

foreach(var CLI CLEAN MIXED PYTHON OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_sim.cmake needs -D${var}=...")
  endif()
endforeach()

# --- healthy batch: exit 0, every row sim-verified -----------------
execute_process(
  COMMAND ${CLI} --simulate --scheme all --json ${OUT}.clean.json
          ${CLEAN}
  RESULT_VARIABLE status
  ERROR_VARIABLE err
)
if(NOT status STREQUAL "0")
  message(FATAL_ERROR
    "--simulate over a clean batch must exit 0, got '${status}'\n"
    "stderr: ${err}")
endif()

execute_process(
  COMMAND ${PYTHON} -c "
import json, sys
report = json.load(open(sys.argv[1]))
loops = report['loops']
assert loops, 'no loop rows'
assert report['engine']['simulate'] is True, 'simulate not recorded'
for row in loops:
    assert 'error' not in row, 'unexpected error row: %r' % row
    assert row['simOk'] is True, 'replay rejected %s' % row['name']
    if row['moduloScheduled']:
        assert row['replayed'] is True, row['name']
        assert row['achievedII'] == row['ii'], \
            '%s: achieved II %s != scheduled II %s' % (
                row['name'], row['achievedII'], row['ii'])
    assert row['achievedIpc'] == row['ipc'], \
        '%s: achieved IPC %s != reported %s' % (
            row['name'], row['achievedIpc'], row['ipc'])
    assert row['simCycles'] == row['cycles'], row['name']
    assert 'simFault' not in row, row['name']
print('checked', len(loops), 'sim-verified rows')
" ${OUT}.clean.json
  RESULT_VARIABLE status
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT status STREQUAL "0")
  message(FATAL_ERROR "clean-report sim checks failed:\n${err}")
endif()

# --- mixed batch with --keep-going: error rows untouched -----------
execute_process(
  COMMAND ${CLI} --simulate --keep-going --json ${OUT}.mixed.json
          ${MIXED}
  RESULT_VARIABLE status
  ERROR_VARIABLE err
)
if(NOT status STREQUAL "1")
  message(FATAL_ERROR
    "--simulate --keep-going over a mixed batch must exit 1 "
    "(compile failures), got '${status}'\nstderr: ${err}")
endif()

execute_process(
  COMMAND ${PYTHON} -c "
import json, sys
report = json.load(open(sys.argv[1]))
good = bad = 0
for row in report['loops']:
    if 'error' in row:
        bad += 1
        # A failed loop has no schedule to replay: its error object
        # must ride alone, without sim fields.
        for key in ('simOk', 'replayed', 'achievedII', 'achievedIpc',
                    'simFault'):
            assert key not in row, '%s leaked into error row %s' % (
                key, row['name'])
        assert set(row['error']) == {'kind', 'message', 'location'}
    else:
        good += 1
        assert row['simOk'] is True, 'replay rejected %s' % row['name']
        assert row['achievedIpc'] == row['ipc'], row['name']
assert good >= 2 and bad >= 2, 'fixture shape changed: %d/%d' % (
    good, bad)
print('checked', good, 'good +', bad, 'error rows')
" ${OUT}.mixed.json
  RESULT_VARIABLE status
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT status STREQUAL "0")
  message(FATAL_ERROR "mixed-report sim checks failed:\n${err}")
endif()
