#!/usr/bin/env python3
"""Validate a gpsched Chrome trace-event file.

Checks, in order:
  1. strict JSON parse; top level is an object with a "traceEvents"
     list;
  2. every event has name/ph/pid/tid/ts, "X" events a dur >= 0, and
     "b"/"e" events an id;
  3. timestamps are monotonically non-decreasing over non-metadata
     events (gpsched sorts on export, so out-of-order events mean a
     writer bug);
  4. per (pid, tid), "X" (complete) events nest properly: a span
     starting inside another must end inside it too (queue-wait is
     emitted as async "b"/"e" precisely because it may not nest);
  5. async "b"/"e" pairs balance per (cat, id).

Usage:
  check_trace.py TRACE.json        validate a trace file
  check_trace.py --self-test       run the embedded pass/fail samples

Exit status 0 on a valid trace, 1 on any violation (messages on
stderr).
"""

import json
import sys

REQUIRED_KEYS = ("name", "ph", "pid", "tid", "ts")


def fail(msg):
    return ["check_trace: " + msg]


def validate(root):
    """Returns a list of error strings; empty means valid."""
    errors = []
    if not isinstance(root, dict):
        return fail("top level must be an object, got %s" %
                    type(root).__name__)
    events = root.get("traceEvents")
    if not isinstance(events, list):
        return fail('"traceEvents" must be a list')

    last_ts = None
    # (pid, tid) -> stack of (name, start, end) open X intervals.
    open_spans = {}
    # (cat, id) -> balance counter for async pairs.
    async_balance = {}

    for index, event in enumerate(events):
        where = "event %d" % index
        if not isinstance(event, dict):
            errors += fail("%s: not an object" % where)
            continue
        missing = [key for key in REQUIRED_KEYS if key not in event]
        if missing:
            errors += fail("%s: missing %s" % (where, missing))
            continue
        ph = event["ph"]
        name = event["name"]
        where = "event %d (%s %r)" % (index, ph, name)
        if ph == "M":
            continue  # metadata carries no timeline semantics
        ts = event["ts"]
        if not isinstance(ts, (int, float)):
            errors += fail("%s: non-numeric ts" % where)
            continue
        if last_ts is not None and ts < last_ts:
            errors += fail("%s: ts %s < previous %s (timestamps "
                           "must be monotonic)" % (where, ts, last_ts))
        last_ts = ts

        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors += fail("%s: X event needs dur >= 0, got %r" %
                               (where, dur))
                continue
            key = (event["pid"], event["tid"])
            stack = open_spans.setdefault(key, [])
            # Retire spans that ended before this one starts.
            while stack and stack[-1][2] <= ts:
                stack.pop()
            if stack and ts + dur > stack[-1][2]:
                errors += fail(
                    "%s: [%s, %s] overlaps enclosing span %r "
                    "[%s, %s] without nesting (pid %s tid %s)" %
                    (where, ts, ts + dur, stack[-1][0], stack[-1][1],
                     stack[-1][2], key[0], key[1]))
            stack.append((name, ts, ts + dur))
        elif ph == "b":
            if "id" not in event:
                errors += fail("%s: async begin without id" % where)
                continue
            key = (event.get("cat"), event["id"])
            async_balance[key] = async_balance.get(key, 0) + 1
        elif ph == "e":
            if "id" not in event:
                errors += fail("%s: async end without id" % where)
                continue
            key = (event.get("cat"), event["id"])
            balance = async_balance.get(key, 0) - 1
            if balance < 0:
                errors += fail("%s: async end without begin "
                               "(cat %r id %r)" % (where, key[0],
                                                   key[1]))
            async_balance[key] = balance
        else:
            errors += fail("%s: unsupported ph %r" % (where, ph))

    for (cat, pair_id), balance in sorted(
            async_balance.items(), key=lambda item: repr(item)):
        if balance > 0:
            errors += fail("async begin without end (cat %r id %r)" %
                           (cat, pair_id))
    return errors


def check_file(path):
    try:
        with open(path) as fh:
            root = json.load(fh)
    except (OSError, ValueError) as err:
        print("check_trace: %s: %s" % (path, err), file=sys.stderr)
        return 1
    errors = validate(root)
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        print("check_trace: %s: %d violation(s)" %
              (path, len(errors)), file=sys.stderr)
        return 1
    events = root["traceEvents"]
    print("check_trace: %s OK (%d events)" % (path, len(events)))
    return 0


def self_test():
    def ev(ph, name, ts, dur=None, pid=1, tid=1, eid=None, cat=None):
        out = {"name": name, "ph": ph, "pid": pid, "tid": tid,
               "ts": ts}
        if dur is not None:
            out["dur"] = dur
        if eid is not None:
            out["id"] = eid
        if cat is not None:
            out["cat"] = cat
        return out

    passes = {
        "nested spans": [ev("X", "compile", 0, 100),
                         ev("X", "coarsen", 10, 20),
                         ev("X", "refine", 40, 30)],
        "metadata first": [ev("M", "process_name", 0),
                           ev("X", "compile", 5, 10)],
        "async pair": [ev("b", "queue-wait", 0, eid=1, cat="queue"),
                       ev("e", "queue-wait", 9, eid=1, cat="queue")],
        "different tids overlap": [ev("X", "compile", 0, 100, tid=1),
                                   ev("X", "compile", 10, 100,
                                      tid=2)],
        "empty": [],
    }
    failures = {
        "non-monotonic ts": [ev("X", "a", 10, 5), ev("X", "b", 3, 2)],
        "negative dur": [ev("X", "a", 0, -1)],
        "missing keys": [{"ph": "X", "ts": 0}],
        "overlap same tid": [ev("X", "a", 0, 50),
                             ev("X", "b", 25, 50)],
        "unbalanced async": [ev("b", "w", 0, eid=7, cat="queue")],
        "unknown phase": [ev("q", "a", 0)],
    }
    ok = True
    for title, events in passes.items():
        if validate({"traceEvents": events}):
            print("self-test: expected PASS for %r" % title,
                  file=sys.stderr)
            ok = False
    for title, events in failures.items():
        if not validate({"traceEvents": events}):
            print("self-test: expected FAIL for %r" % title,
                  file=sys.stderr)
            ok = False
    if not validate([]) or not validate({"traceEvents": 3}):
        print("self-test: malformed top level must fail",
              file=sys.stderr)
        ok = False
    print("self-test: %s" % ("OK" if ok else "FAILED"))
    return 0 if ok else 1


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    return check_file(argv[1])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
