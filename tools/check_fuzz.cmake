# The differential-fuzzing contract, end to end (the smoke-sized
# CTest entry on every build; the nightly sweep runs the same binary
# with GPSCHED_FUZZ_LOOPS=1000):
#
#   (a) a clean smoke sweep — every generated loop compiled under all
#       3 schemes across the machine corpus, validator and simulator
#       agreeing with bit-exact metrics — exits 0 with no artifacts;
#   (b) the injected-corruption canary (--corrupt cluster) exits 1,
#       proving the two-oracle harness can actually fail;
#   (c) the canary's failures are minimized to <= 25% of the original
#       node count, with .min.ddg/.orig.ddg/.repro artifacts;
#   (d) the emitted reproducer command line, run verbatim, reproduces
#       the recorded failure (exit 0 from `ddg_fuzz repro`);
#   (e) the metric-mismatch canary (--corrupt cycles) is caught too.
#
# Variables:
#   FUZZ  path to the ddg_fuzz binary
#   OUT   scratch directory

foreach(var FUZZ OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_fuzz.cmake needs -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE ${OUT})
file(MAKE_DIRECTORY ${OUT})

# --- (a) clean smoke sweep ----------------------------------------
execute_process(
  COMMAND ${FUZZ} sweep --smoke --seed 0xf022c0de5eed
          --failures ${OUT}/clean --out ${OUT}/corpus.ddg
  RESULT_VARIABLE status
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT status STREQUAL "0")
  message(FATAL_ERROR
    "clean smoke sweep must exit 0, got '${status}'\n"
    "stdout: ${out}\nstderr: ${err}")
endif()
if(NOT out MATCHES "failing cases:  0")
  message(FATAL_ERROR "clean sweep reports failures:\n${out}")
endif()
if(EXISTS ${OUT}/clean)
  file(GLOB stray ${OUT}/clean/*)
  if(stray)
    message(FATAL_ERROR "clean sweep left artifacts: ${stray}")
  endif()
endif()
# The corpus artifact (what the nightly job uploads) really is a
# multi-DDG stream of the requested size.
file(STRINGS ${OUT}/corpus.ddg headers REGEX "^ddg ")
list(LENGTH headers nloops)
if(NOT nloops EQUAL 50)
  message(FATAL_ERROR "corpus has ${nloops} loops, want 50")
endif()

# --- (b)+(c) schedule-corruption canary ---------------------------
execute_process(
  COMMAND ${FUZZ} sweep --count 6 --seed 0xf022c0de5eed
          --corrupt cluster --failures ${OUT}/canary
  RESULT_VARIABLE status
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT status STREQUAL "1")
  message(FATAL_ERROR
    "corrupted sweep must exit 1, got '${status}'\n"
    "stdout: ${out}\nstderr: ${err}")
endif()

file(GLOB min_ddgs ${OUT}/canary/*.min.ddg)
file(GLOB repros ${OUT}/canary/*.repro)
if(NOT min_ddgs OR NOT repros)
  message(FATAL_ERROR
    "canary produced no minimized/.repro artifacts\nstdout: ${out}")
endif()

list(GET min_ddgs 0 min_ddg)
string(REPLACE ".min.ddg" ".orig.ddg" orig_ddg ${min_ddg})
file(STRINGS ${min_ddg} min_nodes REGEX "^node ")
file(STRINGS ${orig_ddg} orig_nodes REGEX "^node ")
list(LENGTH min_nodes nmin)
list(LENGTH orig_nodes norig)
math(EXPR bound "${norig} / 4")
if(nmin GREATER bound)
  message(FATAL_ERROR
    "minimizer left ${nmin}/${norig} nodes (> 25%): ${min_ddg}")
endif()

# --- (d) the emitted reproducer line reproduces -------------------
list(GET repros 0 repro_file)
file(READ ${repro_file} repro_cmd)
string(STRIP "${repro_cmd}" repro_cmd)
separate_arguments(repro_args UNIX_COMMAND "${repro_cmd}")
execute_process(
  COMMAND ${repro_args}
  RESULT_VARIABLE status
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT status STREQUAL "0")
  message(FATAL_ERROR
    "reproducer '${repro_cmd}' did not reproduce (exit '${status}')\n"
    "stdout: ${out}\nstderr: ${err}")
endif()
if(NOT out MATCHES "reproduced: ")
  message(FATAL_ERROR "reproducer output unexpected:\n${out}")
endif()

# --- (e) estimator-mismatch canary --------------------------------
execute_process(
  COMMAND ${FUZZ} sweep --count 4 --seed 0xf022c0de5eed
          --corrupt cycles --failures ${OUT}/cycles
  RESULT_VARIABLE status
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT status STREQUAL "1")
  message(FATAL_ERROR
    "cycles-corruption sweep must exit 1, got '${status}'\n"
    "stdout: ${out}\nstderr: ${err}")
endif()
if(NOT out MATCHES "metric-mismatch")
  message(FATAL_ERROR "no metric-mismatch verdict:\n${out}")
endif()
