#!/usr/bin/env python3
"""Compare two BENCH_*.json trajectories and gate on IPC regressions.

The nightly CI job uploads every bench driver's --json report
(BENCH_fig2.json, BENCH_corpus.json, BENCH_ablation_*.json, ...).
This tool diffs the numeric metrics of two such trajectories — two
files, or two directories of BENCH_*.json files — and exits non-zero
when any IPC metric regresses by more than the threshold (default
5%).

Understands both report schemas emitted by bench/common:

  * figure panels: {"panels": [{"title", "rows": [{"program",
    "unified", "uracam", "fixed", "gp"}, ...]}]} — the gate applies
    to *every* row of every panel, per-program rows and the
    per-panel "average" row alike;
  * metric tables: {"tables": [{"title", "labelColumns",
    "valueColumns", "rows": [{"labels": [...], "values": [...]}]}]}
    — the gate applies to value columns whose name contains "ipc"
    (case-insensitive), on every row;
  * table2_sched_time's bespoke rows (scheduling-time seconds);
  * the engine telemetry block every driver emits ("engine":
    {"phases": [{"phase", "wallMs", "cpuMs", "count"}, ...]}).

Two gates with opposite polarity run over the flattened metrics:

  * IPC gate — lower is a regression; threshold --threshold
    (default 5%). Deterministic compilation results, so the
    threshold is tight and per-row.
  * time gate — *higher* is a regression; threshold
    --time-threshold (default 50%). Applies to table2's *Seconds
    columns and every per-phase wallMs. Wall time is noisy on
    shared runners, so the threshold is deliberately loose: it is a
    tripwire for structural slowdowns (an accidental O(n^2), a
    debug-build upload), not a micro-benchmark.

Gating is per metric, never per aggregate: each panel is one machine
and each corpus-table row is one (machine, policy), so a regression
on a single machine, program or policy can never hide behind an
improved global or corpus mean.

Metrics present on only one side are reported but never fail the
gate, so renaming a configuration or adding a bench does not break
the first nightly after the change.

Usage:
  bench_delta.py OLD NEW [--threshold PCT] [--all-metrics]
  bench_delta.py --self-test
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys


def collect_metrics(report):
    """Flattens one report into {metric-key: float}."""
    metrics = {}
    bench = report.get("bench", "?")

    for panel in report.get("panels", []):
        title = panel.get("title", "?")
        for row in panel.get("rows", []):
            program = row.get("program", "?")
            for column in ("unified", "uracam", "fixed", "gp"):
                if column not in row:
                    continue
                key = f"{bench}/{title}/{program}/{column}"
                metrics[key] = float(row[column])

    for table in report.get("tables", []):
        title = table.get("title", "?")
        columns = table.get("valueColumns", [])
        for row in table.get("rows", []):
            label = "/".join(row.get("labels", []))
            for column, value in zip(columns, row.get("values", [])):
                key = f"{bench}/{title}/{label}/{column}"
                metrics[key] = float(value)

    if bench == "table2_sched_time":
        for row in report.get("rows", []):
            label = row.get("configuration", "?")
            for column in ("uracamSeconds", "fixedSeconds",
                           "gpSeconds"):
                if column in row:
                    key = f"{bench}/{label}/{column}"
                    metrics[key] = float(row[column])

    for span in report.get("engine", {}).get("phases", []):
        phase = span.get("phase", "?")
        if "wallMs" in span:
            metrics[f"{bench}/phase/{phase}/wallMs"] = \
                float(span["wallMs"])

    return metrics


PANEL_SCHEME_COLUMNS = ("unified", "uracam", "fixed", "gp")


def is_gated(key):
    """True for the IPC metrics the regression gate applies to.

    Panel reports gate every row (per-program IPCs and the per-panel
    average — one panel is one machine, so this is per-machine by
    construction); metric tables gate any column whose name mentions
    IPC, per row. Aggregate rows (panel averages, the corpus-mean
    row) are gated too, but never *instead of* their per-machine or
    per-program constituents: a regression on one machine cannot
    hide inside an improved aggregate.
    """
    last = key.split("/")[-1]
    if last in PANEL_SCHEME_COLUMNS:
        return True
    return "ipc" in last.lower()


def is_time_gated(key):
    """True for the timing metrics gated with inverted polarity:
    table2's scheduling-time columns and the per-phase wall times of
    every driver's engine telemetry block."""
    parts = key.split("/")
    if parts[-1].endswith("Seconds"):
        return parts[0] == "table2_sched_time"
    return len(parts) >= 3 and parts[-3] == "phase" and \
        parts[-1] == "wallMs"


def load_side(path):
    """Loads one side: a JSON file or a directory of BENCH_*.json."""
    if os.path.isdir(path):
        reports = []
        for name in sorted(glob.glob(os.path.join(path,
                                                  "BENCH_*.json"))):
            with open(name) as handle:
                reports.append(json.load(handle))
        if not reports:
            raise FileNotFoundError(
                f"no BENCH_*.json files under '{path}'")
        merged = {}
        for report in reports:
            merged.update(collect_metrics(report))
        return merged
    with open(path) as handle:
        return collect_metrics(json.load(handle))


def compare(old, new, threshold_pct, gate_all,
            time_threshold_pct=50.0):
    """Returns (report_lines, failures)."""
    lines = []
    failures = []
    shared = sorted(set(old) & set(new))
    for key in shared:
        before, after = old[key], new[key]
        if before == 0.0:
            continue
        delta_pct = 100.0 * (after - before) / abs(before)
        marker = " "
        if is_time_gated(key):
            # Inverted polarity: more time is the regression.
            if delta_pct > time_threshold_pct:
                failures.append(key)
                marker = "!"
        elif gate_all or is_gated(key):
            if delta_pct < -threshold_pct:
                failures.append(key)
                marker = "!"
        if abs(delta_pct) > 0.01 or marker == "!":
            lines.append(f"{marker} {key}: {before:.4f} -> "
                         f"{after:.4f} ({delta_pct:+.2f}%)")
    for key in sorted(set(old) - set(new)):
        lines.append(f"- {key}: only in OLD (ignored)")
    for key in sorted(set(new) - set(old)):
        lines.append(f"+ {key}: only in NEW (ignored)")
    gated_count = sum(1 for k in shared
                      if gate_all or is_gated(k))
    time_count = sum(1 for k in shared if is_time_gated(k))
    lines.append(f"compared {len(shared)} shared metrics "
                 f"({gated_count} gated at {threshold_pct:.1f}%, "
                 f"{time_count} time-gated at "
                 f"{time_threshold_pct:.1f}%)")
    return lines, failures


def self_test():
    """Exercises the gate logic without touching the filesystem."""
    panels = {
        "bench": "fig2_ipc_lat1",
        "panels": [{
            "title": "p",
            "rows": [
                {"program": "swim", "gp": 5.0, "uracam": 4.0},
                {"program": "average", "gp": 5.0, "uracam": 4.0},
            ],
        }],
    }
    tables = {
        "bench": "ablation_unroll",
        "tables": [{
            "title": "t",
            "labelColumns": ["configuration"],
            "valueColumns": ["meanIpc", "schedSeconds"],
            "rows": [{"labels": ["2c"], "values": [3.0, 1.0]}],
        }],
    }
    old = collect_metrics(panels)
    old.update(collect_metrics(tables))
    assert "fig2_ipc_lat1/p/average/gp" in old, old
    assert is_gated("fig2_ipc_lat1/p/average/gp")
    assert is_gated("ablation_unroll/t/2c/meanIpc")
    assert not is_gated("ablation_unroll/t/2c/schedSeconds")
    # Per-program panel rows are gated, not just the average: a
    # one-program regression cannot hide in the panel mean.
    assert is_gated("fig2_ipc_lat1/p/swim/gp")
    assert is_gated("fig2_ipc_lat1/p/swim/unified")
    # The value-column names the drivers actually emit.
    assert is_gated("ablation_unroll/t/2c/unroll1Ipc")
    assert is_gated("fig_buses/t/2c/gpIpc")
    assert is_gated("ablation_edge_weights/t/2c/delaySlackIpc")
    assert is_gated("bench_corpus/Corpus sweep/hetero-2c/slack/gpIpc")
    assert not is_gated("ablation_regpressure/t/2c/gainPct")
    assert not is_gated("fig_buses/t/2c/buses")
    assert not is_gated("table1_configs/t/2c/regs")
    assert not is_gated(
        "bench_corpus/Transfer policy delta/hetero-2c/busClasses")
    assert not is_gated("table2_sched_time/2c/gpSeconds")
    # Timing metrics belong to the inverted-polarity gate instead.
    assert is_time_gated("table2_sched_time/2c/gpSeconds")
    assert is_time_gated("fig2_ipc_lat1/phase/refine/wallMs")
    assert not is_time_gated("ablation_unroll/t/2c/schedSeconds")
    assert not is_time_gated("fig2_ipc_lat1/p/swim/gp")

    # A 3% dip passes at the default 5% threshold...
    new = dict(old)
    new["fig2_ipc_lat1/p/average/gp"] = 5.0 * 0.97
    _, failures = compare(old, new, 5.0, False)
    assert not failures, failures
    # ...a 10% dip fails...
    new["fig2_ipc_lat1/p/average/gp"] = 5.0 * 0.90
    _, failures = compare(old, new, 5.0, False)
    assert failures == ["fig2_ipc_lat1/p/average/gp"], failures
    # ...a one-program dip fails even when the average improves...
    new = dict(old)
    new["fig2_ipc_lat1/p/swim/gp"] = 5.0 * 0.90
    new["fig2_ipc_lat1/p/average/gp"] = 5.0 * 1.10
    _, failures = compare(old, new, 5.0, False)
    assert failures == ["fig2_ipc_lat1/p/swim/gp"], failures
    # ...an ungated timing regression never fails...
    new = dict(old)
    new["ablation_unroll/t/2c/schedSeconds"] = 100.0
    _, failures = compare(old, new, 5.0, False)
    assert not failures, failures
    # ...and vanished metrics are ignored.
    _, failures = compare(old, {}, 5.0, False)
    assert not failures, failures

    # Time gate: phase spans and table2 seconds fail on *increases*
    # past the loose time threshold, never on decreases.
    timing = {
        "bench": "table2_sched_time",
        "rows": [{"configuration": "2c", "gpSeconds": 2.0}],
        "engine": {"phases": [
            {"phase": "refine", "wallMs": 40.0, "cpuMs": 39.0,
             "count": 528},
        ]},
    }
    old_t = collect_metrics(timing)
    assert "table2_sched_time/2c/gpSeconds" in old_t, old_t
    assert "table2_sched_time/phase/refine/wallMs" in old_t, old_t
    # A 30% slowdown passes at the default 50% time threshold...
    new_t = dict(old_t)
    new_t["table2_sched_time/2c/gpSeconds"] = 2.0 * 1.3
    _, failures = compare(old_t, new_t, 5.0, False)
    assert not failures, failures
    # ...a canary-sized 3x slowdown trips both kinds of time metric...
    new_t["table2_sched_time/2c/gpSeconds"] = 2.0 * 3.0
    new_t["table2_sched_time/phase/refine/wallMs"] = 40.0 * 3.0
    _, failures = compare(old_t, new_t, 5.0, False)
    assert sorted(failures) == [
        "table2_sched_time/2c/gpSeconds",
        "table2_sched_time/phase/refine/wallMs",
    ], failures
    # ...and a large speedup never fails the time gate.
    new_t = dict(old_t)
    new_t["table2_sched_time/2c/gpSeconds"] = 0.5
    new_t["table2_sched_time/phase/refine/wallMs"] = 10.0
    _, failures = compare(old_t, new_t, 5.0, False)
    assert not failures, failures

    # Per-machine corpus gating: one machine's regression fails the
    # gate even when the corpus-mean row improves (a regression on
    # one corpus machine cannot hide in the aggregate).
    corpus = {
        "bench": "bench_corpus",
        "tables": [{
            "title": "Transfer policy delta",
            "labelColumns": ["machine"],
            "valueColumns": ["busClasses", "gpFastestIpc",
                             "gpSlackIpc", "slackGainPct"],
            "rows": [
                {"labels": ["hetero-2c"],
                 "values": [2.0, 4.0, 4.0, 0.0]},
                {"labels": ["regstarved-4c"],
                 "values": [2.0, 4.6, 4.7, 1.7]},
                {"labels": ["corpus-mean"],
                 "values": [0.0, 4.3, 4.35, 0.8]},
            ],
        }],
    }
    old_corpus = collect_metrics(corpus)
    key = "bench_corpus/Transfer policy delta/hetero-2c/gpSlackIpc"
    assert key in old_corpus, old_corpus
    new_corpus = dict(old_corpus)
    new_corpus[key] = 4.0 * 0.9  # one machine regresses 10%...
    mean_key = ("bench_corpus/Transfer policy delta/corpus-mean/"
                "gpSlackIpc")
    new_corpus[mean_key] = 4.35 * 1.1  # ...the aggregate improves
    _, failures = compare(old_corpus, new_corpus, 5.0, False)
    assert failures == [key], failures

    print("bench_delta self-test OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="diff two bench JSON trajectories")
    parser.add_argument("old", nargs="?",
                        help="baseline file or directory")
    parser.add_argument("new", nargs="?",
                        help="candidate file or directory")
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="max tolerated mean-IPC regression, in "
                             "percent (default 5)")
    parser.add_argument("--time-threshold", type=float, default=50.0,
                        help="max tolerated scheduling-time or phase "
                             "wall-time increase, in percent "
                             "(default 50; loose because wall time "
                             "is noisy on shared runners)")
    parser.add_argument("--all-metrics", action="store_true",
                        help="gate every shared numeric metric, not "
                             "just mean IPC")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in logic checks and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.old or not args.new:
        parser.error("OLD and NEW are required unless --self-test")

    old = load_side(args.old)
    new = load_side(args.new)
    lines, failures = compare(old, new, args.threshold,
                              args.all_metrics,
                              args.time_threshold)
    for line in lines:
        print(line)
    if failures:
        print(f"FAIL: {len(failures)} metric(s) regressed more than "
              f"{args.threshold:.1f}%:", file=sys.stderr)
        for key in failures:
            print(f"  {key}", file=sys.stderr)
        return 1
    print("OK: no gated regression beyond "
          f"{args.threshold:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
