/**
 * @file
 * Unit tests for the Tarjan SCC decomposition and its recurrence
 * classification.
 */

#include <gtest/gtest.h>

#include <set>

#include "graph/scc.hh"

using namespace gpsched;

namespace
{

/** Chain a -> b -> c. */
Ddg
chain3()
{
    Ddg g;
    NodeId a = g.addNode(Opcode::IAlu);
    NodeId b = g.addNode(Opcode::IAlu);
    NodeId c = g.addNode(Opcode::IAlu);
    g.addEdge(a, b, 1);
    g.addEdge(b, c, 1);
    return g;
}

} // namespace

TEST(Scc, SingletonComponentsOnChain)
{
    Ddg g = chain3();
    SccDecomposition sccs = computeSccs(g);
    EXPECT_EQ(sccs.numComponents(), 3);
    for (int c = 0; c < 3; ++c) {
        EXPECT_EQ(sccs.components[c].size(), 1u);
        EXPECT_FALSE(sccs.isRecurrence[c]);
    }
}

TEST(Scc, ComponentOfIsConsistent)
{
    Ddg g = chain3();
    SccDecomposition sccs = computeSccs(g);
    for (int c = 0; c < sccs.numComponents(); ++c) {
        for (NodeId v : sccs.components[c])
            EXPECT_EQ(sccs.componentOf[v], c);
    }
}

TEST(Scc, TwoNodeCycleIsOneRecurrence)
{
    Ddg g;
    NodeId a = g.addNode(Opcode::FMul);
    NodeId b = g.addNode(Opcode::FAdd);
    g.addEdge(a, b, 4);
    g.addEdge(b, a, 3, 1);
    SccDecomposition sccs = computeSccs(g);
    EXPECT_EQ(sccs.numComponents(), 1);
    EXPECT_TRUE(sccs.isRecurrence[0]);
    EXPECT_EQ(sccs.components[0].size(), 2u);
}

TEST(Scc, SelfLoopIsRecurrence)
{
    Ddg g;
    NodeId a = g.addNode(Opcode::FAdd);
    g.addNode(Opcode::IAlu);
    g.addEdge(a, a, 3, 1);
    SccDecomposition sccs = computeSccs(g);
    EXPECT_EQ(sccs.numComponents(), 2);
    int rec = sccs.componentOf[a];
    EXPECT_TRUE(sccs.isRecurrence[rec]);
    EXPECT_FALSE(sccs.isRecurrence[1 - rec]);
}

TEST(Scc, ComponentsPartitionNodes)
{
    Ddg g;
    for (int i = 0; i < 6; ++i)
        g.addNode(Opcode::IAlu);
    g.addEdge(0, 1, 1);
    g.addEdge(1, 2, 1);
    g.addEdge(2, 0, 1, 1);
    g.addEdge(3, 4, 1);
    SccDecomposition sccs = computeSccs(g);
    std::set<NodeId> seen;
    for (const auto &comp : sccs.components) {
        for (NodeId v : comp) {
            EXPECT_TRUE(seen.insert(v).second)
                << "node in two components";
        }
    }
    EXPECT_EQ(seen.size(), 6u);
}

TEST(Scc, ReverseTopologicalEmissionOrder)
{
    // Tarjan emits an SCC only after all its successors' SCCs; the
    // analysis sweep relies on that. For the chain a->b->c the sink
    // must come first.
    Ddg g = chain3();
    SccDecomposition sccs = computeSccs(g);
    // Component containing node 2 (sink) must be emitted before the
    // component of node 0 (source).
    EXPECT_LT(sccs.componentOf[2], sccs.componentOf[0]);
}

TEST(Scc, BigCycleThroughDistanceEdges)
{
    Ddg g;
    const int n = 5;
    for (int i = 0; i < n; ++i)
        g.addNode(Opcode::FAdd);
    for (int i = 0; i + 1 < n; ++i)
        g.addEdge(i, i + 1, 3);
    g.addEdge(n - 1, 0, 3, 2); // close the loop at distance 2
    SccDecomposition sccs = computeSccs(g);
    EXPECT_EQ(sccs.numComponents(), 1);
    EXPECT_TRUE(sccs.isRecurrence[0]);
}

TEST(Scc, DisconnectedGraph)
{
    Ddg g;
    g.addNode(Opcode::IAlu);
    g.addNode(Opcode::FMul);
    g.addNode(Opcode::Load);
    SccDecomposition sccs = computeSccs(g);
    EXPECT_EQ(sccs.numComponents(), 3);
}

TEST(Scc, EmptyGraph)
{
    Ddg g;
    SccDecomposition sccs = computeSccs(g);
    EXPECT_EQ(sccs.numComponents(), 0);
}
