/**
 * @file
 * Unit tests for the support substrate: deterministic RNG, summary
 * statistics (running stats and histograms), table rendering, and
 * the CPU/wall timers.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "support/random.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "support/timer.hh"

using namespace gpsched;

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 32; ++i)
        differing += a.next() != b.next();
    EXPECT_GT(differing, 24);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(13), 13u);
}

TEST(Rng, NextBelowCoversAllResidues)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBelow(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        std::int64_t x = rng.nextRange(-3, 3);
        EXPECT_GE(x, -3);
        EXPECT_LE(x, 3);
        saw_lo |= x == -3;
        saw_hi |= x == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        double x = rng.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, NextBoolExtremes)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(Rng, NextBoolApproximatesProbability)
{
    Rng rng(13);
    int hits = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; ++i)
        hits += rng.nextBool(0.25);
    EXPECT_NEAR(hits / static_cast<double>(trials), 0.25, 0.03);
}

TEST(Rng, WeightedSamplingRespectsZeros)
{
    Rng rng(17);
    std::vector<double> weights = {0.0, 1.0, 0.0};
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(rng.nextWeighted(weights), 1u);
}

TEST(Rng, WeightedSamplingAllZeroYieldsFirst)
{
    Rng rng(17);
    std::vector<double> weights = {0.0, 0.0};
    EXPECT_EQ(rng.nextWeighted(weights), 0u);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(23);
    std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> shuffled = values;
    rng.shuffle(shuffled);
    std::multiset<int> a(values.begin(), values.end());
    std::multiset<int> b(shuffled.begin(), shuffled.end());
    EXPECT_EQ(a, b);
}

TEST(Rng, ForkIsIndependentOfParentUse)
{
    // Forking then drawing from the parent must not change the
    // child's stream: loop generators rely on this.
    Rng parent1(99);
    Rng child1 = parent1.fork();
    std::vector<std::uint64_t> draws1;
    for (int i = 0; i < 8; ++i)
        draws1.push_back(child1.next());

    Rng parent2(99);
    Rng child2 = parent2.fork();
    parent2.next(); // extra parent use after the fork
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(child2.next(), draws1[i]);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, MeanMinMax)
{
    RunningStat s;
    for (double x : {4.0, 2.0, 6.0})
        s.add(x);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

TEST(RunningStat, Variance)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_NEAR(s.variance(), 4.0, 1e-9);
}

TEST(Means, Arithmetic)
{
    EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
}

TEST(Means, Geometric)
{
    EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-9);
    EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
}

TEST(Means, Harmonic)
{
    EXPECT_NEAR(harmonicMean({1.0, 1.0}), 1.0, 1e-9);
    EXPECT_NEAR(harmonicMean({2.0, 6.0}), 3.0, 1e-9);
}

TEST(Means, SpeedupPercent)
{
    EXPECT_NEAR(speedupPercent(1.23, 1.0), 23.0, 1e-9);
    EXPECT_NEAR(speedupPercent(0.5, 1.0), -50.0, 1e-9);
}

TEST(TextTable, RendersHeadersAndRows)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addSeparator();
    table.addRow({"beta", "22"});
    std::ostringstream oss;
    table.print(oss, "demo");
    std::string out = oss.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(1.234567, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(CpuTimer, ElapsedIsNonNegativeAndGrows)
{
    CpuTimer timer;
    timer.start();
    double first = timer.elapsedSeconds();
    EXPECT_GE(first, 0.0);
    // Burn a little CPU so the clock must advance.
    volatile double sink = 0.0;
    for (int i = 0; i < 2000000; ++i)
        sink = sink + std::sqrt(static_cast<double>(i));
    EXPECT_GE(timer.elapsedSeconds(), first);
}

TEST(WallTimer, ElapsedAdvancesAcrossSleep)
{
    WallTimer timer;
    timer.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::uint64_t nanos = timer.elapsedNanos();
    // Sleeping 20 ms must register at least 10 ms of wall time even
    // on a heavily loaded CI box; seconds and nanos must agree.
    EXPECT_GE(nanos, 10u * 1000 * 1000);
    EXPECT_NEAR(timer.elapsedSeconds(), nanos * 1e-9, 0.05);
}

TEST(WallTimer, RestartResetsOrigin)
{
    WallTimer timer;
    timer.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    std::uint64_t before = timer.elapsedNanos();
    timer.start();
    EXPECT_LT(timer.elapsedNanos(), before);
}

TEST(WallTimer, SleepIsWallTimeNotCpuTime)
{
    // The distinguishing contract: a sleeping thread accrues wall
    // time but (almost) no CPU time. Queue-wait spans depend on it.
    std::uint64_t wall0 = monotonicNanos();
    std::uint64_t cpu0 = threadCpuNanos();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::uint64_t wall = monotonicNanos() - wall0;
    std::uint64_t cpu = threadCpuNanos() - cpu0;
    EXPECT_GE(wall, 25u * 1000 * 1000);
    EXPECT_LT(cpu, wall / 2);
}

TEST(MonotonicNanos, NeverGoesBackwards)
{
    std::uint64_t last = monotonicNanos();
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t now = monotonicNanos();
        EXPECT_GE(now, last);
        last = now;
    }
}

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
    EXPECT_EQ(h.p50(), 0.0);
    EXPECT_EQ(h.p95(), 0.0);
}

TEST(Histogram, ExactMomentsApproximateQuantiles)
{
    Histogram h(1.0, 2.0, 16);
    for (int i = 1; i <= 100; ++i)
        h.add(static_cast<double>(i));
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    // Bucket bounds are powers of two: the true p50 (50) lands in
    // the (32, 64] bucket, so the estimate is its upper bound; p95
    // (95) lands in (64, 128] whose bound clamps to max = 100.
    EXPECT_DOUBLE_EQ(h.p50(), 64.0);
    EXPECT_DOUBLE_EQ(h.p95(), 100.0);
    // Generic contract, independent of bucket shape: within one
    // growth factor of the true quantile.
    EXPECT_GE(h.p50(), 50.0 / 2.0);
    EXPECT_LE(h.p50(), 50.0 * 2.0);
}

TEST(Histogram, SingleValueQuantilesCollapse)
{
    Histogram h(1.0, 2.0, 8);
    h.add(7.0);
    EXPECT_DOUBLE_EQ(h.p50(), 7.0);
    EXPECT_DOUBLE_EQ(h.p95(), 7.0);
}

TEST(Histogram, OverflowBucketClampsToMax)
{
    Histogram h(1.0, 2.0, 2); // bounded buckets: (..1], (1..2]
    h.add(1000.0);
    h.add(2000.0);
    // Quantiles landing in the unbounded bucket report the observed
    // max — the only finite bound available.
    EXPECT_DOUBLE_EQ(h.p50(), 2000.0);
    EXPECT_DOUBLE_EQ(h.p95(), 2000.0);
    std::vector<Histogram::Bucket> buckets = h.buckets();
    ASSERT_EQ(buckets.size(), 3u);
    EXPECT_TRUE(std::isinf(buckets.back().upperBound));
    EXPECT_EQ(buckets.back().count, 2u);
}

TEST(Histogram, NegativeSamplesClampIntoFirstBucket)
{
    Histogram h(1.0, 2.0, 4);
    h.add(-5.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.min(), -5.0);
    EXPECT_EQ(h.buckets().front().count, 1u);
}

TEST(Histogram, CopyIsIndependent)
{
    Histogram a(1.0, 2.0, 8);
    a.add(3.0);
    Histogram b = a;
    b.add(9.0);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_EQ(b.count(), 2u);
}

TEST(Histogram, ConcurrentAddsLoseNothing)
{
    // Exercised under TSan in CI: concurrent add() on a shared
    // histogram must be race-free and lose no samples.
    Histogram h(1.0, 2.0, 16);
    constexpr int threads = 8;
    constexpr int perThread = 5000;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&h, t] {
            for (int i = 0; i < perThread; ++i)
                h.add(static_cast<double>(t + 1));
        });
    }
    for (std::thread &worker : workers)
        worker.join();
    EXPECT_EQ(h.count(),
              static_cast<std::size_t>(threads) * perThread);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), static_cast<double>(threads));
}
