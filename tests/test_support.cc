/**
 * @file
 * Unit tests for the support substrate: deterministic RNG, summary
 * statistics, table rendering and the CPU timer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "support/random.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "support/timer.hh"

using namespace gpsched;

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 32; ++i)
        differing += a.next() != b.next();
    EXPECT_GT(differing, 24);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(13), 13u);
}

TEST(Rng, NextBelowCoversAllResidues)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBelow(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        std::int64_t x = rng.nextRange(-3, 3);
        EXPECT_GE(x, -3);
        EXPECT_LE(x, 3);
        saw_lo |= x == -3;
        saw_hi |= x == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        double x = rng.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, NextBoolExtremes)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(Rng, NextBoolApproximatesProbability)
{
    Rng rng(13);
    int hits = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; ++i)
        hits += rng.nextBool(0.25);
    EXPECT_NEAR(hits / static_cast<double>(trials), 0.25, 0.03);
}

TEST(Rng, WeightedSamplingRespectsZeros)
{
    Rng rng(17);
    std::vector<double> weights = {0.0, 1.0, 0.0};
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(rng.nextWeighted(weights), 1u);
}

TEST(Rng, WeightedSamplingAllZeroYieldsFirst)
{
    Rng rng(17);
    std::vector<double> weights = {0.0, 0.0};
    EXPECT_EQ(rng.nextWeighted(weights), 0u);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(23);
    std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> shuffled = values;
    rng.shuffle(shuffled);
    std::multiset<int> a(values.begin(), values.end());
    std::multiset<int> b(shuffled.begin(), shuffled.end());
    EXPECT_EQ(a, b);
}

TEST(Rng, ForkIsIndependentOfParentUse)
{
    // Forking then drawing from the parent must not change the
    // child's stream: loop generators rely on this.
    Rng parent1(99);
    Rng child1 = parent1.fork();
    std::vector<std::uint64_t> draws1;
    for (int i = 0; i < 8; ++i)
        draws1.push_back(child1.next());

    Rng parent2(99);
    Rng child2 = parent2.fork();
    parent2.next(); // extra parent use after the fork
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(child2.next(), draws1[i]);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, MeanMinMax)
{
    RunningStat s;
    for (double x : {4.0, 2.0, 6.0})
        s.add(x);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

TEST(RunningStat, Variance)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_NEAR(s.variance(), 4.0, 1e-9);
}

TEST(Means, Arithmetic)
{
    EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
}

TEST(Means, Geometric)
{
    EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-9);
    EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
}

TEST(Means, Harmonic)
{
    EXPECT_NEAR(harmonicMean({1.0, 1.0}), 1.0, 1e-9);
    EXPECT_NEAR(harmonicMean({2.0, 6.0}), 3.0, 1e-9);
}

TEST(Means, SpeedupPercent)
{
    EXPECT_NEAR(speedupPercent(1.23, 1.0), 23.0, 1e-9);
    EXPECT_NEAR(speedupPercent(0.5, 1.0), -50.0, 1e-9);
}

TEST(TextTable, RendersHeadersAndRows)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addSeparator();
    table.addRow({"beta", "22"});
    std::ostringstream oss;
    table.print(oss, "demo");
    std::string out = oss.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(1.234567, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(CpuTimer, ElapsedIsNonNegativeAndGrows)
{
    CpuTimer timer;
    timer.start();
    double first = timer.elapsedSeconds();
    EXPECT_GE(first, 0.0);
    // Burn a little CPU so the clock must advance.
    volatile double sink = 0.0;
    for (int i = 0; i < 2000000; ++i)
        sink = sink + std::sqrt(static_cast<double>(i));
    EXPECT_GE(timer.elapsedSeconds(), first);
}
