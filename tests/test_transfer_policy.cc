/**
 * @file
 * The heterogeneity-aware optimization layers: capacity-balanced
 * initial assignment (partition/multilevel.hh) and the slack-aware
 * bus-class transfer cost model (sched/schedule.hh).
 *
 * Pins the two acceptance properties of the cost-model PR:
 *
 *  1. *Homogeneous parity* — on Table-1 machines the new defaults
 *     (CapacityBalanced + SlackAware) produce bit-identical compiled
 *     loops to the legacy policies (WidestClusterFirst +
 *     FastestFirst), over a fig2/fig3-style workload slice: same II,
 *     same cycles, same placements, transfers, spills and partition.
 *
 *  2. *Heterogeneous wins* — on the shipped scenario corpus the
 *     slack-aware policy never trails fastest-first on the pinned
 *     machines and is strictly better on at least one.
 *
 * Plus unit-level checks that the policy does what its name says
 * (slack-rich transfers ride slow classes, tight ones ride fast
 * ones), that capacity-balanced seeding respects 0-FU clusters, and
 * that both knobs are keyed into the engine's LoopKey.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "engine/loop_key.hh"
#include "graph/ddg_builder.hh"
#include "machine/configs.hh"
#include "machine/registry.hh"
#include "partition/multilevel.hh"
#include "sched/mii.hh"
#include "testing/fixtures.hh"
#include "testing/validate.hh"
#include "workload/specfp.hh"

using namespace gpsched;
using namespace gpsched::testing;

namespace
{

/** Legacy policies: the exact pre-cost-model behaviour. */
LoopCompilerOptions
legacyOptions()
{
    LoopCompilerOptions options;
    options.partitioner.assignment =
        AssignmentPolicy::WidestClusterFirst;
    options.transfer.costModel = TransferCostPolicy::FastestFirst;
    return options;
}

MachineConfig
corpusMachine(const std::string &file)
{
    return MachineRegistry::builtin().resolve(
        GPSCHED_SOURCE_DIR "/examples/machines/" + file);
}

/** Field-by-field equality of two compiled loops (schedule payload
 *  included), with a readable message on the first difference. */
::testing::AssertionResult
sameCompiledLoop(const CompiledLoop &a, const CompiledLoop &b)
{
    if (a.moduloScheduled != b.moduloScheduled)
        return ::testing::AssertionFailure() << "moduloScheduled";
    if (a.ii != b.ii)
        return ::testing::AssertionFailure()
               << "ii " << a.ii << " vs " << b.ii;
    if (a.scheduleLength != b.scheduleLength)
        return ::testing::AssertionFailure() << "scheduleLength";
    if (a.cycles != b.cycles)
        return ::testing::AssertionFailure()
               << "cycles " << a.cycles << " vs " << b.cycles;
    if (!(a.stats == b.stats))
        return ::testing::AssertionFailure() << "stats";
    if (a.placements != b.placements)
        return ::testing::AssertionFailure() << "placements";
    if (a.transfers != b.transfers)
        return ::testing::AssertionFailure() << "transfers";
    if (a.spills != b.spills)
        return ::testing::AssertionFailure() << "spills";
    if (a.partition != b.partition)
        return ::testing::AssertionFailure() << "partition";
    return ::testing::AssertionSuccess();
}

} // namespace

// ---------------------------------------------------------------------
// Acceptance: homogeneous parity. Table-1 machines have identical
// clusters and a single bus class, so both new policies must
// degenerate to the legacy behaviour bit-for-bit.
// ---------------------------------------------------------------------

TEST(TransferPolicy, HomogeneousParityOnTable1Machines)
{
    LatencyTable lat;
    std::vector<Program> suite = specFp95Suite(lat);
    suite.resize(2); // fig2/fig3-style slice, fast but end-to-end

    for (const MachineConfig &m :
         {twoClusterConfig(32, 1), fourClusterConfig(64, 2),
          fourClusterConfig(32, 1)}) {
        ASSERT_TRUE(m.homogeneous());
        ASSERT_EQ(m.numBusClasses(), 1);
        for (SchedulerKind kind :
             {SchedulerKind::Uracam, SchedulerKind::FixedPartition,
              SchedulerKind::Gp}) {
            for (const Program &program : suite) {
                for (const Ddg &loop : program.loops) {
                    CompiledLoop legacy =
                        LoopCompiler(m, kind, legacyOptions())
                            .compile(loop);
                    CompiledLoop current =
                        LoopCompiler(m, kind, {}).compile(loop);
                    EXPECT_TRUE(sameCompiledLoop(legacy, current))
                        << toString(kind) << " on " << m.name()
                        << ", loop " << loop.name();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Acceptance: on the pinned heterogeneous corpus machines the
// slack-aware policy matches-or-beats fastest-first mean IPC, and is
// strictly better on at least one (regstarved-4c, where the fast bus
// class is the scarce resource). bench_corpus --gate-policy applies
// the same check across the whole corpus.
// ---------------------------------------------------------------------

TEST(TransferPolicy, SlackAwareBeatsFastestFirstOnCorpusMachines)
{
    LatencyTable lat;
    std::vector<Program> suite = specFp95Suite(lat);

    LoopCompilerOptions fastest;
    fastest.transfer.costModel = TransferCostPolicy::FastestFirst;
    LoopCompilerOptions slack;
    slack.transfer.costModel = TransferCostPolicy::SlackAware;

    double strict_machine_gain = 0.0;
    for (const char *file :
         {"regstarved_4c.machine", "bigsmall_3c.machine",
          "memfarm_3c.machine"}) {
        MachineConfig m = corpusMachine(file);
        ASSERT_GT(m.numBusClasses(), 1) << file;
        double ipc_fastest =
            compileSuite(suite, m, SchedulerKind::Gp, fastest)
                .meanIpc;
        double ipc_slack =
            compileSuite(suite, m, SchedulerKind::Gp, slack).meanIpc;
        EXPECT_GE(ipc_slack, ipc_fastest) << file;
        if (std::string(file) == "regstarved_4c.machine")
            strict_machine_gain = ipc_slack - ipc_fastest;
    }
    EXPECT_GT(strict_machine_gain, 0.0)
        << "slack-aware must strictly win somewhere";
}

// ---------------------------------------------------------------------
// Unit: the slack-aware policy steers a slack-rich transfer to the
// slow bus class and a tight transfer to the fast one; fastest-first
// always rides the fast class while it has slots.
// ---------------------------------------------------------------------

namespace
{

/** Two identical clusters joined by one fast (lat 1) and one slow
 *  (lat 3) bus. */
MachineConfig
twoTierMachine()
{
    std::vector<ClusterDesc> clusters(2);
    for (ClusterDesc &c : clusters) {
        c.fu[0] = c.fu[1] = c.fu[2] = 2;
        c.regs = 16;
    }
    return MachineConfig("two-tier", std::move(clusters),
                         {BusDesc{1, 1}, BusDesc{1, 3}});
}

/** Producer on cluster 0, consumer placed on cluster 1 @p gap cycles
 *  later; returns the bus class the planned transfer rides. */
int
transferClassAtGap(const MachineConfig &m, int gap,
                   TransferPolicyOptions transfer)
{
    LatencyTable lat;
    DdgBuilder b("xfer", lat);
    NodeId p = b.op(Opcode::IAlu, "p");
    NodeId c = b.op(Opcode::IAlu, "c");
    b.flow(p, c);
    Ddg g = b.tripCount(4).build();

    PartialSchedule ps(g, m, /*ii=*/8, {}, 10.0, transfer);
    PlacementPlan first = ps.planPlacement(p, 0, 0);
    EXPECT_TRUE(first.feasible);
    ps.apply(first);
    PlacementPlan second = ps.planPlacement(c, 1, gap);
    EXPECT_TRUE(second.feasible);
    EXPECT_EQ(second.transfers.size(), 1u);
    if (second.transfers.empty())
        return -1; // the EXPECT above already failed the test
    EXPECT_TRUE(second.transfers[0].transfer.viaBus);
    return second.transfers[0].transfer.busClass;
}

} // namespace

TEST(TransferPolicy, SlackRichTransfersRideTheSlowClass)
{
    MachineConfig m = twoTierMachine();
    TransferPolicyOptions slack; // defaults: SlackAware, margin 2

    // Window = gap - producer latency (1). The slow class (lat 3)
    // needs window >= 3 + margin = 5, i.e. gap >= 6.
    EXPECT_EQ(transferClassAtGap(m, 7, slack), 1);
    EXPECT_EQ(transferClassAtGap(m, 3, slack), 0);

    TransferPolicyOptions fastest;
    fastest.costModel = TransferCostPolicy::FastestFirst;
    EXPECT_EQ(transferClassAtGap(m, 7, fastest), 0);
    EXPECT_EQ(transferClassAtGap(m, 3, fastest), 0);
}

TEST(TransferPolicy, SlackMarginZeroSteersAnyFittingTransfer)
{
    MachineConfig m = twoTierMachine();
    TransferPolicyOptions eager;
    eager.slackMargin = 0;
    // Window of exactly the slow latency: gap 4 -> window 3.
    EXPECT_EQ(transferClassAtGap(m, 4, eager), 1);
}

// ---------------------------------------------------------------------
// Unit: capacity-balanced seeding. On a machine whose wide cluster
// owns no FP units, an FP-heavy loop must not end up with FP ops on
// the FP-less cluster, and the partition must schedule and validate.
// On homogeneous machines both assignment policies are identical.
// ---------------------------------------------------------------------

TEST(AssignmentPolicy, CapacityBalancedRespectsZeroFuClusters)
{
    LatencyTable lat;
    std::vector<ClusterDesc> clusters(2);
    clusters[0].name = "wide-int";
    clusters[0].fu[static_cast<int>(FuClass::Int)] = 4;
    clusters[0].fu[static_cast<int>(FuClass::Fp)] = 0;
    clusters[0].fu[static_cast<int>(FuClass::Mem)] = 2;
    clusters[0].regs = 16;
    clusters[1].name = "fp-side";
    clusters[1].fu[static_cast<int>(FuClass::Int)] = 1;
    clusters[1].fu[static_cast<int>(FuClass::Fp)] = 2;
    clusters[1].fu[static_cast<int>(FuClass::Mem)] = 1;
    clusters[1].regs = 16;
    MachineConfig m("intfarm-2c", std::move(clusters),
                    {BusDesc{2, 1}});

    Ddg g = diamondLoop(lat); // loads + FMul/FAdd + store

    GpPartitionerOptions options;
    options.assignment = AssignmentPolicy::CapacityBalanced;
    GpPartitioner partitioner(m, options);
    GpPartitionResult result =
        partitioner.run(g, computeMii(g, m));

    for (NodeId v = 0; v < g.numNodes(); ++v) {
        if (fuClassOf(g.node(v).opcode) == FuClass::Fp) {
            EXPECT_EQ(result.partition.clusterOf(v), 1)
                << "FP op " << v << " seeded on the FP-less cluster";
        }
    }
    EXPECT_TRUE(result.estimate.resourcesOk);

    auto ps = scheduleLoop(g, m, ClusterPolicy::PreferAssigned,
                           &result.partition);
    ASSERT_TRUE(ps.has_value());
    auto v = validateSchedule(g, m, *ps);
    EXPECT_TRUE(v) << v.message;
}

// The assignment option must be inert on homogeneous machines: the
// partitioner short-circuits to the legacy round-robin path whatever
// the policy says (the greedy rule is not mathematically equivalent
// to round-robin, so parity is enforced, not emergent). This pins
// the short-circuit cheaply; the schedule-level guarantee is the
// HomogeneousParityOnTable1Machines test above.
TEST(AssignmentPolicy, OptionInertOnHomogeneousMachines)
{
    LatencyTable lat;
    MachineConfig m = fourClusterConfig(64, 2);
    Ddg g = memHeavyLoop(8, lat);
    int mii = computeMii(g, m);

    GpPartitionerOptions widest;
    widest.assignment = AssignmentPolicy::WidestClusterFirst;
    GpPartitionerOptions balanced;
    balanced.assignment = AssignmentPolicy::CapacityBalanced;

    GpPartitionResult a = GpPartitioner(m, widest).run(g, mii);
    GpPartitionResult b = GpPartitioner(m, balanced).run(g, mii);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        EXPECT_EQ(a.partition.clusterOf(v), b.partition.clusterOf(v));
    EXPECT_EQ(a.iiBus, b.iiBus);
    EXPECT_EQ(a.estimate.execTime, b.estimate.execTime);
}

// ---------------------------------------------------------------------
// Unit: both knobs are keyed into the engine fingerprint, so cached
// compiled loops can never alias across policies.
// ---------------------------------------------------------------------

TEST(TransferPolicy, PolicyOptionsAreKeyedIntoLoopKey)
{
    LatencyTable lat;
    Ddg g = chainLoop(4, lat);
    MachineConfig m = twoClusterConfig(32, 1);

    LoopKey base = makeLoopKey(g, m, SchedulerKind::Gp, {});

    LoopCompilerOptions legacy_assignment;
    legacy_assignment.partitioner.assignment =
        AssignmentPolicy::WidestClusterFirst;
    EXPECT_NE(base.canonical,
              makeLoopKey(g, m, SchedulerKind::Gp, legacy_assignment)
                  .canonical);

    LoopCompilerOptions legacy_transfer;
    legacy_transfer.transfer.costModel =
        TransferCostPolicy::FastestFirst;
    EXPECT_NE(base.canonical,
              makeLoopKey(g, m, SchedulerKind::Gp, legacy_transfer)
                  .canonical);

    LoopCompilerOptions margin;
    margin.transfer.slackMargin = 3;
    EXPECT_NE(base.canonical,
              makeLoopKey(g, m, SchedulerKind::Gp, margin).canonical);
}

// ---------------------------------------------------------------------
// The expected-bus-latency cost-model input: exact on single-class
// fabrics, capacity-weighted in between, clamped to >= 1.
// ---------------------------------------------------------------------

TEST(TransferPolicy, ExpectedBusLatencyModel)
{
    EXPECT_EQ(twoClusterConfig(32, 1).expectedBusLatency(), 1);
    EXPECT_EQ(twoClusterConfig(32, 2).expectedBusLatency(), 2);
    EXPECT_EQ(unifiedConfig(64).expectedBusLatency(), 1);

    std::vector<ClusterDesc> clusters(2);
    for (ClusterDesc &c : clusters) {
        c.fu[0] = c.fu[1] = c.fu[2] = 1;
        c.regs = 8;
    }
    // 1 bus @ lat 1 + 4 buses @ lat 4: 5 buses / (1 + 1) cap = 2.5
    // -> rounds to 3.
    MachineConfig m("mix", std::move(clusters),
                    {BusDesc{1, 1}, BusDesc{4, 4}});
    EXPECT_EQ(m.expectedBusLatency(), 3);
}
