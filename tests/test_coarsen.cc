/**
 * @file
 * Unit tests for the multilevel coarsening hierarchy: member
 * bookkeeping, edge weight combination, termination at the target
 * node count and the handling of disconnected graphs.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "graph/ddg_builder.hh"
#include "partition/coarsen.hh"
#include "partition/edge_weights.hh"
#include "testing/fixtures.hh"
#include "workload/loop_shapes.hh"

using namespace gpsched;
using namespace gpsched::testing;

namespace
{

CoarseningHierarchy
coarsen(const Ddg &g, int target,
        MatchingPolicy policy = MatchingPolicy::GreedyHeavy)
{
    std::vector<std::int64_t> weights(g.numEdges(), 1);
    Rng rng(7);
    return CoarseningHierarchy(g, weights, target, policy, rng);
}

/** Checks that a level's members exactly partition [0, n). */
void
expectPartitionOfNodes(const CoarseLevel &level, int n)
{
    std::set<NodeId> seen;
    for (int m = 0; m < level.numNodes(); ++m) {
        for (NodeId v : level.members[m]) {
            EXPECT_TRUE(seen.insert(v).second)
                << "node " << v << " in two macro-nodes";
            EXPECT_EQ(level.coarseOf[v], m);
        }
    }
    EXPECT_EQ(static_cast<int>(seen.size()), n);
}

} // namespace

TEST(Coarsen, FinestLevelIsIdentity)
{
    LatencyTable lat;
    Ddg g = diamondLoop(lat);
    CoarseningHierarchy h = coarsen(g, 2);
    const CoarseLevel &finest = h.levels().front();
    EXPECT_EQ(finest.numNodes(), g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        ASSERT_EQ(finest.members[v].size(), 1u);
        EXPECT_EQ(finest.members[v][0], v);
    }
}

TEST(Coarsen, EveryLevelPartitionsTheNodes)
{
    LatencyTable lat;
    Ddg g = memHeavyLoop(9, lat);
    CoarseningHierarchy h = coarsen(g, 2);
    for (const CoarseLevel &level : h.levels())
        expectPartitionOfNodes(level, g.numNodes());
}

TEST(Coarsen, NodeCountsStrictlyDecreaseToTarget)
{
    LatencyTable lat;
    Ddg g = memHeavyLoop(12, lat);
    CoarseningHierarchy h = coarsen(g, 4);
    const auto &levels = h.levels();
    for (std::size_t i = 1; i < levels.size(); ++i)
        EXPECT_LT(levels[i].numNodes(), levels[i - 1].numNodes());
    EXPECT_LE(h.coarsest().numNodes(), 4);
    EXPECT_GE(h.coarsest().numNodes(), 1);
}

TEST(Coarsen, WeightsCombineOnMergedEdges)
{
    // Triangle a-b-c with weights 10 (a,b), 3 (a,c), 4 (b,c). After
    // merging {a,b}, the two edges to c must combine into one of
    // weight 7.
    Ddg g;
    NodeId a = g.addNode(Opcode::IAlu);
    NodeId b = g.addNode(Opcode::IAlu);
    NodeId c = g.addNode(Opcode::IAlu);
    g.addEdge(a, b, 1);
    g.addEdge(a, c, 1);
    g.addEdge(b, c, 1);
    std::vector<std::int64_t> weights = {10, 3, 4};
    Rng rng(1);
    CoarseningHierarchy h(g, weights, 2, MatchingPolicy::GreedyHeavy,
                          rng);
    const CoarseLevel &level = h.coarsest();
    ASSERT_EQ(level.numNodes(), 2);
    ASSERT_EQ(level.edges.size(), 1u);
    EXPECT_EQ(level.edges[0].weight, 7);
}

TEST(Coarsen, HeavyEdgeMergedFirst)
{
    // Path with one dominant edge: its endpoints end in the same
    // macro-node of the next level.
    Ddg g;
    for (int i = 0; i < 4; ++i)
        g.addNode(Opcode::IAlu);
    g.addEdge(0, 1, 1);
    g.addEdge(1, 2, 1);
    g.addEdge(2, 3, 1);
    std::vector<std::int64_t> weights = {1, 100, 1};
    Rng rng(1);
    CoarseningHierarchy h(g, weights, 3, MatchingPolicy::GreedyHeavy,
                          rng);
    ASSERT_GE(h.levels().size(), 2u);
    const CoarseLevel &next = h.levels()[1];
    EXPECT_EQ(next.coarseOf[1], next.coarseOf[2]);
}

TEST(Coarsen, OppositeEdgesCombine)
{
    // a->b and b->a (carried) must appear as a single undirected
    // edge with summed weight.
    Ddg g;
    NodeId a = g.addNode(Opcode::FMul);
    NodeId b = g.addNode(Opcode::FAdd);
    g.addEdge(a, b, 4);
    g.addEdge(b, a, 3, 1);
    std::vector<std::int64_t> weights = {5, 6};
    Rng rng(1);
    CoarseningHierarchy h(g, weights, 2, MatchingPolicy::GreedyHeavy,
                          rng);
    const CoarseLevel &finest = h.levels().front();
    ASSERT_EQ(finest.edges.size(), 1u);
    EXPECT_EQ(finest.edges[0].weight, 11);
}

TEST(Coarsen, DisconnectedNodesStillCoarsen)
{
    // A graph with no edges can only shrink by force-merging
    // unmatched nodes; the hierarchy must still reach the target.
    LatencyTable lat;
    Ddg g = parallelLoop(9, lat);
    CoarseningHierarchy h = coarsen(g, 2);
    EXPECT_LE(h.coarsest().numNodes(), 2);
    for (const CoarseLevel &level : h.levels())
        expectPartitionOfNodes(level, g.numNodes());
}

TEST(Coarsen, SelfEdgesNeverAppearInCoarseGraphs)
{
    LatencyTable lat;
    Ddg g = recurrenceLoop(lat);
    CoarseningHierarchy h = coarsen(g, 1);
    for (const CoarseLevel &level : h.levels()) {
        for (const MatchEdge &e : level.edges)
            EXPECT_NE(e.a, e.b);
    }
}

TEST(Coarsen, TargetLargerThanGraphYieldsSingleLevel)
{
    LatencyTable lat;
    Ddg g = diamondLoop(lat); // 5 nodes
    CoarseningHierarchy h = coarsen(g, 8);
    EXPECT_EQ(h.levels().size(), 1u);
    EXPECT_EQ(h.coarsest().numNodes(), g.numNodes());
}

TEST(Coarsen, RandomPolicyStillPartitionsNodes)
{
    LatencyTable lat;
    Rng gen(3);
    Ddg g = randomLoop("r", lat, gen);
    CoarseningHierarchy h = coarsen(g, 4, MatchingPolicy::RandomMaximal);
    for (const CoarseLevel &level : h.levels())
        expectPartitionOfNodes(level, g.numNodes());
    EXPECT_LE(h.coarsest().numNodes(), 4);
}

TEST(Coarsen, WeightTotalsConservedAcrossLevels)
{
    // Total undirected edge weight = internal (vanished) + external
    // (remaining); the remaining total never grows.
    LatencyTable lat;
    Ddg g = memHeavyLoop(8, lat);
    std::vector<std::int64_t> weights(g.numEdges(), 0);
    for (EdgeId e = 0; e < g.numEdges(); ++e)
        weights[e] = e + 1;
    Rng rng(5);
    CoarseningHierarchy h(g, weights, 2, MatchingPolicy::GreedyHeavy,
                          rng);
    std::int64_t prev_total =
        std::accumulate(weights.begin(), weights.end(),
                        std::int64_t{0});
    for (const CoarseLevel &level : h.levels()) {
        std::int64_t total = 0;
        for (const MatchEdge &e : level.edges)
            total += e.weight;
        EXPECT_LE(total, prev_total);
        prev_total = total;
    }
}
