/**
 * @file
 * Unit tests for the differential-fuzzing library
 * (workload/fuzz.hh): generator determinism and corpus prefix
 * stability, structural validity of every shape family, the
 * two-oracle harness on a clean corpus, corruption-canary detection,
 * and the greedy minimizer's contract (shrinks while the predicate
 * holds, refuses non-failing input, honors the probe cap).
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "graph/textio.hh"
#include "machine/op.hh"
#include "machine/registry.hh"
#include "workload/fuzz.hh"

using namespace gpsched;
using namespace gpsched::fuzz;

namespace
{

constexpr std::uint64_t kSeed = 0xf022c0de5eedULL;
constexpr const char *kMachinesDir =
    GPSCHED_SOURCE_DIR "/examples/machines";

std::string
render(const Ddg &ddg)
{
    std::ostringstream os;
    writeDdgText(os, ddg);
    return os.str();
}

} // namespace

// ---------------------------------------------------------------------
// Generator determinism: the seed is the whole story.
// ---------------------------------------------------------------------

TEST(Fuzz, GeneratorIsDeterministic)
{
    LatencyTable lat;
    for (std::uint64_t seed :
         {std::uint64_t(1), std::uint64_t(42), kSeed}) {
        Ddg a = fuzzLoop("l", lat, seed);
        Ddg b = fuzzLoop("l", lat, seed);
        EXPECT_EQ(render(a), render(b)) << "seed " << seed;
    }
    // Different seeds must not collapse to one graph.
    std::set<std::string> distinct;
    for (std::uint64_t seed = 0; seed < 8; ++seed)
        distinct.insert(render(fuzzLoop("l", lat, seed)));
    EXPECT_GT(distinct.size(), 1u);
}

TEST(Fuzz, CorpusSeedsArePrefixStable)
{
    auto longRun = corpusSeeds(kSeed, 20);
    auto shortRun = corpusSeeds(kSeed, 7);
    ASSERT_EQ(longRun.size(), 20u);
    ASSERT_EQ(shortRun.size(), 7u);
    for (int i = 0; i < 7; ++i)
        EXPECT_EQ(longRun[i], shortRun[i])
            << "growing the corpus must only append cases";

    // corpusCase agrees with the seed stream.
    LatencyTable lat;
    FuzzCase c = corpusCase(kSeed, 5, lat);
    EXPECT_EQ(c.seed, longRun[5]);
    EXPECT_EQ(c.index, 5);
    EXPECT_EQ(render(c.ddg), render(fuzzLoop(c.ddg.name(), lat, c.seed)));
}

TEST(Fuzz, WriteCorpusRoundTripsThroughTextio)
{
    LatencyTable lat;
    std::stringstream corpus;
    writeCorpus(corpus, kSeed, 6, lat);

    int loops = 0;
    while (corpus >> std::ws, corpus.peek() != EOF) {
        // Skip comment lines between blocks; readDdgText handles
        // comments itself, this just detects end-of-stream cleanly.
        if (corpus.peek() == '#') {
            std::string line;
            std::getline(corpus, line);
            continue;
        }
        Ddg ddg = readDdgText(corpus);
        FuzzCase expected = corpusCase(kSeed, loops, lat);
        EXPECT_EQ(ddg.numNodes(), expected.ddg.numNodes());
        EXPECT_EQ(ddg.numEdges(), expected.ddg.numEdges());
        EXPECT_EQ(ddg.tripCount(), expected.ddg.tripCount());
        ++loops;
    }
    EXPECT_EQ(loops, 6);
}

// ---------------------------------------------------------------------
// Shape coverage and structural validity.
// ---------------------------------------------------------------------

TEST(Fuzz, EveryShapeClassAppearsInACorpus)
{
    LatencyTable lat;
    std::set<ShapeClass> seen;
    for (int i = 0; i < 120; ++i)
        seen.insert(corpusCase(kSeed, i, lat).shape);
    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(ShapeClass::NumShapes))
        << "a shape family stopped being generated";
}

TEST(Fuzz, GeneratedLoopsAreStructurallyValid)
{
    LatencyTable lat;
    for (int i = 0; i < 40; ++i) {
        FuzzCase c = corpusCase(kSeed, i, lat);
        SCOPED_TRACE("case " + std::to_string(i) + " seed " +
                     std::to_string(c.seed) + " shape " +
                     toString(c.shape));
        ASSERT_GE(c.ddg.numNodes(), 1);
        EXPECT_GE(c.ddg.tripCount(), 1);
        for (EdgeId e = 0; e < c.ddg.numEdges(); ++e) {
            const DdgEdge &edge = c.ddg.edge(e);
            ASSERT_GE(edge.src, 0);
            ASSERT_LT(edge.src, c.ddg.numNodes());
            ASSERT_GE(edge.dst, 0);
            ASSERT_LT(edge.dst, c.ddg.numNodes());
            EXPECT_GE(edge.distance, 0);
            if (edge.src == edge.dst) {
                EXPECT_GE(edge.distance, 1);
            }
            if (edge.isFlow()) {
                // Flow edges leave defining ops and never promise
                // less latency than the op takes (the under-latency
                // guard would reject the loop otherwise).
                EXPECT_TRUE(
                    definesValue(c.ddg.node(edge.src).opcode));
                EXPECT_GE(edge.latency,
                          lat.latency(c.ddg.node(edge.src).opcode));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Machine list: presets stay addressable by registry name, corpus
// machines by file path — both resolvable from a repro line.
// ---------------------------------------------------------------------

TEST(Fuzz, MachineListCoversPresetsAndCorpus)
{
    auto machines = fuzzMachines(kMachinesDir);
    EXPECT_EQ(machines.size(), 13u);

    std::set<std::string> names;
    const MachineRegistry &registry = MachineRegistry::builtin();
    for (const FuzzMachine &m : machines) {
        names.insert(m.config.name());
        // Every spec string must re-resolve to the same machine.
        MachineConfig again = registry.resolve(m.spec);
        EXPECT_EQ(again.name(), m.config.name()) << m.spec;
    }
    EXPECT_EQ(names.size(), machines.size())
        << "machine names must be unique for failure reports";

    EXPECT_EQ(fuzzConfigs(machines).size(), machines.size());
    EXPECT_EQ(fuzzMachines("").size(), 3u)
        << "empty dir must still yield the Table-1 presets";
}

// ---------------------------------------------------------------------
// The differential harness: clean corpus passes, canaries are caught.
// ---------------------------------------------------------------------

TEST(Fuzz, CleanCorpusPassesTheTwoOracleContract)
{
    LatencyTable lat;
    auto configs = fuzzConfigs(fuzzMachines(""));
    int pairs = 0;
    for (int i = 0; i < 8; ++i) {
        FuzzCase c = corpusCase(kSeed, i, lat);
        FuzzCaseResult r = runFuzzCase(c.ddg, configs);
        for (const FuzzFailure &f : r.failures)
            ADD_FAILURE() << "case " << i << " seed " << c.seed
                          << ": " << f.toString();
        pairs += r.pairsCompiled;
    }
    EXPECT_GT(pairs, 0);
}

TEST(Fuzz, CorruptionCanariesAreCaught)
{
    LatencyTable lat;
    auto configs = fuzzConfigs(fuzzMachines(""));

    // Find a case with at least one modulo-scheduled record so the
    // cluster canary has a placement to damage.
    int chosen = -1;
    for (int i = 0; i < 20 && chosen < 0; ++i) {
        FuzzCase c = corpusCase(kSeed, i, lat);
        if (runFuzzCase(c.ddg, configs).moduloScheduled > 0)
            chosen = i;
    }
    ASSERT_GE(chosen, 0);
    Ddg ddg = corpusCase(kSeed, chosen, lat).ddg;

    FuzzCaseResult cluster =
        runFuzzCase(ddg, configs, ScheduleCorruption::ClusterOutOfRange);
    EXPECT_FALSE(cluster.ok())
        << "an out-of-range cluster slipped past both oracles";
    for (const FuzzFailure &f : cluster.failures)
        EXPECT_EQ(f.kind, FuzzVerdict::ScheduleRejected)
            << f.toString();

    FuzzCaseResult cycles =
        runFuzzCase(ddg, configs, ScheduleCorruption::CyclesOffByOne);
    EXPECT_FALSE(cycles.ok())
        << "an off-by-one cycle claim slipped past the replay";
    bool sawMetric = false;
    for (const FuzzFailure &f : cycles.failures)
        sawMetric |= f.kind == FuzzVerdict::MetricMismatch;
    EXPECT_TRUE(sawMetric);
}

// ---------------------------------------------------------------------
// Minimizer contract.
// ---------------------------------------------------------------------

TEST(Fuzz, MinimizerShrinksWhilePredicateHolds)
{
    LatencyTable lat;
    // Find a roomy case so there is something to delete.
    Ddg big("none");
    for (int i = 0; i < 40; ++i) {
        FuzzCase c = corpusCase(kSeed, i, lat);
        bool hasStore = false;
        for (NodeId n = 0; n < c.ddg.numNodes(); ++n)
            hasStore |= c.ddg.node(n).opcode == Opcode::Store;
        if (hasStore && c.ddg.numNodes() >= 12) {
            big = c.ddg;
            break;
        }
    }
    ASSERT_GE(big.numNodes(), 12);

    auto hasStore = [](const Ddg &d) {
        for (NodeId n = 0; n < d.numNodes(); ++n)
            if (d.node(n).opcode == Opcode::Store)
                return true;
        return false;
    };

    MinimizeStats stats;
    Ddg reduced = minimizeDdg(big, hasStore, &stats);
    EXPECT_TRUE(hasStore(reduced))
        << "the result must itself satisfy the failure predicate";
    EXPECT_EQ(reduced.numNodes(), 1)
        << "a single store satisfies the predicate; greedy deletion "
           "should reach it";
    EXPECT_EQ(reduced.numEdges(), 0);
    EXPECT_EQ(stats.nodesBefore, big.numNodes());
    EXPECT_EQ(stats.nodesAfter, reduced.numNodes());
    EXPECT_GT(stats.probes, 0);
}

TEST(Fuzz, MinimizerReturnsInputWhenPredicateRejectsIt)
{
    LatencyTable lat;
    Ddg ddg = corpusCase(kSeed, 0, lat).ddg;
    MinimizeStats stats;
    Ddg out = minimizeDdg(
        ddg, [](const Ddg &) { return false; }, &stats);
    EXPECT_EQ(out.numNodes(), ddg.numNodes());
    EXPECT_EQ(out.numEdges(), ddg.numEdges());
    EXPECT_EQ(stats.probes, 1)
        << "a non-failing input takes exactly the initial probe";
}

TEST(Fuzz, MinimizerHonorsTheProbeCap)
{
    LatencyTable lat;
    Ddg ddg = corpusCase(kSeed, 0, lat).ddg;
    ASSERT_GE(ddg.numNodes(), 4);
    MinimizeStats stats;
    minimizeDdg(
        ddg, [](const Ddg &) { return true; }, &stats,
        /*maxProbes=*/3);
    EXPECT_LE(stats.probes, 3);
}
