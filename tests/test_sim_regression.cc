/**
 * @file
 * Sim-backed regression pin for the slack-aware transfer policy's
 * known small losses. The transfer-policy PR documented that
 * slackMargin=2 (the default) trails slackMargin=0 slightly on the
 * skewed-FU and three-tier-bus corpus machines, where an eager
 * steer to slow buses frees the fast class for the critical
 * recurrence. The estimator-side numbers were pinned then; this
 * file re-derives them from *simulated* achieved IPC — every loop
 * of both configurations is replayed through the cycle-accurate
 * simulator (sim/sim.hh), which must accept it and reproduce the
 * reported IPC exactly — so the pinned relation rests on an
 * independent oracle, not on the estimator double-counting its own
 * claims.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "machine/registry.hh"
#include "sim/sim.hh"
#include "workload/specfp.hh"

using namespace gpsched;

namespace
{

MachineConfig
corpusMachine(const std::string &file)
{
    return MachineRegistry::builtin().resolve(
        GPSCHED_SOURCE_DIR "/examples/machines/" + file);
}

/**
 * Compiles the suite with GP at @p margin and recomputes the
 * suite-mean IPC from simulated executions: each compiled loop is
 * replayed, must pass, and must reproduce the reported IPC exactly;
 * the per-program aggregation then mirrors compileSuite's
 * (totalOps / totalCycles per program, arithmetic mean across
 * programs) with the simulator's cycle counts.
 */
double
simMeanIpc(const std::vector<Program> &suite, const MachineConfig &m,
           int margin)
{
    LoopCompilerOptions options;
    options.transfer.slackMargin = margin;
    SuiteResult result =
        compileSuite(suite, m, SchedulerKind::Gp, options);
    EXPECT_EQ(result.failedLoops, 0u) << m.name();

    double mean = 0.0;
    int programs = 0;
    for (const ProgramResult &pr : result.programs) {
        const Program *program = nullptr;
        for (const Program &p : suite) {
            if (p.name == pr.name)
                program = &p;
        }
        if (program == nullptr) {
            ADD_FAILURE() << "program " << pr.name << " missing";
            continue;
        }
        std::int64_t ops = 0;
        std::int64_t cycles = 0;
        std::size_t next = 0;
        for (const CompiledLoop &loop : pr.loops) {
            while (next < program->loops.size() &&
                   program->loops[next].name() != loop.loopName)
                ++next;
            if (next == program->loops.size()) {
                ADD_FAILURE() << pr.name << "/" << loop.loopName
                              << " missing from the program";
                break;
            }
            sim::SimResult s =
                sim::simulate(program->loops[next], m, loop);
            EXPECT_TRUE(s.simOk)
                << pr.name << "/" << loop.loopName << " on "
                << m.name() << ": "
                << (s.fault ? s.fault->toString() : "");
            EXPECT_EQ(s.achievedIpc, loop.ipc)
                << pr.name << "/" << loop.loopName << " on "
                << m.name();
            ops += loop.ops;
            cycles += s.simCycles;
            ++next;
        }
        if (cycles > 0) {
            mean += static_cast<double>(ops) /
                    static_cast<double>(cycles);
            ++programs;
        }
    }
    EXPECT_GT(programs, 0) << m.name();
    return programs > 0 ? mean / programs : 0.0;
}

} // namespace

// ---------------------------------------------------------------------
// The documented small losses of the default margin, re-measured on
// simulated executions. Pinned from measurement: margin 2 trails
// margin 0 on skewed_fu_2c and threetier_bus_4c — where hoarding
// fast-bus slots starves nothing, so the eager steer's extra fast
// slots occasionally shave an II — but the loss stays tiny (< 0.1%
// of the eager mean), while on skewed_fu_4c margin 2 wins outright
// (its reserved fast slots serve the critical recurrence). Both
// sides of every comparison are sim-verified, so a future estimator
// bug cannot silently shift this pin.
// ---------------------------------------------------------------------

TEST(SimRegression, SlackMarginLossesPinnedBySimulation)
{
    LatencyTable lat;
    std::vector<Program> suite = specFp95Suite(lat);

    struct Pin
    {
        const char *file;
        bool marginLoses; // margin 2 trails margin 0
    };
    for (const Pin &pin :
         {Pin{"skewed_fu_2c.machine", true},
          Pin{"skewed_fu_4c.machine", false},
          Pin{"threetier_bus_4c.machine", true}}) {
        MachineConfig m = corpusMachine(pin.file);
        double eager = simMeanIpc(suite, m, 0);
        double deflt = simMeanIpc(suite, m, 2);
        RecordProperty(m.name() + "_margin0", std::to_string(eager));
        RecordProperty(m.name() + "_margin2", std::to_string(deflt));
        std::printf("[sim-regression] %-18s margin0=%.6f "
                    "margin2=%.6f delta=%+.6f\n",
                    m.name().c_str(), eager, deflt, deflt - eager);
        EXPECT_GT(eager, 0.0) << pin.file;
        EXPECT_GT(deflt, 0.0) << pin.file;
        if (pin.marginLoses) {
            EXPECT_LT(deflt, eager) << pin.file;
            EXPECT_GE(deflt, eager * 0.999)
                << pin.file << ": the pinned loss was tiny";
        } else {
            EXPECT_GT(deflt, eager) << pin.file;
        }
    }
}
