/**
 * @file
 * Unit tests for the integrated modulo scheduler (Section 3.3):
 * complete schedules at MII on simple loops, cluster policies, and
 * failure reporting at infeasible IIs. Every produced schedule is
 * checked by the independent validator.
 */

#include <gtest/gtest.h>

#include "graph/ddg_analysis.hh"
#include "machine/configs.hh"
#include "partition/multilevel.hh"
#include "sched/mii.hh"
#include "sched/uracam.hh"
#include "testing/fixtures.hh"
#include "testing/validate.hh"
#include "workload/loop_shapes.hh"

using namespace gpsched;
using namespace gpsched::testing;

TEST(Uracam, SchedulesChainAtMiiOnUnified)
{
    LatencyTable lat;
    Ddg g = chainLoop(5, lat);
    MachineConfig m = unifiedConfig(32);
    int mii = computeMii(g, m);
    PartialSchedule ps(g, m, mii);
    ModuloScheduler sched(g, m);
    ASSERT_TRUE(sched.schedule(ps, ClusterPolicy::FreeChoice, nullptr));
    EXPECT_EQ(ps.numScheduled(), g.numNodes());
    auto v = validateSchedule(g, m, ps);
    EXPECT_TRUE(v) << v.message;
}

TEST(Uracam, RecurrenceScheduledAtRecMii)
{
    LatencyTable lat;
    Ddg g = recurrenceLoop(lat);
    MachineConfig m = twoClusterConfig(32, 1);
    int mii = computeMii(g, m);
    EXPECT_EQ(mii, 7);
    PartialSchedule ps(g, m, mii);
    ModuloScheduler sched(g, m);
    ASSERT_TRUE(sched.schedule(ps, ClusterPolicy::FreeChoice, nullptr));
    // The recurrence kernel distance must be exactly honored.
    auto v = validateSchedule(g, m, ps);
    EXPECT_TRUE(v) << v.message;
}

TEST(Uracam, FailsBelowRecMii)
{
    LatencyTable lat;
    Ddg g = recurrenceLoop(lat);
    MachineConfig m = twoClusterConfig(32, 1);
    PartialSchedule ps(g, m, 6);
    ModuloScheduler sched(g, m);
    EXPECT_FALSE(
        sched.schedule(ps, ClusterPolicy::FreeChoice, nullptr));
}

TEST(Uracam, AssignedOnlyRespectsThePartition)
{
    LatencyTable lat;
    Ddg g = parallelLoop(6, lat);
    MachineConfig m = twoClusterConfig(32, 1);
    Partition part(g.numNodes(), 2, 0);
    for (int i = 0; i < 3; ++i)
        part.assign(i, 1);
    PartialSchedule ps(g, m, 3);
    ModuloScheduler sched(g, m);
    ASSERT_TRUE(
        sched.schedule(ps, ClusterPolicy::AssignedOnly, &part));
    for (NodeId v = 0; v < g.numNodes(); ++v)
        EXPECT_EQ(ps.clusterOf(v), part.clusterOf(v));
}

TEST(Uracam, AssignedOnlyFailsWhenPartitionOverloads)
{
    LatencyTable lat;
    Ddg g = parallelLoop(6, lat);
    MachineConfig m = twoClusterConfig(32, 1);
    Partition all0(g.numNodes(), 2, 0);
    // 6 INT ops on one 2-unit cluster at II=2 cannot fit.
    PartialSchedule ps(g, m, 2);
    ModuloScheduler sched(g, m);
    EXPECT_FALSE(
        sched.schedule(ps, ClusterPolicy::AssignedOnly, &all0));
}

TEST(Uracam, PreferAssignedDeviatesOnlyUnderPressure)
{
    LatencyTable lat;
    Ddg g = parallelLoop(4, lat);
    MachineConfig m = twoClusterConfig(32, 1);
    // A feasible balanced partition: GP must follow it exactly.
    Partition part(g.numNodes(), 2, 0);
    part.assign(2, 1);
    part.assign(3, 1);
    PartialSchedule ps(g, m, 2);
    ModuloScheduler sched(g, m);
    ASSERT_TRUE(
        sched.schedule(ps, ClusterPolicy::PreferAssigned, &part));
    for (NodeId v = 0; v < g.numNodes(); ++v)
        EXPECT_EQ(ps.clusterOf(v), part.clusterOf(v));
}

TEST(Uracam, PreferAssignedRescuesOverloadedPartition)
{
    LatencyTable lat;
    Ddg g = parallelLoop(6, lat);
    MachineConfig m = twoClusterConfig(32, 1);
    Partition all0(g.numNodes(), 2, 0); // infeasible as Fixed
    PartialSchedule ps(g, m, 2);
    ModuloScheduler sched(g, m);
    ASSERT_TRUE(
        sched.schedule(ps, ClusterPolicy::PreferAssigned, &all0));
    // Some nodes must have deviated to cluster 1.
    int deviated = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        deviated += ps.clusterOf(v) != 0;
    EXPECT_GT(deviated, 0);
    auto v = validateSchedule(g, m, ps);
    EXPECT_TRUE(v) << v.message;
}

TEST(Uracam, UsesBothClustersWhenOneCannotHostEverything)
{
    LatencyTable lat;
    Ddg g = memHeavyLoop(8, lat); // 9 memory ops
    MachineConfig m = twoClusterConfig(32, 1);
    int mii = computeMii(g, m); // ceil(9/4) = 3
    auto ps = scheduleLoop(g, m);
    ASSERT_TRUE(ps.has_value());
    EXPECT_LE(mii, ps->ii());
    int in0 = 0, in1 = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        (ps->clusterOf(v) == 0 ? in0 : in1) += 1;
    EXPECT_GT(in0, 0);
    EXPECT_GT(in1, 0);
    auto res = validateSchedule(g, m, *ps);
    EXPECT_TRUE(res) << res.message;
}

TEST(Uracam, ScheduleIntoDirtyScheduleDies)
{
    LatencyTable lat;
    Ddg g = chainLoop(2, lat);
    MachineConfig m = unifiedConfig(32);
    PartialSchedule ps(g, m, 2);
    ps.apply(ps.planPlacement(0, 0, 0));
    ModuloScheduler sched(g, m);
    EXPECT_DEATH(
        sched.schedule(ps, ClusterPolicy::FreeChoice, nullptr), "");
}

// Parameterized: every loop shape schedules and validates on every
// clustered configuration.
struct ShapeCase
{
    const char *name;
    int shape; // index into the factory below
};

class UracamShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  public:
    static Ddg
    makeShape(int shape, const LatencyTable &lat)
    {
        switch (shape) {
          case 0:
            return streamKernel("s", lat, 3, 2, 50);
          case 1:
            return stencilKernel("st", lat, 5, 50);
          case 2:
            return reductionKernel("r", lat, 4, 50);
          case 3:
            return recurrenceKernel("rec", lat, 6, 50);
          case 4:
            return wideBlockKernel("w", lat, 6, 3, 50);
          case 5:
            return dotProductKernel("d", lat, 2, 50);
          case 6:
            return daxpyKernel("y", lat, 2, 50);
          default:
            return intAddressKernel("ia", lat, 3, 50);
        }
    }

    static MachineConfig
    makeMachine(int machine)
    {
        switch (machine) {
          case 0:
            return unifiedConfig(32);
          case 1:
            return twoClusterConfig(32, 1);
          case 2:
            return fourClusterConfig(32, 1);
          default:
            return fourClusterConfig(32, 2);
        }
    }
};

TEST_P(UracamShapeSweep, SchedulesAndValidates)
{
    auto [shape, machine] = GetParam();
    LatencyTable lat;
    Ddg g = makeShape(shape, lat);
    MachineConfig m = makeMachine(machine);
    auto ps = scheduleLoop(g, m);
    ASSERT_TRUE(ps.has_value())
        << g.name() << " failed on " << m.name();
    EXPECT_EQ(ps->numScheduled(), g.numNodes());
    auto v = validateSchedule(g, m, *ps);
    EXPECT_TRUE(v) << g.name() << " on " << m.name() << ": "
                   << v.message;
}

INSTANTIATE_TEST_SUITE_P(
    ShapesTimesMachines, UracamShapeSweep,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Range(0, 4)));
