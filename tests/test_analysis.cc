/**
 * @file
 * Unit tests for the modulo-aware longest-path analysis (ASAP/ALAP/
 * slack) and the RecMII computation.
 */

#include <gtest/gtest.h>

#include "graph/ddg_analysis.hh"
#include "graph/ddg_builder.hh"
#include "testing/fixtures.hh"

using namespace gpsched;
using namespace gpsched::testing;

TEST(Analysis, ChainAsapFollowsLatencies)
{
    LatencyTable lat;
    DdgBuilder b("t", lat);
    NodeId ld = b.op(Opcode::Load);   // latency 2
    NodeId mul = b.op(Opcode::FMul);  // latency 4
    NodeId add = b.op(Opcode::FAdd);  // latency 3
    b.flow(ld, mul);
    b.flow(mul, add);
    Ddg g = b.build();

    DdgAnalysis a(g, lat, 1);
    ASSERT_TRUE(a.feasible());
    EXPECT_EQ(a.asap(ld), 0);
    EXPECT_EQ(a.asap(mul), 2);
    EXPECT_EQ(a.asap(add), 6);
    EXPECT_EQ(a.scheduleLength(), 9); // add finishes at 6 + 3
}

TEST(Analysis, AlapEqualsAsapOnCriticalPath)
{
    LatencyTable lat;
    Ddg g = chainLoop(4, lat);
    DdgAnalysis a(g, lat, 1);
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        EXPECT_EQ(a.asap(v), a.alap(v));
        EXPECT_EQ(a.mobility(v), 0);
    }
}

TEST(Analysis, MobilityOfSideChain)
{
    LatencyTable lat;
    DdgBuilder b("t", lat);
    NodeId ld = b.op(Opcode::Load);
    NodeId slow = b.op(Opcode::FDiv); // latency 12
    NodeId fast = b.op(Opcode::IAlu); // latency 1
    NodeId join = b.op(Opcode::FAdd);
    b.flow(ld, slow);
    b.flow(ld, fast);
    b.flow(slow, join);
    b.flow(fast, join);
    Ddg g = b.build();
    DdgAnalysis a(g, lat, 1);
    EXPECT_EQ(a.mobility(slow), 0);
    EXPECT_EQ(a.mobility(fast), 11); // can slide by 12 - 1
}

TEST(Analysis, SlackIsNonNegativeAndZeroOnCriticalEdges)
{
    LatencyTable lat;
    Ddg g = diamondLoop(lat);
    DdgAnalysis a(g, lat, 2);
    ASSERT_TRUE(a.feasible());
    for (EdgeId e = 0; e < g.numEdges(); ++e)
        EXPECT_GE(a.slack(e), 0) << "edge " << e;
    EXPECT_GE(a.maxSlack(), 0);
}

TEST(Analysis, RecurrenceInfeasibleBelowRecMii)
{
    LatencyTable lat;
    Ddg g = recurrenceLoop(lat); // FMul(4) + FAdd(3) cycle, dist 1
    int rec = recMii(g);
    EXPECT_EQ(rec, 7);
    DdgAnalysis below(g, lat, rec - 1);
    EXPECT_FALSE(below.feasible());
    DdgAnalysis at(g, lat, rec);
    EXPECT_TRUE(at.feasible());
}

TEST(Analysis, RecMiiScalesWithDistance)
{
    LatencyTable lat;
    DdgBuilder b("t", lat);
    NodeId mul = b.op(Opcode::FMul);
    NodeId add = b.op(Opcode::FAdd);
    b.flow(mul, add);
    b.carried(add, mul, 2); // distance 2: ceil(7/2) = 4
    Ddg g = b.build();
    EXPECT_EQ(recMii(g), 4);
}

TEST(Analysis, RecMiiOfAcyclicGraphIsOne)
{
    LatencyTable lat;
    EXPECT_EQ(recMii(chainLoop(5, lat)), 1);
    EXPECT_EQ(recMii(diamondLoop(lat)), 1);
}

TEST(Analysis, HigherIiRelaxesCarriedEdges)
{
    LatencyTable lat;
    Ddg g = recurrenceLoop(lat);
    DdgAnalysis a7(g, lat, 7);
    DdgAnalysis a10(g, lat, 10);
    ASSERT_TRUE(a7.feasible());
    ASSERT_TRUE(a10.feasible());
    // The flat schedule cannot get longer when the II grows.
    EXPECT_LE(a10.scheduleLength(), a7.scheduleLength());
}

TEST(Analysis, ExtraEdgeLatencyShiftsAsap)
{
    LatencyTable lat;
    DdgBuilder b("t", lat);
    NodeId a = b.op(Opcode::IAlu);
    NodeId c = b.op(Opcode::IAlu);
    EdgeId e = b.flow(a, c);
    Ddg g = b.build();
    std::vector<int> extra(g.numEdges(), 0);
    extra[e] = 5;
    DdgAnalysis plain(g, lat, 1);
    DdgAnalysis delayed(g, lat, 1, &extra);
    EXPECT_EQ(plain.asap(c), 1);
    EXPECT_EQ(delayed.asap(c), 6);
    EXPECT_EQ(delayed.effectiveLatency(e), 6);
}

TEST(Analysis, ExtraLatencyOnRecurrenceRaisesRecMii)
{
    LatencyTable lat;
    Ddg g = recurrenceLoop(lat);
    std::vector<int> extra(g.numEdges(), 0);
    extra[0] = 2; // the FMul -> FAdd edge inside the cycle
    EXPECT_EQ(recMii(g, &extra), 9);
}

TEST(Analysis, RecMiiWithEdgeDelayMatchesFullSearch)
{
    LatencyTable lat;
    Ddg g = recurrenceLoop(lat);
    int base = recMii(g);
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        for (int delta : {0, 1, 3}) {
            std::vector<int> extra(g.numEdges(), 0);
            extra[e] = delta;
            EXPECT_EQ(recMiiWithEdgeDelay(g, e, delta, base),
                      std::max(base, recMii(g, &extra)))
                << "edge " << e << " delta " << delta;
        }
    }
}

TEST(Analysis, DepthAndHeightSpanScheduleLength)
{
    LatencyTable lat;
    Ddg g = diamondLoop(lat);
    DdgAnalysis a(g, lat, 2);
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        int lat_v = lat.latency(g.node(v).opcode);
        EXPECT_LE(a.depth(v) + lat_v + (a.height(v) - lat_v),
                  a.scheduleLength());
        EXPECT_EQ(a.height(v), a.scheduleLength() - a.alap(v));
    }
}

TEST(Analysis, CachedSccGivesIdenticalResults)
{
    LatencyTable lat;
    Ddg g = diamondLoop(lat);
    SccDecomposition sccs = computeSccs(g);
    DdgAnalysis fresh(g, lat, 3);
    DdgAnalysis cached(g, lat, 3, nullptr, &sccs);
    ASSERT_EQ(fresh.feasible(), cached.feasible());
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        EXPECT_EQ(fresh.asap(v), cached.asap(v));
        EXPECT_EQ(fresh.alap(v), cached.alap(v));
    }
}

// Property sweep: for a family of IIs, feasibility is monotone (once
// feasible, always feasible for larger IIs) and ASAP respects every
// edge constraint.
class AnalysisIiSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(AnalysisIiSweep, AsapSatisfiesAllEdges)
{
    LatencyTable lat;
    DdgBuilder b("sweep", lat);
    NodeId mul = b.op(Opcode::FMul);
    NodeId add = b.op(Opcode::FAdd);
    NodeId st = b.op(Opcode::Store);
    b.flow(mul, add);
    b.carried(add, mul, 1);
    b.flow(add, st);
    Ddg g = b.build();

    int ii = GetParam();
    DdgAnalysis a(g, lat, ii);
    if (ii < 7) {
        EXPECT_FALSE(a.feasible());
        return;
    }
    ASSERT_TRUE(a.feasible());
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const auto &edge = g.edge(e);
        EXPECT_GE(a.asap(edge.dst),
                  a.asap(edge.src) + a.effectiveLatency(e));
        EXPECT_GE(a.alap(edge.dst),
                  a.alap(edge.src) + a.effectiveLatency(e));
    }
}

INSTANTIATE_TEST_SUITE_P(IiRange, AnalysisIiSweep,
                         ::testing::Values(1, 2, 3, 5, 6, 7, 8, 12,
                                           20));
