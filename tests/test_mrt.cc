/**
 * @file
 * Unit tests for the modulo reservation table, including the modulo
 * wrap of multi-cycle reservations and negative flat cycles.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "sched/mrt.hh"

using namespace gpsched;

TEST(WrapSlot, EuclideanModulo)
{
    EXPECT_EQ(wrapSlot(0, 4), 0);
    EXPECT_EQ(wrapSlot(5, 4), 1);
    EXPECT_EQ(wrapSlot(-1, 4), 3);
    EXPECT_EQ(wrapSlot(-8, 4), 0);
}

TEST(Mrt, FreshTableIsEmpty)
{
    ModuloReservationTable mrt(2, 4);
    EXPECT_EQ(mrt.usedSlots(), 0);
    EXPECT_EQ(mrt.totalSlots(), 8);
    EXPECT_EQ(mrt.freeSlots(), 8);
    for (int c = 0; c < 4; ++c)
        EXPECT_EQ(mrt.busyAt(c), 0);
}

TEST(Mrt, SingleUnitConflictsOnSameSlot)
{
    ModuloReservationTable mrt(1, 4);
    EXPECT_TRUE(mrt.canReserve(1, 1));
    mrt.reserve(1, 1);
    EXPECT_FALSE(mrt.canReserve(1, 1));
    EXPECT_FALSE(mrt.canReserve(5, 1));  // 5 mod 4 == 1
    EXPECT_FALSE(mrt.canReserve(-3, 1)); // -3 mod 4 == 1
    EXPECT_TRUE(mrt.canReserve(2, 1));
}

TEST(Mrt, MultiUnitPoolAllowsOverlap)
{
    ModuloReservationTable mrt(2, 3);
    mrt.reserve(0, 1);
    EXPECT_TRUE(mrt.canReserve(0, 1));
    mrt.reserve(0, 1);
    EXPECT_FALSE(mrt.canReserve(0, 1));
    EXPECT_EQ(mrt.busyAt(0), 2);
}

TEST(Mrt, MultiCycleOccupancyWraps)
{
    ModuloReservationTable mrt(1, 3);
    // Occupancy 2 starting at slot 2 busies slots 2 and 0.
    mrt.reserve(2, 2);
    EXPECT_FALSE(mrt.canReserve(0, 1));
    EXPECT_TRUE(mrt.canReserve(1, 1));
    EXPECT_FALSE(mrt.canReserve(2, 1));
}

TEST(Mrt, OccupancyLargerThanIi)
{
    // A 6-cycle op in a 4-slot kernel busies every slot, two slots
    // twice; a 2-unit pool can host it, a 1-unit pool cannot.
    ModuloReservationTable one(1, 4);
    EXPECT_FALSE(one.canReserve(0, 6));
    ModuloReservationTable two(2, 4);
    EXPECT_TRUE(two.canReserve(0, 6));
    two.reserve(0, 6);
    EXPECT_EQ(two.usedSlots(), 6);
    EXPECT_EQ(two.busyAt(0), 2);
    EXPECT_EQ(two.busyAt(1), 2);
    EXPECT_EQ(two.busyAt(2), 1);
    EXPECT_EQ(two.busyAt(3), 1);
}

TEST(Mrt, ReleaseRestoresState)
{
    ModuloReservationTable mrt(1, 5);
    mrt.reserve(3, 2);
    EXPECT_EQ(mrt.usedSlots(), 2);
    mrt.release(3, 2);
    EXPECT_EQ(mrt.usedSlots(), 0);
    for (int c = 0; c < 5; ++c)
        EXPECT_EQ(mrt.busyAt(c), 0);
}

TEST(Mrt, ZeroUnitPoolRefusesAll)
{
    ModuloReservationTable mrt(0, 4);
    EXPECT_FALSE(mrt.canReserve(0, 1));
    EXPECT_EQ(mrt.totalSlots(), 0);
}

using MrtDeathTest = ::testing::Test;

TEST(MrtDeathTest, ReleaseOfFreeSlotPanics)
{
    ModuloReservationTable mrt(1, 4);
    EXPECT_DEATH(mrt.release(0, 1), "");
}

TEST(MrtDeathTest, BadIiPanics)
{
    EXPECT_DEATH(ModuloReservationTable(1, 0), "");
}

// Property sweep over (units, ii, occupancy): filling the pool slot
// by slot is consistent with canReserve and releasing everything
// returns to empty.
class MrtSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(MrtSweep, FillAndDrainConsistency)
{
    auto [units, ii, occ] = GetParam();
    ModuloReservationTable mrt(units, ii);

    std::vector<std::pair<int, int>> reserved;
    // Greedily reserve at every start cycle until nothing fits.
    bool progress = true;
    while (progress) {
        progress = false;
        for (int c = -ii; c < 2 * ii; ++c) {
            if (mrt.canReserve(c, occ)) {
                mrt.reserve(c, occ);
                reserved.push_back({c, occ});
                progress = true;
                break;
            }
        }
    }
    // The pool is saturated somewhere: usedSlots is within capacity
    // and no single-cycle slot more than `units` busy.
    EXPECT_LE(mrt.usedSlots(), mrt.totalSlots());
    for (int c = 0; c < ii; ++c)
        EXPECT_LE(mrt.busyAt(c), units);
    // Capacity actually used: at least units * floor(ii/occ) slots.
    EXPECT_GE(static_cast<int>(reserved.size()),
              units * (ii / std::max(occ, 1)));

    for (auto [c, o] : reserved)
        mrt.release(c, o);
    EXPECT_EQ(mrt.usedSlots(), 0);
    EXPECT_EQ(mrt.freeSlots(), mrt.totalSlots());
}

INSTANTIATE_TEST_SUITE_P(
    Pools, MrtSweep,
    ::testing::Combine(::testing::Values(1, 2, 4), // units
                       ::testing::Values(1, 3, 8), // ii
                       ::testing::Values(1, 2, 5)));
