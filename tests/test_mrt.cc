/**
 * @file
 * Unit tests for the modulo reservation table, including the modulo
 * wrap of multi-cycle reservations and negative flat cycles.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <climits>
#include <random>
#include <tuple>
#include <utility>
#include <vector>

#include "sched/mrt.hh"
#include "support/arena.hh"

using namespace gpsched;

TEST(WrapSlot, EuclideanModulo)
{
    EXPECT_EQ(wrapSlot(0, 4), 0);
    EXPECT_EQ(wrapSlot(5, 4), 1);
    EXPECT_EQ(wrapSlot(-1, 4), 3);
    EXPECT_EQ(wrapSlot(-8, 4), 0);
}

TEST(Mrt, FreshTableIsEmpty)
{
    ModuloReservationTable mrt(2, 4);
    EXPECT_EQ(mrt.usedSlots(), 0);
    EXPECT_EQ(mrt.totalSlots(), 8);
    EXPECT_EQ(mrt.freeSlots(), 8);
    for (int c = 0; c < 4; ++c)
        EXPECT_EQ(mrt.busyAt(c), 0);
}

TEST(Mrt, SingleUnitConflictsOnSameSlot)
{
    ModuloReservationTable mrt(1, 4);
    EXPECT_TRUE(mrt.canReserve(1, 1));
    mrt.reserve(1, 1);
    EXPECT_FALSE(mrt.canReserve(1, 1));
    EXPECT_FALSE(mrt.canReserve(5, 1));  // 5 mod 4 == 1
    EXPECT_FALSE(mrt.canReserve(-3, 1)); // -3 mod 4 == 1
    EXPECT_TRUE(mrt.canReserve(2, 1));
}

TEST(Mrt, MultiUnitPoolAllowsOverlap)
{
    ModuloReservationTable mrt(2, 3);
    mrt.reserve(0, 1);
    EXPECT_TRUE(mrt.canReserve(0, 1));
    mrt.reserve(0, 1);
    EXPECT_FALSE(mrt.canReserve(0, 1));
    EXPECT_EQ(mrt.busyAt(0), 2);
}

TEST(Mrt, MultiCycleOccupancyWraps)
{
    ModuloReservationTable mrt(1, 3);
    // Occupancy 2 starting at slot 2 busies slots 2 and 0.
    mrt.reserve(2, 2);
    EXPECT_FALSE(mrt.canReserve(0, 1));
    EXPECT_TRUE(mrt.canReserve(1, 1));
    EXPECT_FALSE(mrt.canReserve(2, 1));
}

TEST(Mrt, OccupancyLargerThanIi)
{
    // A 6-cycle op in a 4-slot kernel busies every slot, two slots
    // twice; a 2-unit pool can host it, a 1-unit pool cannot.
    ModuloReservationTable one(1, 4);
    EXPECT_FALSE(one.canReserve(0, 6));
    ModuloReservationTable two(2, 4);
    EXPECT_TRUE(two.canReserve(0, 6));
    two.reserve(0, 6);
    EXPECT_EQ(two.usedSlots(), 6);
    EXPECT_EQ(two.busyAt(0), 2);
    EXPECT_EQ(two.busyAt(1), 2);
    EXPECT_EQ(two.busyAt(2), 1);
    EXPECT_EQ(two.busyAt(3), 1);
}

TEST(Mrt, ReleaseRestoresState)
{
    ModuloReservationTable mrt(1, 5);
    mrt.reserve(3, 2);
    EXPECT_EQ(mrt.usedSlots(), 2);
    mrt.release(3, 2);
    EXPECT_EQ(mrt.usedSlots(), 0);
    for (int c = 0; c < 5; ++c)
        EXPECT_EQ(mrt.busyAt(c), 0);
}

TEST(Mrt, ZeroUnitPoolRefusesAll)
{
    ModuloReservationTable mrt(0, 4);
    EXPECT_FALSE(mrt.canReserve(0, 1));
    EXPECT_EQ(mrt.totalSlots(), 0);
}

using MrtDeathTest = ::testing::Test;

TEST(MrtDeathTest, ReleaseOfFreeSlotPanics)
{
    ModuloReservationTable mrt(1, 4);
    EXPECT_DEATH(mrt.release(0, 1), "");
}

TEST(MrtDeathTest, BadIiPanics)
{
    EXPECT_DEATH(ModuloReservationTable(1, 0), "");
}

// Property sweep over (units, ii, occupancy): filling the pool slot
// by slot is consistent with canReserve and releasing everything
// returns to empty.
class MrtSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(MrtSweep, FillAndDrainConsistency)
{
    auto [units, ii, occ] = GetParam();
    ModuloReservationTable mrt(units, ii);

    std::vector<std::pair<int, int>> reserved;
    // Greedily reserve at every start cycle until nothing fits.
    bool progress = true;
    while (progress) {
        progress = false;
        for (int c = -ii; c < 2 * ii; ++c) {
            if (mrt.canReserve(c, occ)) {
                mrt.reserve(c, occ);
                reserved.push_back({c, occ});
                progress = true;
                break;
            }
        }
    }
    // The pool is saturated somewhere: usedSlots is within capacity
    // and no single-cycle slot more than `units` busy.
    EXPECT_LE(mrt.usedSlots(), mrt.totalSlots());
    for (int c = 0; c < ii; ++c)
        EXPECT_LE(mrt.busyAt(c), units);
    // Capacity actually used: at least units * floor(ii/occ) slots.
    EXPECT_GE(static_cast<int>(reserved.size()),
              units * (ii / std::max(occ, 1)));

    for (auto [c, o] : reserved)
        mrt.release(c, o);
    EXPECT_EQ(mrt.usedSlots(), 0);
    EXPECT_EQ(mrt.freeSlots(), mrt.totalSlots());
}

INSTANTIATE_TEST_SUITE_P(
    Pools, MrtSweep,
    ::testing::Combine(::testing::Values(1, 2, 4), // units
                       ::testing::Values(1, 3, 8), // ii
                       ::testing::Values(1, 2, 5)));

namespace
{

/**
 * Reference reservation table: the plain per-slot counter array the
 * packed-plane implementation replaced. Kept here so a differential
 * sweep can pin the two bit-identical.
 */
class RefMrt
{
  public:
    RefMrt(int units, int ii) : units_(units), ii_(ii), busy_(ii, 0)
    {
    }

    bool
    canReserve(int cycle, int occ) const
    {
        std::vector<int> need(ii_, 0);
        for (int k = 0; k < occ; ++k)
            ++need[wrapSlot(cycle + k, ii_)];
        for (int s = 0; s < ii_; ++s) {
            if (busy_[s] + need[s] > units_)
                return false;
        }
        return true;
    }

    void
    reserve(int cycle, int occ)
    {
        for (int k = 0; k < occ; ++k)
            ++busy_[wrapSlot(cycle + k, ii_)];
        used_ += occ;
    }

    void
    release(int cycle, int occ)
    {
        for (int k = 0; k < occ; ++k)
            --busy_[wrapSlot(cycle + k, ii_)];
        used_ -= occ;
    }

    int
    firstFit(int from, int to, int occ) const
    {
        const int step = from <= to ? 1 : -1;
        for (int c = from;; c += step) {
            if (canReserve(c, occ))
                return c;
            if (c == to)
                break;
        }
        return INT_MIN;
    }

    int busyAt(int cycle) const { return busy_[wrapSlot(cycle, ii_)]; }
    int usedSlots() const { return used_; }

  private:
    int units_;
    int ii_;
    int used_ = 0;
    std::vector<int> busy_;
};

} // namespace

/**
 * Differential sweep: random reserve/release streams against the
 * reference counter-array table; every canReserve, busyAt, firstFit
 * and utilization answer must be bit-identical. IIs straddle the
 * 64-slot word boundaries so multi-word planes are covered.
 */
TEST(MrtDifferential, RandomStreamsMatchReference)
{
    std::mt19937 rng(0xC0FFEE);
    const int iis[] = {1, 2, 7, 31, 63, 64, 65, 127, 128, 130};
    for (int units : {1, 2, 3, 4, 8}) {
        for (int ii : iis) {
            ModuloReservationTable mrt(units, ii);
            RefMrt ref(units, ii);
            std::vector<std::pair<int, int>> live;
            std::uniform_int_distribution<int> cycleDist(-3 * ii,
                                                         4 * ii);
            std::uniform_int_distribution<int> occDist(
                1, std::min(3 * ii, 2 * units * ii));
            for (int step = 0; step < 400; ++step) {
                const int cycle = cycleDist(rng);
                const int occ = occDist(rng);
                ASSERT_EQ(mrt.canReserve(cycle, occ),
                          ref.canReserve(cycle, occ))
                    << "units=" << units << " ii=" << ii
                    << " cycle=" << cycle << " occ=" << occ;
                if (ref.canReserve(cycle, occ) && rng() % 4 != 0) {
                    mrt.reserve(cycle, occ);
                    ref.reserve(cycle, occ);
                    live.push_back({cycle, occ});
                } else if (!live.empty() && rng() % 3 == 0) {
                    const std::size_t i = rng() % live.size();
                    auto [c, o] = live[i];
                    mrt.release(c, o);
                    ref.release(c, o);
                    live[i] = live.back();
                    live.pop_back();
                }
                ASSERT_EQ(mrt.usedSlots(), ref.usedSlots());
                const int probe = cycleDist(rng);
                ASSERT_EQ(mrt.busyAt(probe), ref.busyAt(probe));
                // firstFit parity, both scan directions.
                const int occ2 = occDist(rng);
                const int lo = cycleDist(rng);
                const int hi = lo + static_cast<int>(rng() % (2 * ii));
                ASSERT_EQ(mrt.firstFit(lo, hi, occ2),
                          ref.firstFit(lo, hi, occ2))
                    << "units=" << units << " ii=" << ii << " ["
                    << lo << "," << hi << "] occ=" << occ2;
                ASSERT_EQ(mrt.firstFit(hi, lo, occ2),
                          ref.firstFit(hi, lo, occ2))
                    << "units=" << units << " ii=" << ii << " ["
                    << hi << "," << lo << "] desc occ=" << occ2;
            }
            for (auto [c, o] : live) {
                mrt.release(c, o);
                ref.release(c, o);
            }
            EXPECT_EQ(mrt.usedSlots(), 0);
            for (int s = 0; s < ii; ++s)
                ASSERT_EQ(mrt.busyAt(s), 0);
        }
    }
}

/** Copies must be deep: mutating one table leaves the other alone. */
TEST(MrtDifferential, CopyIsDeep)
{
    ModuloReservationTable a(2, 70); // two words per plane
    a.reserve(3, 5);
    ModuloReservationTable b = a;
    b.reserve(3, 5);
    EXPECT_EQ(a.busyAt(3), 1);
    EXPECT_EQ(b.busyAt(3), 2);
    a = b;
    EXPECT_EQ(a.busyAt(3), 2);
    a.release(3, 5);
    EXPECT_EQ(a.busyAt(3), 1);
    EXPECT_EQ(b.busyAt(3), 2);
}

/** Arena-backed tables behave identically to heap-backed ones. */
TEST(MrtDifferential, ArenaBackedTableMatches)
{
    CompileArena arena;
    // 8 units x 3 words = 24 words: past the inline buffer.
    ModuloReservationTable mrt(8, 130, &arena);
    RefMrt ref(8, 130);
    std::mt19937 rng(42);
    std::uniform_int_distribution<int> cycleDist(-200, 400);
    for (int step = 0; step < 200; ++step) {
        const int cycle = cycleDist(rng);
        const int occ = 1 + static_cast<int>(rng() % 200);
        ASSERT_EQ(mrt.canReserve(cycle, occ),
                  ref.canReserve(cycle, occ));
        if (ref.canReserve(cycle, occ)) {
            mrt.reserve(cycle, occ);
            ref.reserve(cycle, occ);
        }
        const int at = cycleDist(rng);
        ASSERT_EQ(mrt.busyAt(at), ref.busyAt(at));
    }
}
