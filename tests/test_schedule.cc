/**
 * @file
 * Unit tests for PartialSchedule: placement planning and commitment,
 * precedence and resource feasibility, inter-cluster transfers (bus
 * and memory), register lifetimes and the figures of merit.
 */

#include <gtest/gtest.h>

#include "graph/ddg_builder.hh"
#include "machine/configs.hh"
#include "sched/schedule.hh"
#include "testing/fixtures.hh"
#include "testing/validate.hh"

using namespace gpsched;
using namespace gpsched::testing;

namespace
{

/** Two-node producer/consumer loop: Load -> FAdd. */
Ddg
pairLoop(const LatencyTable &lat)
{
    DdgBuilder b("pair", lat);
    NodeId ld = b.op(Opcode::Load, "ld");
    NodeId add = b.op(Opcode::FAdd, "add");
    b.flow(ld, add);
    return b.tripCount(10).build();
}

} // namespace

TEST(Schedule, PlaceSingleNode)
{
    LatencyTable lat;
    Ddg g = pairLoop(lat);
    MachineConfig m = twoClusterConfig(32, 1);
    PartialSchedule ps(g, m, 2);

    PlacementPlan plan = ps.planPlacement(0, 0, 5);
    ASSERT_TRUE(plan.feasible);
    EXPECT_EQ(plan.cycle, 5);
    ps.apply(plan);
    EXPECT_TRUE(ps.isScheduled(0));
    EXPECT_EQ(ps.cycleOf(0), 5);
    EXPECT_EQ(ps.clusterOf(0), 0);
    EXPECT_EQ(ps.numScheduled(), 1);
}

TEST(Schedule, PrecedenceRejectsEarlyConsumer)
{
    LatencyTable lat;
    Ddg g = pairLoop(lat);
    MachineConfig m = twoClusterConfig(32, 1);
    PartialSchedule ps(g, m, 2);
    ps.apply(ps.planPlacement(0, 0, 0)); // load at 0, result at 2

    EXPECT_FALSE(ps.planPlacement(1, 0, 1).feasible);
    PlacementPlan ok = ps.planPlacement(1, 0, 2);
    EXPECT_TRUE(ok.feasible);
}

TEST(Schedule, FuConflictRejectsOversubscribedSlot)
{
    LatencyTable lat;
    Ddg g = parallelLoop(3, lat);
    MachineConfig m = twoClusterConfig(32, 1); // 2 INT units
    PartialSchedule ps(g, m, 1);               // single kernel slot
    ps.apply(ps.planPlacement(0, 0, 0));
    ps.apply(ps.planPlacement(1, 0, 0));
    EXPECT_FALSE(ps.planPlacement(2, 0, 0).feasible);
    EXPECT_FALSE(ps.planPlacement(2, 0, 7).feasible); // same slot
    EXPECT_TRUE(ps.planPlacement(2, 1, 0).feasible);  // other cluster
}

TEST(Schedule, SameClusterNeedsNoTransfer)
{
    LatencyTable lat;
    Ddg g = pairLoop(lat);
    MachineConfig m = twoClusterConfig(32, 1);
    PartialSchedule ps(g, m, 2);
    ps.apply(ps.planPlacement(0, 0, 0));
    PlacementPlan plan = ps.planPlacement(1, 0, 2);
    ASSERT_TRUE(plan.feasible);
    EXPECT_TRUE(plan.transfers.empty());
    ps.apply(plan);
    EXPECT_EQ(ps.stats().busTransfers, 0);
}

TEST(Schedule, CrossClusterAllocatesBusTransfer)
{
    LatencyTable lat;
    Ddg g = pairLoop(lat);
    MachineConfig m = twoClusterConfig(32, 1);
    PartialSchedule ps(g, m, 2);
    ps.apply(ps.planPlacement(0, 0, 0)); // write at 2

    // Consumer on cluster 1 at cycle 3: bus rides [2,3).
    PlacementPlan plan = ps.planPlacement(1, 1, 3);
    ASSERT_TRUE(plan.feasible);
    ASSERT_EQ(plan.transfers.size(), 1u);
    const Transfer &t = plan.transfers[0].transfer;
    EXPECT_TRUE(t.viaBus);
    EXPECT_EQ(t.producer, 0);
    EXPECT_EQ(t.destCluster, 1);
    EXPECT_GE(t.readCycle, 2);
    EXPECT_LE(t.arrivalCycle, 3);
    ps.apply(plan);
    EXPECT_EQ(ps.stats().busTransfers, 1);
    auto v = validateSchedule(g, m, ps);
    EXPECT_TRUE(v) << v.message;
}

TEST(Schedule, CrossClusterTooEarlyIsRejected)
{
    LatencyTable lat;
    Ddg g = pairLoop(lat);
    MachineConfig m = twoClusterConfig(32, 1);
    PartialSchedule ps(g, m, 2);
    ps.apply(ps.planPlacement(0, 0, 0)); // write at 2
    // Cycle 2 in another cluster: arrival >= 3 > use -> infeasible.
    EXPECT_FALSE(ps.planPlacement(1, 1, 2).feasible);
}

TEST(Schedule, SaturatedBusFallsBackToMemoryComm)
{
    LatencyTable lat;
    // Two producer/consumer pairs crossing clusters at II=1: only
    // one bus slot exists, the second value must go through memory.
    DdgBuilder b("two-pairs", lat);
    NodeId p1 = b.op(Opcode::IAlu);
    NodeId c1 = b.op(Opcode::FAdd);
    b.flow(p1, c1);
    NodeId p2 = b.op(Opcode::IAlu);
    NodeId c2 = b.op(Opcode::FAdd);
    b.flow(p2, c2);
    Ddg g = b.tripCount(10).build();

    MachineConfig m = twoClusterConfig(32, 1);
    PartialSchedule ps(g, m, 1);
    ps.apply(ps.planPlacement(p1, 0, 0));
    ps.apply(ps.planPlacement(p2, 0, 0));
    PlacementPlan cp1 = ps.planInWindow(c1, 1, 1, 12);
    ASSERT_TRUE(cp1.feasible);
    ps.apply(cp1);
    EXPECT_EQ(ps.stats().busTransfers, 1);

    PlacementPlan cp2 = ps.planInWindow(c2, 1, 1, 12);
    ASSERT_TRUE(cp2.feasible);
    ps.apply(cp2);
    // The single bus slot of the II=1 kernel is taken: the second
    // transfer must be a CommSt/CommLd pair.
    EXPECT_EQ(ps.stats().busTransfers, 1);
    EXPECT_EQ(ps.stats().memTransfers, 1);
    auto v = validateSchedule(g, m, ps);
    EXPECT_TRUE(v) << v.message;
}

TEST(Schedule, TransferSharedBetweenConsumersInSameCluster)
{
    LatencyTable lat;
    DdgBuilder b("fanout", lat);
    NodeId p = b.op(Opcode::IAlu);
    NodeId c1 = b.op(Opcode::FAdd);
    NodeId c2 = b.op(Opcode::FMul);
    b.flow(p, c1);
    b.flow(p, c2);
    Ddg g = b.tripCount(10).build();

    MachineConfig m = twoClusterConfig(32, 1);
    PartialSchedule ps(g, m, 2);
    ps.apply(ps.planPlacement(p, 0, 0));
    ps.apply(ps.planInWindow(c1, 1, 2, 10));
    ps.apply(ps.planInWindow(c2, 1, 2, 10));
    // One value, one destination cluster: a single transfer.
    EXPECT_EQ(ps.stats().busTransfers + ps.stats().memTransfers, 1);
    auto v = validateSchedule(g, m, ps);
    EXPECT_TRUE(v) << v.message;
}

TEST(Schedule, TransferReplacedWhenConsumerNeedsItEarlier)
{
    LatencyTable lat;
    DdgBuilder b("replace", lat);
    NodeId p = b.op(Opcode::IAlu);
    NodeId late = b.op(Opcode::FAdd);
    NodeId early = b.op(Opcode::FMul);
    b.flow(p, late);
    b.flow(p, early);
    Ddg g = b.tripCount(10).build();

    MachineConfig m = twoClusterConfig(32, 1);
    PartialSchedule ps(g, m, 4);
    ps.apply(ps.planPlacement(p, 0, 0)); // write at 1
    // A late consumer first: the transfer may arrive late.
    ps.apply(ps.planPlacement(late, 1, 8));
    int arrival_before =
        ps.transfersOf(p).at(1).arrivalCycle;
    // An earlier consumer in the same cluster forces a re-placement.
    PlacementPlan plan = ps.planPlacement(early, 1, 2);
    ASSERT_TRUE(plan.feasible);
    ps.apply(plan);
    int arrival_after = ps.transfersOf(p).at(1).arrivalCycle;
    EXPECT_LE(arrival_after, 2);
    EXPECT_LE(arrival_after, arrival_before);
    EXPECT_EQ(ps.transfersOf(p).size(), 1u);
    auto v = validateSchedule(g, m, ps);
    EXPECT_TRUE(v) << v.message;
}

TEST(Schedule, RegisterPressureRejectsPlacement)
{
    LatencyTable lat;
    // A lifetime of L cycles in an II-cycle kernel occupies
    // ceil(L/II) registers at once; with 2 registers per cluster a
    // 10-cycle lifetime at II=4 (3 registers) must be rejected while
    // a 4-cycle one is accepted.
    DdgBuilder b("pressure", lat);
    NodeId p = b.op(Opcode::IAlu);
    NodeId c = b.op(Opcode::Store);
    b.flow(p, c);
    Ddg g = b.tripCount(10).build();

    MachineConfig m("tiny", 2, 4, 4, 4, 4, 1, 1); // 2 regs/cluster
    PartialSchedule ps(g, m, 4);
    ps.apply(ps.planPlacement(p, 0, 0)); // write at 1
    EXPECT_FALSE(ps.planPlacement(c, 0, 10).feasible);
    EXPECT_TRUE(ps.planPlacement(c, 0, 4).feasible);
}

TEST(Schedule, SelfEdgeFeasibleOnlyWhenIiCoversLatency)
{
    LatencyTable lat;
    DdgBuilder b("self", lat);
    NodeId acc = b.op(Opcode::FAdd); // latency 3
    b.carried(acc, acc, 1);
    Ddg g = b.tripCount(10).build();
    MachineConfig m = twoClusterConfig(32, 1);

    PartialSchedule tight(g, m, 2);
    EXPECT_FALSE(tight.planPlacement(acc, 0, 0).feasible);
    PartialSchedule ok(g, m, 3);
    EXPECT_TRUE(ok.planPlacement(acc, 0, 0).feasible);
}

TEST(Schedule, PlanInWindowScansBothDirections)
{
    LatencyTable lat;
    Ddg g = parallelLoop(2, lat);
    MachineConfig m("one", 1, 1, 1, 1, 32, 0, 1); // 1 INT unit
    PartialSchedule ps(g, m, 2);
    ps.apply(ps.planPlacement(0, 0, 0));
    // Upward scan skips the busy slot 0.
    PlacementPlan up = ps.planInWindow(1, 0, 0, 4);
    ASSERT_TRUE(up.feasible);
    EXPECT_EQ(up.cycle, 1);
    // Downward scan from 4 finds 3 -> slot 1 free.
    PlacementPlan down = ps.planInWindow(1, 0, 4, 0);
    ASSERT_TRUE(down.feasible);
    EXPECT_EQ(down.cycle, 3);
}

TEST(Schedule, NegativeCyclesWrapIntoKernel)
{
    LatencyTable lat;
    Ddg g = parallelLoop(2, lat);
    MachineConfig m("one", 1, 1, 1, 1, 32, 0, 1);
    PartialSchedule ps(g, m, 2);
    ps.apply(ps.planPlacement(0, 0, -4)); // slot 0
    EXPECT_FALSE(ps.planPlacement(1, 0, 0).feasible);
    EXPECT_TRUE(ps.planPlacement(1, 0, -3).feasible);
}

TEST(Schedule, ScheduleLengthSpansOverheadOps)
{
    LatencyTable lat;
    Ddg g = pairLoop(lat);
    MachineConfig m = twoClusterConfig(32, 1);
    PartialSchedule ps(g, m, 2);
    ps.apply(ps.planPlacement(0, 0, 0));
    ps.apply(ps.planInWindow(1, 1, 3, 10));
    // load issues at 0, consumer at 3 finishing at 6; the transfer
    // sits in between.
    EXPECT_EQ(ps.scheduleLength(), 6);
}

TEST(Schedule, InsertionFomPrefersTransferFreePlacement)
{
    LatencyTable lat;
    Ddg g = pairLoop(lat);
    MachineConfig m = twoClusterConfig(32, 1);
    PartialSchedule ps(g, m, 2);
    ps.apply(ps.planPlacement(0, 0, 0));
    PlacementPlan local = ps.planPlacement(1, 0, 2);
    PlacementPlan remote = ps.planPlacement(1, 1, 3);
    ASSERT_TRUE(local.feasible);
    ASSERT_TRUE(remote.feasible);
    FigureOfMerit fl = ps.insertionFom(local);
    FigureOfMerit fr = ps.insertionFom(remote);
    EXPECT_TRUE(FigureOfMerit::better(fl, fr, 0.0));
}

TEST(Schedule, GlobalFomReflectsUtilization)
{
    LatencyTable lat;
    Ddg g = pairLoop(lat);
    MachineConfig m = twoClusterConfig(32, 1);
    PartialSchedule ps(g, m, 2);
    FigureOfMerit empty = ps.globalFom();
    EXPECT_DOUBLE_EQ(empty.maxComponent(), 0.0);
    ps.apply(ps.planPlacement(0, 0, 0));
    ps.apply(ps.planInWindow(1, 1, 3, 10));
    EXPECT_GT(ps.globalFom().maxComponent(), 0.0);
}

TEST(Schedule, PlannedMemoryExtensionChangesFomArity)
{
    LatencyTable lat;
    Ddg g = pairLoop(lat);
    MachineConfig m = twoClusterConfig(32, 1);
    PartialSchedule global(g, m, 2);
    PartialSchedule planned(g, m, 2, {1, 0});
    // Global variant: bus + 2 mem + 2 regs + 1 remaining = 6.
    EXPECT_EQ(global.globalFom().size(), 6u);
    // Per-cluster variant: bus + 2 mem + 2 regs + 2 remaining = 7.
    EXPECT_EQ(planned.globalFom().size(), 7u);
}

TEST(Schedule, MaxLiveTracksValueLifetime)
{
    LatencyTable lat;
    Ddg g = pairLoop(lat);
    MachineConfig m = twoClusterConfig(32, 1);
    PartialSchedule ps(g, m, 4);
    ps.apply(ps.planPlacement(0, 0, 0)); // write at 2
    ps.apply(ps.planPlacement(1, 0, 6)); // read at 6
    // Live [2,6]: 5 cycles over a 4-cycle kernel -> 2 registers at
    // one slot.
    EXPECT_EQ(ps.maxLive(0), 2);
    EXPECT_EQ(ps.maxLive(1), 0);
}

TEST(Schedule, ValidatorRejectsIncompleteSchedules)
{
    // Meta-test: the oracle the integration suite leans on must
    // actually fail on a schedule that is not complete.
    LatencyTable lat;
    Ddg g = pairLoop(lat);
    MachineConfig m = twoClusterConfig(32, 1);
    PartialSchedule ps(g, m, 2);
    ps.apply(ps.planPlacement(0, 0, 0));
    auto v = validateSchedule(g, m, ps);
    EXPECT_FALSE(v);
    EXPECT_NE(v.message.find("not scheduled"), std::string::npos)
        << v.message;
}

using ScheduleDeathTest = ::testing::Test;

TEST(ScheduleDeathTest, ApplyInfeasiblePlanPanics)
{
    LatencyTable lat;
    Ddg g = pairLoop(lat);
    MachineConfig m = twoClusterConfig(32, 1);
    PartialSchedule ps(g, m, 2);
    PlacementPlan bad;
    EXPECT_DEATH(ps.apply(bad), "");
}

TEST(ScheduleDeathTest, DoubleSchedulePanics)
{
    LatencyTable lat;
    Ddg g = pairLoop(lat);
    MachineConfig m = twoClusterConfig(32, 1);
    PartialSchedule ps(g, m, 2);
    ps.apply(ps.planPlacement(0, 0, 0));
    EXPECT_DEATH(ps.planPlacement(0, 0, 1), "");
}
