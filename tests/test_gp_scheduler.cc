/**
 * @file
 * Unit tests for the per-loop code-generation drivers (paper Figure
 * 1): the GP scheme, the Fixed Partition variant and the URACAM
 * baseline, plus the list-scheduling fallback and the IPC/cycle
 * accounting of CompiledLoop.
 */

#include <gtest/gtest.h>

#include "core/gp_scheduler.hh"
#include "core/metrics.hh"
#include "graph/ddg_builder.hh"
#include "machine/configs.hh"
#include "testing/fixtures.hh"
#include "workload/loop_shapes.hh"

using namespace gpsched;
using namespace gpsched::testing;

TEST(LoopCompiler, KindNames)
{
    EXPECT_EQ(toString(SchedulerKind::Uracam), "URACAM");
    EXPECT_EQ(toString(SchedulerKind::FixedPartition), "Fixed");
    EXPECT_EQ(toString(SchedulerKind::Gp), "GP");
}

TEST(LoopCompiler, CompilesChainAtMii)
{
    LatencyTable lat;
    Ddg g = chainLoop(4, lat);
    g.setTripCount(100);
    for (SchedulerKind kind :
         {SchedulerKind::Uracam, SchedulerKind::FixedPartition,
          SchedulerKind::Gp}) {
        MachineConfig m = twoClusterConfig(32, 1);
        LoopCompiler lc(m, kind);
        CompiledLoop r = lc.compile(g);
        EXPECT_TRUE(r.moduloScheduled) << toString(kind);
        EXPECT_EQ(r.mii, 1);
        EXPECT_EQ(r.ii, 1) << toString(kind);
        EXPECT_EQ(r.ops, 4 * 100);
        EXPECT_EQ(r.cycles,
                  moduloLoopCycles(r.ii, r.scheduleLength, 100));
        EXPECT_GT(r.ipc, 0.0);
        EXPECT_GE(r.scheduleAttempts, 1);
    }
}

TEST(LoopCompiler, GpRunsThePartitionerUracamDoesNot)
{
    LatencyTable lat;
    Ddg g = diamondLoop(lat);
    MachineConfig m = twoClusterConfig(32, 1);
    CompiledLoop gp =
        LoopCompiler(m, SchedulerKind::Gp).compile(g);
    CompiledLoop ur =
        LoopCompiler(m, SchedulerKind::Uracam).compile(g);
    EXPECT_GE(gp.partitionRuns, 1);
    EXPECT_EQ(ur.partitionRuns, 0);
}

TEST(LoopCompiler, UnifiedMachineNeedsNoPartition)
{
    LatencyTable lat;
    Ddg g = diamondLoop(lat);
    MachineConfig m = unifiedConfig(32);
    CompiledLoop r = LoopCompiler(m, SchedulerKind::Gp).compile(g);
    EXPECT_EQ(r.partitionRuns, 0);
    EXPECT_TRUE(r.moduloScheduled);
}

TEST(LoopCompiler, IiNeverBelowMii)
{
    LatencyTable lat;
    Ddg g = recurrenceKernel("rec", lat, 8, 50);
    MachineConfig m = fourClusterConfig(32, 1);
    for (SchedulerKind kind :
         {SchedulerKind::Uracam, SchedulerKind::FixedPartition,
          SchedulerKind::Gp}) {
        CompiledLoop r = LoopCompiler(m, kind).compile(g);
        if (r.moduloScheduled) {
            EXPECT_GE(r.ii, r.mii) << toString(kind);
        }
    }
}

TEST(LoopCompiler, RecurrenceBoundIiIsExact)
{
    LatencyTable lat;
    Ddg g = recurrenceLoop(lat); // RecMII 7, trivial resources
    MachineConfig m = twoClusterConfig(32, 1);
    CompiledLoop r = LoopCompiler(m, SchedulerKind::Gp).compile(g);
    EXPECT_TRUE(r.moduloScheduled);
    EXPECT_EQ(r.ii, 7);
}

TEST(LoopCompiler, ListFallbackWhenModuloCannotWork)
{
    LatencyTable lat;
    // A loop whose schedule is totally serial: a chain of FDivs with
    // a carried dependence. RecMII equals the chain length, so the
    // II immediately reaches the flat-schedule bound and the driver
    // must fall back to list scheduling.
    DdgBuilder b("serial", lat);
    NodeId prev = invalidNode;
    NodeId first = invalidNode;
    for (int i = 0; i < 3; ++i) {
        NodeId v = b.op(Opcode::FDiv);
        if (prev != invalidNode)
            b.flow(prev, v);
        else
            first = v;
        prev = v;
    }
    b.carried(prev, first, 1);
    Ddg g = b.tripCount(20).build();

    MachineConfig m = fourClusterConfig(32, 1);
    CompiledLoop r = LoopCompiler(m, SchedulerKind::Gp).compile(g);
    // Either modulo scheduling succeeded exactly at the serial bound
    // or the fallback kicked in; both must report valid accounting.
    EXPECT_GT(r.cycles, 0);
    EXPECT_GT(r.ipc, 0.0);
    if (!r.moduloScheduled) {
        EXPECT_EQ(r.ii, 0);
        EXPECT_EQ(r.cycles,
                  listLoopCycles(r.scheduleLength, g.tripCount()));
    }
}

TEST(LoopCompiler, FixedPartitionNeverDeviates)
{
    // Indirect check: Fixed must never beat GP by more than noise on
    // a loop where deviation matters (GP >= Fixed in II).
    LatencyTable lat;
    Ddg g = memHeavyLoop(10, lat);
    g.setTripCount(100);
    MachineConfig m = fourClusterConfig(32, 1);
    CompiledLoop fx =
        LoopCompiler(m, SchedulerKind::FixedPartition).compile(g);
    CompiledLoop gp = LoopCompiler(m, SchedulerKind::Gp).compile(g);
    EXPECT_TRUE(fx.moduloScheduled);
    EXPECT_TRUE(gp.moduloScheduled);
    EXPECT_LE(gp.ii, fx.ii);
}

TEST(LoopCompiler, SchedSecondsPopulated)
{
    LatencyTable lat;
    Ddg g = wideBlockKernel("w", lat, 8, 4, 50);
    MachineConfig m = fourClusterConfig(32, 1);
    CompiledLoop r = LoopCompiler(m, SchedulerKind::Gp).compile(g);
    EXPECT_GE(r.schedSeconds, 0.0);
}

TEST(LoopCompiler, DeterministicAcrossRuns)
{
    LatencyTable lat;
    Rng rng(91);
    Ddg g = randomLoop("r", lat, rng);
    MachineConfig m = fourClusterConfig(32, 2);
    LoopCompiler lc(m, SchedulerKind::Gp);
    CompiledLoop a = lc.compile(g);
    CompiledLoop b = lc.compile(g);
    EXPECT_EQ(a.moduloScheduled, b.moduloScheduled);
    EXPECT_EQ(a.ii, b.ii);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stats.busTransfers, b.stats.busTransfers);
}

TEST(Metrics, CycleFormulas)
{
    EXPECT_EQ(moduloLoopCycles(3, 11, 100), 99 * 3 + 11);
    EXPECT_EQ(moduloLoopCycles(1, 1, 1), 1);
    EXPECT_EQ(listLoopCycles(7, 10), 70);
    EXPECT_DOUBLE_EQ(ipcOf(100, 50), 2.0);
    EXPECT_DOUBLE_EQ(ipcOf(1, 0), 0.0);
    EXPECT_NEAR(ipcGainPercent(1.23, 1.0), 23.0, 1e-9);
    EXPECT_DOUBLE_EQ(averageIpc({2.0, 4.0}), 3.0);
}

// Parameterized: every scheme on every clustered machine compiles a
// mixed bag of loops with sound accounting.
class CompilerSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CompilerSweep, SoundAccounting)
{
    auto [kind_idx, machine_idx] = GetParam();
    SchedulerKind kind = static_cast<SchedulerKind>(kind_idx);
    LatencyTable lat;
    MachineConfig m = machine_idx == 0   ? unifiedConfig(32)
                      : machine_idx == 1 ? twoClusterConfig(32, 1)
                      : machine_idx == 2 ? fourClusterConfig(32, 1)
                                         : fourClusterConfig(64, 2);
    LoopCompiler lc(m, kind);
    std::vector<Ddg> loops;
    loops.push_back(stencilKernel("st", lat, 7, 64));
    loops.push_back(reductionKernel("r", lat, 3, 64));
    loops.push_back(recurrenceKernel("rec", lat, 5, 64));
    loops.push_back(daxpyKernel("d", lat, 2, 64));
    for (const Ddg &g : loops) {
        CompiledLoop r = lc.compile(g);
        EXPECT_GT(r.cycles, 0) << g.name();
        EXPECT_EQ(r.ops,
                  static_cast<std::int64_t>(g.numNodes()) *
                      g.tripCount());
        EXPECT_NEAR(r.ipc,
                    static_cast<double>(r.ops) / r.cycles, 1e-12);
        if (r.moduloScheduled) {
            EXPECT_GE(r.ii, r.mii);
            EXPECT_EQ(r.cycles, moduloLoopCycles(r.ii,
                                                 r.scheduleLength,
                                                 g.tripCount()));
        }
        // IPC can never exceed the machine issue width.
        EXPECT_LE(r.ipc, m.totalIssueWidth());
    }
}

INSTANTIATE_TEST_SUITE_P(
    KindsTimesMachines, CompilerSweep,
    ::testing::Combine(::testing::Range(0, 3),
                       ::testing::Range(0, 4)));
