/**
 * @file
 * End-to-end integration tests: the synthetic SPECfp95 suite is
 * compiled on the paper's machine configurations with all three
 * schemes; every modulo schedule produced is checked by the
 * independent validator, and the paper's structural results
 * (unified is an upper bound; GP tracks or beats Fixed) are
 * asserted as invariants.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "graph/ddg_analysis.hh"
#include "machine/configs.hh"
#include "partition/multilevel.hh"
#include "sched/mii.hh"
#include "testing/fixtures.hh"
#include "testing/validate.hh"
#include "workload/loop_shapes.hh"
#include "workload/specfp.hh"

using namespace gpsched;
using namespace gpsched::testing;

namespace
{

/** Compiles every loop of @p prog with the scheduler core and runs
 *  the independent validator on each successful modulo schedule. */
void
validateProgram(const Program &prog, const MachineConfig &m,
                ClusterPolicy policy)
{
    GpPartitioner partitioner(m);
    for (const Ddg &g : prog.loops) {
        const Partition *assignment = nullptr;
        GpPartitionResult part{Partition(g.numNodes(),
                                         m.numClusters()),
                               0,
                               {}};
        if (policy != ClusterPolicy::FreeChoice &&
            m.numClusters() > 1) {
            part = partitioner.run(g, computeMii(g, m));
            assignment = &part.partition;
        }
        auto ps = scheduleLoop(g, m, policy, assignment, 8);
        if (!ps.has_value())
            continue; // list-scheduling territory; not validated here
        auto v = validateSchedule(g, m, *ps);
        EXPECT_TRUE(v) << prog.name << "/" << g.name() << " on "
                       << m.name() << ": " << v.message;
    }
}

} // namespace

// ---------------------------------------------------------------------
// Schedule validity across machines, schemes and the whole suite.
// ---------------------------------------------------------------------

class SuiteValidation
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  public:
    static MachineConfig
    machine(int idx)
    {
        switch (idx) {
          case 0:
            return twoClusterConfig(32, 1);
          case 1:
            return twoClusterConfig(64, 1);
          case 2:
            return fourClusterConfig(32, 1);
          case 3:
            return fourClusterConfig(64, 1);
          default:
            return fourClusterConfig(32, 2);
        }
    }
};

TEST_P(SuiteValidation, EveryScheduleIsValid)
{
    auto [machine_idx, policy_idx] = GetParam();
    LatencyTable lat;
    MachineConfig m = SuiteValidation::machine(machine_idx);
    ClusterPolicy policy = static_cast<ClusterPolicy>(policy_idx);
    // Two characteristic programs per case keep the sweep fast while
    // covering stencils, recurrences, wide blocks and gathers.
    for (const char *name : {"hydro2d", "fpppp"}) {
        Program prog = specFp95Program(name, lat);
        validateProgram(prog, m, policy);
    }
}

INSTANTIATE_TEST_SUITE_P(
    MachinesTimesPolicies, SuiteValidation,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Range(0, 3)));

TEST(Integration, FullSuiteValidOnPaperHeadlineConfig)
{
    // The 2-cluster, 32-register, 1-bus/1-cycle machine is the
    // configuration behind the paper's +23% headline; validate every
    // loop of all ten benchmarks under the GP policy there.
    LatencyTable lat;
    MachineConfig m = twoClusterConfig(32, 1);
    for (const Program &prog : specFp95Suite(lat))
        validateProgram(prog, m, ClusterPolicy::PreferAssigned);
}

// ---------------------------------------------------------------------
// Paper-shape invariants of the full evaluation pipeline.
// ---------------------------------------------------------------------

TEST(Integration, UnifiedIsAnUpperBoundForEveryScheme)
{
    LatencyTable lat;
    auto suite = specFp95Suite(lat);
    MachineConfig uni = unifiedConfig(32);
    SuiteResult unified =
        compileSuite(suite, uni, SchedulerKind::Uracam);
    for (int machine = 0; machine < 2; ++machine) {
        MachineConfig m = machine == 0 ? twoClusterConfig(32, 1)
                                       : fourClusterConfig(32, 1);
        for (SchedulerKind kind :
             {SchedulerKind::Uracam, SchedulerKind::FixedPartition,
              SchedulerKind::Gp}) {
            SuiteResult r = compileSuite(suite, m, kind);
            EXPECT_LE(r.meanIpc, unified.meanIpc * 1.0001)
                << m.name() << " " << toString(kind);
        }
    }
}

TEST(Integration, GpBeatsOrMatchesFixedOnAverage)
{
    LatencyTable lat;
    auto suite = specFp95Suite(lat);
    MachineConfig m = twoClusterConfig(32, 1);
    double fixed =
        compileSuite(suite, m, SchedulerKind::FixedPartition).meanIpc;
    double gp = compileSuite(suite, m, SchedulerKind::Gp).meanIpc;
    EXPECT_GE(gp, fixed * 0.999);
}

TEST(Integration, ClusteringCostsPerformance)
{
    // More clusters with the same total resources can only add
    // communication cost: 4-cluster GP must not beat 2-cluster GP on
    // average.
    LatencyTable lat;
    auto suite = specFp95Suite(lat);
    double c2 = compileSuite(suite, twoClusterConfig(32, 1),
                             SchedulerKind::Gp)
                    .meanIpc;
    double c4 = compileSuite(suite, fourClusterConfig(32, 1),
                             SchedulerKind::Gp)
                    .meanIpc;
    EXPECT_LE(c4, c2 * 1.02);
}

TEST(Integration, SlowerBusHurts)
{
    LatencyTable lat;
    auto suite = specFp95Suite(lat);
    double lat1 = compileSuite(suite, fourClusterConfig(32, 1),
                               SchedulerKind::Gp)
                      .meanIpc;
    double lat2 = compileSuite(suite, fourClusterConfig(32, 2),
                               SchedulerKind::Gp)
                      .meanIpc;
    EXPECT_LE(lat2, lat1 * 1.02);
}

TEST(Integration, MoreRegistersNeverHurt)
{
    LatencyTable lat;
    auto suite = specFp95Suite(lat);
    double r32 = compileSuite(suite, twoClusterConfig(32, 1),
                              SchedulerKind::Gp)
                     .meanIpc;
    double r64 = compileSuite(suite, twoClusterConfig(64, 1),
                              SchedulerKind::Gp)
                     .meanIpc;
    EXPECT_GE(r64, r32 * 0.98);
}

// ---------------------------------------------------------------------
// Fuzzing: random loop bodies through every policy, every schedule
// validated from first principles.
// ---------------------------------------------------------------------

class RandomLoopFuzz
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>>
{
};

TEST_P(RandomLoopFuzz, SchedulesValidateOrFailCleanly)
{
    auto [seed, machine_idx] = GetParam();
    LatencyTable lat;
    Rng rng(seed);
    RandomLoopParams params;
    params.numOps = 16 + static_cast<int>(seed % 5) * 8;
    params.carriedProb = 0.2;
    Ddg g = randomLoop("fuzz", lat, rng, params);
    MachineConfig m = SuiteValidation::machine(machine_idx);

    GpPartitioner partitioner(m);
    GpPartitionResult part = partitioner.run(g, computeMii(g, m));
    for (int policy_idx = 0; policy_idx < 3; ++policy_idx) {
        ClusterPolicy policy =
            static_cast<ClusterPolicy>(policy_idx);
        const Partition *assignment =
            policy == ClusterPolicy::FreeChoice ? nullptr
                                                : &part.partition;
        auto ps = scheduleLoop(g, m, policy, assignment, 8);
        if (!ps.has_value())
            continue; // a clean failure is acceptable (II exhausted)
        auto v = validateSchedule(g, m, *ps);
        EXPECT_TRUE(v) << "seed " << seed << " machine " << m.name()
                       << " policy " << policy_idx << ": "
                       << v.message;
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsTimesMachines, RandomLoopFuzz,
    ::testing::Combine(::testing::Values(11u, 22u, 33u, 44u, 55u,
                                         66u, 77u, 88u),
                       ::testing::Range(0, 5)));

TEST(Integration, MostLoopsModuloSchedule)
{
    // The paper reports the fallback fires "for just a few loops".
    LatencyTable lat;
    auto suite = specFp95Suite(lat);
    MachineConfig m = fourClusterConfig(32, 1);
    SuiteResult r = compileSuite(suite, m, SchedulerKind::Gp);
    int total = 0, fallback = 0;
    for (const ProgramResult &p : r.programs) {
        total += static_cast<int>(p.loops.size());
        fallback += p.listScheduled;
    }
    EXPECT_LT(fallback * 5, total) << fallback << "/" << total;
}
